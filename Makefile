# Canonical build/test entry points — CI (.github/workflows/ci.yml) and
# the ROADMAP tier-1 command run these same targets.

GO ?= go

# Version-pinned staticcheck, fetched on demand via `go run` (no
# toolchain install, no go.mod entry). Bump deliberately.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build test race race-repl race-failover race-client race-metrics race-trace race-query race-cluster race-partition bench bench-smoke bench-trend bench-e11 bench-e12 lint staticcheck fmt clean

all: build test

## build: compile every package and command
build:
	$(GO) build ./...

## test: the tier-1 gate (build + full test suite)
test: build
	$(GO) test ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## race-repl: the primary+replica integration tests, twice, under race
race-repl:
	$(GO) test -race -count=2 -run 'TestReplica|TestReplication|TestShipper|TestReadYourWrites|TestBehindHorizon' ./internal/repl/... ./internal/server/...

## race-failover: crash-matrix + promotion + divergence fault-injection tests under race
race-failover:
	$(GO) test -race -run 'TestCrashMatrix|TestPromot|TestDivergence|TestReconnectConverges|TestSyncReplicas|TestJittered' ./internal/repl/... ./internal/server/...
	$(GO) test -race ./internal/faultfs/...

## race-client: the client/server/pool suite (batching, deadlines, drain, failover routing) under race
race-client:
	$(GO) test -race -count=2 ./client/... ./internal/wire/...
	$(GO) test -race -run 'TestBatch|TestClose' ./internal/server/...

## race-metrics: the metrics registry + admission-control/overload suite, twice, under race
race-metrics:
	$(GO) test -race -count=2 ./internal/metrics/...
	$(GO) test -race -count=2 -run 'TestAdmission|TestServerMetrics' ./internal/server/...
	$(GO) test -race -count=2 -run 'TestClientOverloaded|TestPoolBacksOff' ./client/...

## race-trace: the tracing/logging suite (span rings, propagation, echo, slow-op) under race
race-trace:
	$(GO) test -race -count=2 ./internal/trace/... ./internal/slog/...
	$(GO) test -race -run 'TestTrace|TestResponseEchoes|TestServerSpan|TestPoolOverloadRetrySingleTrace|TestPoolFailoverSingleTrace|TestClusterTraceEndToEnd' ./internal/server/... ./client/...

## race-query: the query-pushdown suite (plan decode, pipeline-vs-BFS
## equivalence under writers, streaming, mid-stream cancel/failover) under race
race-query:
	$(GO) test -race -count=2 ./internal/query/...
	$(GO) test -race -count=2 -run 'TestQuery|TestFuzzSeedCorpus|FuzzDecodeQueryPlan' ./internal/wire/... ./internal/server/... ./client/...

## race-cluster: the self-driving-cluster suite under race — controller
## failover/election/reseed twice, plus the checkpoint crash matrix and
## the pool topology-discovery tests
race-cluster:
	$(GO) test -race -count=2 ./internal/cluster/...
	$(GO) test -race -run 'TestCheckpointCrash' ./internal/core/...
	$(GO) test -race -run 'TestPoolWriteSurfacesErrNoPrimary|TestPoolDiscoversPromotedPrimaryViaTopology' ./client/...

## race-partition: the partitioned-graph suite under race — the 2PC
## engine (prepare/decide/recovery), the batch planner and topology, the
## 2PC crash matrix (coordinator/participant/fleet deaths at every
## protocol step), and the partition-routing client
race-partition:
	$(GO) test -race -count=2 -run 'TestPrepare|TestDecision|TestValidateGuard|TestCheckpointRetainsPrepared|TestTwoPC' ./internal/core/... ./internal/server/...
	$(GO) test -race -count=2 ./internal/partition/...
	$(GO) test -race -run 'TestRouter' ./client/...
	$(GO) test -race -run 'TestStride' ./internal/ids/...

## bench: the full experiment suite (minutes)
bench: build
	$(GO) run ./cmd/neograph-bench -json bench-results.json

## bench-smoke: quick experiment pass; writes bench-results.json
bench-smoke: build
	$(GO) run ./cmd/neograph-bench -quick -json bench-results.json

## bench-trend: normalise bench-results.json and gate against the newest committed BENCH_*.json
bench-trend:
	$(GO) run ./cmd/bench-trend -in bench-results.json -dir .

## bench-e11: the striped-commit-pipeline scaling experiment only
bench-e11: build
	$(GO) run ./cmd/neograph-bench -exp E11 -json bench-e11.json

## bench-e12: the remote batching / pooled-read experiment only
bench-e12: build
	$(GO) run ./cmd/neograph-bench -exp E12 -json bench-e12.json

## lint: go vet + gofmt diff check + log.Printf gate + staticcheck (pinned)
lint: staticcheck
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@out=$$(grep -rn 'log\.Printf\|log\.Println\|log\.Print(' \
		--include='*.go' --exclude='*_test.go' \
		. | grep -v '^\./cmd/' | grep -v '^\./examples/' | grep -v 'slog\.' || true); \
	if [ -n "$$out" ]; then \
		echo "raw stdlib log calls found (use internal/slog):"; echo "$$out"; exit 1; fi

## staticcheck: honnef.co/go/tools, version-pinned via `go run`. Skips
## with a warning when the module cannot be fetched (offline sandboxes);
## CI always has network, so the check is never skipped there.
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "warning: staticcheck@$(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

clean:
	rm -f bench-results.json bench-e11.json bench-e12.json cpu.pprof
