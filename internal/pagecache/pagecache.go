// Package pagecache implements a fixed-size page cache over a store file,
// the lowest layer of Figure 1's "persistent store". Record stores read
// and write through the cache; pages are pinned while in use, evicted in
// LRU order when the cache is full, and written back when dirty.
//
// The cache is safe for concurrent use and sharded for it: pages hash to
// one of several independent LRU segments, each with its own lock and its
// own slice of the capacity, so concurrent pins of unrelated pages never
// contend. Callers pin a page, read or mutate its Data under their own
// record-level synchronisation, then unpin it (marking it dirty if
// mutated).
package pagecache

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every cached page in bytes (8 KiB, as in Neo4j's
// default page cache).
const PageSize = 8192

// minShardPages is the smallest per-shard capacity worth splitting for:
// below it, sharding costs more in stranded capacity (a full shard next
// to an empty one) than it saves in lock contention. It also bounds the
// pinned-page headroom loss sharding introduces — ErrCacheFull fires when
// one *shard* is fully pinned, so each shard must comfortably exceed any
// plausible simultaneous pin count (pins are held only across a single
// record copy).
const minShardPages = 64

// maxShards caps the shard count (power of two).
const maxShards = 64

// Errors returned by the cache.
var (
	ErrCacheFull = errors.New("pagecache: all pages pinned")
	ErrClosed    = errors.New("pagecache: closed")
)

// File is the backing storage a cache operates on. *os.File implements it.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// Page is a pinned cache page. Data is valid until Unpin.
type Page struct {
	id    uint64
	data  [PageSize]byte
	pins  int
	dirty bool
	// Intrusive LRU links within the owning shard (guarded by the shard
	// mutex). inLRU is false while pinned — pinned pages are not
	// evictable and sit outside the list.
	lruPrev, lruNext *Page
	inLRU            bool
}

// ID returns the page number within the file.
func (p *Page) ID() uint64 { return p.id }

// Data returns the page's byte buffer. The caller must hold the pin and
// provide its own synchronisation for concurrent record access.
func (p *Page) Data() []byte { return p.data[:] }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// shard is one LRU segment: a slice of the page map and capacity under
// its own lock, with an intrusive doubly-linked LRU list of unpinned
// pages (head = most recently used).
type shard struct {
	mu       sync.Mutex
	pages    map[uint64]*Page
	capacity int
	lruHead  *Page
	lruTail  *Page

	// Per-shard effectiveness counters (atomic so Stats/ShardStats scrape
	// without taking shard locks). The cache-wide Stats sums them.
	hits, misses, evictions, flushes atomic.Uint64
}

// Cache is a sharded LRU page cache over a single file.
type Cache struct {
	file      File
	shards    []shard
	shardMask uint64
	closed    atomic.Bool
	lifeMu    sync.Mutex    // serialises Flush/Close/Discard against each other
	grown     atomic.Uint64 // number of pages known to exist in the file
}

// shardCount picks the power-of-two number of segments for a capacity:
// enough to spread GOMAXPROCS pinners, but never so many that a segment
// drops below minShardPages.
func shardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards && capacity/(n*2) >= minShardPages {
		n *= 2
	}
	return n
}

// New creates a cache of capacity pages over file. fileSize is the current
// size of the file in bytes (used to know which pages exist on disk).
func New(file File, capacity int, fileSize int64) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pagecache: capacity %d < 1", capacity)
	}
	n := shardCount(capacity)
	c := &Cache{
		file:      file,
		shards:    make([]shard, n),
		shardMask: uint64(n - 1),
	}
	for i := range c.shards {
		s := &c.shards[i]
		// Distribute the capacity; the first capacity%n shards absorb the
		// remainder so the totals always add up to capacity.
		s.capacity = capacity / n
		if i < capacity%n {
			s.capacity++
		}
		s.pages = make(map[uint64]*Page, s.capacity)
	}
	// A partial trailing page (a write-back torn by a crash) counts as a
	// whole page: Pin tolerates the short read at EOF and the unwritten
	// tail reads as zeros, i.e. not-in-use records.
	c.grown.Store(uint64((fileSize + PageSize - 1) / PageSize))
	return c, nil
}

// shard maps a page number to its segment. Record files touch pages in
// dense runs, so the ID is bit-mixed first to keep strided access
// patterns from piling onto one segment.
func (c *Cache) shard(pageID uint64) *shard {
	h := pageID * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return &c.shards[h&c.shardMask]
}

// PageCount returns the number of pages the backing file logically holds.
func (c *Cache) PageCount() uint64 { return c.grown.Load() }

// Stats returns a snapshot of the cache counters summed over shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		s := &c.shards[i]
		out.Hits += s.hits.Load()
		out.Misses += s.misses.Load()
		out.Evictions += s.evictions.Load()
		out.Flushes += s.flushes.Load()
	}
	return out
}

// ShardStats returns one counter snapshot per LRU segment — the
// per-shard hit-ratio series on /metrics, and the view that shows a
// pathological access pattern piling onto one segment.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = Stats{
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Evictions: s.evictions.Load(),
			Flushes:   s.flushes.Load(),
		}
	}
	return out
}

// Pin returns the page with the given number, faulting it in from the file
// if necessary, with the pin count incremented. Pages beyond the current
// end of file are materialised as zero pages (the file grows lazily at
// write-back). The caller must Unpin exactly once per Pin.
func (c *Cache) Pin(pageID uint64) (*Page, error) {
	s := c.shard(pageID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if p, ok := s.pages[pageID]; ok {
		s.hits.Add(1)
		s.pin(p)
		return p, nil
	}
	s.misses.Add(1)
	if len(s.pages) >= s.capacity {
		if err := c.evictLocked(s); err != nil {
			return nil, err
		}
	}
	p := &Page{id: pageID}
	if pageID < c.grown.Load() {
		if _, err := c.file.ReadAt(p.data[:], int64(pageID)*PageSize); err != nil && err != io.EOF {
			return nil, fmt.Errorf("pagecache: read page %d: %w", pageID, err)
		}
	} else {
		// Raise the high-water mark; concurrent faults of other new pages
		// race upward monotonically.
		for {
			g := c.grown.Load()
			if pageID < g || c.grown.CompareAndSwap(g, pageID+1) {
				break
			}
		}
	}
	s.pages[pageID] = p
	s.pin(p)
	return p, nil
}

// pin increments the pin count and removes the page from the evictable
// LRU list. Caller holds s.mu.
func (s *shard) pin(p *Page) {
	p.pins++
	if p.inLRU {
		s.lruRemove(p)
	}
}

// lruRemove unlinks p from the shard's LRU list. Caller holds s.mu.
func (s *shard) lruRemove(p *Page) {
	if p.lruPrev != nil {
		p.lruPrev.lruNext = p.lruNext
	} else {
		s.lruHead = p.lruNext
	}
	if p.lruNext != nil {
		p.lruNext.lruPrev = p.lruPrev
	} else {
		s.lruTail = p.lruPrev
	}
	p.lruPrev, p.lruNext = nil, nil
	p.inLRU = false
}

// lruPushFront links p as the shard's most recently used unpinned page.
// Caller holds s.mu.
func (s *shard) lruPushFront(p *Page) {
	p.lruPrev = nil
	p.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = p
	}
	s.lruHead = p
	if s.lruTail == nil {
		s.lruTail = p
	}
	p.inLRU = true
}

// Unpin releases one pin on p. If dirty is true the page is marked for
// write-back before eviction. Unpinning a page with no pins panics.
func (c *Cache) Unpin(p *Page, dirty bool) {
	s := c.shard(p.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.pins <= 0 {
		panic("pagecache: unpin of unpinned page")
	}
	if dirty {
		p.dirty = true
	}
	p.pins--
	if p.pins == 0 {
		s.lruPushFront(p)
	}
}

// evictLocked removes the least recently used unpinned page of the shard,
// writing it back first if dirty. Caller holds s.mu.
func (c *Cache) evictLocked(s *shard) error {
	p := s.lruTail
	if p == nil {
		return ErrCacheFull
	}
	if p.dirty {
		if err := c.writeBack(p); err != nil {
			return err
		}
	}
	s.lruRemove(p)
	delete(s.pages, p.id)
	s.evictions.Add(1)
	return nil
}

// writeBack flushes a dirty page to the file. Caller holds the owning
// shard's mutex.
func (c *Cache) writeBack(p *Page) error {
	if _, err := c.file.WriteAt(p.data[:], int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("pagecache: write page %d: %w", p.id, err)
	}
	p.dirty = false
	c.shard(p.id).flushes.Add(1)
	return nil
}

// Flush writes back every dirty page and syncs the file.
func (c *Cache) Flush() error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, p := range s.pages {
			if p.dirty {
				if err := c.writeBack(p); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return c.file.Sync()
}

// Discard closes the backing file WITHOUT writing dirty pages back,
// simulating a crash: only data that reached the file (earlier eviction or
// Flush) survives. Pinned pages are abandoned. Test-support only.
func (c *Cache) Discard() error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	// Take every shard lock so the closed flip is atomic against
	// concurrent Pins — a fault-in racing the discard must fail with
	// ErrClosed, not read from a closed file.
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	already := c.closed.Swap(true)
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
	if already {
		return ErrClosed
	}
	return c.file.Close()
}

// Close flushes all dirty pages and closes the backing file. Close fails
// if any page is still pinned.
func (c *Cache) Close() error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	// All shard locks are taken (in index order) so the pinned check, the
	// final write-back and the closed flag flip form one atomic step
	// against concurrent Pins.
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	unlockAll := func() {
		for i := len(c.shards) - 1; i >= 0; i-- {
			c.shards[i].mu.Unlock()
		}
	}
	for i := range c.shards {
		for _, p := range c.shards[i].pages {
			if p.pins > 0 {
				unlockAll()
				return fmt.Errorf("pagecache: close with page %d pinned", p.id)
			}
		}
	}
	for i := range c.shards {
		for _, p := range c.shards[i].pages {
			if p.dirty {
				if err := c.writeBack(p); err != nil {
					unlockAll()
					return err
				}
			}
		}
	}
	c.closed.Store(true)
	unlockAll()
	if err := c.file.Sync(); err != nil {
		return err
	}
	return c.file.Close()
}
