// Package pagecache implements a fixed-size page cache over a store file,
// the lowest layer of Figure 1's "persistent store". Record stores read
// and write through the cache; pages are pinned while in use, evicted in
// LRU order when the cache is full, and written back when dirty.
//
// The cache is safe for concurrent use. Callers pin a page, read or
// mutate its Data under their own record-level synchronisation, then
// unpin it (marking it dirty if mutated).
package pagecache

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
)

// PageSize is the size of every cached page in bytes (8 KiB, as in Neo4j's
// default page cache).
const PageSize = 8192

// Errors returned by the cache.
var (
	ErrCacheFull = errors.New("pagecache: all pages pinned")
	ErrClosed    = errors.New("pagecache: closed")
)

// File is the backing storage a cache operates on. *os.File implements it.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// Page is a pinned cache page. Data is valid until Unpin.
type Page struct {
	id    uint64
	data  [PageSize]byte
	pins  int
	dirty bool
	lru   *list.Element // nil while pinned (pinned pages are not evictable)
}

// ID returns the page number within the file.
func (p *Page) ID() uint64 { return p.id }

// Data returns the page's byte buffer. The caller must hold the pin and
// provide its own synchronisation for concurrent record access.
func (p *Page) Data() []byte { return p.data[:] }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// Cache is an LRU page cache over a single file.
type Cache struct {
	mu       sync.Mutex
	file     File
	capacity int
	pages    map[uint64]*Page
	lru      *list.List // front = most recently used; holds only unpinned pages
	closed   bool
	stats    Stats
	grown    uint64 // number of pages known to exist in the file
}

// New creates a cache of capacity pages over file. fileSize is the current
// size of the file in bytes (used to know which pages exist on disk).
func New(file File, capacity int, fileSize int64) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pagecache: capacity %d < 1", capacity)
	}
	if fileSize%PageSize != 0 {
		return nil, fmt.Errorf("pagecache: file size %d not page aligned", fileSize)
	}
	return &Cache{
		file:     file,
		capacity: capacity,
		pages:    make(map[uint64]*Page, capacity),
		lru:      list.New(),
		grown:    uint64(fileSize / PageSize),
	}, nil
}

// PageCount returns the number of pages the backing file logically holds.
func (c *Cache) PageCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.grown
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pin returns the page with the given number, faulting it in from the file
// if necessary, with the pin count incremented. Pages beyond the current
// end of file are materialised as zero pages (the file grows lazily at
// write-back). The caller must Unpin exactly once per Pin.
func (c *Cache) Pin(pageID uint64) (*Page, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if p, ok := c.pages[pageID]; ok {
		c.stats.Hits++
		c.pin(p)
		return p, nil
	}
	c.stats.Misses++
	if len(c.pages) >= c.capacity {
		if err := c.evictLocked(); err != nil {
			return nil, err
		}
	}
	p := &Page{id: pageID}
	if pageID < c.grown {
		if _, err := c.file.ReadAt(p.data[:], int64(pageID)*PageSize); err != nil && err != io.EOF {
			return nil, fmt.Errorf("pagecache: read page %d: %w", pageID, err)
		}
	} else {
		c.grown = pageID + 1
	}
	c.pages[pageID] = p
	c.pin(p)
	return p, nil
}

// pin increments the pin count and removes the page from the evictable
// LRU list. Caller holds c.mu.
func (c *Cache) pin(p *Page) {
	p.pins++
	if p.lru != nil {
		c.lru.Remove(p.lru)
		p.lru = nil
	}
}

// Unpin releases one pin on p. If dirty is true the page is marked for
// write-back before eviction. Unpinning a page with no pins panics.
func (c *Cache) Unpin(p *Page, dirty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.pins <= 0 {
		panic("pagecache: unpin of unpinned page")
	}
	if dirty {
		p.dirty = true
	}
	p.pins--
	if p.pins == 0 {
		p.lru = c.lru.PushFront(p)
	}
}

// evictLocked removes the least recently used unpinned page, writing it
// back first if dirty. Caller holds c.mu.
func (c *Cache) evictLocked() error {
	e := c.lru.Back()
	if e == nil {
		return ErrCacheFull
	}
	p := e.Value.(*Page)
	if p.dirty {
		if err := c.writeBackLocked(p); err != nil {
			return err
		}
	}
	c.lru.Remove(e)
	delete(c.pages, p.id)
	c.stats.Evictions++
	return nil
}

// writeBackLocked flushes a dirty page to the file. Caller holds c.mu.
func (c *Cache) writeBackLocked(p *Page) error {
	if _, err := c.file.WriteAt(p.data[:], int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("pagecache: write page %d: %w", p.id, err)
	}
	p.dirty = false
	c.stats.Flushes++
	return nil
}

// Flush writes back every dirty page and syncs the file.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for _, p := range c.pages {
		if p.dirty {
			if err := c.writeBackLocked(p); err != nil {
				return err
			}
		}
	}
	return c.file.Sync()
}

// Discard closes the backing file WITHOUT writing dirty pages back,
// simulating a crash: only data that reached the file (earlier eviction or
// Flush) survives. Pinned pages are abandoned. Test-support only.
func (c *Cache) Discard() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.mu.Unlock()
	return c.file.Close()
}

// Close flushes all dirty pages and closes the backing file. Close fails
// if any page is still pinned.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	for _, p := range c.pages {
		if p.pins > 0 {
			c.mu.Unlock()
			return fmt.Errorf("pagecache: close with page %d pinned", p.id)
		}
	}
	for _, p := range c.pages {
		if p.dirty {
			if err := c.writeBackLocked(p); err != nil {
				c.mu.Unlock()
				return err
			}
		}
	}
	c.closed = true
	c.mu.Unlock()
	if err := c.file.Sync(); err != nil {
		return err
	}
	return c.file.Close()
}
