package pagecache

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// open mirrors what the store layer does (open the file itself, then
// New) — production code opens through the faultfs seam, so the cache
// no longer has a path-based constructor.
func open(path string, capacity int) (*Cache, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c, err := New(f, capacity, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func openTestCache(t *testing.T, capacity int) (*Cache, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.store")
	c, err := open(path, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c, path
}

func TestPinNewPageZeroed(t *testing.T) {
	c, _ := openTestCache(t, 4)
	defer c.Close()
	p, err := c.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range p.Data() {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	c.Unpin(p, false)
}

func TestWriteReadBackThroughEviction(t *testing.T) {
	c, path := openTestCache(t, 2)
	// Write a distinct first byte into 8 pages: forces eviction with cap 2.
	for i := uint64(0); i < 8; i++ {
		p, err := c.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i + 1)
		c.Unpin(p, true)
	}
	for i := uint64(0); i < 8; i++ {
		p, err := c.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data()[0] != byte(i+1) {
			t.Fatalf("page %d byte = %d, want %d", i, p.Data()[0], i+1)
		}
		c.Unpin(p, false)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: data must have hit the disk.
	c2, err := open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	p, err := c2.Pin(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data()[0] != 6 {
		t.Fatalf("reopened page 5 byte = %d, want 6", p.Data()[0])
	}
	c2.Unpin(p, false)
}

func TestAllPinnedError(t *testing.T) {
	c, _ := openTestCache(t, 2)
	p0, _ := c.Pin(0)
	p1, _ := c.Pin(1)
	if _, err := c.Pin(2); err != ErrCacheFull {
		t.Fatalf("err = %v, want ErrCacheFull", err)
	}
	c.Unpin(p0, false)
	if _, err := c.Pin(2); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	c.Unpin(p1, false)
	// p2 still pinned; drop it so Close succeeds.
	p2 := c.shard(2).pages[2]
	c.Unpin(p2, false)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDoublePinSamePage(t *testing.T) {
	c, _ := openTestCache(t, 2)
	defer c.Close()
	a, _ := c.Pin(0)
	b, _ := c.Pin(0)
	if a != b {
		t.Fatal("same page id must return same page")
	}
	if a.pins != 2 {
		t.Fatalf("pins = %d, want 2", a.pins)
	}
	c.Unpin(a, false)
	c.Unpin(b, false)
	if a.pins != 0 {
		t.Fatalf("pins = %d, want 0", a.pins)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	c, _ := openTestCache(t, 2)
	defer c.Close()
	p, _ := c.Pin(0)
	c.Unpin(p, false)
	defer func() {
		if recover() == nil {
			t.Error("unpin of unpinned page should panic")
		}
	}()
	c.Unpin(p, false)
}

func TestCloseWithPinnedFails(t *testing.T) {
	c, _ := openTestCache(t, 2)
	p, _ := c.Pin(0)
	if err := c.Close(); err == nil {
		t.Fatal("Close with pinned page should fail")
	}
	c.Unpin(p, false)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != ErrClosed {
		t.Fatalf("Flush after close = %v, want ErrClosed", err)
	}
	if _, err := c.Pin(0); err != ErrClosed {
		t.Fatalf("Pin after close = %v, want ErrClosed", err)
	}
}

func TestFlushPersists(t *testing.T) {
	c, path := openTestCache(t, 4)
	p, _ := c.Pin(3)
	copy(p.Data(), "hello")
	c.Unpin(p, true)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 4*PageSize {
		t.Fatalf("file size %d, want >= %d", len(raw), 4*PageSize)
	}
	if string(raw[3*PageSize:3*PageSize+5]) != "hello" {
		t.Fatal("flushed bytes not found at page offset")
	}
	c.Close()
}

func TestStats(t *testing.T) {
	c, _ := openTestCache(t, 2)
	defer c.Close()
	p, _ := c.Pin(0)
	c.Unpin(p, false)
	p, _ = c.Pin(0)
	c.Unpin(p, false)
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestPageCountGrowth(t *testing.T) {
	c, _ := openTestCache(t, 4)
	defer c.Close()
	if c.PageCount() != 0 {
		t.Fatalf("fresh PageCount = %d", c.PageCount())
	}
	p, _ := c.Pin(9)
	c.Unpin(p, false)
	if c.PageCount() != 10 {
		t.Fatalf("PageCount = %d, want 10", c.PageCount())
	}
}

func TestBadConstructorArgs(t *testing.T) {
	if _, err := New(nil, 0, 0); err == nil {
		t.Error("capacity 0 should fail")
	}
	// An unaligned size — a write-back torn by a crash — rounds up to a
	// whole page; the unwritten tail reads as zeros.
	c, err := New(nil, 1, PageSize+1)
	if err != nil {
		t.Fatalf("partial trailing page rejected: %v", err)
	}
	if got := c.PageCount(); got != 2 {
		t.Errorf("PageCount = %d after partial page, want 2", got)
	}
}

// TestShardedCapacityAndEviction forces a multi-shard cache (GOMAXPROCS
// is raised for the construction; shardCount reads it) and checks that
// the per-shard capacities sum to the requested total, that write/read
// through eviction stays correct across shards, and that the atomic
// stats counters aggregate all shards.
func TestShardedCapacityAndEviction(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	path := filepath.Join(t.TempDir(), "test.store")
	c, err := open(path, 521) // odd capacity: remainder must be distributed
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.shards) < 2 {
		t.Fatalf("shards = %d, want >= 2 at GOMAXPROCS 8", len(c.shards))
	}
	total := 0
	for i := range c.shards {
		if c.shards[i].capacity < minShardPages {
			t.Fatalf("shard %d capacity %d < min %d", i, c.shards[i].capacity, minShardPages)
		}
		total += c.shards[i].capacity
	}
	if total != 521 {
		t.Fatalf("shard capacities sum to %d, want 521", total)
	}
	// Write 4x the capacity in pages, forcing eviction in every shard,
	// then read everything back.
	const pages = 2084
	for i := uint64(0); i < pages; i++ {
		p, err := c.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[0] = byte(i%251) + 1
		c.Unpin(p, true)
	}
	for i := uint64(0); i < pages; i++ {
		p, err := c.Pin(i)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.Data()[0], byte(i%251)+1; got != want {
			t.Fatalf("page %d byte = %d, want %d", i, got, want)
		}
		c.Unpin(p, false)
	}
	s := c.Stats()
	if s.Misses == 0 || s.Evictions == 0 || s.Flushes == 0 {
		t.Fatalf("stats did not aggregate across shards: %+v", s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPinUnpin(t *testing.T) {
	c, _ := openTestCache(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64((g + i) % 16)
				p, err := c.Pin(id)
				if err != nil {
					if err == ErrCacheFull {
						continue // transient under heavy pinning
					}
					t.Error(err)
					return
				}
				p.Data()[g] = byte(i)
				c.Unpin(p, true)
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
