package store

import (
	"errors"
	"strings"
	"testing"

	"neograph/internal/ids"
	"neograph/internal/value"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTokensRoundTrip(t *testing.T) {
	s := openTestStore(t)
	tk := s.Tokens()
	a, err := tk.Get(TokenLabel, "Person")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tk.Get(TokenLabel, "Company")
	c, _ := tk.Get(TokenLabel, "Person")
	if a != c || a == b {
		t.Fatalf("token ids: a=%d b=%d c=%d", a, b, c)
	}
	if name, ok := tk.Name(TokenLabel, a); !ok || name != "Person" {
		t.Fatalf("Name = %q, %v", name, ok)
	}
	if _, ok := tk.Name(TokenLabel, 999); ok {
		t.Error("unknown token should not resolve")
	}
	// Namespaces are independent.
	r, _ := tk.Get(TokenRelType, "Person")
	if _, ok := tk.Lookup(TokenPropKey, "Person"); ok {
		t.Error("propkey namespace should not see label")
	}
	if r != 0 {
		t.Errorf("first reltype token = %d, want 0", r)
	}
	if tk.Count(TokenLabel) != 2 {
		t.Errorf("label count = %d, want 2", tk.Count(TokenLabel))
	}
	if got := tk.All(TokenLabel); len(got) != 2 || got[0] != "Person" || got[1] != "Company" {
		t.Errorf("All = %v", got)
	}
}

func TestTokensPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Tokens().Get(TokenPropKey, "name")
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	id2, ok := s2.Tokens().Lookup(TokenPropKey, "name")
	if !ok || id1 != id2 {
		t.Fatalf("token lost across reopen: %d vs %d (%v)", id1, id2, ok)
	}
}

func TestPutGetNode(t *testing.T) {
	s := openTestStore(t)
	id := s.AllocNodeID()
	n := NodeData{
		ID:       id,
		Labels:   []string{"Person", "Admin"},
		Props:    value.Map{"name": value.String("ada"), "age": value.Int(36)},
		CommitTS: 42,
	}
	if err := s.PutNode(n); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.CommitTS != 42 || got.Tombstone {
		t.Errorf("cts=%d tomb=%v", got.CommitTS, got.Tombstone)
	}
	if len(got.Labels) != 2 || got.Labels[0] != "Person" || got.Labels[1] != "Admin" {
		t.Errorf("labels = %v", got.Labels)
	}
	if !got.Props.Equal(n.Props) {
		t.Errorf("props = %v, want %v", got.Props, n.Props)
	}
	if _, ok := got.Props[CommitTSKeyName]; ok {
		t.Error("reserved cts property leaked into props")
	}
}

func TestGetNodeMissing(t *testing.T) {
	s := openTestStore(t)
	if _, err := s.GetNode(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	id := s.AllocNodeID()
	if _, err := s.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("allocated-but-unwritten: err = %v, want ErrNotFound", err)
	}
}

func TestNodeRewritePreservesRelChain(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, value.Map{"v": value.Int(1)})
	b := mustNode(t, s, nil)
	rid := s.AllocRelID()
	if err := s.PutRel(RelData{ID: rid, Type: "KNOWS", StartNode: a, EndNode: b, CommitTS: 2}); err != nil {
		t.Fatal(err)
	}
	// Rewrite node a with new props; chain must survive.
	if err := s.PutNode(NodeData{ID: a, Props: value.Map{"v": value.Int(2)}, CommitTS: 3}); err != nil {
		t.Fatal(err)
	}
	rels, err := s.NodeRels(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0] != rid {
		t.Fatalf("rels = %v, want [%d]", rels, rid)
	}
	got, _ := s.GetNode(a)
	if v := got.Props["v"]; !v.Equal(value.Int(2)) {
		t.Fatalf("rewrite lost props: %v", got.Props)
	}
}

func TestLargePropertySpills(t *testing.T) {
	s := openTestStore(t)
	big := strings.Repeat("x", 5000)
	id := mustNode(t, s, value.Map{"bio": value.String(big)})
	got, err := s.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Props["bio"].AsString(); v != big {
		t.Fatalf("spilled value corrupted: %d bytes", len(v))
	}
	// Rewrite with a small value: dyn chain must be freed (ids recycled).
	freeBefore := s.dyn.alloc.FreeCount()
	if err := s.PutNode(NodeData{ID: id, Props: value.Map{"bio": value.String("s")}, CommitTS: 5}); err != nil {
		t.Fatal(err)
	}
	if s.dyn.alloc.FreeCount() <= freeBefore {
		t.Error("dyn chain not freed on rewrite")
	}
}

func TestRemoveNode(t *testing.T) {
	s := openTestStore(t)
	id := mustNode(t, s, value.Map{"k": value.Int(1)})
	if err := s.RemoveNode(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatal("node still present after remove")
	}
	if err := s.RemoveNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	// ID is recycled.
	if got := s.AllocNodeID(); got != id {
		t.Fatalf("AllocNodeID = %d, want recycled %d", got, id)
	}
}

func TestRemoveNodeWithRelsFails(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	b := mustNode(t, s, nil)
	rid := s.AllocRelID()
	if err := s.PutRel(RelData{ID: rid, Type: "R", StartNode: a, EndNode: b}); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode(a); err == nil {
		t.Fatal("remove of node with relationships should fail")
	}
	if err := s.RemoveRel(rid); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode(a); err != nil {
		t.Fatal(err)
	}
}

func TestRelChains(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	b := mustNode(t, s, nil)
	c := mustNode(t, s, nil)
	r1 := mustRel(t, s, "R", a, b)
	r2 := mustRel(t, s, "R", a, c)
	r3 := mustRel(t, s, "R", b, a) // incoming to a

	relsA, err := s.NodeRels(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(relsA) != 3 {
		t.Fatalf("node a has %d rels, want 3: %v", len(relsA), relsA)
	}
	// Chain inserts at head: newest first.
	if relsA[0] != r3 || relsA[1] != r2 || relsA[2] != r1 {
		t.Fatalf("chain order = %v, want [%d %d %d]", relsA, r3, r2, r1)
	}
	relsB, _ := s.NodeRels(b)
	if len(relsB) != 2 {
		t.Fatalf("node b has %d rels, want 2", len(relsB))
	}

	// Remove the middle of a's chain and re-walk.
	if err := s.RemoveRel(r2); err != nil {
		t.Fatal(err)
	}
	relsA, _ = s.NodeRels(a)
	if len(relsA) != 2 || relsA[0] != r3 || relsA[1] != r1 {
		t.Fatalf("after unlink: %v", relsA)
	}
	// Remove head.
	if err := s.RemoveRel(r3); err != nil {
		t.Fatal(err)
	}
	relsA, _ = s.NodeRels(a)
	if len(relsA) != 1 || relsA[0] != r1 {
		t.Fatalf("after head unlink: %v", relsA)
	}
}

func TestSelfLoop(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	r := mustRel(t, s, "SELF", a, a)
	rels, err := s.NodeRels(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0] != r {
		t.Fatalf("self loop chain = %v", rels)
	}
	got, err := s.GetRel(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.StartNode != a || got.EndNode != a {
		t.Fatalf("self loop endpoints: %+v", got)
	}
	if err := s.RemoveRel(r); err != nil {
		t.Fatal(err)
	}
	rels, _ = s.NodeRels(a)
	if len(rels) != 0 {
		t.Fatalf("after self-loop removal: %v", rels)
	}
}

func TestGetRelFields(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	b := mustNode(t, s, nil)
	rid := s.AllocRelID()
	in := RelData{
		ID: rid, Type: "WORKS_AT", StartNode: a, EndNode: b,
		Props: value.Map{"since": value.Int(2009)}, CommitTS: 77,
	}
	if err := s.PutRel(in); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRel(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "WORKS_AT" || got.StartNode != a || got.EndNode != b || got.CommitTS != 77 {
		t.Fatalf("got %+v", got)
	}
	if !got.Props.Equal(in.Props) {
		t.Fatalf("props = %v", got.Props)
	}
}

func TestRelRewrite(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	b := mustNode(t, s, nil)
	rid := s.AllocRelID()
	if err := s.PutRel(RelData{ID: rid, Type: "R", StartNode: a, EndNode: b, Props: value.Map{"w": value.Int(1)}, CommitTS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRel(RelData{ID: rid, Type: "R", StartNode: a, EndNode: b, Props: value.Map{"w": value.Int(2)}, CommitTS: 2}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetRel(rid)
	if w := got.Props["w"]; !w.Equal(value.Int(2)) || got.CommitTS != 2 {
		t.Fatalf("rewrite: %+v", got)
	}
	// Chain membership unchanged (still exactly once).
	rels, _ := s.NodeRels(a)
	if len(rels) != 1 {
		t.Fatalf("chain after rewrite: %v", rels)
	}
	// Endpoint change is rejected.
	if err := s.PutRel(RelData{ID: rid, Type: "R", StartNode: b, EndNode: a}); err == nil {
		t.Fatal("endpoint change should fail")
	}
}

func TestScans(t *testing.T) {
	s := openTestStore(t)
	a := mustNode(t, s, nil)
	b := mustNode(t, s, nil)
	mustRel(t, s, "R", a, b)
	removed := mustNode(t, s, nil)
	if err := s.RemoveNode(removed); err != nil {
		t.Fatal(err)
	}
	var nodes, rels int
	if err := s.ScanNodes(func(NodeData) error { nodes++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.ScanRels(func(RelData) error { rels++; return nil }); err != nil {
		t.Fatal(err)
	}
	if nodes != 2 || rels != 1 {
		t.Fatalf("scan found %d nodes, %d rels; want 2, 1", nodes, rels)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustNode(t, s, value.Map{"name": value.String("ada")})
	b := mustNode(t, s, nil)
	rid := mustRel(t, s, "KNOWS", a, b)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Props["name"].AsString(); v != "ada" {
		t.Fatalf("props lost: %v", got.Props)
	}
	rels, err := s2.NodeRels(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0] != rid {
		t.Fatalf("rels lost: %v", rels)
	}
	// Allocators resumed: new IDs don't collide.
	if id := s2.AllocNodeID(); id != 2 {
		t.Fatalf("resumed AllocNodeID = %d, want 2", id)
	}
}

func TestFileSizes(t *testing.T) {
	s := openTestStore(t)
	mustNode(t, s, value.Map{"k": value.Int(1)})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sizes, err := s.FileSizes()
	if err != nil {
		t.Fatal(err)
	}
	if sizes["nodes"] == 0 || sizes["props"] == 0 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestTombstonePersisted(t *testing.T) {
	s := openTestStore(t)
	id := s.AllocNodeID()
	if err := s.PutNode(NodeData{ID: id, CommitTS: 9, Tombstone: true}); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tombstone || got.CommitTS != 9 {
		t.Fatalf("tombstone round trip: %+v", got)
	}
}

func mustNode(t *testing.T, s *Store, props value.Map) ids.ID {
	t.Helper()
	id := s.AllocNodeID()
	if err := s.PutNode(NodeData{ID: id, Props: props, CommitTS: 1}); err != nil {
		t.Fatal(err)
	}
	return id
}

func mustRel(t *testing.T, s *Store, typ string, a, b ids.ID) ids.ID {
	t.Helper()
	id := s.AllocRelID()
	if err := s.PutRel(RelData{ID: id, Type: typ, StartNode: a, EndNode: b, CommitTS: 1}); err != nil {
		t.Fatal(err)
	}
	return id
}
