package store

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"neograph/internal/faultfs"
	"neograph/internal/ids"
	"neograph/internal/pagecache"
	"neograph/internal/record"
	"neograph/internal/value"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("store: record not found")
)

// Options tune the store.
type Options struct {
	// CachePages is the page-cache capacity per record file. Zero means
	// DefaultCachePages.
	CachePages int
	// FS is the file-system seam, nil meaning the real OS. Crash tests
	// substitute a faultfs.Injector.
	FS faultfs.FS
}

// DefaultCachePages is the per-file page cache capacity when unset.
const DefaultCachePages = 1024

// Store bundles the record files and token registry that together form the
// persistent store of Figure 1.
type Store struct {
	mu     sync.Mutex // serialises structural (chain) updates
	dir    string
	fs     faultfs.FS
	nodes  *recordFile
	rels   *recordFile
	props  *recordFile
	dyn    *recordFile
	tokens *Tokens
}

// Open opens (creating if needed) the store in directory dir.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CachePages <= 0 {
		opts.CachePages = DefaultCachePages
	}
	fs := faultfs.OrOS(opts.FS)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: fs}
	var err error
	if s.nodes, err = openRecordFile(fs, dir, "neostore.nodes.db", record.NodeSize, opts.CachePages); err != nil {
		return nil, err
	}
	if s.rels, err = openRecordFile(fs, dir, "neostore.rels.db", record.RelSize, opts.CachePages); err != nil {
		s.closePartial()
		return nil, err
	}
	if s.props, err = openRecordFile(fs, dir, "neostore.props.db", record.PropSize, opts.CachePages); err != nil {
		s.closePartial()
		return nil, err
	}
	if s.dyn, err = openRecordFile(fs, dir, "neostore.dyn.db", record.DynSize, opts.CachePages); err != nil {
		s.closePartial()
		return nil, err
	}
	if s.tokens, err = OpenTokens(fs, dir+"/neostore.tokens.db"); err != nil {
		s.closePartial()
		return nil, err
	}
	return s, nil
}

func (s *Store) closePartial() {
	for _, f := range []*recordFile{s.nodes, s.rels, s.props, s.dyn} {
		if f != nil {
			f.close()
		}
	}
}

// Tokens exposes the token registry.
func (s *Store) Tokens() *Tokens { return s.tokens }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Flush writes all dirty pages of every record file to disk.
func (s *Store) Flush() error {
	for _, f := range []*recordFile{s.nodes, s.rels, s.props, s.dyn} {
		if err := f.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every file.
func (s *Store) Close() error {
	var firstErr error
	for _, f := range []*recordFile{s.nodes, s.rels, s.props, s.dyn} {
		if err := f.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Crash closes every file without flushing dirty pages, simulating a
// process crash. Only previously flushed/evicted pages survive on disk.
// Test-support only.
func (s *Store) Crash() error {
	var firstErr error
	for _, f := range []*recordFile{s.nodes, s.rels, s.props, s.dyn} {
		if err := f.cache.Discard(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CacheStats reports page-cache effectiveness per record file, keyed by
// the short file name used on /metrics ("nodes", "rels", "props", "dyn").
func (s *Store) CacheStats() map[string]pagecache.Stats {
	return map[string]pagecache.Stats{
		"nodes": s.nodes.cache.Stats(),
		"rels":  s.rels.cache.Stats(),
		"props": s.props.cache.Stats(),
		"dyn":   s.dyn.cache.Stats(),
	}
}

// CacheShardStats reports per-LRU-segment counters for each record file.
func (s *Store) CacheShardStats() map[string][]pagecache.Stats {
	return map[string][]pagecache.Stats{
		"nodes": s.nodes.cache.ShardStats(),
		"rels":  s.rels.cache.ShardStats(),
		"props": s.props.cache.ShardStats(),
		"dyn":   s.dyn.cache.ShardStats(),
	}
}

// FileSizes reports the byte size of each store file, for the F1 report.
func (s *Store) FileSizes() (map[string]int64, error) {
	out := make(map[string]int64, 4)
	for name, f := range map[string]*recordFile{
		"nodes": s.nodes, "rels": s.rels, "props": s.props, "dyn": s.dyn,
	} {
		st, err := s.fs.Stat(f.path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				out[name] = 0
				continue
			}
			return nil, err
		}
		out[name] = st.Size()
	}
	return out, nil
}

// ---- dynamic-store chains ----

// writeDynChain stores data as a chain of dynamic records, returning the
// head ID. Empty data returns ids.NoID. Caller holds s.mu.
func (s *Store) writeDynChain(data []byte) (ids.ID, error) {
	if len(data) == 0 {
		return ids.NoID, nil
	}
	// Allocate all blocks first so Next pointers can be threaded forward.
	n := (len(data) + record.DynPayload - 1) / record.DynPayload
	blockIDs := make([]ids.ID, n)
	for i := range blockIDs {
		blockIDs[i] = s.dyn.alloc.Next()
	}
	var buf [record.DynSize]byte
	for i := 0; i < n; i++ {
		lo := i * record.DynPayload
		hi := lo + record.DynPayload
		if hi > len(data) {
			hi = len(data)
		}
		next := ids.NoID
		if i+1 < n {
			next = blockIDs[i+1]
		}
		d := record.DynRecord{InUse: true, Payload: data[lo:hi], Next: next}
		record.EncodeDyn(buf[:], &d)
		if err := s.dyn.write(blockIDs[i], buf[:]); err != nil {
			return ids.NoID, err
		}
	}
	return blockIDs[0], nil
}

// readDynChain reads a whole dynamic chain starting at head.
func (s *Store) readDynChain(head ids.ID) ([]byte, error) {
	if head == ids.NoID {
		return nil, nil
	}
	var out []byte
	var buf [record.DynSize]byte
	for id, hops := head, 0; id != ids.NoID; hops++ {
		if hops > 1<<20 {
			return nil, fmt.Errorf("store: dynamic chain cycle at %d", id)
		}
		if err := s.dyn.read(id, buf[:]); err != nil {
			return nil, err
		}
		d, err := record.DecodeDyn(buf[:])
		if err != nil {
			return nil, err
		}
		if !d.InUse {
			return nil, fmt.Errorf("%w: dynamic record %d", ErrNotFound, id)
		}
		out = append(out, d.Payload...)
		id = d.Next
	}
	return out, nil
}

// freeDynChain releases every record of a dynamic chain. Caller holds s.mu.
//
// The walk stops — without error — at anything that is not a live,
// decodable record inside the allocated range. A checkpoint that crashed
// between per-file flushes can leave a durable referencing record whose
// chain never reached this file: the pointer dangles into unallocated or
// stale space, there is nothing durable to free, and the rewrite that
// triggered the free replaces the reference. Zeroing before following
// Next also makes the walk idempotent (and cycle-proof) when two stale
// records reference the same chain.
func (s *Store) freeDynChain(head ids.ID) error {
	var buf [record.DynSize]byte
	for id := head; id != ids.NoID; {
		if id >= s.dyn.alloc.HighWater() {
			return nil
		}
		if err := s.dyn.read(id, buf[:]); err != nil {
			return err
		}
		d, err := record.DecodeDyn(buf[:])
		if err != nil || !d.InUse {
			return nil
		}
		if err := s.dyn.zero(id); err != nil {
			return err
		}
		s.dyn.alloc.Release(id)
		id = d.Next
	}
	return nil
}

// ---- property chains ----

// writePropChain persists a property map as a chain of property records,
// returning the head ID. Keys are registered in the token registry.
// Caller holds s.mu.
func (s *Store) writePropChain(props value.Map) (ids.ID, error) {
	if len(props) == 0 {
		return ids.NoID, nil
	}
	keys := props.Keys()
	recIDs := make([]ids.ID, len(keys))
	for i := range recIDs {
		recIDs[i] = s.props.alloc.Next()
	}
	var buf [record.PropSize]byte
	for i, k := range keys {
		tok, err := s.tokens.Get(TokenPropKey, k)
		if err != nil {
			return ids.NoID, err
		}
		enc := value.EncodeValue(props[k])
		p := record.PropRecord{InUse: true, Key: tok, Next: ids.NoID}
		if i+1 < len(keys) {
			p.Next = recIDs[i+1]
		}
		if len(enc) <= record.PropInlineMax {
			p.Inline = enc
			p.SpillRef = ids.NoID
		} else {
			ref, err := s.writeDynChain(enc)
			if err != nil {
				return ids.NoID, err
			}
			p.Spilled = true
			p.SpillRef = ref
		}
		record.EncodeProp(buf[:], &p)
		if err := s.props.write(recIDs[i], buf[:]); err != nil {
			return ids.NoID, err
		}
	}
	return recIDs[0], nil
}

// readPropChain loads a property chain into a map.
func (s *Store) readPropChain(head ids.ID) (value.Map, error) {
	if head == ids.NoID {
		return value.Map{}, nil
	}
	props := value.Map{}
	var buf [record.PropSize]byte
	for id, hops := head, 0; id != ids.NoID; hops++ {
		if hops > 1<<20 {
			return nil, fmt.Errorf("store: property chain cycle at %d", id)
		}
		if err := s.props.read(id, buf[:]); err != nil {
			return nil, err
		}
		p, err := record.DecodeProp(buf[:])
		if err != nil {
			return nil, err
		}
		if !p.InUse {
			return nil, fmt.Errorf("%w: property record %d", ErrNotFound, id)
		}
		name, ok := s.tokens.Name(TokenPropKey, p.Key)
		if !ok {
			return nil, fmt.Errorf("store: property record %d has unknown key token %d", id, p.Key)
		}
		enc := p.Inline
		if p.Spilled {
			if enc, err = s.readDynChain(p.SpillRef); err != nil {
				return nil, err
			}
		}
		v, _, err := value.DecodeValue(enc)
		if err != nil {
			return nil, fmt.Errorf("store: property record %d: %w", id, err)
		}
		props[name] = v
		id = p.Next
	}
	return props, nil
}

// freePropChain releases a property chain and any spilled values.
// Caller holds s.mu. Dangling references left by a torn checkpoint end
// the walk silently, exactly as in freeDynChain.
func (s *Store) freePropChain(head ids.ID) error {
	var buf [record.PropSize]byte
	for id := head; id != ids.NoID; {
		if id >= s.props.alloc.HighWater() {
			return nil
		}
		if err := s.props.read(id, buf[:]); err != nil {
			return err
		}
		p, err := record.DecodeProp(buf[:])
		if err != nil || !p.InUse {
			return nil
		}
		if p.Spilled {
			if err := s.freeDynChain(p.SpillRef); err != nil {
				return err
			}
		}
		if err := s.props.zero(id); err != nil {
			return err
		}
		s.props.alloc.Release(id)
		id = p.Next
	}
	return nil
}
