package store

import (
	"encoding/binary"
	"fmt"

	"neograph/internal/ids"
	"neograph/internal/record"
	"neograph/internal/value"
)

// NodeData is the persisted image of one node: the newest committed
// version only. CommitTS is round-tripped through the reserved commit
// timestamp property the paper adds to every entity.
type NodeData struct {
	ID        ids.ID
	Labels    []string
	Props     value.Map
	CommitTS  uint64
	Tombstone bool
}

// AllocNodeID hands out a fresh node ID. The engine allocates IDs at node
// creation so cache IDs and store IDs coincide.
func (s *Store) AllocNodeID() ids.ID { return s.nodes.alloc.Next() }

// ReleaseNodeID returns an ID whose creating transaction aborted before
// the node was ever persisted.
func (s *Store) ReleaseNodeID(id ids.ID) { s.nodes.alloc.Release(id) }

// NodeHighWater returns the lowest never-allocated node ID.
func (s *Store) NodeHighWater() ids.ID { return s.nodes.alloc.HighWater() }

// SetNodeHighWater raises the node allocator past IDs recovered from the
// WAL that never reached the record file.
func (s *Store) SetNodeHighWater(hw ids.ID) { s.nodes.alloc.SetHighWater(hw) }

// SetIDStride restricts BOTH entity allocators (nodes and relationships)
// to the congruence class id % stride == offset, so a partitioned
// deployment can compute any entity's owning partition from its ID.
// Must be called right after Open, before any allocation.
func (s *Store) SetIDStride(offset, stride ids.ID) {
	s.nodes.alloc.SetStride(offset, stride)
	s.rels.alloc.SetStride(offset, stride)
}

// PutNode persists a node image, replacing any previous image at the same
// ID. Relationship chain pointers are preserved across rewrites — chains
// are maintained by PutRel/RemoveRel.
func (s *Store) PutNode(n NodeData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putNodeLocked(n)
}

func (s *Store) putNodeLocked(n NodeData) error {
	var buf [record.NodeSize]byte
	if err := s.nodes.read(n.ID, buf[:]); err != nil {
		return err
	}
	old, err := record.DecodeNode(buf[:])
	if err != nil {
		return err
	}
	firstRel := ids.NoID
	if old.InUse {
		firstRel = old.FirstRel
		if err := s.freePropChain(old.FirstProp); err != nil {
			return err
		}
		if err := s.freeDynChain(old.LabelRef); err != nil {
			return err
		}
	}

	props := n.Props.Clone()
	props[CommitTSKeyName] = value.Int(int64(n.CommitTS))
	propHead, err := s.writePropChain(props)
	if err != nil {
		return err
	}
	labelRef, err := s.writeLabelChain(n.Labels)
	if err != nil {
		return err
	}
	rec := record.NodeRecord{
		InUse:     true,
		Tombstone: n.Tombstone,
		FirstRel:  firstRel,
		FirstProp: propHead,
		LabelRef:  labelRef,
	}
	record.EncodeNode(buf[:], &rec)
	return s.nodes.write(n.ID, buf[:])
}

// GetNode loads the persisted image of node id. ErrNotFound if the record
// is not in use.
func (s *Store) GetNode(id ids.ID) (NodeData, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getNodeLocked(id)
}

func (s *Store) getNodeLocked(id ids.ID) (NodeData, error) {
	if id >= s.nodes.alloc.HighWater() {
		return NodeData{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	var buf [record.NodeSize]byte
	if err := s.nodes.read(id, buf[:]); err != nil {
		return NodeData{}, err
	}
	rec, err := record.DecodeNode(buf[:])
	if err != nil {
		return NodeData{}, err
	}
	if !rec.InUse {
		return NodeData{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	props, err := s.readPropChain(rec.FirstProp)
	if err != nil {
		return NodeData{}, err
	}
	n := NodeData{ID: id, Tombstone: rec.Tombstone, Props: props}
	if ctsVal, ok := props[CommitTSKeyName]; ok {
		if cts, ok := ctsVal.AsInt(); ok {
			n.CommitTS = uint64(cts)
		}
		delete(props, CommitTSKeyName)
	}
	if n.Labels, err = s.readLabelChain(rec.LabelRef); err != nil {
		return NodeData{}, err
	}
	return n, nil
}

// RemoveNode erases the persisted image of node id and recycles the ID.
// Any relationships must have been removed first; RemoveNode fails if the
// relationship chain is non-empty.
func (s *Store) RemoveNode(id ids.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [record.NodeSize]byte
	if err := s.nodes.read(id, buf[:]); err != nil {
		return err
	}
	rec, err := record.DecodeNode(buf[:])
	if err != nil {
		return err
	}
	if !rec.InUse {
		return fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	if rec.FirstRel != ids.NoID {
		return fmt.Errorf("store: node %d still has relationships", id)
	}
	if err := s.freePropChain(rec.FirstProp); err != nil {
		return err
	}
	if err := s.freeDynChain(rec.LabelRef); err != nil {
		return err
	}
	if err := s.nodes.zero(id); err != nil {
		return err
	}
	s.nodes.alloc.Release(id)
	return nil
}

// ScanNodes calls fn for every in-use node image, in ID order. fn errors
// abort the scan.
func (s *Store) ScanNodes(fn func(NodeData) error) error {
	hw := s.nodes.alloc.HighWater()
	for id := ids.ID(0); id < hw; id++ {
		s.mu.Lock()
		n, err := s.getNodeLocked(id)
		s.mu.Unlock()
		if err != nil {
			continue // not in use
		}
		if err := fn(n); err != nil {
			return err
		}
	}
	return nil
}

// writeLabelChain persists a label set as a dynamic chain of uint32 label
// tokens. Caller holds s.mu.
func (s *Store) writeLabelChain(labels []string) (ids.ID, error) {
	if len(labels) == 0 {
		return ids.NoID, nil
	}
	buf := make([]byte, 0, 4*len(labels))
	for _, l := range labels {
		tok, err := s.tokens.Get(TokenLabel, l)
		if err != nil {
			return ids.NoID, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, tok)
	}
	return s.writeDynChain(buf)
}

// readLabelChain loads a label set from a dynamic chain.
func (s *Store) readLabelChain(ref ids.ID) ([]string, error) {
	if ref == ids.NoID {
		return nil, nil
	}
	raw, err := s.readDynChain(ref)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("store: label chain %d has odd length %d", ref, len(raw))
	}
	labels := make([]string, 0, len(raw)/4)
	for off := 0; off < len(raw); off += 4 {
		tok := binary.LittleEndian.Uint32(raw[off:])
		name, ok := s.tokens.Name(TokenLabel, tok)
		if !ok {
			return nil, fmt.Errorf("store: unknown label token %d", tok)
		}
		labels = append(labels, name)
	}
	return labels, nil
}
