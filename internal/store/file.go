// Package store implements the persistent store of Figure 1: one record
// file per entity kind (nodes, relationships, properties, dynamic data)
// over the page cache, plus the token registry for label, relationship
// type and property key names.
//
// Exactly one version of each entity — the most recent committed one — is
// ever written here (paper §4); superseded versions exist only in the
// object cache (internal/core).
package store

import (
	"fmt"
	"os"
	"path/filepath"

	"neograph/internal/faultfs"
	"neograph/internal/ids"
	"neograph/internal/pagecache"
)

// recordFile is a fixed-size-record array over a page cache.
type recordFile struct {
	cache   *pagecache.Cache
	size    int // record size in bytes
	perPage int
	alloc   *ids.Allocator
	path    string // store file path (id file is path + ".id")
}

func openRecordFile(fs faultfs.FS, dir, name string, recSize, cachePages int) (*recordFile, error) {
	path := filepath.Join(dir, name)
	// Open through the fault seam so crash tests can kill store I/O; the
	// page cache itself only needs the File surface.
	backing, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	st, err := backing.Stat()
	if err != nil {
		backing.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	cache, err := pagecache.New(backing, cachePages, st.Size())
	if err != nil {
		backing.Close()
		return nil, err
	}
	f := &recordFile{
		cache:   cache,
		size:    recSize,
		perPage: pagecache.PageSize / recSize,
		path:    path,
	}
	// Allocator state is rebuilt by scanning in-use flags rather than
	// trusting a side file: after a crash, a persisted free list could
	// hand out the ID of a record that became live since it was saved.
	// Every record format keeps its in-use bit in byte 0, bit 0.
	alloc := ids.NewAllocator()
	var free []ids.ID
	hw := ids.ID(0)
	pages := cache.PageCount()
	buf := make([]byte, recSize)
	for id := ids.ID(0); id < pages*uint64(f.perPage); id++ {
		if err := f.read(id, buf); err != nil {
			cache.Close()
			return nil, err
		}
		if buf[0]&1 != 0 { // record.FlagInUse
			hw = id + 1
		}
	}
	for id := ids.ID(0); id < hw; id++ {
		if err := f.read(id, buf); err != nil {
			cache.Close()
			return nil, err
		}
		if buf[0]&1 == 0 {
			free = append(free, id)
		}
	}
	alloc.SetHighWater(hw)
	for _, id := range free {
		alloc.Release(id)
	}
	f.alloc = alloc
	return f, nil
}

// read copies record id into buf (len >= f.size).
func (f *recordFile) read(id ids.ID, buf []byte) error {
	page, off := f.locate(id)
	p, err := f.cache.Pin(page)
	if err != nil {
		return fmt.Errorf("store: read record %d of %s: %w", id, f.path, err)
	}
	copy(buf[:f.size], p.Data()[off:])
	f.cache.Unpin(p, false)
	return nil
}

// write copies buf (len >= f.size) into record id.
func (f *recordFile) write(id ids.ID, buf []byte) error {
	page, off := f.locate(id)
	p, err := f.cache.Pin(page)
	if err != nil {
		return fmt.Errorf("store: write record %d of %s: %w", id, f.path, err)
	}
	copy(p.Data()[off:off+f.size], buf[:f.size])
	f.cache.Unpin(p, true)
	return nil
}

func (f *recordFile) locate(id ids.ID) (page uint64, off int) {
	return id / uint64(f.perPage), int(id%uint64(f.perPage)) * f.size
}

// zero clears record id (marks it not-in-use on disk).
func (f *recordFile) zero(id ids.ID) error {
	return f.write(id, make([]byte, f.size))
}

func (f *recordFile) flush() error { return f.cache.Flush() }

func (f *recordFile) close() error { return f.cache.Close() }
