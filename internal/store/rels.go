package store

import (
	"fmt"

	"neograph/internal/ids"
	"neograph/internal/record"
	"neograph/internal/value"
)

// RelData is the persisted image of one relationship: the newest committed
// version only.
type RelData struct {
	ID        ids.ID
	Type      string
	StartNode ids.ID
	EndNode   ids.ID
	Props     value.Map
	CommitTS  uint64
	Tombstone bool
}

// AllocRelID hands out a fresh relationship ID.
func (s *Store) AllocRelID() ids.ID { return s.rels.alloc.Next() }

// ReleaseRelID returns an ID whose creating transaction aborted before the
// relationship was ever persisted.
func (s *Store) ReleaseRelID(id ids.ID) { s.rels.alloc.Release(id) }

// RelHighWater returns the lowest never-allocated relationship ID.
func (s *Store) RelHighWater() ids.ID { return s.rels.alloc.HighWater() }

// SetRelHighWater raises the relationship allocator past IDs recovered
// from the WAL that never reached the record file.
func (s *Store) SetRelHighWater(hw ids.ID) { s.rels.alloc.SetHighWater(hw) }

// PutRel persists a relationship image. On first write the record is
// linked into the relationship chains of both endpoint nodes (which must
// already be persisted); on rewrite the chain pointers are preserved and
// only type, properties, commit timestamp and tombstone flag change.
func (s *Store) PutRel(r RelData) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	var buf [record.RelSize]byte
	if err := s.rels.read(r.ID, buf[:]); err != nil {
		return err
	}
	old, err := record.DecodeRel(buf[:])
	if err != nil {
		return err
	}

	tok, err := s.tokens.Get(TokenRelType, r.Type)
	if err != nil {
		return err
	}
	props := r.Props.Clone()
	props[CommitTSKeyName] = value.Int(int64(r.CommitTS))

	rec := record.RelRecord{
		InUse:     true,
		Tombstone: r.Tombstone,
		Type:      tok,
		StartNode: r.StartNode,
		EndNode:   r.EndNode,
		StartPrev: ids.NoID, StartNext: ids.NoID,
		EndPrev: ids.NoID, EndNext: ids.NoID,
	}

	if old.InUse {
		if old.StartNode != r.StartNode || old.EndNode != r.EndNode {
			return fmt.Errorf("store: rel %d endpoints changed on rewrite", r.ID)
		}
		rec.StartPrev, rec.StartNext = old.StartPrev, old.StartNext
		rec.EndPrev, rec.EndNext = old.EndPrev, old.EndNext
		if err := s.freePropChain(old.FirstProp); err != nil {
			return err
		}
	}

	if rec.FirstProp, err = s.writePropChain(props); err != nil {
		return err
	}

	if !old.InUse {
		// Link at the head of the start node's chain, and (unless this is a
		// self-loop, which appears once) the end node's chain.
		if err := s.linkRelLocked(r.ID, &rec, r.StartNode, true); err != nil {
			return err
		}
		if r.EndNode != r.StartNode {
			if err := s.linkRelLocked(r.ID, &rec, r.EndNode, false); err != nil {
				return err
			}
		}
	}

	record.EncodeRel(buf[:], &rec)
	return s.rels.write(r.ID, buf[:])
}

// linkRelLocked pushes relationship relID to the head of node's chain,
// updating rec's pointers in place (rec is written by the caller).
func (s *Store) linkRelLocked(relID ids.ID, rec *record.RelRecord, node ids.ID, asStart bool) error {
	var nbuf [record.NodeSize]byte
	if err := s.nodes.read(node, nbuf[:]); err != nil {
		return err
	}
	nrec, err := record.DecodeNode(nbuf[:])
	if err != nil {
		return err
	}
	if !nrec.InUse {
		return fmt.Errorf("store: link rel %d to missing node %d", relID, node)
	}
	oldHead := nrec.FirstRel
	if oldHead != ids.NoID && !s.relLiveAtLocked(oldHead, node) {
		// The node page outlived a crashed checkpoint but its chain head
		// never reached the rel file: the pointer dangles. Start a fresh
		// chain — recovery re-puts every chained rel, relinking each.
		oldHead = ids.NoID
	}
	if asStart {
		rec.StartPrev, rec.StartNext = ids.NoID, oldHead
	} else {
		rec.EndPrev, rec.EndNext = ids.NoID, oldHead
	}
	if oldHead != ids.NoID {
		if err := s.setRelPrevLocked(oldHead, node, relID); err != nil {
			return err
		}
	}
	nrec.FirstRel = relID
	record.EncodeNode(nbuf[:], &nrec)
	return s.nodes.write(node, nbuf[:])
}

// relLiveAtLocked reports whether rel id is a live, decodable record
// attached to node — the guard chain surgery needs before following a
// pointer that may dangle after a torn checkpoint (the referencing node
// page was durable, the rel page was not).
func (s *Store) relLiveAtLocked(id, node ids.ID) bool {
	if id >= s.rels.alloc.HighWater() {
		return false
	}
	var buf [record.RelSize]byte
	if err := s.rels.read(id, buf[:]); err != nil {
		return false
	}
	rec, err := record.DecodeRel(buf[:])
	if err != nil || !rec.InUse {
		return false
	}
	return rec.StartNode == node || rec.EndNode == node
}

// setRelPrevLocked sets the prev pointer of rel id relative to node.
func (s *Store) setRelPrevLocked(id, node, prev ids.ID) error {
	var buf [record.RelSize]byte
	if err := s.rels.read(id, buf[:]); err != nil {
		return err
	}
	rec, err := record.DecodeRel(buf[:])
	if err != nil {
		return err
	}
	if rec.StartNode == node {
		rec.StartPrev = prev
	} else if rec.EndNode == node {
		rec.EndPrev = prev
	} else {
		return fmt.Errorf("store: rel %d not attached to node %d", id, node)
	}
	record.EncodeRel(buf[:], &rec)
	return s.rels.write(id, buf[:])
}

// setRelNextLocked sets the next pointer of rel id relative to node.
func (s *Store) setRelNextLocked(id, node, next ids.ID) error {
	var buf [record.RelSize]byte
	if err := s.rels.read(id, buf[:]); err != nil {
		return err
	}
	rec, err := record.DecodeRel(buf[:])
	if err != nil {
		return err
	}
	if rec.StartNode == node {
		rec.StartNext = next
	} else if rec.EndNode == node {
		rec.EndNext = next
	} else {
		return fmt.Errorf("store: rel %d not attached to node %d", id, node)
	}
	record.EncodeRel(buf[:], &rec)
	return s.rels.write(id, buf[:])
}

// GetRel loads the persisted image of relationship id.
func (s *Store) GetRel(id ids.ID) (RelData, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getRelLocked(id)
}

func (s *Store) getRelLocked(id ids.ID) (RelData, error) {
	if id >= s.rels.alloc.HighWater() {
		return RelData{}, fmt.Errorf("%w: rel %d", ErrNotFound, id)
	}
	var buf [record.RelSize]byte
	if err := s.rels.read(id, buf[:]); err != nil {
		return RelData{}, err
	}
	rec, err := record.DecodeRel(buf[:])
	if err != nil {
		return RelData{}, err
	}
	if !rec.InUse {
		return RelData{}, fmt.Errorf("%w: rel %d", ErrNotFound, id)
	}
	typeName, ok := s.tokens.Name(TokenRelType, rec.Type)
	if !ok {
		return RelData{}, fmt.Errorf("store: rel %d has unknown type token %d", id, rec.Type)
	}
	props, err := s.readPropChain(rec.FirstProp)
	if err != nil {
		return RelData{}, err
	}
	r := RelData{
		ID: id, Type: typeName,
		StartNode: rec.StartNode, EndNode: rec.EndNode,
		Tombstone: rec.Tombstone, Props: props,
	}
	if ctsVal, ok := props[CommitTSKeyName]; ok {
		if cts, ok := ctsVal.AsInt(); ok {
			r.CommitTS = uint64(cts)
		}
		delete(props, CommitTSKeyName)
	}
	return r, nil
}

// RemoveRel unlinks relationship id from both endpoint chains, erases its
// record and recycles the ID.
func (s *Store) RemoveRel(id ids.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	var buf [record.RelSize]byte
	if err := s.rels.read(id, buf[:]); err != nil {
		return err
	}
	rec, err := record.DecodeRel(buf[:])
	if err != nil {
		return err
	}
	if !rec.InUse {
		return fmt.Errorf("%w: rel %d", ErrNotFound, id)
	}

	if err := s.unlinkLocked(id, rec.StartNode, rec.StartPrev, rec.StartNext); err != nil {
		return err
	}
	if rec.EndNode != rec.StartNode {
		if err := s.unlinkLocked(id, rec.EndNode, rec.EndPrev, rec.EndNext); err != nil {
			return err
		}
	}
	if err := s.freePropChain(rec.FirstProp); err != nil {
		return err
	}
	if err := s.rels.zero(id); err != nil {
		return err
	}
	s.rels.alloc.Release(id)
	return nil
}

// unlinkLocked removes rel id from node's chain given its prev/next there.
func (s *Store) unlinkLocked(id, node, prev, next ids.ID) error {
	if prev == ids.NoID {
		// id was the head: point the node at next.
		var nbuf [record.NodeSize]byte
		if err := s.nodes.read(node, nbuf[:]); err != nil {
			return err
		}
		nrec, err := record.DecodeNode(nbuf[:])
		if err != nil {
			return err
		}
		if nrec.FirstRel != id {
			return fmt.Errorf("store: chain corruption: node %d head %d != rel %d", node, nrec.FirstRel, id)
		}
		nrec.FirstRel = next
		record.EncodeNode(nbuf[:], &nrec)
		if err := s.nodes.write(node, nbuf[:]); err != nil {
			return err
		}
	} else {
		if err := s.setRelNextLocked(prev, node, next); err != nil {
			return err
		}
	}
	if next != ids.NoID {
		if err := s.setRelPrevLocked(next, node, prev); err != nil {
			return err
		}
	}
	return nil
}

// NodeRels returns the IDs of every relationship chained to node id, by
// walking the node's doubly-linked relationship chain.
func (s *Store) NodeRels(id ids.ID) ([]ids.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var nbuf [record.NodeSize]byte
	if err := s.nodes.read(id, nbuf[:]); err != nil {
		return nil, err
	}
	nrec, err := record.DecodeNode(nbuf[:])
	if err != nil {
		return nil, err
	}
	if !nrec.InUse {
		return nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	var out []ids.ID
	var buf [record.RelSize]byte
	for rid, hops := nrec.FirstRel, 0; rid != ids.NoID; hops++ {
		if hops > 1<<24 {
			return nil, fmt.Errorf("store: relationship chain cycle at node %d", id)
		}
		out = append(out, rid)
		if err := s.rels.read(rid, buf[:]); err != nil {
			return nil, err
		}
		rec, err := record.DecodeRel(buf[:])
		if err != nil {
			return nil, err
		}
		switch id {
		case rec.StartNode:
			rid = rec.StartNext
		case rec.EndNode:
			rid = rec.EndNext
		default:
			return nil, fmt.Errorf("store: rel %d in chain of node %d but not attached", rid, id)
		}
	}
	return out, nil
}

// ScanRels calls fn for every in-use relationship image, in ID order.
func (s *Store) ScanRels(fn func(RelData) error) error {
	hw := s.rels.alloc.HighWater()
	for id := ids.ID(0); id < hw; id++ {
		s.mu.Lock()
		r, err := s.getRelLocked(id)
		s.mu.Unlock()
		if err != nil {
			continue // not in use
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}
