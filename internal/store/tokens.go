package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"neograph/internal/faultfs"
)

// Token namespaces. Labels, relationship types and property keys each have
// their own dense uint32 token space, as in Neo4j. Tokens are never
// deleted (paper §4: "properties and labels are never deleted in Neo4j
// even if no node/relationship is using them").
type TokenKind uint8

const (
	TokenLabel TokenKind = iota
	TokenRelType
	TokenPropKey
	tokenKinds
)

// Reserved property key tokens. CommitTSKey holds the commit timestamp the
// paper attaches to every persisted entity (§4: "We have added an
// additional property to both of them for keeping the commit timestamp").
const (
	CommitTSKeyName = "__neograph_cts"
)

// ErrBadTokenFile reports a corrupt token store file.
var ErrBadTokenFile = errors.New("store: bad token file")

var tokenMagic = [8]byte{'n', 'g', 't', 'k', 0, 0, 0, 1}

// Tokens is the persistent registry mapping names to dense uint32 tokens,
// one namespace per TokenKind. It is safe for concurrent use; writes are
// append-only.
type Tokens struct {
	mu     sync.RWMutex
	path   string
	fs     faultfs.FS
	byName [tokenKinds]map[string]uint32
	byID   [tokenKinds][]string
}

// OpenTokens loads (or creates) the token registry at path through fs.
func OpenTokens(fs faultfs.FS, path string) (*Tokens, error) {
	t := &Tokens{path: path, fs: faultfs.OrOS(fs)}
	for k := range t.byName {
		t.byName[k] = make(map[string]uint32)
	}
	buf, err := t.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open tokens %s: %w", path, err)
	}
	if len(buf) < 8 {
		// A crash during the creating append can leave anything from an
		// empty file to a prefix of the magic header. Nothing after a
		// partial header can be valid, so repair to empty — the next
		// append rewrites the magic. Bytes that are NOT a magic prefix
		// mean the file was never ours: stay fatal.
		if string(buf) != string(tokenMagic[:len(buf)]) {
			return nil, fmt.Errorf("%w: %s", ErrBadTokenFile, path)
		}
		if err := t.repair(0); err != nil {
			return nil, err
		}
		return t, nil
	}
	if string(buf[:8]) != string(tokenMagic[:]) {
		return nil, fmt.Errorf("%w: %s", ErrBadTokenFile, path)
	}
	off := 8
	for off < len(buf) {
		entryStart := off
		if off+7 > len(buf) {
			// Torn tail: the process died mid-append. Appends are
			// single-writer and O_APPEND, so a partial entry can only be
			// the last one; drop it and physically cut the file so future
			// appends stay aligned with the parse offset. (Mid-file
			// corruption cannot produce this shape — it trips the kind or
			// dense-id checks below instead, which stay fatal.)
			if err := t.repair(int64(entryStart)); err != nil {
				return nil, err
			}
			break
		}
		kind := TokenKind(buf[off])
		if kind >= tokenKinds {
			return nil, fmt.Errorf("%w: %s: bad kind %d", ErrBadTokenFile, path, kind)
		}
		id := binary.LittleEndian.Uint32(buf[off+1:])
		nameLen := int(binary.LittleEndian.Uint16(buf[off+5:]))
		off += 7
		if off+nameLen > len(buf) {
			if err := t.repair(int64(entryStart)); err != nil {
				return nil, err
			}
			break
		}
		name := string(buf[off : off+nameLen])
		off += nameLen
		if int(id) != len(t.byID[kind]) {
			return nil, fmt.Errorf("%w: %s: non-dense token id %d", ErrBadTokenFile, path, id)
		}
		t.byName[kind][name] = id
		t.byID[kind] = append(t.byID[kind], name)
	}
	return t, nil
}

// Get returns the token for name in the given namespace, creating and
// persisting it if absent.
func (t *Tokens) Get(kind TokenKind, name string) (uint32, error) {
	t.mu.RLock()
	id, ok := t.byName[kind][name]
	t.mu.RUnlock()
	if ok {
		return id, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.byName[kind][name]; ok { // raced
		return id, nil
	}
	id = uint32(len(t.byID[kind]))
	if err := t.appendEntry(kind, id, name); err != nil {
		return 0, err
	}
	t.byName[kind][name] = id
	t.byID[kind] = append(t.byID[kind], name)
	return id, nil
}

// Lookup returns the token for name without creating it.
func (t *Tokens) Lookup(kind TokenKind, name string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byName[kind][name]
	return id, ok
}

// Name returns the name of token id, or "" if unknown.
func (t *Tokens) Name(kind TokenKind, id uint32) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.byID[kind]) {
		return "", false
	}
	return t.byID[kind][id], true
}

// Count returns the number of tokens in a namespace.
func (t *Tokens) Count(kind TokenKind) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID[kind])
}

// All returns all names in a namespace, indexed by token id.
func (t *Tokens) All(kind TokenKind) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cp := make([]string, len(t.byID[kind]))
	copy(cp, t.byID[kind])
	return cp
}

// repair truncates the token file to size, dropping a torn tail left by
// a crash mid-append. The cut must be physical: appends use O_APPEND, so
// leaving the partial entry in place would misalign every future append
// against the parse offset forever.
func (t *Tokens) repair(size int64) error {
	f, err := t.fs.OpenFile(t.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: repair tokens %s: %w", t.path, err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("store: repair tokens %s: %w", t.path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: repair tokens %s: %w", t.path, err)
	}
	return nil
}

// appendEntry persists one new token. Caller holds t.mu. The file is
// rewritten append-only: on first write the magic header is added.
func (t *Tokens) appendEntry(kind TokenKind, id uint32, name string) error {
	f, err := t.fs.OpenFile(t.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: append token: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: append token: %w", err)
	}
	var buf []byte
	if st.Size() == 0 {
		buf = append(buf, tokenMagic[:]...)
	}
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("store: append token: %w", err)
	}
	return f.Sync()
}
