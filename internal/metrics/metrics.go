// Package metrics is a dependency-free metrics registry: atomic
// counters, gauges and histograms with a Prometheus-text-format
// exposition endpoint. It is the production surface's observability
// layer — the engine, WAL batcher, page cache, replication endpoints,
// server and client pool all register here, and one scrape of /metrics
// shows commit rates, fsync latency, cache hit ratios, replica lag and
// admission-control pressure in a form any Prometheus-compatible
// collector ingests directly.
//
// Design constraints, in order:
//
//   - Hot-path writes are single atomic operations (Counter.Inc,
//     Gauge.Add, Histogram.Observe). No locks, no allocation.
//   - Scrapes take registry locks but never block writers; a scrape
//     concurrent with writes sees a slightly torn but always
//     well-formed snapshot (cumulative histogram buckets are computed
//     from one pass over the counts, so they are monotone by
//     construction).
//   - Sampled metrics (CounterFunc/GaugeFunc) pull from component
//     stats snapshots at scrape time, so components keep their own
//     counters and pay nothing new.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations.
// Observations and scrapes are lock-free; the exposition renders
// Prometheus-style cumulative buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	// sumBits carries the observation sum as float64 bits, updated with
	// a CAS loop (atomic float add).
	sumBits atomic.Uint64
	// ex holds the most recent traced observation (see ObserveExemplar);
	// a single slot is enough to hand operators a concrete trace ID to
	// look up for any latency population they see on the scrape.
	ex atomic.Pointer[exemplar]
}

// exemplar pairs one observation with the trace that produced it.
type exemplar struct {
	v       float64
	traceID string
}

// NewHistogram creates a standalone histogram with the given bucket
// upper bounds (sorted and de-duplicated; NaN/±Inf bounds are dropped —
// the +Inf bucket is implicit). Standalone histograms are embedded in
// components (e.g. the WAL batcher's fsync latency) and attached to a
// registry later with Registry.AttachHistogram.
func NewHistogram(bounds []float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	uniq := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{
		bounds: uniq,
		counts: make([]atomic.Uint64, len(uniq)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one observation and, when traceID is non-empty,
// remembers it as the histogram's exemplar. The exposition appends it to
// the covering bucket line in OpenMetrics exemplar syntax
// (`... # {trace_id="..."} <v>`), linking the latency series to a
// concrete trace retrievable from /debug/traces.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&exemplar{v: v, traceID: traceID})
	}
}

// Exemplar returns the most recent traced observation, if any.
func (h *Histogram) Exemplar() (v float64, traceID string, ok bool) {
	e := h.ex.Load()
	if e == nil {
		return 0, "", false
	}
	return e.v, e.traceID, true
}

// Snapshot returns per-bucket (non-cumulative) counts — one entry per
// bound plus the +Inf overflow bucket — and the observation sum.
func (h *Histogram) Snapshot() (counts []uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, math.Float64frombits(h.sumBits.Load())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LatencyBuckets spans 100µs to ~26s in powers of two — the default for
// request/fsync latency histograms measured in seconds.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 18) }

// SizeBuckets spans 1 to ~32k in powers of four — for op-count-per-batch
// style distributions.
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 8) }

// metric kinds (Prometheus TYPE strings).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labelled metric within a family.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	// exactly one of the following is set:
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	counterFunc func() float64
	gaugeFunc   func() float64
}

// family is all series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format. All methods are safe for concurrent use.
// Registration methods panic on misuse (invalid name, re-registration
// with a different type or help) — these are programming errors, caught
// at startup, exactly as the Prometheus client library treats them.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// renderLabels renders a sorted, escaped {k="v",...} block ("" when
// empty). extra is appended unsorted (the histogram le label).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal in HELP).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// register returns the series for (name, labels), creating family and
// series as needed. mk builds a new series when absent; an existing
// series of the same family type is returned as-is (idempotent).
func (r *Registry) register(name, help, typ string, labels []Label, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) || strings.HasPrefix(l.Name, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Name, name))
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if s := f.byLabels[key]; s != nil {
		return s
	}
	s := mk()
	s.labels = key
	f.series = append(f.series, s)
	f.byLabels[key] = s
	return s
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, typeCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %q%s is not a plain counter", name, s.labels))
	}
	return s.counter
}

// CounterFunc registers a counter sampled from fn at scrape time. fn
// must be monotonically non-decreasing (it typically reads a component's
// own atomic counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeCounter, labels, func() *series {
		return &series{counterFunc: fn}
	})
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, typeGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %q%s is not a plain gauge", name, s.labels))
	}
	return s.gauge
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, labels, func() *series {
		return &series{gaugeFunc: fn}
	})
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, typeHistogram, labels, func() *series {
		return &series{histogram: NewHistogram(bounds)}
	})
	if s.histogram == nil {
		panic(fmt.Sprintf("metrics: %q%s is not a histogram", name, s.labels))
	}
	return s.histogram
}

// AttachHistogram registers an existing standalone histogram under name —
// the path for component-owned histograms (e.g. WAL fsync latency) that
// record regardless of whether a registry scrapes them.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, typeHistogram, labels, func() *series {
		return &series{histogram: h}
	})
}

// formatFloat renders a sample value: integral floats without exponent
// noise, +Inf/-Inf/NaN in Prometheus spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range ss {
			writeSeries(&b, f, s)
		}
		if _, err := w.Write([]byte(b.String())); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
	case s.counterFunc != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(s.counterFunc()))
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	case s.gaugeFunc != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFunc()))
	case s.histogram != nil:
		h := s.histogram
		counts, sum := h.Snapshot()
		// Cumulative bucket counts are sums over one snapshot pass, so
		// they are monotone non-decreasing and _count == the +Inf bucket
		// even while observations race the scrape.
		var cum uint64
		ev, etid, eok := h.Exemplar()
		// The exemplar annotates the lowest bucket whose bound covers it.
		exAt := len(h.bounds)
		if eok {
			exAt = sort.SearchFloat64s(h.bounds, ev)
		}
		exSuffix := func(i int) string {
			if !eok || i != exAt {
				return ""
			}
			return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabelValue(etid), formatFloat(ev))
		}
		for i, bound := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name, withLE(s.labels, formatFloat(bound)), cum, exSuffix(i))
		}
		cum += counts[len(h.bounds)]
		fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name, withLE(s.labels, "+Inf"), cum, exSuffix(len(h.bounds)))
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.labels, cum)
	}
}

// withLE splices the le label into a pre-rendered label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
