package metrics

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neograph_test_ops_total", "ops executed", L("op", "get"))
	c.Add(41)
	c.Inc()
	g := r.Gauge("neograph_test_inflight", "in-flight requests")
	g.Set(7)
	g.Add(-2)
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP neograph_test_ops_total ops executed\n",
		"# TYPE neograph_test_ops_total counter\n",
		`neograph_test_ops_total{op="get"} 42` + "\n",
		"# TYPE neograph_test_inflight gauge\n",
		"neograph_test_inflight 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var v float64 = 3
	r.CounterFunc("sampled_total", "sampled", func() float64 { return v })
	r.GaugeFunc("sampled_gauge", "sampled", func() float64 { return v / 2 })
	out := scrape(t, r)
	if !strings.Contains(out, "sampled_total 3\n") || !strings.Contains(out, "sampled_gauge 1.5\n") {
		t.Fatalf("func metrics not rendered:\n%s", out)
	}
}

func TestLabelEscapingAndSorting(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", `a "help" with \slashes`+"\nand newline",
		L("zeta", "z"), L("alpha", `quote " slash \ newline`+"\n"))
	out := scrape(t, r)
	wantHelp := `# HELP esc_total a "help" with \\slashes\nand newline` + "\n"
	if !strings.Contains(out, wantHelp) {
		t.Errorf("help not escaped, want %q in:\n%s", wantHelp, out)
	}
	// Labels render sorted by name, values escaped.
	wantSeries := `esc_total{alpha="quote \" slash \\ newline\n",zeta="z"} 0` + "\n"
	if !strings.Contains(out, wantSeries) {
		t.Errorf("labels not sorted/escaped, want %q in:\n%s", wantSeries, out)
	}
}

func TestHistogramCumulativeInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	obs := []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 5, 50}
	var sum float64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}
	out := scrape(t, r)
	assertHistogramInvariants(t, out, "lat_seconds", "")
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001"} 2`, // 0.0005 and the bound-equal 0.001 (le is inclusive)
		`lat_seconds_bucket{le="0.01"} 3`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="1"} 5`,
		`lat_seconds_bucket{le="+Inf"} 7`,
		fmt.Sprintf("lat_seconds_sum %s", strconv.FormatFloat(sum, 'g', -1, 64)),
		"lat_seconds_count 7",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count() = %d, want 7", h.Count())
	}
}

// assertHistogramInvariants parses one histogram family out of a scrape
// and checks the exposition-format invariants: bucket counts cumulative
// and monotone non-decreasing, terminated by +Inf, and _count equal to
// the +Inf bucket.
func assertHistogramInvariants(t *testing.T, scrape, name, labelPrefix string) {
	t.Helper()
	var last uint64
	var inf, count uint64
	var sawInf, sawCount bool
	sc := bufio.NewScanner(strings.NewReader(scrape))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, name+"_bucket{"+labelPrefix):
			parts := strings.Fields(line)
			n, err := strconv.ParseUint(parts[len(parts)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if n < last {
				t.Errorf("bucket counts not cumulative: %q after %d", line, last)
			}
			last = n
			if strings.Contains(line, `le="+Inf"`) {
				inf, sawInf = n, true
			}
		case strings.HasPrefix(line, name+"_count"):
			parts := strings.Fields(line)
			n, _ := strconv.ParseUint(parts[len(parts)-1], 10, 64)
			count, sawCount = n, true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("histogram %s missing +Inf bucket or _count in:\n%s", name, scrape)
	}
	if inf != count {
		t.Errorf("+Inf bucket %d != _count %d", inf, count)
	}
}

func TestHistogramStandaloneAttach(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 4)) // 1 2 4 8
	h.ObserveDuration(3 * time.Second)
	r := NewRegistry()
	r.AttachHistogram("fsync_seconds", "fsync latency", h)
	out := scrape(t, r)
	if !strings.Contains(out, `fsync_seconds_bucket{le="4"} 1`+"\n") {
		t.Fatalf("attached histogram not rendered:\n%s", out)
	}
}

func TestRegistrationIdempotentAndTypeChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("dup_total", "dup")
	c2 := r.Counter("dup_total", "dup")
	if c1 != c2 {
		t.Error("same-name same-labels counter registration not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "dup")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestConcurrentScrapeWhileWriting hammers every metric kind from many
// goroutines while scraping continuously; under -race this proves the
// hot paths and the encoder share no unsynchronised state, and every
// scrape must still satisfy the histogram invariants.
func TestConcurrentScrapeWhileWriting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("cc_gauge", "")
	h := r.Histogram("cc_seconds", "", LatencyBuckets(), L("op", "mixed"))
	r.GaugeFunc("cc_sampled", "", func() float64 { return float64(c.Value()) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(math.Mod(v, 2.0))
				v += 0.37
			}
		}(i)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		out := scrape(t, r)
		assertHistogramInvariants(t, out, "cc_seconds", `op="mixed",`)
	}
	close(stop)
	wg.Wait()
	if c.Value() == 0 || h.Count() == 0 {
		t.Error("writers made no progress")
	}
}
