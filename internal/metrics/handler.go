package metrics

import "net/http"

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures to a gone client;
		// nothing useful to do with them.
		_ = r.WriteText(w)
	})
}
