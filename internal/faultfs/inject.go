package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Mode selects what happens when an armed fault's crash point fires.
type Mode uint8

// Fault modes.
const (
	// ModeCrash models a process kill at the point: the triggering
	// operation fails with ErrCrashed having done nothing, and so does
	// every later operation on the injector.
	ModeCrash Mode = iota
	// ModeTornWrite models a kill mid-write: a prefix of the triggering
	// write (Fault.TornBytes) reaches the file before the crash.
	ModeTornWrite
	// ModeShortRead truncates the triggering read once; the injector
	// stays alive (a corrupt-tail / partial-page model, not a kill).
	ModeShortRead
	// ModeSyncFail fails the triggering fsync once with ErrSyncFailed;
	// the injector stays alive (the kernel-writeback-error model that
	// must poison the WAL).
	ModeSyncFail
)

// Errors injected by faults.
var (
	// ErrCrashed is returned by every operation at and after an injected
	// crash.
	ErrCrashed = errors.New("faultfs: injected crash")
	// ErrSyncFailed is the one-shot fsync failure of ModeSyncFail.
	ErrSyncFailed = errors.New("faultfs: injected fsync failure")
)

// Fault is one scripted fault: fire Mode at the Hit'th time crash point
// Point is reached.
type Fault struct {
	// Point is "<label>.<op>", e.g. "wal.write" or "wal.sync".
	Point string
	// Hit is the 1-based occurrence of Point that triggers the fault.
	Hit int
	// Mode selects the failure behaviour at the point.
	Mode Mode
	// TornBytes is how many bytes of the triggering write survive under
	// ModeTornWrite (clamped to the write size); -1 means half the write.
	// Under ModeShortRead it is the byte length the read is cut to.
	TornBytes int
}

// Injector wraps an FS, counts every operation as a "<label>.<op>" crash
// point, and fires at most one armed Fault. It is safe for concurrent
// use; with a single-threaded write workload the write/sync hit counts
// are deterministic, which is what the crash-matrix tests rely on.
type Injector struct {
	inner FS
	label func(path string) string

	mu      sync.Mutex
	hits    map[string]int
	fault   *Fault
	crashed bool
	fired   bool
}

// NewInjector wraps inner with fault injection. label classifies paths
// into crash-point labels; nil means DefaultLabel.
func NewInjector(inner FS, label func(path string) string) *Injector {
	if label == nil {
		label = DefaultLabel
	}
	return &Injector{inner: inner, label: label, hits: make(map[string]int)}
}

// Arm schedules f to fire; it replaces any previous fault and clears the
// crashed state and hit counts (one Injector can drive repeated runs).
func (i *Injector) Arm(f Fault) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.fault = &f
	i.crashed = false
	i.fired = false
	i.hits = make(map[string]int)
}

// Counts snapshots the per-point hit counts recorded so far — the crash
// point registry a matrix test enumerates.
func (i *Injector) Counts() map[string]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.hits))
	for k, v := range i.hits {
		out[k] = v
	}
	return out
}

// Crashed reports whether an injected crash has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Fired reports whether the armed fault has triggered (any mode).
func (i *Injector) Fired() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// at records one hit of point and decides the fault action. The returned
// fault is non-nil exactly when the armed fault fires here; err is
// non-nil when the operation must fail outright (crashed state, or a
// ModeCrash firing).
func (i *Injector) at(point string) (*Fault, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return nil, ErrCrashed
	}
	i.hits[point]++
	f := i.fault
	if f == nil || i.fired || f.Point != point || i.hits[point] != f.Hit {
		return nil, nil
	}
	i.fired = true
	switch f.Mode {
	case ModeCrash:
		i.crashed = true
		return f, ErrCrashed
	case ModeTornWrite:
		i.crashed = true // the write helper persists the prefix first
		return f, nil
	default:
		return f, nil
	}
}

func (i *Injector) pt(path, op string) string { return i.label(path) + "." + op }

// ---- FS methods ----

// OpenFile counts "<label>.open" and opens through the inner FS.
func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := i.at(i.pt(name, "open")); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, label: i.label(name), inner: f}, nil
}

// Open counts "<label>.open" and opens read-only.
func (i *Injector) Open(name string) (File, error) {
	if _, err := i.at(i.pt(name, "open")); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, label: i.label(name), inner: f}, nil
}

// ReadFile counts "<label>.read"; ModeShortRead truncates the result.
func (i *Injector) ReadFile(name string) ([]byte, error) {
	f, err := i.at(i.pt(name, "read"))
	if err != nil {
		return nil, err
	}
	data, rerr := i.inner.ReadFile(name)
	if rerr != nil {
		return data, rerr
	}
	if f != nil && f.Mode == ModeShortRead {
		return data[:shortLen(f.TornBytes, len(data))], nil
	}
	return data, nil
}

// ReadDir counts "<label>.readdir".
func (i *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := i.at(i.pt(name, "readdir")); err != nil {
		return nil, err
	}
	return i.inner.ReadDir(name)
}

// Remove counts "<label>.remove".
func (i *Injector) Remove(name string) error {
	if _, err := i.at(i.pt(name, "remove")); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

// Rename counts "<label>.rename" (keyed by the destination path).
func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.at(i.pt(newpath, "rename")); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

// MkdirAll counts "<label>.mkdir".
func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.at(i.pt(path, "mkdir")); err != nil {
		return err
	}
	return i.inner.MkdirAll(path, perm)
}

// Stat is not a crash point (it neither reads data nor mutates), but a
// crashed injector still fails it.
func (i *Injector) Stat(name string) (os.FileInfo, error) {
	i.mu.Lock()
	crashed := i.crashed
	i.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return i.inner.Stat(name)
}

// ---- file wrapper ----

// injFile routes one file's operations through the injector.
type injFile struct {
	inj   *Injector
	label string
	inner File
}

// write is the shared Write/WriteAt fault logic: under ModeTornWrite the
// surviving prefix is written through before the crash error returns.
func (f *injFile) write(buf []byte, do func([]byte) (int, error)) (int, error) {
	ft, err := f.inj.at(f.label + ".write")
	if err != nil {
		return 0, err
	}
	if ft != nil && ft.Mode == ModeTornWrite {
		n := 0
		if keep := shortLen(ft.TornBytes, len(buf)); keep > 0 {
			n, _ = do(buf[:keep])
		}
		return n, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrCrashed, n, len(buf))
	}
	return do(buf)
}

func (f *injFile) Write(p []byte) (int, error) {
	return f.write(p, f.inner.Write)
}

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	return f.write(p, func(b []byte) (int, error) { return f.inner.WriteAt(b, off) })
}

func (f *injFile) Read(p []byte) (int, error) {
	ft, err := f.inj.at(f.label + ".read")
	if err != nil {
		return 0, err
	}
	if ft != nil && ft.Mode == ModeShortRead {
		n, rerr := f.inner.Read(p[:shortLen(ft.TornBytes, len(p))])
		if rerr == nil {
			rerr = io.ErrUnexpectedEOF
		}
		return n, rerr
	}
	return f.inner.Read(p)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	ft, err := f.inj.at(f.label + ".read")
	if err != nil {
		return 0, err
	}
	if ft != nil && ft.Mode == ModeShortRead {
		n, rerr := f.inner.ReadAt(p[:shortLen(ft.TornBytes, len(p))], off)
		if rerr == nil {
			rerr = io.ErrUnexpectedEOF
		}
		return n, rerr
	}
	return f.inner.ReadAt(p, off)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	if f.inj.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Seek(offset, whence)
}

func (f *injFile) Sync() error {
	ft, err := f.inj.at(f.label + ".sync")
	if err != nil {
		return err
	}
	if ft != nil && ft.Mode == ModeSyncFail {
		return ErrSyncFailed
	}
	return f.inner.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if _, err := f.inj.at(f.label + ".truncate"); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Close always closes the inner file (a crashed "process" still releases
// its descriptors) and never counts as a crash point.
func (f *injFile) Close() error { return f.inner.Close() }

func (f *injFile) Stat() (os.FileInfo, error) {
	if f.inj.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.Stat()
}

func (f *injFile) Name() string { return f.inner.Name() }

// shortLen resolves a Fault.TornBytes against the operation size: -1
// keeps half, anything else is clamped to [0, n].
func shortLen(torn, n int) int {
	if torn < 0 {
		return n / 2
	}
	if torn > n {
		return n
	}
	return torn
}
