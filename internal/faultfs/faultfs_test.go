package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func mustWrite(t *testing.T, f File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func openSeg(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return f
}

func TestDefaultLabel(t *testing.T) {
	cases := map[string]string{
		"/x/wal/wal-00000000000000000000.log": "wal",
		"/x/wal":                              "wal",
		"/x/neostore.nodes.db":                "store",
		"/x/epoch":                            "epoch",
		"/x/epoch.tmp":                        "epoch",
		"/x/other.bin":                        "fs",
	}
	for path, want := range cases {
		if got := DefaultLabel(path); got != want {
			t.Errorf("DefaultLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestInjectorCountsAndRecording(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	seg := filepath.Join(dir, "wal-00000000000000000000.log")
	f := openSeg(t, inj, seg)
	mustWrite(t, f, []byte("one"))
	mustWrite(t, f, []byte("two"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.ReadFile(seg); err != nil {
		t.Fatal(err)
	}
	counts := inj.Counts()
	want := map[string]int{"wal.open": 1, "wal.write": 2, "wal.sync": 1, "wal.read": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("counts[%q] = %d, want %d (all: %v)", k, counts[k], v, counts)
		}
	}
	if inj.Fired() || inj.Crashed() {
		t.Fatal("recording pass must not fire or crash")
	}
}

func TestInjectorCrashAtWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.write", Hit: 2, Mode: ModeCrash})
	seg := filepath.Join(dir, "wal-00000000000000000000.log")
	f := openSeg(t, inj, seg)
	mustWrite(t, f, []byte("survives"))
	if _, err := f.Write([]byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write err = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed after ModeCrash fired")
	}
	// Every later operation fails too — the process is dead.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v", err)
	}
	if _, err := inj.OpenFile(seg, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v", err)
	}
	if _, err := inj.ReadFile(seg); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read err = %v", err)
	}
	f.Close()
	// Only the pre-crash bytes reached the file.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "survives" {
		t.Fatalf("file holds %q, want %q", data, "survives")
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.write", Hit: 2, Mode: ModeTornWrite, TornBytes: 3})
	seg := filepath.Join(dir, "wal-00000000000000000000.log")
	f := openSeg(t, inj, seg)
	mustWrite(t, f, []byte("head"))
	n, err := f.Write([]byte("torntail"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err = %v, want ErrCrashed", err)
	}
	if n != 3 {
		t.Fatalf("torn write persisted %d bytes, want 3", n)
	}
	f.Close()
	data, _ := os.ReadFile(seg)
	if string(data) != "headtor" {
		t.Fatalf("file holds %q, want %q", data, "headtor")
	}
	if !inj.Crashed() {
		t.Fatal("torn write must leave the injector crashed")
	}
}

func TestInjectorTornWriteHalf(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.write", Hit: 1, Mode: ModeTornWrite, TornBytes: -1})
	f := openSeg(t, inj, filepath.Join(dir, "wal-00000000000000000000.log"))
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrCrashed) || n != 4 {
		t.Fatalf("half torn write = (%d, %v), want (4, ErrCrashed)", n, err)
	}
	f.Close()
}

func TestInjectorShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000000000000000000.log")
	if err := os.WriteFile(path, []byte("full contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.read", Hit: 1, Mode: ModeShortRead, TornBytes: 4})
	data, err := inj.ReadFile(path)
	if err != nil || string(data) != "full" {
		t.Fatalf("short read = (%q, %v), want (\"full\", nil)", data, err)
	}
	if inj.Crashed() {
		t.Fatal("short read must not crash the injector")
	}
	// One-shot: the next read is whole.
	data, err = inj.ReadFile(path)
	if err != nil || string(data) != "full contents" {
		t.Fatalf("second read = (%q, %v)", data, err)
	}
	// ReadAt variant reports the truncation.
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inj.Arm(Fault{Point: "wal.read", Hit: 1, Mode: ModeShortRead, TornBytes: 2})
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if n != 2 || (err != io.ErrUnexpectedEOF && err != io.EOF) {
		t.Fatalf("short ReadAt = (%d, %v), want 2 bytes + unexpected EOF", n, err)
	}
}

func TestInjectorSyncFail(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.sync", Hit: 1, Mode: ModeSyncFail})
	f := openSeg(t, inj, filepath.Join(dir, "wal-00000000000000000000.log"))
	defer f.Close()
	mustWrite(t, f, []byte("x"))
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync err = %v, want ErrSyncFailed", err)
	}
	if inj.Crashed() {
		t.Fatal("ModeSyncFail must not crash the injector")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync err = %v, want nil", err)
	}
}

func TestInjectorCrashAtSync(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.sync", Hit: 2, Mode: ModeCrash})
	f := openSeg(t, inj, filepath.Join(dir, "wal-00000000000000000000.log"))
	defer f.Close()
	mustWrite(t, f, []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, []byte("y"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second sync err = %v, want ErrCrashed", err)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
}

func TestArmResetsState(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, nil)
	inj.Arm(Fault{Point: "wal.write", Hit: 1, Mode: ModeCrash})
	f := openSeg(t, inj, filepath.Join(dir, "wal-00000000000000000000.log"))
	if _, err := f.Write([]byte("a")); !errors.Is(err, ErrCrashed) {
		t.Fatal("fault did not fire")
	}
	f.Close()
	// Re-arming clears the crash so the injector can drive the next run.
	inj.Arm(Fault{Point: "wal.write", Hit: 99, Mode: ModeCrash})
	if inj.Crashed() {
		t.Fatal("Arm must clear crashed state")
	}
	f2 := openSeg(t, inj, filepath.Join(dir, "wal-00000000000000000001.log"))
	defer f2.Close()
	mustWrite(t, f2, []byte("b"))
	if got := inj.Counts()["wal.write"]; got != 1 {
		t.Fatalf("Arm must reset counts, got %d", got)
	}
}
