// Package faultfs is the deterministic fault-injection seam under the
// WAL and store file I/O. Production code talks to an FS value (default
// OS, a passthrough to the os package); crash tests substitute an
// Injector that counts every file operation as a named crash point and,
// when armed, fires one scripted fault — a full crash (the process-kill
// model: the triggering operation and every later one fail), a torn
// write (a prefix of the triggering write reaches the file, then crash),
// a short read, or a one-shot fsync failure.
//
// Crash points are names of the form "<label>.<op>", e.g. "wal.write" or
// "store.sync". The label classifies the file (DefaultLabel knows this
// repository's file names); the op is the operation kind. Hit counts per
// point are recorded on every run, so a test can first do a recording
// pass over a workload, read Counts(), and then re-run the workload once
// per (point, hit) pair — the crash matrix — with the certainty that
// every registered point has been killed at least once.
package faultfs

import (
	"io"
	"os"
	"path/filepath"
	"strings"
)

// File is the slice of *os.File the WAL, page cache and token registry
// need. *os.File implements it.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the file-system seam. OS passes through to the os package; an
// Injector wraps another FS and injects scripted faults.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the passthrough FS used outside fault tests.
type OS struct{}

// OpenFile opens name with os.OpenFile semantics.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open opens name read-only.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// ReadFile reads the whole file.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists a directory.
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Remove deletes a file.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename renames a file.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// MkdirAll creates a directory tree.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Stat stats a file.
func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// OrOS returns fs, or the OS passthrough when fs is nil — the idiom for
// optional FS fields in Options structs.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}

// DefaultLabel classifies this repository's file names into crash-point
// labels: WAL segments are "wal", store record/token files are "store",
// the epoch file is "epoch", anything else "fs".
func DefaultLabel(path string) string {
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "wal-") && strings.HasSuffix(base, ".log"):
		return "wal"
	case base == "wal": // the WAL directory itself (mkdir, readdir)
		return "wal"
	case strings.HasPrefix(base, "neostore."):
		return "store"
	case strings.HasPrefix(base, "epoch"):
		return "epoch"
	default:
		return "fs"
	}
}
