package workload

import (
	"testing"

	"neograph"
)

func TestBuildSocial(t *testing.T) {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildSocial(db, SocialConfig{People: 200, AvgFriends: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.People) != 200 {
		t.Fatalf("people = %d", len(g.People))
	}
	if len(g.Rels) == 0 {
		t.Fatal("no relationships generated")
	}
	db.View(func(tx *neograph.Tx) error {
		people, err := tx.NodesByLabel(LabelPerson)
		if err != nil {
			t.Fatal(err)
		}
		if len(people) != 200 {
			t.Fatalf("indexed people = %d", len(people))
		}
		// Spot-check a node's shape.
		n, err := tx.GetNode(g.People[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := n.Props["balance"].AsInt(); !ok {
			t.Fatalf("missing balance: %v", n.Props)
		}
		return nil
	})
}

func TestBuildSocialDeterministic(t *testing.T) {
	count := func() int {
		db, _ := neograph.Open(neograph.Options{})
		g, err := BuildSocial(db, SocialConfig{People: 100, AvgFriends: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return len(g.Rels)
	}
	if a, b := count(), count(); a != b {
		t.Fatalf("non-deterministic generation: %d vs %d rels", a, b)
	}
}

func TestBuildSocialValidation(t *testing.T) {
	db, _ := neograph.Open(neograph.Options{})
	if _, err := BuildSocial(db, SocialConfig{People: 0}); err == nil {
		t.Fatal("People=0 accepted")
	}
}

func TestPickerUniform(t *testing.T) {
	p := NewPicker(10, 0, 1)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		idx := p.Pick()
		if idx < 0 || idx >= 10 {
			t.Fatalf("out of range: %d", idx)
		}
		seen[idx]++
	}
	for i := 0; i < 10; i++ {
		if seen[i] < 500 { // expect ~1000 each
			t.Fatalf("uniform picker skewed: %v", seen)
		}
	}
}

func TestPickerZipfSkew(t *testing.T) {
	p := NewPicker(1000, 0.9, 1)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		seen[p.Pick()]++
	}
	// The hottest key should take a disproportionate share.
	if seen[0] < 1000 {
		t.Fatalf("zipf head count = %d, want heavy skew", seen[0])
	}
}
