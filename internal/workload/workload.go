// Package workload builds synthetic graphs and operation streams for the
// benchmark harness. The paper has no public workload; these generators
// are the substitution documented in DESIGN.md: a social-style graph
// (preferential attachment, the shape Neo4j deployments are measured on)
// with Zipf-skewed access so lock/version contention is controllable.
package workload

import (
	"fmt"
	"math/rand"

	"neograph"
)

// SocialConfig sizes the generated graph.
type SocialConfig struct {
	// People is the number of Person nodes.
	People int
	// AvgFriends is the mean outgoing KNOWS degree (preferential
	// attachment, so the in-degree distribution is heavy-tailed).
	AvgFriends int
	// Seed makes generation deterministic.
	Seed int64
	// BatchSize is nodes/rels per committing transaction (default 256).
	BatchSize int
}

// Labels and relationship types used by the generator.
const (
	LabelPerson = "Person"
	RelKnows    = "KNOWS"
)

// SocialGraph is the generated graph's handle: node IDs indexed densely.
type SocialGraph struct {
	People []neograph.NodeID
	Rels   []neograph.RelID
}

// BuildSocial populates db with a social graph per cfg.
func BuildSocial(db *neograph.DB, cfg SocialConfig) (*SocialGraph, error) {
	if cfg.People <= 0 {
		return nil, fmt.Errorf("workload: People must be positive")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &SocialGraph{People: make([]neograph.NodeID, 0, cfg.People)}

	// Nodes in committing batches.
	for start := 0; start < cfg.People; start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > cfg.People {
			end = cfg.People
		}
		err := db.Update(0, func(tx *neograph.Tx) error {
			for i := start; i < end; i++ {
				id, err := tx.CreateNode([]string{LabelPerson}, neograph.Props{
					"uid":     neograph.Int(int64(i)),
					"name":    neograph.String(fmt.Sprintf("person-%d", i)),
					"balance": neograph.Int(1000),
				})
				if err != nil {
					return err
				}
				g.People = append(g.People, id)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Preferential attachment: each new person links to AvgFriends
	// targets chosen proportionally to current degree (approximated by
	// sampling an endpoint of a random existing edge, falling back to
	// uniform).
	type edge struct{ a, b int }
	var edges []edge
	addBatch := make([]edge, 0, cfg.BatchSize)
	flush := func() error {
		if len(addBatch) == 0 {
			return nil
		}
		batch := addBatch
		addBatch = addBatch[:0]
		return db.Update(0, func(tx *neograph.Tx) error {
			for _, e := range batch {
				id, err := tx.CreateRel(RelKnows, g.People[e.a], g.People[e.b], neograph.Props{
					"weight": neograph.Float(r.Float64()),
				})
				if err != nil {
					return err
				}
				g.Rels = append(g.Rels, id)
			}
			return nil
		})
	}
	for i := 1; i < cfg.People; i++ {
		k := cfg.AvgFriends
		if k <= 0 {
			k = 1
		}
		for f := 0; f < k; f++ {
			var target int
			if len(edges) > 0 && r.Intn(2) == 0 {
				e := edges[r.Intn(len(edges))]
				target = e.b
				if r.Intn(2) == 0 {
					target = e.a
				}
			} else {
				target = r.Intn(i)
			}
			if target == i {
				continue
			}
			edges = append(edges, edge{i, target})
			addBatch = append(addBatch, edge{i, target})
			if len(addBatch) >= cfg.BatchSize {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return g, nil
}

// Picker selects node indices with configurable skew. Theta 0 is uniform;
// larger theta concentrates load on few hot nodes (Zipf).
type Picker struct {
	n    int
	zipf *rand.Zipf
	r    *rand.Rand
}

// NewPicker builds a picker over [0, n) with Zipf parameter theta.
// theta <= 0 yields the uniform distribution; otherwise the Zipf s
// parameter is 1+theta (math/rand requires s > 1).
func NewPicker(n int, theta float64, seed int64) *Picker {
	p := &Picker{n: n, r: rand.New(rand.NewSource(seed))}
	if theta > 0 {
		p.zipf = rand.NewZipf(p.r, 1+theta, 1, uint64(n-1))
	}
	return p
}

// Pick returns the next index.
func (p *Picker) Pick() int {
	if p.zipf == nil {
		return p.r.Intn(p.n)
	}
	return int(p.zipf.Uint64())
}

// Rand exposes the picker's random source for auxiliary choices.
func (p *Picker) Rand() *rand.Rand { return p.r }
