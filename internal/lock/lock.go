// Package lock implements the lock manager. Neo4j's native read committed
// uses short read locks and long write locks; the paper's snapshot
// isolation removes the read locks entirely and repurposes the long write
// locks to detect write-write conflicts with a first-updater-wins policy
// (§4).
//
// Two acquisition styles are provided:
//
//   - TryAcquire: no-wait, returning ErrConflict when incompatible — this
//     is first-updater-wins: the second concurrent updater aborts at once;
//   - Acquire: blocking, with wait-for-graph deadlock detection — this is
//     the read-committed baseline's behaviour, where writers queue and a
//     cycle aborts the requester with ErrDeadlock.
//
// Keys name entities (node or relationship by ID). Shared mode models
// Neo4j's short read locks; Exclusive mode the long write locks.
package lock

import (
	"errors"
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// EntityKind distinguishes lock namespaces.
type EntityKind uint8

// Lock namespaces.
const (
	KindNode EntityKind = iota
	KindRel
)

// Key identifies a lockable entity.
type Key struct {
	Kind EntityKind
	ID   uint64
}

func (k Key) String() string {
	if k.Kind == KindNode {
		return fmt.Sprintf("node(%d)", k.ID)
	}
	return fmt.Sprintf("rel(%d)", k.ID)
}

// Errors returned by acquisition.
var (
	ErrConflict = errors.New("lock: write-write conflict (first-updater-wins)")
	ErrDeadlock = errors.New("lock: deadlock detected")
)

// entry is the lock state of one key.
type entry struct {
	holders map[uint64]Mode // txn id -> strongest held mode
	cond    *sync.Cond
	waiting int
}

// Manager is the lock table. It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	entries map[Key]*entry
	held    map[uint64]map[Key]struct{} // txn -> keys held (for ReleaseAll)
	waits   map[uint64]Key              // txn -> key it is blocked on (for deadlock detection)
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		entries: make(map[Key]*entry),
		held:    make(map[uint64]map[Key]struct{}),
		waits:   make(map[uint64]Key),
	}
}

// compatibleLocked reports whether txn may take k in mode given current
// holders. Caller holds m.mu.
func (e *entry) compatibleLocked(txn uint64, mode Mode) bool {
	for holder, hmode := range e.holders {
		if holder == txn {
			continue // re-entry / upgrade handled by caller
		}
		if mode == Exclusive || hmode == Exclusive {
			return false
		}
	}
	return true
}

// TryAcquire takes k for txn without waiting. It returns ErrConflict when
// another transaction holds an incompatible lock — the first-updater-wins
// write rule. Re-entrant: holding a lock in the same or stronger mode
// succeeds; a Shared holder with no competitors upgrades to Exclusive.
func (m *Manager) TryAcquire(txn uint64, k Key, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryLocked(k)
	if held, ok := e.holders[txn]; ok && (held == Exclusive || held == mode) {
		return nil
	}
	if !e.compatibleLocked(txn, mode) {
		m.cleanupLocked(k, e)
		return fmt.Errorf("%w: %s", ErrConflict, k)
	}
	m.grantLocked(txn, k, e, mode)
	return nil
}

// Acquire takes k for txn, blocking until compatible. If waiting would
// close a cycle in the wait-for graph, the requester aborts with
// ErrDeadlock (it never enters the wait).
func (m *Manager) Acquire(txn uint64, k Key, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entryLocked(k)
	if held, ok := e.holders[txn]; ok && (held == Exclusive || held == mode) {
		return nil
	}
	for !e.compatibleLocked(txn, mode) {
		if m.wouldDeadlockLocked(txn, e) {
			m.cleanupLocked(k, e)
			return fmt.Errorf("%w: %d waiting for %s", ErrDeadlock, txn, k)
		}
		m.waits[txn] = k
		e.waiting++
		e.cond.Wait()
		e.waiting--
		delete(m.waits, txn)
	}
	m.grantLocked(txn, k, e, mode)
	return nil
}

// wouldDeadlockLocked runs a DFS over the wait-for graph: would txn
// waiting on e's holders reach back to txn? Caller holds m.mu.
func (m *Manager) wouldDeadlockLocked(txn uint64, e *entry) bool {
	visited := make(map[uint64]bool)
	var reaches func(from uint64) bool
	reaches = func(from uint64) bool {
		if from == txn {
			return true
		}
		if visited[from] {
			return false
		}
		visited[from] = true
		blockedOn, waiting := m.waits[from]
		if !waiting {
			return false
		}
		blockedEntry, ok := m.entries[blockedOn]
		if !ok {
			return false
		}
		for holder := range blockedEntry.holders {
			if holder != from && reaches(holder) {
				return true
			}
		}
		return false
	}
	for holder := range e.holders {
		if holder != txn && reaches(holder) {
			return true
		}
	}
	return false
}

// grantLocked records the grant. Caller holds m.mu and has verified
// compatibility.
func (m *Manager) grantLocked(txn uint64, k Key, e *entry, mode Mode) {
	if cur, ok := e.holders[txn]; !ok || mode > cur {
		e.holders[txn] = mode
	}
	keys := m.held[txn]
	if keys == nil {
		keys = make(map[Key]struct{})
		m.held[txn] = keys
	}
	keys[k] = struct{}{}
}

// Release drops txn's lock on k (any mode) and wakes waiters.
func (m *Manager) Release(txn uint64, k Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok {
		return
	}
	if _, held := e.holders[txn]; !held {
		return
	}
	delete(e.holders, txn)
	if keys := m.held[txn]; keys != nil {
		delete(keys, k)
		if len(keys) == 0 {
			delete(m.held, txn)
		}
	}
	e.cond.Broadcast()
	m.cleanupLocked(k, e)
}

// ReleaseAll drops every lock txn holds — called at commit and abort
// (long locks are held to transaction end).
func (m *Manager) ReleaseAll(txn uint64) {
	m.mu.Lock()
	keys := make([]Key, 0, len(m.held[txn]))
	for k := range m.held[txn] {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	for _, k := range keys {
		m.Release(txn, k)
	}
}

// HoldsExclusive reports whether txn holds k exclusively. The transaction
// manager uses this to assert the write rule before installing versions.
func (m *Manager) HoldsExclusive(txn uint64, k Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	return ok && e.holders[txn] == Exclusive
}

// entryLocked returns (creating if needed) the entry for k. Caller holds m.mu.
func (m *Manager) entryLocked(k Key) *entry {
	e, ok := m.entries[k]
	if !ok {
		e = &entry{holders: make(map[uint64]Mode)}
		e.cond = sync.NewCond(&m.mu)
		m.entries[k] = e
	}
	return e
}

// cleanupLocked drops an entry with no holders and no waiters, keeping the
// table's size proportional to live locks. Caller holds m.mu.
func (m *Manager) cleanupLocked(k Key, e *entry) {
	if len(e.holders) == 0 && e.waiting == 0 {
		delete(m.entries, k)
	}
}

// Stats reports table occupancy, for tests and the F1 report.
func (m *Manager) Stats() (entries, heldTxns int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries), len(m.held)
}
