package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var nodeA = Key{KindNode, 1}
var nodeB = Key{KindNode, 2}
var relA = Key{KindRel, 1}

func TestTryAcquireConflict(t *testing.T) {
	m := NewManager()
	if err := m.TryAcquire(1, nodeA, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Second updater loses: first-updater-wins.
	if err := m.TryAcquire(2, nodeA, Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	m.Release(1, nodeA)
	if err := m.TryAcquire(2, nodeA, Exclusive); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestNamespacesIndependent(t *testing.T) {
	m := NewManager()
	if err := m.TryAcquire(1, nodeA, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, relA, Exclusive); err != nil {
		t.Fatalf("rel lock must not conflict with node lock: %v", err)
	}
}

func TestSharedCompatible(t *testing.T) {
	m := NewManager()
	for txn := uint64(1); txn <= 5; txn++ {
		if err := m.TryAcquire(txn, nodeA, Shared); err != nil {
			t.Fatalf("txn %d: %v", txn, err)
		}
	}
	if err := m.TryAcquire(9, nodeA, Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatal("exclusive must conflict with shared holders")
	}
	if err := m.TryAcquire(1, nodeB, Shared); err != nil {
		t.Fatal(err)
	}
}

func TestReentrancyAndUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.TryAcquire(1, nodeA, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(1, nodeA, Exclusive); err != nil {
		t.Fatalf("re-entrant exclusive: %v", err)
	}
	if err := m.TryAcquire(1, nodeA, Shared); err != nil {
		t.Fatalf("shared under own exclusive: %v", err)
	}
	// Sole shared holder upgrades.
	m2 := NewManager()
	if err := m2.TryAcquire(1, nodeA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m2.TryAcquire(1, nodeA, Exclusive); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if !m2.HoldsExclusive(1, nodeA) {
		t.Fatal("upgrade did not stick")
	}
	// Upgrade with a competitor fails.
	m3 := NewManager()
	m3.TryAcquire(1, nodeA, Shared)
	m3.TryAcquire(2, nodeA, Shared)
	if err := m3.TryAcquire(1, nodeA, Exclusive); !errors.Is(err, ErrConflict) {
		t.Fatalf("contended upgrade = %v, want ErrConflict", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager()
	m.TryAcquire(1, nodeA, Exclusive)
	m.TryAcquire(1, nodeB, Exclusive)
	m.TryAcquire(1, relA, Shared)
	m.ReleaseAll(1)
	for _, k := range []Key{nodeA, nodeB, relA} {
		if err := m.TryAcquire(2, k, Exclusive); err != nil {
			t.Fatalf("%s still held: %v", k, err)
		}
	}
	entries, held := m.Stats()
	if held != 1 { // txn 2 only
		t.Fatalf("held txns = %d", held)
	}
	if entries != 3 {
		t.Fatalf("entries = %d", entries)
	}
}

func TestTableCleanup(t *testing.T) {
	m := NewManager()
	m.TryAcquire(1, nodeA, Exclusive)
	m.Release(1, nodeA)
	entries, held := m.Stats()
	if entries != 0 || held != 0 {
		t.Fatalf("stats after release = %d entries, %d held", entries, held)
	}
	// Releasing something never held is a no-op.
	m.Release(7, nodeB)
	m.ReleaseAll(7)
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, nodeA, Exclusive); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Acquire(2, nodeA, Exclusive)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("waiter acquired while lock held")
	}
	m.Release(1, nodeA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !m.HoldsExclusive(2, nodeA) {
		t.Fatal("waiter did not get the lock")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, nodeA, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, nodeB, Exclusive); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- m.Acquire(1, nodeB, Exclusive) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)
	// 2 requesting A closes the cycle: must get ErrDeadlock immediately.
	err := m.Acquire(2, nodeA, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim aborts: release its locks, waiter proceeds.
	m.ReleaseAll(2)
	if err := <-done1; err != nil {
		t.Fatalf("survivor: %v", err)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	k := func(i uint64) Key { return Key{KindNode, i} }
	for i := uint64(1); i <= 3; i++ {
		if err := m.Acquire(i, k(i), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := uint64(1); i <= 2; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			errs[i] = m.Acquire(i, k(i%3+1), Exclusive) // 1->2, 2->3
			// Survivors release everything once granted so the other
			// blocked waiter can finish (otherwise 1 waits on 2 forever).
			if errs[i] == nil {
				m.ReleaseAll(i)
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond)
	// 3 requesting 1 closes a 3-cycle; with 1 and 2 already waiting, 3 is
	// deterministically the victim.
	err := m.Acquire(3, k(1), Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	wg.Wait()
	if errs[1] != nil || errs[2] != nil {
		t.Fatalf("survivors failed: %v, %v", errs[1], errs[2])
	}
}

func TestSharedWaitersWakeTogether(t *testing.T) {
	m := NewManager()
	m.Acquire(1, nodeA, Exclusive)
	var wg sync.WaitGroup
	var granted atomic.Int32
	for i := uint64(2); i <= 5; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			if err := m.Acquire(i, nodeA, Shared); err == nil {
				granted.Add(1)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	m.Release(1, nodeA)
	wg.Wait()
	if granted.Load() != 4 {
		t.Fatalf("granted = %d, want 4", granted.Load())
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const txns = 16
	var wg sync.WaitGroup
	var conflicts atomic.Int64
	for txn := uint64(1); txn <= txns; txn++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := Key{KindNode, uint64(i % 7)}
				if err := m.TryAcquire(txn, k, Exclusive); err != nil {
					conflicts.Add(1)
					continue
				}
				m.Release(txn, k)
			}
		}(txn)
	}
	wg.Wait()
	entries, held := m.Stats()
	if entries != 0 || held != 0 {
		t.Fatalf("leaked locks: %d entries, %d held", entries, held)
	}
	if conflicts.Load() == 0 {
		t.Log("no conflicts observed (unlikely but not wrong)")
	}
}
