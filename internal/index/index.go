// Package index implements the multi-versioned label and property indexes
// of the paper (§4). Neo4j keeps two node indexes (labels → nodes,
// property → nodes) and one relationship index (property →
// relationships); labels and properties are never deleted, so the paper
// versions them instead:
//
//   - each index *key* (label or property) records the commit timestamp of
//     the transaction that created it, letting a reader discard the whole
//     key when it was created after the reader's snapshot;
//   - each index *entry* (the membership of one entity under a key) is
//     tagged with the commit timestamp that added it and, when the entity
//     is removed from the key, the commit timestamp that removed it. A
//     reader at start timestamp S sees an entry iff added ≤ S < removed.
//
// Only committed changes reach the index; a transaction's own uncommitted
// writes are merged over index lookups by the engine's enriched iterators
// (read-your-own-writes, §4).
package index

import (
	"sort"
	"sync"

	"neograph/internal/mvcc"
	"neograph/internal/value"
)

// neverRemoved marks a live entry.
const neverRemoved = ^mvcc.TS(0)

// entryRec is one versioned membership: entity id was associated with the
// key at Added and dissociated at Removed (neverRemoved while live).
type entryRec struct {
	ID      uint64
	Added   mvcc.TS
	Removed mvcc.TS
}

// posting is the versioned entry list of one index key.
type posting struct {
	mu      sync.RWMutex
	created mvcc.TS // commit TS of the transaction that created this key
	entries []entryRec
}

// add appends a new live entry.
func (p *posting) add(id uint64, ts mvcc.TS) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = append(p.entries, entryRec{ID: id, Added: ts, Removed: neverRemoved})
}

// remove marks the live entry for id as removed at ts. Missing entries are
// ignored (idempotent with respect to replay).
func (p *posting) remove(id uint64, ts mvcc.TS) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.entries {
		if p.entries[i].ID == id && p.entries[i].Removed == neverRemoved {
			p.entries[i].Removed = ts
			return
		}
	}
}

// lookup returns the IDs visible at startTS, sorted ascending.
func (p *posting) lookup(startTS mvcc.TS) []uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.created > startTS {
		// Key itself is newer than the snapshot: discard wholesale (§4).
		return nil
	}
	var out []uint64
	for _, e := range p.entries {
		if e.Added <= startTS && startTS < e.Removed {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// prune drops entries whose removal is at or below the horizon — no
// active or future transaction can see them. Returns entries dropped.
func (p *posting) prune(horizon mvcc.TS) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.entries[:0]
	dropped := 0
	for _, e := range p.entries {
		if e.Removed <= horizon {
			dropped++
			continue
		}
		kept = append(kept, e)
	}
	p.entries = kept
	return dropped
}

func (p *posting) size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.entries)
}

// LabelIndex maps label tokens to versioned node sets.
type LabelIndex struct {
	mu       sync.RWMutex
	postings map[uint32]*posting
}

// NewLabelIndex returns an empty label index.
func NewLabelIndex() *LabelIndex {
	return &LabelIndex{postings: make(map[uint32]*posting)}
}

// postingFor returns (creating at ts if absent) the posting for label.
func (ix *LabelIndex) postingFor(label uint32, ts mvcc.TS) *posting {
	ix.mu.RLock()
	p, ok := ix.postings[label]
	ix.mu.RUnlock()
	if ok {
		return p
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if p, ok = ix.postings[label]; ok {
		return p
	}
	p = &posting{created: ts}
	ix.postings[label] = p
	return p
}

// Add records that node id gained the label at commit timestamp ts.
func (ix *LabelIndex) Add(label uint32, id uint64, ts mvcc.TS) {
	ix.postingFor(label, ts).add(id, ts)
}

// Remove records that node id lost the label at commit timestamp ts.
func (ix *LabelIndex) Remove(label uint32, id uint64, ts mvcc.TS) {
	ix.mu.RLock()
	p, ok := ix.postings[label]
	ix.mu.RUnlock()
	if ok {
		p.remove(id, ts)
	}
}

// Lookup returns the node IDs carrying label in the snapshot at startTS.
func (ix *LabelIndex) Lookup(label uint32, startTS mvcc.TS) []uint64 {
	ix.mu.RLock()
	p, ok := ix.postings[label]
	ix.mu.RUnlock()
	if !ok {
		return nil
	}
	return p.lookup(startTS)
}

// Prune drops dead entries below the horizon, returning entries dropped.
func (ix *LabelIndex) Prune(horizon mvcc.TS) int {
	ix.mu.RLock()
	ps := make([]*posting, 0, len(ix.postings))
	for _, p := range ix.postings {
		ps = append(ps, p)
	}
	ix.mu.RUnlock()
	dropped := 0
	for _, p := range ps {
		dropped += p.prune(horizon)
	}
	return dropped
}

// EntryCount returns the total number of versioned entries (live + dead),
// used by GC accounting and tests.
func (ix *LabelIndex) EntryCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, p := range ix.postings {
		n += p.size()
	}
	return n
}

// propKey identifies one (property key, value) index key. The value is
// captured by its deterministic binary encoding.
type propKey struct {
	key uint32
	val string
}

// PropertyIndex maps (property key token, value) pairs to versioned entity
// sets. It serves both the node property index and the relationship
// property index — the engine instantiates one of each.
type PropertyIndex struct {
	mu       sync.RWMutex
	postings map[propKey]*posting
	keyBorn  map[uint32]mvcc.TS // first commit TS each property key appeared
}

// NewPropertyIndex returns an empty property index.
func NewPropertyIndex() *PropertyIndex {
	return &PropertyIndex{
		postings: make(map[propKey]*posting),
		keyBorn:  make(map[uint32]mvcc.TS),
	}
}

func encodeKey(key uint32, val value.Value) propKey {
	return propKey{key: key, val: string(value.EncodeValue(val))}
}

func (ix *PropertyIndex) postingFor(k propKey, ts mvcc.TS) *posting {
	ix.mu.RLock()
	p, ok := ix.postings[k]
	ix.mu.RUnlock()
	if ok {
		return p
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if p, ok = ix.postings[k]; ok {
		return p
	}
	if _, born := ix.keyBorn[k.key]; !born {
		ix.keyBorn[k.key] = ts
	}
	p = &posting{created: ts}
	ix.postings[k] = p
	return p
}

// Add records that entity id gained property key=val at commit TS ts.
func (ix *PropertyIndex) Add(key uint32, val value.Value, id uint64, ts mvcc.TS) {
	ix.postingFor(encodeKey(key, val), ts).add(id, ts)
}

// Remove records that entity id lost property key=val at commit TS ts.
func (ix *PropertyIndex) Remove(key uint32, val value.Value, id uint64, ts mvcc.TS) {
	k := encodeKey(key, val)
	ix.mu.RLock()
	p, ok := ix.postings[k]
	ix.mu.RUnlock()
	if ok {
		p.remove(id, ts)
	}
}

// Lookup returns the entity IDs whose property key equals val in the
// snapshot at startTS.
func (ix *PropertyIndex) Lookup(key uint32, val value.Value, startTS mvcc.TS) []uint64 {
	// Fast path: the property key itself post-dates the snapshot (§4).
	ix.mu.RLock()
	born, known := ix.keyBorn[key]
	ix.mu.RUnlock()
	if known && born > startTS {
		return nil
	}
	k := encodeKey(key, val)
	ix.mu.RLock()
	p, ok := ix.postings[k]
	ix.mu.RUnlock()
	if !ok {
		return nil
	}
	return p.lookup(startTS)
}

// Prune drops dead entries below the horizon, returning entries dropped.
func (ix *PropertyIndex) Prune(horizon mvcc.TS) int {
	ix.mu.RLock()
	ps := make([]*posting, 0, len(ix.postings))
	for _, p := range ix.postings {
		ps = append(ps, p)
	}
	ix.mu.RUnlock()
	dropped := 0
	for _, p := range ps {
		dropped += p.prune(horizon)
	}
	return dropped
}

// EntryCount returns the total number of versioned entries (live + dead).
func (ix *PropertyIndex) EntryCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, p := range ix.postings {
		n += p.size()
	}
	return n
}
