package index

import (
	"reflect"
	"sync"
	"testing"

	"neograph/internal/value"
)

func TestLabelLookupSnapshot(t *testing.T) {
	ix := NewLabelIndex()
	ix.Add(1, 100, 10)
	ix.Add(1, 200, 20)
	ix.Add(1, 300, 30)

	cases := []struct {
		ts   uint64
		want []uint64
	}{
		{5, nil},
		{10, []uint64{100}},
		{25, []uint64{100, 200}},
		{30, []uint64{100, 200, 300}},
	}
	for _, c := range cases {
		if got := ix.Lookup(1, c.ts); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Lookup(ts=%d) = %v, want %v", c.ts, got, c.want)
		}
	}
}

func TestLabelKeyCreatedAfterSnapshotDiscarded(t *testing.T) {
	ix := NewLabelIndex()
	ix.Add(7, 100, 50) // label first appears at TS 50
	if got := ix.Lookup(7, 40); got != nil {
		t.Fatalf("reader at 40 must discard label created at 50, got %v", got)
	}
	if got := ix.Lookup(7, 50); len(got) != 1 {
		t.Fatalf("reader at 50 must see it: %v", got)
	}
	if got := ix.Lookup(99, 100); got != nil {
		t.Fatalf("unknown label: %v", got)
	}
}

func TestLabelRemoveVersioned(t *testing.T) {
	ix := NewLabelIndex()
	ix.Add(1, 100, 10)
	ix.Remove(1, 100, 20)
	if got := ix.Lookup(1, 15); !reflect.DeepEqual(got, []uint64{100}) {
		t.Fatalf("reader at 15 must still see entry: %v", got)
	}
	if got := ix.Lookup(1, 20); got != nil {
		t.Fatalf("reader at 20 must not see removed entry: %v", got)
	}
	// Re-add after removal: two versioned entries, one visible.
	ix.Add(1, 100, 30)
	if got := ix.Lookup(1, 35); !reflect.DeepEqual(got, []uint64{100}) {
		t.Fatalf("re-added entry: %v", got)
	}
	if got := ix.Lookup(1, 25); got != nil {
		t.Fatalf("gap snapshot: %v", got)
	}
	// Removing an id never added is a no-op.
	ix.Remove(1, 999, 40)
	ix.Remove(42, 999, 40)
}

func TestLabelPrune(t *testing.T) {
	ix := NewLabelIndex()
	ix.Add(1, 100, 10)
	ix.Remove(1, 100, 20)
	ix.Add(1, 200, 12)
	if n := ix.EntryCount(); n != 2 {
		t.Fatalf("entries = %d", n)
	}
	if n := ix.Prune(15); n != 0 {
		t.Fatalf("prune below removal dropped %d", n)
	}
	if n := ix.Prune(20); n != 1 {
		t.Fatalf("prune dropped %d, want 1", n)
	}
	if n := ix.EntryCount(); n != 1 {
		t.Fatalf("entries after prune = %d", n)
	}
	// Live entry survives and is still visible.
	if got := ix.Lookup(1, 100); !reflect.DeepEqual(got, []uint64{200}) {
		t.Fatalf("after prune: %v", got)
	}
}

func TestPropertyLookup(t *testing.T) {
	ix := NewPropertyIndex()
	name := value.String("ada")
	ix.Add(3, name, 100, 10)
	ix.Add(3, value.String("bob"), 200, 10)
	ix.Add(4, name, 300, 10) // different key, same value

	if got := ix.Lookup(3, name, 10); !reflect.DeepEqual(got, []uint64{100}) {
		t.Fatalf("Lookup = %v", got)
	}
	if got := ix.Lookup(3, value.String("carol"), 10); got != nil {
		t.Fatalf("absent value: %v", got)
	}
	if got := ix.Lookup(9, name, 10); got != nil {
		t.Fatalf("absent key: %v", got)
	}
}

func TestPropertyValueKindStrict(t *testing.T) {
	ix := NewPropertyIndex()
	ix.Add(1, value.Int(42), 100, 5)
	// Float 42 is a different value from Int 42.
	if got := ix.Lookup(1, value.Float(42), 10); got != nil {
		t.Fatalf("kind-mismatched lookup: %v", got)
	}
	if got := ix.Lookup(1, value.Int(42), 10); len(got) != 1 {
		t.Fatalf("exact lookup: %v", got)
	}
}

func TestPropertyKeyBornFilter(t *testing.T) {
	ix := NewPropertyIndex()
	ix.Add(5, value.Int(1), 100, 30)
	if got := ix.Lookup(5, value.Int(1), 20); got != nil {
		t.Fatalf("key born at 30 visible at 20: %v", got)
	}
}

func TestPropertyRemoveAndPrune(t *testing.T) {
	ix := NewPropertyIndex()
	v := value.Int(7)
	ix.Add(1, v, 100, 10)
	ix.Remove(1, v, 100, 20)
	if got := ix.Lookup(1, v, 25); got != nil {
		t.Fatalf("removed entry visible: %v", got)
	}
	if n := ix.Prune(20); n != 1 {
		t.Fatalf("pruned %d", n)
	}
	if n := ix.EntryCount(); n != 0 {
		t.Fatalf("entries = %d", n)
	}
}

func TestPropertyUpdateIsRemoveAdd(t *testing.T) {
	// An update of a property from v1 to v2 at TS t is modelled by the
	// engine as Remove(key, v1, t) + Add(key, v2, t).
	ix := NewPropertyIndex()
	v1, v2 := value.String("old"), value.String("new")
	ix.Add(1, v1, 100, 10)
	ix.Remove(1, v1, 100, 20)
	ix.Add(1, v2, 100, 20)

	if got := ix.Lookup(1, v1, 15); !reflect.DeepEqual(got, []uint64{100}) {
		t.Fatalf("old snapshot: %v", got)
	}
	if got := ix.Lookup(1, v1, 20); got != nil {
		t.Fatalf("old value after update: %v", got)
	}
	if got := ix.Lookup(1, v2, 20); !reflect.DeepEqual(got, []uint64{100}) {
		t.Fatalf("new value: %v", got)
	}
}

func TestLookupSorted(t *testing.T) {
	ix := NewLabelIndex()
	for _, id := range []uint64{50, 10, 30, 20, 40} {
		ix.Add(1, id, 5)
	}
	got := ix.Lookup(1, 10)
	want := []uint64{10, 20, 30, 40, 50}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestConcurrentIndexAccess(t *testing.T) {
	ix := NewLabelIndex()
	pix := NewPropertyIndex()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts := uint64(g*200 + i + 1)
				id := uint64(i % 37)
				ix.Add(uint32(g%3), id, ts)
				pix.Add(uint32(g%3), value.Int(int64(i%5)), id, ts)
				_ = ix.Lookup(uint32(g%3), ts)
				_ = pix.Lookup(uint32(g%3), value.Int(int64(i%5)), ts)
				if i%10 == 0 {
					ix.Prune(ts / 2)
					pix.Prune(ts / 2)
				}
			}
		}(g)
	}
	wg.Wait()
}
