package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/server"
)

// E12Config parameterises the remote-client experiment: the cost of
// chatty per-op RPC versus pipelined batch submission (the paper's
// round-trips-kill-graph-workloads argument measured on our own wire),
// plus pooled replica reads through the topology-aware client.
type E12Config struct {
	// Nodes is the graph size loaded before measuring.
	Nodes int
	// Clients is the number of concurrent client sessions per mode.
	// E12 measures per-session pipelining, so the default is 1: with
	// many concurrent single-op writers, cross-client group commit
	// already amortises fsyncs and the baseline flatters itself (that
	// scaling axis belongs to E2d/E9).
	Clients int
	// Depth is the batch size (ops per round trip) in batched mode.
	Depth int
	// Replicas is the replica count for the pooled-read mode.
	Replicas int
	// Duration is the measurement window per mode.
	Duration time.Duration
	Seed     int64
}

// E12Row is one mode's measurement.
type E12Row struct {
	// Mode is "single-reads"/"batched-reads" (a pure GetNode stream, one
	// op vs Depth ops per round trip), "single-mixed"/"batched-mixed"
	// (the write-leaning ingest stream) or "pooled-replica-reads"
	// (single reads through a client.Pool over the replica fleet).
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	Depth   int     `json:"depth"`
	Ops     uint64  `json:"ops"`
	OpsPS   float64 `json:"ops_per_sec"`
	// Speedup is OpsPS relative to the single-op baseline row.
	Speedup float64 `json:"speedup"`
}

// RunE12 measures remote throughput in three shapes: one op per TCP
// round trip (the old client), Depth ops per round trip via the batch
// op (one request frame, one response frame, one server-side
// transaction), and pooled single reads routed over live replicas —
// each for a read-only and a write-leaning op stream. Everything runs
// over real loopback TCP and the real server.
func RunE12(w io.Writer, cfg E12Config) ([]E12Row, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2_000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 8
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	ctx := context.Background()

	pdir, err := os.MkdirTemp("", "neograph-e12-primary-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	primary, err := neograph.Open(neograph.Options{Dir: pdir, ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	psrv, err := server.New(primary, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer psrv.Close()

	// Load the graph through the SDK itself, one batch per round trip —
	// the loader is also the batch path's smoke test.
	loader, err := client.Dial(ctx, psrv.Addr())
	if err != nil {
		return nil, err
	}
	defer loader.Close()
	nodes := make([]neograph.NodeID, 0, cfg.Nodes)
	for len(nodes) < cfg.Nodes {
		n := minInt(512, cfg.Nodes-len(nodes))
		b := &client.Batch{}
		for i := 0; i < n; i++ {
			b.CreateNode([]string{"E12"}, neograph.Props{"v": neograph.Int(0)})
		}
		res, err := loader.RunBatch(ctx, b)
		if err != nil {
			return nil, fmt.Errorf("e12 load: %w", err)
		}
		for i := 0; i < n; i++ {
			id, err := res.ID(i)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, id)
		}
	}

	var rows []E12Row

	// Two op streams, identical across shapes:
	//   reads — every op a GetNode: batching amortises only the round
	//           trip, so its gain is bounded by RTT/op-cost (loopback is
	//           the most batch-hostile network there is);
	//   mixed — 7 property writes per read-back (a bulk-ingest shape):
	//           single-op mode pays one round trip AND one auto-committed
	//           transaction (group-commit fsync) per write, batched mode
	//           executes the whole Depth-op unit as ONE transaction with
	//           one commit — the shape the paper's whole-operation-
	//           submission argument is about.
	mixWrite := func(i int) bool { return i%8 != 7 } // 7 writes : 1 read
	retriable := func(err error) bool {
		return errors.Is(err, neograph.ErrWriteConflict) || errors.Is(err, neograph.ErrDeadlock)
	}
	singleWorker := func(write func(int) bool) func(<-chan struct{}, int) (uint64, error) {
		return func(stop <-chan struct{}, cl int) (uint64, error) {
			c, err := client.Dial(ctx, psrv.Addr())
			if err != nil {
				return 0, err
			}
			defer c.Close()
			r := rand.New(rand.NewSource(cfg.Seed + int64(cl)*7919))
			var ops uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return ops, nil
				default:
				}
				if write(i) {
					err = c.SetNodeProp(ctx, nodes[r.Intn(len(nodes))], "v", neograph.Int(r.Int63()))
				} else {
					_, err = c.GetNode(ctx, nodes[r.Intn(len(nodes))])
				}
				switch {
				case err == nil:
					ops++
				case retriable(err): // concurrent writers collided; retry
				default:
					return ops, err
				}
			}
		}
	}
	batchWorker := func(write func(int) bool) func(<-chan struct{}, int) (uint64, error) {
		return func(stop <-chan struct{}, cl int) (uint64, error) {
			c, err := client.Dial(ctx, psrv.Addr())
			if err != nil {
				return 0, err
			}
			defer c.Close()
			r := rand.New(rand.NewSource(cfg.Seed + int64(cl)*104729))
			var ops uint64
			for {
				select {
				case <-stop:
					return ops, nil
				default:
				}
				b := &client.Batch{}
				for i := 0; i < cfg.Depth; i++ {
					if write(i) {
						b.SetNodeProp(nodes[r.Intn(len(nodes))], "v", neograph.Int(r.Int63()))
					} else {
						b.GetNode(nodes[r.Intn(len(nodes))])
					}
				}
				switch _, err := c.RunBatch(ctx, b); {
				case err == nil:
					ops += uint64(cfg.Depth)
				case retriable(err): // the whole batch aborted on a collision; retry
				default:
					return ops, err
				}
			}
		}
	}

	reads := func(int) bool { return false }
	singleReads, err := e12Measure(cfg, "single-reads", 1, singleWorker(reads))
	if err != nil {
		return rows, err
	}
	singleReads.Speedup = 1
	rows = append(rows, singleReads)
	batchedReads, err := e12Measure(cfg, "batched-reads", cfg.Depth, batchWorker(reads))
	if err != nil {
		return rows, err
	}
	if singleReads.OpsPS > 0 {
		batchedReads.Speedup = batchedReads.OpsPS / singleReads.OpsPS
	}
	rows = append(rows, batchedReads)

	singleMixed, err := e12Measure(cfg, "single-mixed", 1, singleWorker(mixWrite))
	if err != nil {
		return rows, err
	}
	singleMixed.Speedup = 1
	rows = append(rows, singleMixed)
	batchedMixed, err := e12Measure(cfg, "batched-mixed", cfg.Depth, batchWorker(mixWrite))
	if err != nil {
		return rows, err
	}
	if singleMixed.OpsPS > 0 {
		batchedMixed.Speedup = batchedMixed.OpsPS / singleMixed.OpsPS
	}
	rows = append(rows, batchedMixed)

	// Mode 3: pooled single reads over live replicas. Replicas cold-start
	// from the primary's WAL and serve at their applied position; the
	// pool routes by least lag. (One process cannot add CPU by adding
	// replicas, so this row demonstrates routing on real replication
	// streams, not machine-level scaling — E9 models capacity.)
	var replicaAddrs []string
	for i := 0; i < cfg.Replicas; i++ {
		rdir, err := os.MkdirTemp("", "neograph-e12-replica-*")
		if err != nil {
			return rows, err
		}
		defer os.RemoveAll(rdir)
		rdb, err := neograph.Open(neograph.Options{Dir: rdir, ReplicaOf: primary.ReplicationAddress()})
		if err != nil {
			return rows, err
		}
		defer rdb.Close()
		if err := rdb.WaitApplied(primary.DurableLSN(), 60*time.Second); err != nil {
			return rows, fmt.Errorf("e12 replica %d catch-up: %w", i, err)
		}
		rsrv, err := server.New(rdb, "127.0.0.1:0")
		if err != nil {
			return rows, err
		}
		defer rsrv.Close()
		replicaAddrs = append(replicaAddrs, rsrv.Addr())
	}
	pool, err := client.OpenPool(ctx, client.PoolConfig{
		Primary:      psrv.Addr(),
		Replicas:     replicaAddrs,
		Policy:       client.LeastLag,
		ConnsPerHost: cfg.Clients,
	})
	if err != nil {
		return rows, err
	}
	defer pool.Close()
	pooled, err := e12Measure(cfg, "pooled-replica-reads", 1, func(stop <-chan struct{}, cl int) (uint64, error) {
		r := rand.New(rand.NewSource(cfg.Seed + int64(cl)*31337))
		var ops uint64
		for {
			select {
			case <-stop:
				return ops, nil
			default:
			}
			err := pool.Read(ctx, "", func(c *client.Client) error {
				_, err := c.GetNode(ctx, nodes[r.Intn(len(nodes))])
				return err
			})
			if err != nil {
				return ops, err
			}
			ops++
		}
	})
	if err != nil {
		return rows, err
	}
	if singleReads.OpsPS > 0 {
		pooled.Speedup = pooled.OpsPS / singleReads.OpsPS
	}
	rows = append(rows, pooled)

	if w != nil {
		section(w, "E12", "remote ops/s: single-op RPC vs pipelined batches vs pooled replica reads")
		t := &Table{Headers: []string{"mode", "clients", "depth", "ops", "ops/s", "speedup"}}
		for _, r := range rows {
			t.Add(r.Mode, r.Clients, r.Depth, r.Ops, r.OpsPS, r.Speedup)
		}
		t.Print(w)
		fmt.Fprintf(w, "expected shape: batched-mixed >= 3x single-mixed at depth %d (one round trip and ONE\n", cfg.Depth)
		fmt.Fprintln(w, "transaction per batch vs one of each per write); batched-reads gain is bounded by")
		fmt.Fprintln(w, "RTT/op-cost on loopback; pooled reads route to replicas over live WAL-shipping")
		fmt.Fprintln(w, "streams (routing demo, not CPU scaling — E9 models capacity)")
	}
	return rows, nil
}

// e12Measure runs Clients copies of worker for the window and aggregates
// their op counts.
func e12Measure(cfg E12Config, mode string, depth int, worker func(stop <-chan struct{}, cl int) (uint64, error)) (E12Row, error) {
	row := E12Row{Mode: mode, Clients: cfg.Clients, Depth: depth}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var total atomic.Uint64
	errc := make(chan error, cfg.Clients)
	start := time.Now()
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			ops, err := worker(stop, cl)
			total.Add(ops)
			if err != nil {
				errc <- err
			}
		}(cl)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return row, fmt.Errorf("e12 %s: %w", mode, err)
	default:
	}
	row.Ops = total.Load()
	row.OpsPS = float64(row.Ops) / elapsed.Seconds()
	return row, nil
}
