package bench

import (
	"fmt"
	"io"

	"neograph"
)

// E5Config parameterises the long-running-reader experiment.
type E5Config struct {
	HotNodes       int // nodes being updated
	UpdatesPerStep int // committed updates between samples
	Steps          int // samples while the reader is alive
	Seed           int64
}

// E5Row is one sample of version accumulation.
type E5Row struct {
	Phase    string
	Step     int
	Versions int
	Bytes    int
	Backlog  int
}

// RunE5 shows the cost model of §3's horizon rule: while an old
// transaction is active, superseded versions cannot be collected and
// memory grows linearly with update volume; the moment the reader
// finishes, one GC run reclaims the whole backlog.
func RunE5(w io.Writer, cfg E5Config) ([]E5Row, error) {
	if cfg.HotNodes <= 0 {
		cfg.HotNodes = 100
	}
	if cfg.UpdatesPerStep <= 0 {
		cfg.UpdatesPerStep = 1000
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 5
	}
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	nodes := make([]neograph.NodeID, cfg.HotNodes)
	err = db.Update(0, func(tx *neograph.Tx) error {
		for i := range nodes {
			nodes[i], err = tx.CreateNode(nil, neograph.Props{"v": neograph.Int(0)})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []E5Row
	sample := func(phase string, step int) {
		versions, _ := db.VersionCount()
		rows = append(rows, E5Row{
			Phase: phase, Step: step,
			Versions: versions, Bytes: db.VersionBytes(), Backlog: db.GCBacklog(),
		})
	}

	longReader := db.Begin() // pins the horizon
	if _, err := longReader.GetNode(nodes[0]); err != nil {
		return nil, err
	}
	sample("reader-active", 0)
	for step := 1; step <= cfg.Steps; step++ {
		for u := 0; u < cfg.UpdatesPerStep; u++ {
			id := nodes[u%len(nodes)]
			if err := db.Update(0, func(tx *neograph.Tx) error {
				return tx.SetNodeProp(id, "v", neograph.Int(int64(u)))
			}); err != nil {
				return nil, err
			}
		}
		db.RunGC() // must reclaim ~nothing: the reader pins the horizon
		sample("reader-active", step)
	}
	// Reader finishes: one GC run drains the backlog.
	longReader.Abort()
	db.RunGC()
	sample("reader-done", cfg.Steps+1)

	if w != nil {
		section(w, "E5", "version accumulation under a long-running transaction (paper §3)")
		t := &Table{Headers: []string{"phase", "step", "cached versions", "version bytes", "gc backlog"}}
		for _, r := range rows {
			t.Add(r.Phase, r.Step, r.Versions, r.Bytes, r.Backlog)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: versions/bytes grow ~linearly per step while the reader lives,")
		fmt.Fprintln(w, "then collapse to the live set after it finishes")
	}
	return rows, nil
}
