package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/internal/workload"
)

// E1Config parameterises the anomaly experiment.
type E1Config struct {
	People   int           // graph size
	Writers  int           // mutating clients
	Checkers int           // anomaly-detecting clients per isolation level
	Duration time.Duration // measurement window
	Seed     int64
}

// E1Result counts observed anomalies per isolation level.
type E1Result struct {
	Isolation         string
	CheckTxns         uint64
	UnrepeatableReads uint64
	PhantomReads      uint64
}

// RunE1 reproduces the paper's §1 claim: read committed exhibits
// unrepeatable reads and phantoms; snapshot isolation exhibits neither.
//
// Writers continuously flip a property on random Person nodes and toggle
// membership of the "Flagged" label. Checkers run transactions that (a)
// read one node's property twice and (b) evaluate the predicate "nodes
// labelled Flagged" twice, counting any difference as an anomaly.
func RunE1(w io.Writer, cfg E1Config) ([2]E1Result, error) {
	if cfg.People <= 0 {
		cfg.People = 500
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	if cfg.Checkers <= 0 {
		cfg.Checkers = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		return [2]E1Result{}, err
	}
	defer db.Close()
	g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 2, Seed: cfg.Seed})
	if err != nil {
		return [2]E1Result{}, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers.
	for i := 0; i < cfg.Writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := g.People[r.Intn(len(g.People))]
				_ = db.Update(0, func(tx *neograph.Tx) error {
					if err := tx.SetNodeProp(id, "balance", neograph.Int(r.Int63n(10000))); err != nil {
						return err
					}
					if r.Intn(2) == 0 {
						return tx.AddLabel(id, "Flagged")
					}
					return tx.RemoveLabel(id, "Flagged")
				})
			}
		}(i)
	}

	check := func(level string, begin func() *neograph.Tx, res *E1Result) {
		defer wg.Done()
		r := rand.New(rand.NewSource(cfg.Seed ^ 0x5ee))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := begin()
			id := g.People[r.Intn(len(g.People))]
			n1, err1 := tx.GetNode(id)
			set1, errP1 := tx.NodesByLabel("Flagged")
			// Give writers a window to commit between the two reads.
			time.Sleep(time.Millisecond)
			n2, err2 := tx.GetNode(id)
			set2, errP2 := tx.NodesByLabel("Flagged")
			tx.Abort()
			if err1 != nil || err2 != nil || errP1 != nil || errP2 != nil {
				continue
			}
			atomic.AddUint64(&res.CheckTxns, 1)
			v1, _ := n1.Props["balance"].AsInt()
			v2, _ := n2.Props["balance"].AsInt()
			if v1 != v2 {
				atomic.AddUint64(&res.UnrepeatableReads, 1)
			}
			if !sameIDSet(set1, set2) {
				atomic.AddUint64(&res.PhantomReads, 1)
			}
		}
	}

	results := [2]E1Result{{Isolation: "snapshot-isolation"}, {Isolation: "read-committed"}}
	for i := 0; i < cfg.Checkers; i++ {
		wg.Add(2)
		go check("si", func() *neograph.Tx { return db.BeginIsolation(neograph.SnapshotIsolation) }, &results[0])
		go check("rc", func() *neograph.Tx { return db.BeginIsolation(neograph.ReadCommitted) }, &results[1])
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()

	if w != nil {
		section(w, "E1", "anomalies under RC vs SI (paper §1)")
		t := &Table{Headers: []string{"isolation", "check txns", "unrepeatable reads", "phantom reads"}}
		for _, r := range results {
			t.Add(r.Isolation, r.CheckTxns, r.UnrepeatableReads, r.PhantomReads)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: SI rows are zero; RC rows are non-zero under write load")
	}
	return results, nil
}

func sameIDSet(a, b []neograph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
