package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"neograph"
)

// E10Config parameterises the synchronous-replication latency experiment.
type E10Config struct {
	// Commits is the number of sequential committed transactions timed
	// per quorum level.
	Commits int
	// Replicas is how many replicas are attached in every configuration
	// (held constant so only the ack gating varies between rows). Must be
	// >= the largest quorum swept.
	Replicas int
	// SyncLevels are the SyncReplicas settings swept; 0 is the async
	// baseline.
	SyncLevels []int
	Seed       int64
}

// E10Row is one quorum level's measurements.
type E10Row struct {
	SyncReplicas int `json:"sync_replicas"`
	Replicas     int `json:"replicas"`
	Commits      int `json:"commits"`
	// Commit latency distribution: what one synchronous writer pays per
	// acknowledged commit at this quorum level.
	P50  time.Duration `json:"p50"`
	P95  time.Duration `json:"p95"`
	Max  time.Duration `json:"max"`
	Mean time.Duration `json:"mean"`
	// CommitsPS is the sequential acknowledged-commit rate (1/mean).
	CommitsPS float64 `json:"commits_per_sec"`
	// Degraded counts commits acknowledged without their quorum — must
	// stay 0 with healthy replicas or the latency numbers are fiction.
	Degraded uint64 `json:"degraded"`
}

// RunE10 measures commit latency versus the synchronous-replication
// quorum (E10: the price of "an acknowledged commit survives primary
// loss"). Every configuration runs the same sequential write workload
// against a fresh primary with the same number of connected replicas;
// only SyncReplicas varies, adding the replica fsync + ack round trip to
// each commit at quorum >= 1.
func RunE10(w io.Writer, cfg E10Config) ([]E10Row, error) {
	if cfg.Commits <= 0 {
		cfg.Commits = 200
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if len(cfg.SyncLevels) == 0 {
		cfg.SyncLevels = []int{0, 1, 2}
	}

	var rows []E10Row
	for _, level := range cfg.SyncLevels {
		if level > cfg.Replicas {
			return rows, fmt.Errorf("bench: E10 quorum %d exceeds %d replicas", level, cfg.Replicas)
		}
		row, err := runE10Config(level, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}

	if w != nil {
		section(w, "E10", "commit latency vs synchronous-replication quorum (SyncReplicas)")
		t := &Table{Headers: []string{"sync replicas", "replicas", "commits", "p50", "p95", "max", "mean", "commits/s", "degraded"}}
		for _, r := range rows {
			t.Add(r.SyncReplicas, r.Replicas, r.Commits, r.P50, r.P95, r.Max, r.Mean, r.CommitsPS, r.Degraded)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: quorum >= 1 adds the ship + replica-fsync + ack round trip per")
		fmt.Fprintln(w, "commit over the async baseline; degraded must be 0 (the quorum actually held)")
	}
	return rows, nil
}

// runE10Config measures one quorum level against a fresh replication
// group.
func runE10Config(level int, cfg E10Config) (E10Row, error) {
	row := E10Row{SyncReplicas: level, Replicas: cfg.Replicas, Commits: cfg.Commits}

	pdir, err := os.MkdirTemp("", "neograph-e10-primary-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(pdir)
	primary, err := neograph.Open(neograph.Options{
		Dir:             pdir,
		ReplicationAddr: "127.0.0.1:0",
		SyncReplicas:    level,
		// Generous degrade window: a degrade means the row is measuring
		// the timeout, not replication — it is reported so the reader can
		// reject the row.
		SyncReplicaTimeout: 10 * time.Second,
	})
	if err != nil {
		return row, err
	}
	defer primary.Close()

	var replicas []*neograph.DB
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
	}()
	for i := 0; i < cfg.Replicas; i++ {
		rdir, err := os.MkdirTemp("", "neograph-e10-replica-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(rdir)
		r, err := neograph.Open(neograph.Options{Dir: rdir, ReplicaOf: primary.ReplicationAddress()})
		if err != nil {
			return row, err
		}
		replicas = append(replicas, r)
	}
	// Seed one node and use its token to confirm every replica is
	// connected and applying before the clock starts.
	var id neograph.NodeID
	warm := primary.Begin()
	if id, err = warm.CreateNode([]string{"E10"}, neograph.Props{"v": neograph.Int(0)}); err != nil {
		warm.Abort()
		return row, err
	}
	if err := warm.Commit(); err != nil {
		return row, err
	}
	for i, r := range replicas {
		if err := r.WaitApplied(warm.CommitLSN(), 60*time.Second); err != nil {
			return row, fmt.Errorf("replica %d warm-up: %w", i, err)
		}
	}

	lats := make([]time.Duration, 0, cfg.Commits)
	t0 := time.Now()
	for i := 0; i < cfg.Commits; i++ {
		c0 := time.Now()
		err := primary.Update(3, func(tx *neograph.Tx) error {
			return tx.SetNodeProp(id, "v", neograph.Int(int64(i)))
		})
		if err != nil {
			return row, err
		}
		lats = append(lats, time.Since(c0))
	}
	elapsed := time.Since(t0)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	row.P50 = lats[len(lats)/2]
	row.P95 = lats[len(lats)*95/100]
	row.Max = lats[len(lats)-1]
	row.Mean = sum / time.Duration(len(lats))
	row.CommitsPS = float64(cfg.Commits) / elapsed.Seconds()
	row.Degraded = primary.ReplStatus().DegradedCommits
	return row, nil
}
