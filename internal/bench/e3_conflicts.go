package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/internal/workload"
)

// E3Config parameterises the conflict-policy comparison.
type E3Config struct {
	People   int
	Clients  int
	Thetas   []float64 // Zipf skew sweep
	Duration time.Duration
	Seed     int64
}

// E3Row is one measured cell.
type E3Row struct {
	Theta  float64
	Policy string
	Result Result
	// WastedOps counts operations executed inside transactions that later
	// aborted — FCW pays for work FUW cancels early (§3).
	WastedOps uint64
}

// RunE3 compares first-updater-wins against first-committer-wins under
// increasing access skew. Both enforce the same write rule; the paper
// picks FUW (§4). The measurable difference is when the loser learns it
// lost: FUW at its first conflicting update, FCW only at commit — so FCW
// wastes the whole transaction's work.
func RunE3(w io.Writer, cfg E3Config) ([]E3Row, error) {
	if cfg.People <= 0 {
		cfg.People = 1000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if len(cfg.Thetas) == 0 {
		cfg.Thetas = []float64{0, 0.6, 0.9}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}

	var rows []E3Row
	for _, theta := range cfg.Thetas {
		for _, pol := range []struct {
			name   string
			policy neograph.Options
		}{
			{"FUW", neograph.Options{Conflict: neograph.FirstUpdaterWins}},
			{"FCW", neograph.Options{Conflict: neograph.FirstCommitterWins}},
		} {
			db, err := neograph.Open(pol.policy)
			if err != nil {
				return nil, err
			}
			g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 2, Seed: cfg.Seed})
			if err != nil {
				db.Close()
				return nil, err
			}
			var wasted atomic.Uint64
			theta := theta
			op := func(c int, r *rand.Rand) error {
				picker := rand.New(rand.NewSource(r.Int63()))
				pick := func() neograph.NodeID {
					if theta <= 0 {
						return g.People[picker.Intn(len(g.People))]
					}
					z := rand.NewZipf(picker, 1+theta, 1, uint64(len(g.People)-1))
					return g.People[z.Uint64()]
				}
				tx := db.Begin()
				ops := 0
				// A 4-update transaction: more chances to conflict, more
				// work to waste.
				for k := 0; k < 4; k++ {
					if err := tx.SetNodeProp(pick(), "balance", neograph.Int(r.Int63n(1<<20))); err != nil {
						tx.Abort()
						wasted.Add(uint64(ops))
						return err
					}
					ops++
				}
				if err := tx.Commit(); err != nil {
					wasted.Add(uint64(ops))
					return err
				}
				return nil
			}
			res := (&Runner{Clients: cfg.Clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
				Run(fmt.Sprintf("theta=%.1f/%s", theta, pol.name))
			rows = append(rows, E3Row{Theta: theta, Policy: pol.name, Result: res, WastedOps: wasted.Load()})
			db.Close()
		}
	}

	if w != nil {
		section(w, "E3", "write-write conflicts: first-updater-wins vs first-committer-wins (paper §3)")
		t := &Table{Headers: []string{"zipf theta", "policy", "txn/s", "abort rate", "wasted ops"}}
		for _, r := range rows {
			t.Add(fmt.Sprintf("%.1f", r.Theta), r.Policy, r.Result.Throughput(), r.Result.AbortRate(), r.WastedOps)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: aborts grow with theta; FCW wastes more ops per abort (late detection)")
	}
	return rows, nil
}
