package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/partition"
	"neograph/internal/server"
	"neograph/internal/wire"
)

// E16Config parameterises the partitioned write scale-up experiment.
type E16Config struct {
	// Partitions are the fleet sizes swept (partition counts); default
	// 1, 2, 4. The 1-partition run is the unpartitioned baseline every
	// speedup is measured against.
	Partitions []int
	// CrossPcts are the percentages of transactions that span two
	// partitions (committed via 2PC); default 0 and 10. Cross traffic
	// is the price of partitioning — 0% shows the ceiling, 10% the
	// realistic mix.
	CrossPcts []int
	// ClientsPerPartition is the concurrent writers per partition, so
	// offered load scales with the fleet; default 4.
	ClientsPerPartition int
	// AnchorsPerPartition is the pre-created node population per
	// partition that the workload updates and connects; default 256.
	AnchorsPerPartition int
	// Duration is the measured window per configuration.
	Duration time.Duration
	Seed     int64
}

// E16Row is one (partitions, cross%) cell of the scale-up matrix.
type E16Row struct {
	Partitions int `json:"partitions"`
	CrossPct   int `json:"cross_pct"`
	Clients    int `json:"clients"`
	// Commits is acknowledged transactions across the whole fleet.
	Commits       int     `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// CrossCommits counts the committed transactions that actually
	// spanned partitions (0 at cross_pct 0, ~cross_pct% otherwise).
	CrossCommits int `json:"cross_commits"`
	// Conflicts are write-write conflict rejections (retried workload
	// keeps going; they are not commits).
	Conflicts int `json:"conflicts"`
	// ScaleupVs1 is CommitsPerSec over the 1-partition run at the same
	// cross percentage (0 on the baseline row itself).
	ScaleupVs1 float64 `json:"scaleup_vs_1,omitempty"`
}

// RunE16 measures aggregate commit throughput as the vertex space is
// hash-partitioned over independent primaries (E16): each partition has
// its own WAL, group-commit pipeline and fsync stream, so disjoint
// write load should scale near-linearly, while cross-partition
// transactions pay two-phase commit.
func RunE16(w io.Writer, cfg E16Config) ([]E16Row, error) {
	if len(cfg.Partitions) == 0 {
		cfg.Partitions = []int{1, 2, 4}
	}
	if len(cfg.CrossPcts) == 0 {
		cfg.CrossPcts = []int{0, 10}
	}
	if cfg.ClientsPerPartition <= 0 {
		cfg.ClientsPerPartition = 4
	}
	if cfg.AnchorsPerPartition <= 0 {
		cfg.AnchorsPerPartition = 256
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}

	var rows []E16Row
	base := make(map[int]float64) // cross_pct -> 1-partition commits/s
	for _, cross := range cfg.CrossPcts {
		for _, parts := range cfg.Partitions {
			row, err := runE16Config(parts, cross, cfg)
			if err != nil {
				return rows, err
			}
			if parts == 1 {
				base[cross] = row.CommitsPerSec
			} else if b := base[cross]; b > 0 {
				row.ScaleupVs1 = row.CommitsPerSec / b
			}
			rows = append(rows, row)
		}
	}

	if w != nil {
		section(w, "E16", "partitioned write scale-up (aggregate commit/s vs partition count)")
		t := &Table{Headers: []string{"partitions", "cross %", "clients", "commits", "commits/s", "cross commits", "conflicts", "scale-up vs 1"}}
		for _, r := range rows {
			scale := "-"
			if r.ScaleupVs1 > 0 {
				scale = fmt.Sprintf("%.2fx", r.ScaleupVs1)
			}
			t.Add(r.Partitions, r.CrossPct, r.Clients, r.Commits,
				fmt.Sprintf("%.0f", r.CommitsPerSec), r.CrossCommits, r.Conflicts, scale)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: near-linear scale-up at 0% cross (independent WALs and fsync")
		fmt.Fprintln(w, "streams); the 10% cross column gives up part of the gain to two-phase commit")
	}
	return rows, nil
}

// e16Node is one partition's primary: DB + server + coordinator.
type e16Node struct {
	db    *neograph.DB
	srv   *server.Server
	coord *partition.Coordinator
}

func (n *e16Node) close() {
	if n.coord != nil {
		n.coord.Close()
	}
	if n.srv != nil {
		n.srv.Close()
	}
	if n.db != nil {
		n.db.Close()
	}
}

func runE16Config(parts, crossPct int, cfg E16Config) (E16Row, error) {
	row := E16Row{Partitions: parts, CrossPct: crossPct, Clients: parts * cfg.ClientsPerPartition}

	nodes := make([]*e16Node, parts)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.close()
			}
		}
	}()
	pm := wire.PartitionMap{Version: 1, Count: parts}
	for p := 0; p < parts; p++ {
		dir, err := os.MkdirTemp("", "neograph-e16-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(dir)
		n := &e16Node{}
		if n.db, err = neograph.Open(neograph.Options{
			Dir:            dir,
			PartitionID:    p,
			PartitionCount: parts,
		}); err != nil {
			return row, err
		}
		if n.srv, err = server.New(n.db, "127.0.0.1:0"); err != nil {
			n.db.Close()
			return row, err
		}
		nodes[p] = n
		pm.Groups = append(pm.Groups, wire.PartitionGroup{ID: uint32(p), Addrs: []string{n.srv.Addr()}})
	}
	if parts > 1 {
		for p, n := range nodes {
			topo := partition.NewTopology(pm)
			n.coord = partition.NewCoordinator(uint32(p), topo, n.srv.Local(), n.db.AppliedLSN(), nil)
			n.srv.SetPartition(n.coord, uint32(p), parts)
			n.coord.Start()
		}
	}

	// Anchor population, one commit per partition.
	anchors := make([][]neograph.NodeID, parts)
	for p, n := range nodes {
		tx := n.db.Begin()
		for i := 0; i < cfg.AnchorsPerPartition; i++ {
			id, err := tx.CreateNode([]string{"E16"}, nil)
			if err != nil {
				tx.Abort()
				return row, err
			}
			anchors[p] = append(anchors[p], id)
		}
		if err := tx.Commit(); err != nil {
			return row, err
		}
	}

	ctx := context.Background()
	router, err := client.OpenRouter(ctx, client.RouterConfig{Partitions: pm})
	if err != nil {
		return row, err
	}
	defer router.Close()

	var commits, crossCommits, conflicts atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for worker := 0; worker < row.Clients; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			home := uint32(worker % parts)
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				isCross := parts > 1 && rng.Intn(100) < crossPct
				if isCross {
					// Cross-partition: an edge from a home anchor to a
					// remote one, plus a property write on each side —
					// a 2PC transaction with work on both participants.
					remote := uint32(rng.Intn(parts))
					for remote == home {
						remote = uint32(rng.Intn(parts))
					}
					a := anchors[home][rng.Intn(len(anchors[home]))]
					b := anchors[remote][rng.Intn(len(anchors[remote]))]
					var batch client.Batch
					batch.SetNodeProp(a, "w", neograph.Int(int64(seq)))
					batch.SetNodeProp(b, "w", neograph.Int(int64(seq)))
					batch.CreateRel("E16X", a, b, nil)
					_, err = router.RunBatch(ctx, "", &batch)
				} else {
					// Single-partition: ordinary fast-path commit on the
					// home partition.
					a := anchors[home][rng.Intn(len(anchors[home]))]
					err = router.Write(ctx, "", a, func(c *client.Client) error {
						return c.SetNodeProp(ctx, a, "w", neograph.Int(int64(seq)))
					})
				}
				switch {
				case err == nil:
					commits.Add(1)
					if isCross {
						crossCommits.Add(1)
					}
				case isConflict(err):
					conflicts.Add(1)
				default:
					select {
					case <-stop:
						return // teardown races are not workload errors
					default:
					}
					panic(fmt.Sprintf("bench: E16 worker: %v", err))
				}
			}
		}(worker)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	row.Commits = int(commits.Load())
	row.CrossCommits = int(crossCommits.Load())
	row.Conflicts = int(conflicts.Load())
	row.CommitsPerSec = float64(row.Commits) / elapsed
	return row, nil
}

// isConflict classifies write-write conflict rejections, which the
// open-loop workload counts rather than fails on.
func isConflict(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "conflict") || strings.Contains(err.Error(), "prepared"))
}
