package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"neograph"
	"neograph/internal/trace"
	"neograph/internal/workload"
)

// E13Config parameterises the tracing-overhead measurement.
type E13Config struct {
	People   int
	Clients  int
	Duration time.Duration
	Seed     int64
	// Dir is the working directory for the durable stores (a temp dir per
	// cell when empty).
	Dir string
}

// E13Row is one measured cell: the E2d synced-commit workload at one
// head-sampling rate.
type E13Row struct {
	// Sample is the head-sampling rate (0 = tracing off entirely).
	Sample float64
	Result Result
	// Overhead is throughput relative to the untraced baseline (1.0 =
	// no cost; 0.95 = 5% slower).
	Overhead float64
}

// RunE13 measures the cost of commit-pipeline tracing on the E2d durable
// group-commit workload: every transaction is a single property update
// committed with the WAL fsync on, and the traced cells mint a root span
// per commit so the engine records the full validate/append/fsync span
// tree. The design goal is that 1% head sampling is free (within noise)
// and even 100% costs little — the sampling decision happens once at the
// root and an unsampled commit touches only nil checks.
func RunE13(w io.Writer, cfg E13Config) ([]E13Row, error) {
	if cfg.People <= 0 {
		cfg.People = 1000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}

	var rows []E13Row
	for _, sample := range []float64{0, 0.01, 1.0} {
		dir, err := os.MkdirTemp(cfg.Dir, "neograph-e13-*")
		if err != nil {
			return nil, err
		}
		var tracer *trace.Tracer
		if sample > 0 {
			tracer = trace.New(sample, 0)
		}
		db, err := neograph.Open(neograph.Options{Dir: dir, Tracer: tracer})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 3, Seed: cfg.Seed})
		if err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		op := func(c int, r *rand.Rand) error {
			sp := tracer.StartRoot("bench.commit")
			tx := db.Begin()
			tx.SetTraceSpan(sp)
			if err := tx.SetNodeProp(g.People[r.Intn(len(g.People))], "balance", neograph.Int(r.Int63n(1<<20))); err != nil {
				tx.Abort()
				sp.Finish()
				return err
			}
			err := tx.Commit()
			sp.Finish()
			return err
		}
		res := (&Runner{Clients: cfg.Clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
			Run(fmt.Sprintf("trace/%g", sample))
		rows = append(rows, E13Row{Sample: sample, Result: res})
		db.Close()
		os.RemoveAll(dir)
	}

	// Overhead relative to the sample=0 baseline.
	var base float64
	for _, r := range rows {
		if r.Sample == 0 {
			base = r.Result.Throughput()
		}
	}
	for i := range rows {
		if base > 0 {
			rows[i].Overhead = rows[i].Result.Throughput() / base
		}
	}

	if w != nil {
		section(w, "E13", "tracing overhead on synced commits (off vs 1% vs 100% head sampling)")
		t := &Table{Headers: []string{"sample", "commit/s", "p50", "p95", "vs untraced"}}
		for _, r := range rows {
			rel := "-"
			if r.Sample != 0 && r.Overhead > 0 {
				rel = fmt.Sprintf("%.2fx", r.Overhead)
			}
			t.Add(fmt.Sprintf("%g", r.Sample), r.Result.Throughput(), r.Result.P50, r.Result.P95, rel)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: 1% sampling within noise of untraced (>0.95x); 100% modestly below")
	}
	return rows, nil
}
