package bench

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"neograph"
)

// The experiment drivers run here with small "quick" configurations; the
// assertions check the *shape* each paper claim predicts, not absolute
// numbers (see EXPERIMENTS.md).

func TestE1ShapeSIZeroRCPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	res, err := RunE1(io.Discard, E1Config{
		People: 200, Writers: 4, Checkers: 2, Duration: 700 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	si, rc := res[0], res[1]
	if si.CheckTxns == 0 || rc.CheckTxns == 0 {
		t.Fatalf("checkers did not run: %+v", res)
	}
	if si.UnrepeatableReads != 0 || si.PhantomReads != 0 {
		t.Fatalf("SI exhibited anomalies: %+v", si)
	}
	if rc.UnrepeatableReads == 0 && rc.PhantomReads == 0 {
		t.Fatalf("RC exhibited no anomalies under write load: %+v", rc)
	}
}

func TestE2Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	var buf bytes.Buffer
	rows, err := RunE2(&buf, E2Config{
		People: 300, Clients: []int{2}, Duration: 150 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultMixes)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Result.Commits == 0 {
			t.Fatalf("no commits in cell %+v", r)
		}
		if r.Result.Errors != 0 {
			t.Fatalf("unexpected errors in cell %+v", r.Result)
		}
	}
	if !strings.Contains(buf.String(), "E2") {
		t.Fatal("missing table output")
	}
}

func TestE2DurableGroupCommitWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	rows, err := RunE2Durable(io.Discard, E2DurableConfig{
		People: 500, Clients: []int{8}, Duration: 700 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(mode string) E2DurableRow {
		for _, r := range rows {
			if r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing mode %s", mode)
		return E2DurableRow{}
	}
	base, group := get("per-commit"), get("group")
	if base.Result.Commits == 0 || group.Result.Commits == 0 {
		t.Fatalf("no commits: %+v", rows)
	}
	// Group mode must actually share fsyncs.
	if group.Flushes == 0 || group.SyncedCommits <= group.Flushes {
		t.Errorf("no batching: %d commits over %d flushes", group.SyncedCommits, group.Flushes)
	}
	// The baseline engine must not touch the batcher.
	if base.Flushes != 0 || base.SyncedCommits != 0 {
		t.Errorf("per-commit baseline recorded batcher stats: %+v", base)
	}
	// The headline group-commit claim: batched fsync beats one fsync per
	// commit under multi-writer load. The claim only holds where the fsync
	// is what commits pay for — on fast-flush filesystems (tmpfs-backed CI
	// runners) both modes converge and the ratio is noise, so gate the
	// assertion on measured fsync cost.
	if cost := fsyncCost(t); cost < 20*time.Microsecond {
		t.Skipf("fsync costs only %v here; throughput ratio is not fsync-bound", cost)
	}
	if ratio := group.Result.Throughput() / base.Result.Throughput(); ratio < 1.3 {
		t.Errorf("group commit %.0f/s vs per-commit %.0f/s = %.2fx; want >= 1.3x at 8 writers",
			group.Result.Throughput(), base.Result.Throughput(), ratio)
	}
}

// fsyncCost measures the mean latency of a small append+fsync in the
// test's temp filesystem.
func fsyncCost(t *testing.T) time.Duration {
	f, err := os.CreateTemp(t.TempDir(), "fsync-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 20
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := f.Write([]byte("probe")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(t0) / n
}

func TestE3AbortsGrowWithSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	rows, err := RunE3(io.Discard, E3Config{
		People: 200, Clients: 8, Thetas: []float64{0, 1.2}, Duration: 300 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(theta float64, pol string) E3Row {
		for _, r := range rows {
			if r.Theta == theta && r.Policy == pol {
				return r
			}
		}
		t.Fatalf("missing cell %v/%s", theta, pol)
		return E3Row{}
	}
	aborts := func(r E3Row) uint64 { return r.Result.Conflicts + r.Result.Deadlocks }
	for _, pol := range []string{"FUW", "FCW"} {
		lo, hi := get(0, pol), get(1.2, pol)
		// On machines with little real parallelism (1-2 CPUs) transactions
		// barely overlap and conflicts are single-digit noise; the
		// skew-grows-aborts shape is only assertable with enough signal.
		if aborts(lo)+aborts(hi) < 100 {
			t.Logf("%s: only %d+%d aborts; skipping shape assertion (low-parallelism machine)",
				pol, aborts(lo), aborts(hi))
			continue
		}
		// Near saturation the uniform workload already aborts most attempts
		// and skew has no dynamic range left to grow into; near the noise
		// floor the difference between cells is binomial jitter.
		if lo.Result.AbortRate() > 0.5 {
			t.Logf("%s: uniform abort rate %.3f already saturated; skipping shape assertion",
				pol, lo.Result.AbortRate())
			continue
		}
		if lo.Result.AbortRate() < 0.05 && hi.Result.AbortRate() < 0.05 {
			t.Logf("%s: abort rates %.3f/%.3f below noise floor; skipping shape assertion",
				pol, lo.Result.AbortRate(), hi.Result.AbortRate())
			continue
		}
		if hi.Result.AbortRate() < lo.Result.AbortRate()*0.9 {
			t.Errorf("%s: abort rate fell with skew: %.3f -> %.3f", pol, lo.Result.AbortRate(), hi.Result.AbortRate())
		}
	}
	// FCW detects late: under high skew it wastes at least as many ops
	// per abort as FUW (which cancels on the first conflicting update).
	fuw, fcw := get(1.2, "FUW"), get(1.2, "FCW")
	if aborts(fuw)+aborts(fcw) < 100 {
		t.Skipf("only %d+%d high-skew aborts; not enough signal to compare policies", aborts(fuw), aborts(fcw))
	}
	wastedPerAbort := func(r E3Row) float64 {
		a := aborts(r)
		if a == 0 {
			return 0
		}
		return float64(r.WastedOps) / float64(a)
	}
	if wastedPerAbort(fcw) < wastedPerAbort(fuw) {
		t.Errorf("wasted ops per abort: FCW %.2f < FUW %.2f", wastedPerAbort(fcw), wastedPerAbort(fuw))
	}
}

func TestE4ThreadedScansOnlyGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	rows, err := RunE4(io.Discard, E4Config{
		LiveEntities: []int{2_000, 20_000}, GarbageVersions: 1_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var threaded, vacuum []E4Row
	for _, r := range rows {
		if r.Mode == "threaded" {
			threaded = append(threaded, r)
		} else {
			vacuum = append(vacuum, r)
		}
	}
	for _, r := range threaded {
		if r.Collected != r.Garbage {
			t.Errorf("threaded collected %d != garbage %d", r.Collected, r.Garbage)
		}
		if r.Scanned > r.Garbage+1 {
			t.Errorf("threaded scanned %d > garbage+1 (cost not O(garbage))", r.Scanned)
		}
	}
	// Vacuum scan cost grows with the live set at fixed garbage.
	if len(vacuum) == 2 && vacuum[1].Scanned <= vacuum[0].Scanned {
		t.Errorf("vacuum scanned did not grow with store: %d -> %d", vacuum[0].Scanned, vacuum[1].Scanned)
	}
	// Threaded scan cost does not.
	if len(threaded) == 2 && threaded[1].Scanned > threaded[0].Scanned+1 {
		t.Errorf("threaded scanned grew with store: %d -> %d", threaded[0].Scanned, threaded[1].Scanned)
	}
}

func TestE5MemoryPinnedThenReleased(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	rows, err := RunE5(io.Discard, E5Config{HotNodes: 50, UpdatesPerStep: 200, Steps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := len(rows)
	if n < 3 {
		t.Fatalf("rows = %d", n)
	}
	// Versions grow monotonically while the reader is active...
	for i := 1; i < n-1; i++ {
		if rows[i].Versions < rows[i-1].Versions {
			t.Errorf("versions fell while reader active: %+v", rows)
		}
	}
	// ...and collapse to the live set after it finishes.
	last := rows[n-1]
	if last.Phase != "reader-done" {
		t.Fatalf("last phase = %s", last.Phase)
	}
	if last.Versions != 50 {
		t.Errorf("versions after release = %d, want 50 (live set)", last.Versions)
	}
	if last.Backlog != 0 {
		t.Errorf("backlog after release = %d", last.Backlog)
	}
}

func TestE6IndexBeatsScanAtLowSelectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	rows, err := RunE6(io.Discard, E6Config{Nodes: 5_000, Selectivities: []float64{0.01}, Lookups: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Hits == 0 {
		t.Fatal("no hits")
	}
	if r.IndexTime >= r.ScanTime {
		t.Errorf("index (%v) not faster than scan (%v) at selectivity 0.01", r.IndexTime, r.ScanTime)
	}
}

func TestE7MergeExact(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	rows, err := RunE7(io.Discard, E7Config{BaseNodes: 500, WriteSetSizes: []int{0, 100}, Lookups: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ResultSize != 500 || rows[1].ResultSize != 600 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestE8LatestOnlySmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	res, err := RunE8(io.Discard, E8Config{Entities: 300, UpdatesPerNode: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredNodes != res.Entities {
		t.Fatalf("recovered %d of %d", res.RecoveredNodes, res.Entities)
	}
	if res.LatestOnlyBytes == 0 {
		t.Fatal("nothing checkpointed")
	}
	// Paper's claim: persisting only the newest version writes a fraction
	// of what the all-versions cache holds (≈ 1/versions).
	if res.LatestOnlyBytes*2 >= res.AllVersionsBytes {
		t.Fatalf("latest-only %d not << all-versions %d", res.LatestOnlyBytes, res.AllVersionsBytes)
	}
	if res.WALAfterCkpt > res.WALBeforeCkpt {
		t.Fatalf("WAL grew across checkpoint: %d -> %d", res.WALBeforeCkpt, res.WALAfterCkpt)
	}
	// Group-commit durability phase: every synced commit survived the
	// second crash, and the batcher actually shared fsyncs (at most one
	// flush per commit; under concurrency, far fewer).
	if res.SyncedCommits == 0 {
		t.Fatal("synced phase did not run")
	}
	if uint64(res.SyncedRecovered) != res.SyncedCommits {
		t.Fatalf("recovered %d of %d synced commits", res.SyncedRecovered, res.SyncedCommits)
	}
	if res.SyncedFlushes == 0 || res.SyncedFlushes > res.SyncedCommits {
		t.Fatalf("flushes = %d for %d synced commits", res.SyncedFlushes, res.SyncedCommits)
	}
}

func TestF1Prints(t *testing.T) {
	if testing.Short() {
		t.Skip("sized experiment")
	}
	var buf bytes.Buffer
	if err := RunF1(&buf, 200, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"object cache", "persistent store", "neostore.nodes.db", "wal"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 output missing %q", want)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Headers: []string{"a", "long-header"}}
	tb.Add(1, 2.5)
	tb.Add("xyz", time.Millisecond)
	var buf bytes.Buffer
	tb.Print(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	width := len(lines[0])
	for _, l := range lines {
		if len(l) != width {
			t.Errorf("misaligned table:\n%s", buf.String())
		}
	}
}

func TestRunnerCounters(t *testing.T) {
	var n atomic.Uint64
	res := (&Runner{
		Clients:  2,
		Duration: 50 * time.Millisecond,
		Op: func(c int, r *rand.Rand) error {
			switch n.Add(1) % 3 {
			case 0:
				return neograph.ErrWriteConflict
			case 1:
				return errOther
			default:
				return nil
			}
		},
	}).Run("counters")
	if res.Commits == 0 || res.Conflicts == 0 || res.Errors == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if res.AbortRate() <= 0 || res.AbortRate() >= 1 {
		t.Fatalf("abort rate = %f", res.AbortRate())
	}
}

var errOther = errors.New("other")

func TestE9ReplicaScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	// A 1ms service occupancy keeps the real per-read CPU a negligible
	// slice of each slot, so the slot-capacity ratio stays ~2x even on
	// loaded single-core machines.
	rows, err := RunE9(io.Discard, E9Config{
		Nodes: 300, Writers: 2, Replicas: []int{0, 2},
		ServiceTime: time.Millisecond,
		Duration:    600 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, two := rows[0], rows[1]
	if base.ReadsPS == 0 || two.ReadsPS == 0 {
		t.Fatalf("no reads: %+v", rows)
	}
	if base.WritesPS == 0 || two.WritesPS == 0 {
		t.Fatalf("write load did not run: %+v", rows)
	}
	// The headline claim: replicas add read capacity. Slot capacity is
	// modelled (service occupancy per read), so the ratio is stable even
	// on single-core machines; 1.8x of the ideal 2x leaves headroom.
	// Race instrumentation multiplies the real per-read CPU cost until it
	// rivals the service occupancy, collapsing the slot model on small
	// machines — under the race detector only the direction is asserted.
	want := 1.8
	if raceEnabled {
		want = 1.05
	}
	if two.Speedup < want {
		t.Errorf("2-replica speedup = %.2fx, want >= %.2fx (%+v)", two.Speedup, want, rows)
	}
	// Replica apply lag must be measured and bounded: these are real
	// read-your-writes waits over live TCP replication.
	if two.LagProbes == 0 {
		t.Fatal("no staleness probes recorded")
	}
	if two.LagMax <= 0 || two.LagMax > 20*time.Second {
		t.Errorf("lag max = %v", two.LagMax)
	}
	if two.LagP50 > two.LagMax {
		t.Errorf("lag p50 %v > max %v", two.LagP50, two.LagMax)
	}
}

func TestE11StripedCommitScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	// Stripes are pinned (not the GOMAXPROCS default) so the striped cell
	// exists — and the correctness assertions run — even on a 1-CPU box
	// where the default would degenerate to a single stripe.
	rows, err := RunE11(io.Discard, E11Config{
		Nodes: 2048, Clients: []int{1, 8}, Stripes: []int{1, 8},
		Duration: 250 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(stripes1 bool, mix string, clients int) E11Row {
		for _, r := range rows {
			if (r.Stripes == 1) == stripes1 && r.Mix == mix && r.Clients == clients {
				return r
			}
		}
		t.Fatalf("missing cell stripes1=%v/%s/%d", stripes1, mix, clients)
		return E11Row{}
	}
	for _, r := range rows {
		if r.Result.Commits == 0 {
			t.Fatalf("no commits in cell %+v", r)
		}
		if r.Result.Errors != 0 {
			t.Fatalf("unexpected errors in cell %+v", r.Result)
		}
		if r.Mix == "write" && r.Result.Conflicts != 0 {
			t.Fatalf("disjoint write footprints conflicted: %+v", r.Result)
		}
	}
	// The scaling shape needs real parallelism: on a 1-2 CPU machine the
	// striped and 1-stripe engines are the same engine (the default
	// resolves to GOMAXPROCS) or the latch is never contended, and under
	// the race detector per-op cost drowns the latch cost.
	striped := get(false, "write", 8)
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("NumCPU=%d GOMAXPROCS=%d: no parallelism to measure the latch scaling shape",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	want := 1.4 // headline claim is 2x on 8 cores; leave noise margin at 4
	if raceEnabled {
		want = 0.9 // direction only: instrumentation swamps the latch cost
	}
	if striped.Speedup < want {
		t.Errorf("8-writer striped speedup = %.2fx over 1 stripe, want >= %.2fx (%+v)",
			striped.Speedup, want, striped)
	}
	// Single-writer latency must not regress: one client takes the same
	// latches either way, so parity within noise.
	oneStripe1 := get(true, "write", 1)
	oneStriped := get(false, "write", 1)
	if oneStriped.Result.Throughput() < oneStripe1.Result.Throughput()*0.5 {
		t.Errorf("single-writer striped throughput %.0f/s fell to under half of 1-stripe %.0f/s",
			oneStriped.Result.Throughput(), oneStripe1.Result.Throughput())
	}
}

func TestE10SyncReplicationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	rows, err := RunE10(io.Discard, E10Config{
		Commits: 40, Replicas: 1, SyncLevels: []int{0, 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	async, quorum := rows[0], rows[1]
	if async.Mean <= 0 || quorum.Mean <= 0 {
		t.Fatalf("no latency measured: %+v", rows)
	}
	// The robust claim: every quorum commit actually assembled its quorum
	// (no degrades) in a healthy group. The latency ordering (quorum p50
	// above async p50) holds on real hardware but is a timed comparison
	// of 40 commits — too noisy to hard-assert on a loaded 1-CPU CI box,
	// so it is only logged.
	if quorum.Degraded != 0 || async.Degraded != 0 {
		t.Fatalf("degraded commits in a healthy group: %+v", rows)
	}
	if quorum.P50 < async.P50 {
		t.Logf("note: quorum p50 %v below async p50 %v (noisy box?)", quorum.P50, async.P50)
	}
}

func TestE12BatchingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	rows, err := RunE12(io.Discard, E12Config{
		Nodes: 400, Clients: 1, Depth: 8, Replicas: 1,
		Duration: 500 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	get := func(mode string) E12Row {
		for _, r := range rows {
			if r.Mode == mode {
				return r
			}
		}
		t.Fatalf("mode %q missing from %+v", mode, rows)
		return E12Row{}
	}
	for _, r := range rows {
		if r.OpsPS <= 0 {
			t.Fatalf("mode %s measured no ops: %+v", r.Mode, rows)
		}
	}
	// Headline acceptance: a depth-8 batch of the write-leaning mixed
	// stream (one round trip + ONE transaction per batch) beats one-op-
	// per-round-trip by >= 3x. Race instrumentation multiplies the
	// server-side per-op CPU until it rivals the round trip and commit
	// costs the batch amortises, so under the race detector only the
	// direction is asserted.
	wantMixed := 3.0
	if raceEnabled {
		wantMixed = 1.3
	}
	if s := get("batched-mixed").Speedup; s < wantMixed {
		t.Errorf("batched-mixed speedup = %.2fx, want >= %.2fx (%+v)", s, wantMixed, rows)
	}
	// Read-only batching saves only the round trip; on loopback that is
	// still a solid win. Keep the bar conservative: loopback RTT is the
	// floor of what any real network would amortise.
	wantReads := 1.5
	if raceEnabled {
		wantReads = 1.1
	}
	if s := get("batched-reads").Speedup; s < wantReads {
		t.Errorf("batched-reads speedup = %.2fx, want >= %.2fx (%+v)", s, wantReads, rows)
	}
	// The pooled row must demonstrate live replica routing, not scaling:
	// reads flow and the fleet answers.
	if get("pooled-replica-reads").Ops == 0 {
		t.Errorf("pooled mode served no reads: %+v", rows)
	}
}

func TestE14QueryPushdown(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	rows, err := RunE14(io.Discard, E14Config{
		Nodes: 3_000, OutDegree: 6, Starts: 2, Depth: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	get := func(mode string) E14Row {
		for _, r := range rows {
			if r.Mode == mode {
				return r
			}
		}
		t.Fatalf("mode %q missing from %+v", mode, rows)
		return E14Row{}
	}
	// RunE14 itself fails if the two traversals visit different node
	// sets, so by here the plan is correct; the shape assertions are
	// about cost.
	looped, pushed := get("client-looped"), get("server-khop")
	if looped.Visited == 0 || looped.Rounds <= uint64(looped.Starts) {
		t.Fatalf("client-looped did not traverse: %+v", looped)
	}
	if pushed.Rounds != uint64(pushed.Starts) {
		t.Errorf("server-khop used %d round trips for %d starts, want one plan each", pushed.Rounds, pushed.Starts)
	}
	// Headline acceptance (ISSUE): the server-side 3-hop is >= 2x the
	// client-looped traversal — it pays one round trip per chunk instead
	// of one per frontier node. Race instrumentation inflates server-side
	// traversal CPU until it rivals the round trips the plan amortises,
	// so under the detector only a weaker bar is asserted.
	want := 2.0
	if raceEnabled {
		want = 1.2
	}
	if pushed.Speedup < want {
		t.Errorf("server-khop speedup = %.2fx, want >= %.2fx (%+v)", pushed.Speedup, want, rows)
	}
	// The unfiltered stream must deliver the whole graph.
	if full := get("full-stream"); full.Visited != 3_000 {
		t.Errorf("full-stream rows = %d, want 3000", full.Visited)
	}
}
