package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/server"
)

// E14Config parameterises the query-pushdown experiment: a k-hop
// neighborhood computed the chatty way (the client drives the traversal,
// one Neighbors round trip per frontier node) versus shipped to the
// server as ONE query plan executed against one MVCC snapshot and
// streamed back in chunks.
type E14Config struct {
	// Nodes and OutDegree size the random graph (Nodes*OutDegree edges).
	Nodes     int
	OutDegree int
	// Starts is how many k-hop traversals each mode runs.
	Starts int
	// Depth is the traversal depth (hops).
	Depth int
	Seed  int64
}

// E14Row is one mode's measurement.
type E14Row struct {
	// Mode is "client-looped" (one Neighbors RPC per frontier node),
	// "server-khop" (one query plan, streamed result) or "full-stream"
	// (an unfiltered all-nodes stream, the bounded-memory demonstration).
	Mode    string  `json:"mode"`
	Starts  int     `json:"starts"`
	Depth   int     `json:"depth"`
	Visited uint64  `json:"visited"`
	Rounds  uint64  `json:"round_trips"`
	Millis  float64 `json:"millis"`
	// Speedup is client-looped elapsed over this mode's elapsed.
	Speedup float64 `json:"speedup"`
}

// RunE14 measures k-hop neighborhood traversal over real loopback TCP.
// The client-looped baseline is what an SDK without server-side plans
// forces: the traversal's frontier lives on the client, and every
// frontier node costs a round trip. The pushdown mode ships the whole
// traversal as one plan; the server walks ONE snapshot and streams rows
// back in chunk-sized frames. Both modes visit the identical node set —
// the speedup is pure round-trip and per-op dispatch amortisation, the
// paper's whole-operation-submission argument applied to traversals.
func RunE14(w io.Writer, cfg E14Config) ([]E14Row, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 120_000
	}
	if cfg.OutDegree <= 0 {
		cfg.OutDegree = 8
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 4
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 3
	}
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "neograph-e14-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Load embedded: the wire path is what is being measured, not the
	// loader. Edges land in chunked transactions to keep any one commit's
	// write buffer modest.
	r := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]neograph.NodeID, cfg.Nodes)
	const nodeChunk = 20_000
	for done := 0; done < cfg.Nodes; {
		n := minInt(nodeChunk, cfg.Nodes-done)
		if err := db.Update(0, func(tx *neograph.Tx) error {
			for i := 0; i < n; i++ {
				var err error
				if nodes[done+i], err = tx.CreateNode([]string{"E14"}, nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		done += n
	}
	const edgeChunk = 100_000
	for done := 0; done < cfg.Nodes*cfg.OutDegree; {
		n := minInt(edgeChunk, cfg.Nodes*cfg.OutDegree-done)
		if err := db.Update(0, func(tx *neograph.Tx) error {
			for i := 0; i < n; i++ {
				src := nodes[(done+i)/cfg.OutDegree]
				dst := nodes[r.Intn(cfg.Nodes)]
				if _, err := tx.CreateRel("E", src, dst, nil); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		done += n
	}

	srv, err := server.New(db, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	c, err := client.Dial(ctx, srv.Addr())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	starts := make([]neograph.NodeID, cfg.Starts)
	for i := range starts {
		starts[i] = nodes[r.Intn(cfg.Nodes)]
	}

	// Mode 1: the client drives the BFS — one Neighbors RPC per frontier
	// node per hop.
	looped := E14Row{Mode: "client-looped", Starts: cfg.Starts, Depth: cfg.Depth, Speedup: 1}
	t0 := time.Now()
	for _, start := range starts {
		visited := map[neograph.NodeID]bool{start: true}
		frontier := []neograph.NodeID{start}
		for d := 0; d < cfg.Depth && len(frontier) > 0; d++ {
			var next []neograph.NodeID
			for _, id := range frontier {
				nbrs, err := c.Neighbors(ctx, id, "out", "E")
				if err != nil {
					return nil, fmt.Errorf("e14 client-looped: %w", err)
				}
				looped.Rounds++
				for _, nb := range nbrs {
					if !visited[nb] {
						visited[nb] = true
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		looped.Visited += uint64(len(visited))
	}
	looped.Millis = float64(time.Since(t0).Microseconds()) / 1e3

	// Mode 2: the same traversals as ONE plan each, streamed back.
	pushdown := E14Row{Mode: "server-khop", Starts: cfg.Starts, Depth: cfg.Depth}
	t0 = time.Now()
	for _, start := range starts {
		st, err := c.Query(ctx, client.SeedIDs(start).KHop("out", cfg.Depth, "E"))
		if err != nil {
			return nil, fmt.Errorf("e14 server-khop: %w", err)
		}
		pushdown.Rounds++
		for st.Next() {
			pushdown.Visited++
		}
		if err := st.Err(); err != nil {
			return nil, fmt.Errorf("e14 server-khop: %w", err)
		}
	}
	pushdown.Millis = float64(time.Since(t0).Microseconds()) / 1e3
	if pushdown.Millis > 0 {
		pushdown.Speedup = looped.Millis / pushdown.Millis
	}
	if pushdown.Visited != looped.Visited {
		return nil, fmt.Errorf("e14: server-khop visited %d nodes, client-looped %d — traversals disagree",
			pushdown.Visited, looped.Visited)
	}

	// Mode 3: stream every node unfiltered — the row count says the whole
	// graph crossed the wire, while both sides only ever held chunk-sized
	// buffers (wire.QueryChunkRows rows at a time).
	full := E14Row{Mode: "full-stream", Starts: 1, Rounds: 1}
	t0 = time.Now()
	st, err := c.Query(ctx, client.SeedAll())
	if err != nil {
		return nil, fmt.Errorf("e14 full-stream: %w", err)
	}
	for st.Next() {
		full.Visited++
	}
	if err := st.Err(); err != nil {
		return nil, fmt.Errorf("e14 full-stream: %w", err)
	}
	full.Millis = float64(time.Since(t0).Microseconds()) / 1e3

	rows := []E14Row{looped, pushdown, full}
	if w != nil {
		section(w, "E14", "k-hop traversal: client-looped RPCs vs server-side plan with streamed result")
		t := &Table{Headers: []string{"mode", "starts", "depth", "visited", "round trips", "ms", "speedup"}}
		for _, r := range rows {
			t.Add(r.Mode, r.Starts, r.Depth, r.Visited, r.Rounds, r.Millis, r.Speedup)
		}
		t.Print(w)
		fmt.Fprintf(w, "expected shape: server-khop >= 2x client-looped at depth %d (the client pays one\n", cfg.Depth)
		fmt.Fprintln(w, "round trip per frontier node, the plan pays one per chunk); full-stream rows ==")
		fmt.Fprintln(w, "graph size with chunk-bounded memory on both ends")
	}
	return rows, nil
}
