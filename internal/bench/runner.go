// Package bench implements the experiment harness: a multi-client
// transaction runner with throughput/latency/abort accounting, and one
// driver per experiment in DESIGN.md's index (E1–E8, F1). Each driver
// prints the table EXPERIMENTS.md records and returns structured results
// so tests can assert the claimed shape.
package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
)

// Op is one client operation: it runs a whole transaction (including
// commit/abort) and reports the outcome through its error:
// nil = committed; ErrWriteConflict / ErrDeadlock = aborted by CC.
type Op func(client int, r *rand.Rand) error

// Result summarises one runner execution.
type Result struct {
	Name      string
	Clients   int
	Elapsed   time.Duration
	Commits   uint64
	Conflicts uint64
	Deadlocks uint64
	Errors    uint64
	P50, P95  time.Duration
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// AbortRate returns the fraction of attempts aborted by concurrency
// control.
func (r Result) AbortRate() float64 {
	total := r.Commits + r.Conflicts + r.Deadlocks
	if total == 0 {
		return 0
	}
	return float64(r.Conflicts+r.Deadlocks) / float64(total)
}

// Runner drives Clients goroutines executing Op for Duration.
type Runner struct {
	Clients  int
	Duration time.Duration
	Seed     int64
	Op       Op
}

// Run executes the workload and aggregates counters.
func (rn *Runner) Run(name string) Result {
	var commits, conflicts, deadlocks, errs atomic.Uint64
	var latMu sync.Mutex
	var lats []time.Duration

	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < rn.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(rn.Seed + int64(c)*7919))
			var local []time.Duration
			for i := 0; ; i++ {
				select {
				case <-stop:
					latMu.Lock()
					lats = append(lats, local...)
					latMu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				err := rn.Op(c, r)
				if i%8 == 0 { // sample 1/8 of latencies
					local = append(local, time.Since(t0))
				}
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, neograph.ErrWriteConflict):
					conflicts.Add(1)
				case errors.Is(err, neograph.ErrDeadlock):
					deadlocks.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(rn.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return Result{
		Name:    name,
		Clients: rn.Clients,
		Elapsed: elapsed,
		Commits: commits.Load(), Conflicts: conflicts.Load(),
		Deadlocks: deadlocks.Load(), Errors: errs.Load(),
		P50: pct(0.50), P95: pct(0.95),
	}
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Add appends a row; cells are Sprint-ed.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print writes the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// section prints an experiment banner.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", id, title)
}
