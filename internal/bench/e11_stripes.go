package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"neograph"
	"neograph/internal/ids"
	"neograph/internal/value"
)

// E11Config parameterises the striped-commit-pipeline scaling experiment.
type E11Config struct {
	// Nodes is the total population; each client owns a disjoint slice of
	// it, so write transactions never conflict — what E11 measures is the
	// commit pipeline itself, not the workload's conflict rate.
	Nodes int
	// WritesPerTxn is the write-set size of each committing transaction
	// (spread over stripes; larger sets make the validate+install section
	// the 1-stripe latch serialises more expensive).
	WritesPerTxn int
	// Clients are the concurrent committer counts to sweep.
	Clients []int
	// Stripes are the CommitStripes settings to compare; 0 means the
	// engine default (GOMAXPROCS rounded up to a power of two).
	Stripes  []int
	Duration time.Duration
	Seed     int64
}

// E11Row is one measured cell.
type E11Row struct {
	Stripes int    // resolved stripe count
	Mix     string // "write" or "mixed 50/50"
	Clients int
	Result  Result
	// Speedup is this cell's throughput over the 1-stripe cell with the
	// same mix and client count (1.0 for the baseline itself).
	Speedup float64
}

// RunE11 measures committed-transactions-per-second of the striped commit
// pipeline: first-committer-wins validation+install against one global
// latch (CommitStripes=1, the pre-striping engine) versus per-stripe
// latches (CommitStripes=GOMAXPROCS). Write footprints are disjoint, so
// with striping, commits proceed in parallel end to end; with one stripe
// every commit funnels through the same latch regardless. A mixed 50/50
// read/write sweep rides along: snapshot reads take no latch at all, so
// their scaling is bounded only by the striped object map.
func RunE11(w io.Writer, cfg E11Config) ([]E11Row, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4096
	}
	if cfg.WritesPerTxn <= 0 {
		cfg.WritesPerTxn = 4
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 2, 4, 8}
	}
	if len(cfg.Stripes) == 0 {
		cfg.Stripes = []int{1, 0} // baseline, then the GOMAXPROCS default
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * time.Millisecond
	}

	var rows []E11Row
	base := map[string]float64{} // mix/clients -> 1-stripe throughput
	for _, stripes := range cfg.Stripes {
		for _, mix := range []struct {
			name     string
			readFrac float64
		}{
			{"write", 0},
			{"mixed 50/50", 0.5},
		} {
			for _, clients := range cfg.Clients {
				db, err := neograph.Open(neograph.Options{
					Conflict:      neograph.FirstCommitterWins,
					CommitStripes: stripes,
				})
				if err != nil {
					return nil, err
				}
				nodes, err := seedE11(db, cfg.Nodes)
				if err != nil {
					db.Close()
					return nil, err
				}
				per := len(nodes) / clients
				writes := cfg.WritesPerTxn
				op := func(c int, r *rand.Rand) error {
					tx := db.Begin()
					if r.Float64() < mix.readFrac {
						// Read transaction: point reads across the keyspace.
						var err error
						for k := 0; k < writes && err == nil; k++ {
							_, err = tx.GetNode(nodes[r.Intn(len(nodes))])
						}
						tx.Abort()
						return err
					}
					// Write transaction: update this client's private slice
					// only — disjoint footprints, zero conflicts.
					own := nodes[c*per : (c+1)*per]
					for k := 0; k < writes; k++ {
						id := own[r.Intn(len(own))]
						if err := tx.SetNodeProp(id, "v", neograph.Int(r.Int63n(1<<20))); err != nil {
							tx.Abort()
							return err
						}
					}
					return tx.Commit()
				}
				res := (&Runner{Clients: clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
					Run(fmt.Sprintf("stripes/%d/%s/%d", stripes, mix.name, clients))
				row := E11Row{
					Stripes: db.Engine().CommitStripes(),
					Mix:     mix.name,
					Clients: clients,
					Result:  res,
				}
				key := fmt.Sprintf("%s/%d", mix.name, clients)
				if row.Stripes == 1 {
					base[key] = res.Throughput()
				}
				if b := base[key]; b > 0 {
					row.Speedup = res.Throughput() / b
				}
				rows = append(rows, row)
				db.Close()
			}
		}
	}

	if w != nil {
		section(w, "E11", fmt.Sprintf("striped commit pipeline, FCW validate+install (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
		t := &Table{Headers: []string{"stripes", "mix", "clients", "txn/s", "abort rate", "p50", "p95", "speedup vs 1-stripe"}}
		for _, r := range rows {
			sp := "-"
			if r.Speedup > 0 && r.Stripes != 1 {
				sp = fmt.Sprintf("%.2fx", r.Speedup)
			}
			t.Add(r.Stripes, r.Mix, r.Clients, r.Result.Throughput(), r.Result.AbortRate(), r.Result.P50, r.Result.P95, sp)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: parity at 1 client; striped >= 2x the 1-stripe latch by 8 writers on a multi-core host")
	}
	return rows, nil
}

// seedE11 populates the keyspace in chunked transactions.
func seedE11(db *neograph.DB, n int) ([]ids.ID, error) {
	nodes := make([]ids.ID, 0, n)
	for off := 0; off < n; off += 1024 {
		tx := db.Begin()
		for i := off; i < n && i < off+1024; i++ {
			id, err := tx.CreateNode(nil, value.Map{"v": value.Int(0)})
			if err != nil {
				tx.Abort()
				return nil, err
			}
			nodes = append(nodes, id)
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}
