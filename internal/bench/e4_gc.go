package bench

import (
	"fmt"
	"io"
	"time"

	"neograph"
)

// E4Config parameterises the GC comparison.
type E4Config struct {
	// LiveEntities sweeps store sizes (number of live nodes).
	LiveEntities []int
	// GarbageVersions is the number of superseded versions to produce
	// before each collection (spread over a small hot set).
	GarbageVersions int
	Seed            int64
}

// E4Row is one measured cell.
type E4Row struct {
	Live      int
	Garbage   int
	Mode      string
	Pause     time.Duration
	Collected int
	Scanned   int
}

// RunE4 reproduces the paper's §4 GC claim: with versions threaded on a
// timestamp-sorted doubly-linked list, collection cost is proportional to
// the garbage collected; a vacuum-style collector (the PostgreSQL
// contrast) scans the whole store, so its pause grows with store size
// even when garbage is constant.
func RunE4(w io.Writer, cfg E4Config) ([]E4Row, error) {
	if len(cfg.LiveEntities) == 0 {
		cfg.LiveEntities = []int{10_000, 50_000, 200_000}
	}
	if cfg.GarbageVersions <= 0 {
		cfg.GarbageVersions = 5_000
	}

	var rows []E4Row
	for _, live := range cfg.LiveEntities {
		for _, mode := range []neograph.Options{
			{GCMode: neograph.GCThreaded},
			{GCMode: neograph.GCVacuum},
		} {
			db, err := neograph.Open(mode)
			if err != nil {
				return nil, err
			}
			// Live store: `live` nodes, one version each.
			nodes := make([]neograph.NodeID, 0, live)
			const batch = 1024
			for len(nodes) < live {
				n := batch
				if live-len(nodes) < n {
					n = live - len(nodes)
				}
				err := db.Update(0, func(tx *neograph.Tx) error {
					for i := 0; i < n; i++ {
						id, err := tx.CreateNode(nil, neograph.Props{"v": neograph.Int(0)})
						if err != nil {
							return err
						}
						nodes = append(nodes, id)
					}
					return nil
				})
				if err != nil {
					db.Close()
					return nil, err
				}
			}
			// Produce a fixed amount of garbage on a small hot set.
			hot := nodes[:minInt(100, len(nodes))]
			produced := 0
			for produced < cfg.GarbageVersions {
				err := db.Update(0, func(tx *neograph.Tx) error {
					for i := 0; i < minInt(len(hot), cfg.GarbageVersions-produced); i++ {
						if err := tx.SetNodeProp(hot[i], "v", neograph.Int(int64(produced+i))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					db.Close()
					return nil, err
				}
				produced += minInt(len(hot), cfg.GarbageVersions-produced)
			}

			rep := db.RunGC()
			modeName := "threaded"
			if rep.Mode == neograph.GCVacuum {
				modeName = "vacuum"
			}
			rows = append(rows, E4Row{
				Live: live, Garbage: cfg.GarbageVersions, Mode: modeName,
				Pause: rep.Duration, Collected: rep.Collected, Scanned: rep.Scanned,
			})
			db.Close()
		}
	}

	if w != nil {
		section(w, "E4", "GC pause: threaded version list vs vacuum scan (paper §4)")
		t := &Table{Headers: []string{"live entities", "garbage versions", "collector", "pause", "collected", "versions scanned"}}
		for _, r := range rows {
			t.Add(r.Live, r.Garbage, r.Mode, r.Pause, r.Collected, r.Scanned)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: threaded pause ~constant across store sizes (scanned == garbage);")
		fmt.Fprintln(w, "vacuum pause and scanned grow linearly with live entities at fixed garbage")
	}
	return rows, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
