package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
)

// E9Config parameterises the replication experiment.
type E9Config struct {
	// Nodes is the graph size loaded before measuring.
	Nodes int
	// Writers is the number of write clients kept running on the primary
	// in every configuration (the replication stream is always live).
	Writers int
	// WriteEvery paces each writer (one commit per interval): the
	// read-scaling claim is about a fixed write volume being replicated,
	// not writers racing readers for the benchmark machine's CPU. Zero
	// means 2ms (Writers/2ms commits/s total).
	WriteEvery time.Duration
	// ReadSlots is the per-instance read concurrency: the number of
	// server slots each serving instance dedicates to read traffic.
	ReadSlots int
	// ServiceTime is each read slot's request period: one slot issues one
	// read every ServiceTime (a closed-loop remote client's round-trip).
	// A single process cannot add CPU by adding replicas, so instance
	// capacity is modelled as slots/ServiceTime offered load — delivered
	// only while the machine keeps up; the replication pipeline itself
	// (TCP shipping, redo apply, lag) is fully real.
	ServiceTime time.Duration
	// Replicas are the replica counts swept; 0 means reads are served by
	// the primary (the baseline).
	Replicas []int
	// Duration is the measurement window per configuration.
	Duration time.Duration
	Seed     int64
}

// E9Row is one configuration's measurements.
type E9Row struct {
	Replicas int `json:"replicas"`
	// Readers is the aggregate read-slot count across serving instances.
	Readers int     `json:"readers"`
	ReadsPS float64 `json:"reads_per_sec"`
	// Speedup is ReadsPS relative to the primary-only baseline row.
	Speedup  float64 `json:"speedup"`
	WritesPS float64 `json:"writes_per_sec"`
	// Staleness of read-your-writes probes: time from a primary commit
	// until every replica has applied past its LSN token.
	LagProbes int           `json:"lag_probes"`
	LagP50    time.Duration `json:"lag_p50"`
	LagMax    time.Duration `json:"lag_max"`
	// MaxLagBytes is the largest sampled primary-durable minus
	// replica-applied position gap during the run.
	MaxLagBytes uint64 `json:"max_lag_bytes"`
}

// RunE9 measures read throughput versus replica count and replica apply
// lag under write load. Replicas cold-start against the primary's
// retained WAL, catch up over TCP, and serve snapshot-isolated reads at
// their applied position while the write load keeps streaming.
func RunE9(w io.Writer, cfg E9Config) ([]E9Row, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2_000
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 2
	}
	if cfg.ReadSlots <= 0 {
		cfg.ReadSlots = 4
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 300 * time.Microsecond
	}
	if cfg.WriteEvery <= 0 {
		cfg.WriteEvery = 2 * time.Millisecond
	}
	if len(cfg.Replicas) == 0 {
		cfg.Replicas = []int{0, 1, 2}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}

	pdir, err := os.MkdirTemp("", "neograph-e9-primary-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	// No checkpointing: the full WAL history stays available so every
	// configuration's replicas can cold-start from position 0.
	primary, err := neograph.Open(neograph.Options{Dir: pdir, ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	defer primary.Close()

	nodes := make([]neograph.NodeID, 0, cfg.Nodes)
	const batch = 512
	for len(nodes) < cfg.Nodes {
		n := minInt(batch, cfg.Nodes-len(nodes))
		err := primary.Update(0, func(tx *neograph.Tx) error {
			for i := 0; i < n; i++ {
				id, err := tx.CreateNode([]string{"E9"}, neograph.Props{"v": neograph.Int(0)})
				if err != nil {
					return err
				}
				nodes = append(nodes, id)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	probeID := nodes[0]

	var rows []E9Row
	for _, nReplicas := range cfg.Replicas {
		row, err := runE9Config(primary, nodes, probeID, nReplicas, cfg)
		if err != nil {
			return rows, err
		}
		if len(rows) > 0 && rows[0].ReadsPS > 0 {
			row.Speedup = row.ReadsPS / rows[0].ReadsPS
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}

	if w != nil {
		section(w, "E9", "read throughput vs replica count; replica apply lag (WAL-shipping replication)")
		t := &Table{Headers: []string{"replicas", "read slots", "reads/s", "speedup", "writes/s", "lag probes", "lag p50", "lag max", "max lag bytes"}}
		for _, r := range rows {
			t.Add(r.Replicas, r.Readers, r.ReadsPS, r.Speedup, r.WritesPS, r.LagProbes, r.LagP50, r.LagMax, r.MaxLagBytes)
		}
		t.Print(w)
		fmt.Fprintf(w, "read capacity model: %d slots/instance, %v service occupancy per read (client RTT);\n",
			cfg.ReadSlots, cfg.ServiceTime)
		fmt.Fprintln(w, "expected shape: aggregate reads/s scales ~linearly with replica count while the")
		fmt.Fprintln(w, "primary keeps committing; apply lag stays bounded (replicas are prefix-consistent)")
	}
	return rows, nil
}

// runE9Config measures one replica-count cell.
func runE9Config(primary *neograph.DB, nodes []neograph.NodeID, probeID neograph.NodeID, nReplicas int, cfg E9Config) (E9Row, error) {
	row := E9Row{Replicas: nReplicas}

	// Cold-start replicas and wait until each has caught up.
	var replicas []*neograph.DB
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
	}()
	for i := 0; i < nReplicas; i++ {
		rdir, err := os.MkdirTemp("", "neograph-e9-replica-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(rdir)
		r, err := neograph.Open(neograph.Options{Dir: rdir, ReplicaOf: primary.ReplicationAddress()})
		if err != nil {
			return row, err
		}
		replicas = append(replicas, r)
		if err := r.WaitApplied(primary.DurableLSN(), 60*time.Second); err != nil {
			return row, fmt.Errorf("replica %d catch-up: %w", i, err)
		}
	}

	// Reads go to the replica fleet when there is one, else the primary.
	serving := replicas
	if nReplicas == 0 {
		serving = []*neograph.DB{primary}
	}
	row.Readers = cfg.ReadSlots * len(serving)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, writes atomic.Uint64
	var maxLagBytes atomic.Uint64

	// Write load on the primary, identical in every configuration.
	for i := 0; i < cfg.Writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := nodes[r.Intn(len(nodes))]
				err := primary.Update(3, func(tx *neograph.Tx) error {
					return tx.SetNodeProp(id, "v", neograph.Int(r.Int63()))
				})
				if err == nil {
					writes.Add(1)
				}
				time.Sleep(cfg.WriteEvery)
			}
		}(i)
	}

	// Read slots: each slot is one closed-loop client issuing a request
	// every ServiceTime against an absolute schedule, so scheduler wakeup
	// latency is absorbed as slack rather than stretching every period.
	// Delivered throughput tracks the offered rate (slots/ServiceTime per
	// instance) only while the machine keeps up — if reads are starved
	// the slot falls behind its schedule and throughput honestly drops.
	for si, db := range serving {
		for s := 0; s < cfg.ReadSlots; s++ {
			wg.Add(1)
			go func(si, s int, db *neograph.DB) {
				defer wg.Done()
				r := rand.New(rand.NewSource(cfg.Seed + int64(si*1000+s)*104729))
				// Stagger slot phases so request waves don't align.
				next := time.Now().Add(time.Duration(r.Int63n(int64(cfg.ServiceTime))))
				for {
					select {
					case <-stop:
						return
					default:
					}
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					id := nodes[r.Intn(len(nodes))]
					err := db.View(func(tx *neograph.Tx) error {
						_, err := tx.GetNode(id)
						return err
					})
					if err == nil {
						reads.Add(1)
					}
					next = next.Add(cfg.ServiceTime)
					// An overloaded machine can leave the schedule far in
					// the past; resync instead of bursting to catch up.
					if behind := time.Since(next); behind > 10*cfg.ServiceTime {
						next = time.Now()
					}
				}
			}(si, s, db)
		}
	}

	// Staleness probes: commit on the primary, time how long until every
	// replica has applied past the commit's LSN token (the read-your-
	// writes wait a real client would pay). Byte lag is sampled alongside.
	var lagMu sync.Mutex
	var lags []time.Duration
	if nReplicas > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				tx := primary.Begin()
				if err := tx.SetNodeProp(probeID, "probe", neograph.Int(time.Now().UnixNano())); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				token := tx.CommitLSN()
				t0 := time.Now()
				ok := true
				for _, rep := range replicas {
					// Snapshot both positions; the replica may apply past
					// the durable snapshot between the two reads, which is
					// zero lag, not uint64 wraparound.
					pd, ap := primary.DurableLSN(), rep.AppliedLSN()
					if ap < pd && pd-ap > maxLagBytes.Load() {
						maxLagBytes.Store(pd - ap)
					}
					if err := rep.WaitApplied(token, 30*time.Second); err != nil {
						ok = false
						break
					}
				}
				if ok {
					lagMu.Lock()
					lags = append(lags, time.Since(t0))
					lagMu.Unlock()
				}
			}
		}()
	}

	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()

	row.ReadsPS = float64(reads.Load()) / cfg.Duration.Seconds()
	row.WritesPS = float64(writes.Load()) / cfg.Duration.Seconds()
	row.MaxLagBytes = maxLagBytes.Load()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	row.LagProbes = len(lags)
	if len(lags) > 0 {
		row.LagP50 = lags[len(lags)/2]
		row.LagMax = lags[len(lags)-1]
	}
	return row, nil
}
