package bench

import (
	"fmt"
	"io"
	"os"

	"neograph"
	"neograph/internal/workload"
)

// RunF1 regenerates Figure 1 as a live component inventory: it builds a
// sample graph on disk and reports each architectural layer of the
// implementation with its observable footprint — the object cache
// (version chains), the persistent store's record files, the indexes,
// the WAL, and the transaction machinery.
func RunF1(w io.Writer, people int, seed int64) error {
	if people <= 0 {
		people = 1_000
	}
	dir, err := os.MkdirTemp("", "neograph-f1-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	db, err := neograph.Open(neograph.Options{Dir: dir, DisableSyncCommits: true})
	if err != nil {
		return err
	}
	defer db.Close()
	g, err := workload.BuildSocial(db, workload.SocialConfig{People: people, AvgFriends: 3, Seed: seed})
	if err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	versions, entities := db.VersionCount()
	sizes, err := db.Engine().Store().FileSizes()
	if err != nil {
		return err
	}

	section(w, "F1", "architecture inventory (paper Figure 1)")
	t := &Table{Headers: []string{"layer", "component", "footprint"}}
	t.Add("object cache", "entities (nodes+rels)", entities)
	t.Add("object cache", "version chains total versions", versions)
	t.Add("object cache", "gc backlog (threaded list)", db.GCBacklog())
	t.Add("persistent store", "neostore.nodes.db", fmt.Sprintf("%d B", sizes["nodes"]))
	t.Add("persistent store", "neostore.rels.db", fmt.Sprintf("%d B", sizes["rels"]))
	t.Add("persistent store", "neostore.props.db", fmt.Sprintf("%d B", sizes["props"]))
	t.Add("persistent store", "neostore.dyn.db", fmt.Sprintf("%d B", sizes["dyn"]))
	t.Add("wal", "segments", fmt.Sprintf("%d B", dirSize(dir+"/wal")))
	t.Add("txn system", "commits", db.Stats().Committed)
	t.Add("txn system", "watermark (commit TS)", db.Watermark())
	t.Add("graph", "people / knows", fmt.Sprintf("%d / %d", len(g.People), len(g.Rels)))
	t.Print(w)
	return nil
}
