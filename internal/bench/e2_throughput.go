package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"neograph"
	"neograph/internal/workload"
)

// E2Config parameterises the throughput comparison.
type E2Config struct {
	People   int
	Clients  []int // client counts to sweep
	Duration time.Duration
	Seed     int64
}

// Mix is a read/write transaction mix.
type Mix struct {
	Name     string
	ReadFrac float64 // probability a transaction is read-only
}

// DefaultMixes are the three mixes from DESIGN.md's E2 row.
var DefaultMixes = []Mix{
	{"read-heavy 90/10", 0.9},
	{"balanced 50/50", 0.5},
	{"write-heavy 10/90", 0.1},
}

// E2Row is one measured cell.
type E2Row struct {
	Mix       string
	Clients   int
	Isolation string
	Result    Result
}

// RunE2 measures committed-transactions-per-second for SI versus the RC
// baseline across client counts and mixes. The paper's claim (§1/§4):
// removing short read locks means SI readers never block, so SI
// dominates as the write fraction grows.
func RunE2(w io.Writer, cfg E2Config) ([]E2Row, error) {
	if cfg.People <= 0 {
		cfg.People = 2000
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 4, 16}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}

	var rows []E2Row
	for _, mix := range DefaultMixes {
		for _, clients := range cfg.Clients {
			for _, iso := range []struct {
				name  string
				level func(*neograph.DB) *neograph.Tx
			}{
				{"SI", func(db *neograph.DB) *neograph.Tx { return db.BeginIsolation(neograph.SnapshotIsolation) }},
				{"RC", func(db *neograph.DB) *neograph.Tx { return db.BeginIsolation(neograph.ReadCommitted) }},
			} {
				db, err := neograph.Open(neograph.Options{})
				if err != nil {
					return nil, err
				}
				g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 3, Seed: cfg.Seed})
				if err != nil {
					db.Close()
					return nil, err
				}
				begin := iso.level
				op := func(c int, r *rand.Rand) error {
					tx := begin(db)
					var err error
					if r.Float64() < mix.ReadFrac {
						// Read transaction: point reads plus a 1-hop traversal.
						for k := 0; k < 3 && err == nil; k++ {
							_, err = tx.GetNode(g.People[r.Intn(len(g.People))])
						}
						if err == nil {
							_, err = tx.Relationships(g.People[r.Intn(len(g.People))], neograph.Both)
						}
						tx.Abort() // read-only
						return err
					}
					// Write transaction: one property update.
					err = tx.SetNodeProp(g.People[r.Intn(len(g.People))], "balance", neograph.Int(r.Int63n(1<<20)))
					if err != nil {
						tx.Abort()
						return err
					}
					return tx.Commit()
				}
				res := (&Runner{Clients: clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
					Run(fmt.Sprintf("%s/%d/%s", mix.Name, clients, iso.name))
				rows = append(rows, E2Row{Mix: mix.Name, Clients: clients, Isolation: iso.name, Result: res})
				db.Close()
			}
		}
	}

	if w != nil {
		section(w, "E2", "throughput, SI vs RC (paper §1/§4: no read locks under SI)")
		t := &Table{Headers: []string{"mix", "clients", "isolation", "txn/s", "abort rate", "p50", "p95"}}
		for _, r := range rows {
			t.Add(r.Mix, r.Clients, r.Isolation, r.Result.Throughput(), r.Result.AbortRate(), r.Result.P50, r.Result.P95)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: SI >= RC, gap widening with write fraction and clients")
	}
	return rows, nil
}

// E2DurableConfig parameterises the synced-commit throughput comparison.
type E2DurableConfig struct {
	People   int
	Clients  []int // client counts to sweep
	Duration time.Duration
	Seed     int64
	// Dir is the working directory for the durable stores (a temp dir per
	// cell when empty). Throughput here is disk-flush-bound, so the
	// filesystem under Dir is part of what is measured.
	Dir string
}

// E2DurableRow is one measured cell of the fsync comparison.
type E2DurableRow struct {
	Mode    string // "group" (batched fsync) or "per-commit" (baseline)
	Clients int
	Result  Result
	// Flushes and SyncedCommits are the engine's group-commit counters;
	// MeanBatch = SyncedCommits/Flushes is the realised group size.
	Flushes       uint64
	SyncedCommits uint64
	MeanBatch     float64
}

// RunE2Durable measures committed-transactions-per-second with the WAL
// fsync enabled, group commit versus the per-commit-fsync baseline. With
// one client both modes pay one fsync per commit; as writers are added the
// baseline stays serialised on the disk flush while group commit amortises
// one fsync over the whole batch.
func RunE2Durable(w io.Writer, cfg E2DurableConfig) ([]E2DurableRow, error) {
	if cfg.People <= 0 {
		cfg.People = 1000
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 8, 32}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}

	var rows []E2DurableRow
	for _, clients := range cfg.Clients {
		for _, mode := range []struct {
			name    string
			noGroup bool
		}{
			{"per-commit", true},
			{"group", false},
		} {
			dir, err := os.MkdirTemp(cfg.Dir, "neograph-e2d-*")
			if err != nil {
				return nil, err
			}
			db, err := neograph.Open(neograph.Options{Dir: dir, DisableGroupCommit: mode.noGroup})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 3, Seed: cfg.Seed})
			if err != nil {
				db.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			op := func(c int, r *rand.Rand) error {
				// Write transaction: one property update, committed durably.
				tx := db.Begin()
				if err := tx.SetNodeProp(g.People[r.Intn(len(g.People))], "balance", neograph.Int(r.Int63n(1<<20))); err != nil {
					tx.Abort()
					return err
				}
				return tx.Commit()
			}
			st0 := db.Stats() // exclude BuildSocial's setup commits
			res := (&Runner{Clients: clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
				Run(fmt.Sprintf("durable/%d/%s", clients, mode.name))
			st := db.Stats()
			row := E2DurableRow{
				Mode: mode.name, Clients: clients, Result: res,
				Flushes:       st.WALFlushes - st0.WALFlushes,
				SyncedCommits: st.WALSyncedCommits - st0.WALSyncedCommits,
			}
			if row.Flushes > 0 {
				row.MeanBatch = float64(row.SyncedCommits) / float64(row.Flushes)
			}
			rows = append(rows, row)
			db.Close()
			os.RemoveAll(dir)
		}
	}

	if w != nil {
		section(w, "E2d", "synced commit throughput, group commit vs per-commit fsync")
		t := &Table{Headers: []string{"clients", "mode", "commit/s", "mean batch", "p50", "p95", "speedup"}}
		base := map[int]float64{}
		for _, r := range rows {
			if r.Mode == "per-commit" {
				base[r.Clients] = r.Result.Throughput()
			}
		}
		for _, r := range rows {
			speedup := "-"
			if r.Mode == "group" && base[r.Clients] > 0 {
				speedup = fmt.Sprintf("%.2fx", r.Result.Throughput()/base[r.Clients])
			}
			mean := "-"
			if r.MeanBatch > 0 {
				mean = fmt.Sprintf("%.1f", r.MeanBatch)
			}
			t.Add(r.Clients, r.Mode, r.Result.Throughput(), mean, r.Result.P50, r.Result.P95, speedup)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: parity at 1 client; group >= 2x per-commit by 8+ clients")
	}
	return rows, nil
}
