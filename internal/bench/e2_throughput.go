package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"neograph"
	"neograph/internal/workload"
)

// E2Config parameterises the throughput comparison.
type E2Config struct {
	People   int
	Clients  []int // client counts to sweep
	Duration time.Duration
	Seed     int64
}

// Mix is a read/write transaction mix.
type Mix struct {
	Name     string
	ReadFrac float64 // probability a transaction is read-only
}

// DefaultMixes are the three mixes from DESIGN.md's E2 row.
var DefaultMixes = []Mix{
	{"read-heavy 90/10", 0.9},
	{"balanced 50/50", 0.5},
	{"write-heavy 10/90", 0.1},
}

// E2Row is one measured cell.
type E2Row struct {
	Mix       string
	Clients   int
	Isolation string
	Result    Result
}

// RunE2 measures committed-transactions-per-second for SI versus the RC
// baseline across client counts and mixes. The paper's claim (§1/§4):
// removing short read locks means SI readers never block, so SI
// dominates as the write fraction grows.
func RunE2(w io.Writer, cfg E2Config) ([]E2Row, error) {
	if cfg.People <= 0 {
		cfg.People = 2000
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 4, 16}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}

	var rows []E2Row
	for _, mix := range DefaultMixes {
		for _, clients := range cfg.Clients {
			for _, iso := range []struct {
				name  string
				level func(*neograph.DB) *neograph.Tx
			}{
				{"SI", func(db *neograph.DB) *neograph.Tx { return db.BeginIsolation(neograph.SnapshotIsolation) }},
				{"RC", func(db *neograph.DB) *neograph.Tx { return db.BeginIsolation(neograph.ReadCommitted) }},
			} {
				db, err := neograph.Open(neograph.Options{})
				if err != nil {
					return nil, err
				}
				g, err := workload.BuildSocial(db, workload.SocialConfig{People: cfg.People, AvgFriends: 3, Seed: cfg.Seed})
				if err != nil {
					db.Close()
					return nil, err
				}
				begin := iso.level
				op := func(c int, r *rand.Rand) error {
					tx := begin(db)
					var err error
					if r.Float64() < mix.ReadFrac {
						// Read transaction: point reads plus a 1-hop traversal.
						for k := 0; k < 3 && err == nil; k++ {
							_, err = tx.GetNode(g.People[r.Intn(len(g.People))])
						}
						if err == nil {
							_, err = tx.Relationships(g.People[r.Intn(len(g.People))], neograph.Both)
						}
						tx.Abort() // read-only
						return err
					}
					// Write transaction: one property update.
					err = tx.SetNodeProp(g.People[r.Intn(len(g.People))], "balance", neograph.Int(r.Int63n(1<<20)))
					if err != nil {
						tx.Abort()
						return err
					}
					return tx.Commit()
				}
				res := (&Runner{Clients: clients, Duration: cfg.Duration, Seed: cfg.Seed, Op: op}).
					Run(fmt.Sprintf("%s/%d/%s", mix.Name, clients, iso.name))
				rows = append(rows, E2Row{Mix: mix.Name, Clients: clients, Isolation: iso.name, Result: res})
				db.Close()
			}
		}
	}

	if w != nil {
		section(w, "E2", "throughput, SI vs RC (paper §1/§4: no read locks under SI)")
		t := &Table{Headers: []string{"mix", "clients", "isolation", "txn/s", "abort rate", "p50", "p95"}}
		for _, r := range rows {
			t.Add(r.Mix, r.Clients, r.Isolation, r.Result.Throughput(), r.Result.AbortRate(), r.Result.P50, r.Result.P95)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: SI >= RC, gap widening with write fraction and clients")
	}
	return rows, nil
}
