package bench

import (
	"fmt"
	"io"
	"time"

	"neograph"
)

// E6Config parameterises the versioned-index experiment.
type E6Config struct {
	Nodes         int
	Selectivities []float64 // fraction of nodes carrying the probed label
	Lookups       int       // lookups per measurement
	Seed          int64
}

// E6Row is one measured cell.
type E6Row struct {
	Selectivity float64
	Hits        int
	IndexTime   time.Duration // per lookup
	ScanTime    time.Duration // per lookup
}

// RunE6 measures the versioned label index (§4) against the full-scan
// baseline, across selectivities. The snapshot filtering is exercised by
// interleaving label flips so the index holds dead entries that lookups
// must skip.
func RunE6(w io.Writer, cfg E6Config) ([]E6Row, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 20_000
	}
	if len(cfg.Selectivities) == 0 {
		cfg.Selectivities = []float64{0.001, 0.01, 0.1}
	}
	if cfg.Lookups <= 0 {
		cfg.Lookups = 20
	}

	var rows []E6Row
	for _, sel := range cfg.Selectivities {
		db, err := neograph.Open(neograph.Options{})
		if err != nil {
			return nil, err
		}
		label := "Hot"
		want := int(float64(cfg.Nodes) * sel)
		if want < 1 {
			want = 1
		}
		const batch = 1024
		made := 0
		for made < cfg.Nodes {
			n := minInt(batch, cfg.Nodes-made)
			base := made
			err := db.Update(0, func(tx *neograph.Tx) error {
				for i := 0; i < n; i++ {
					labels := []string{"Node"}
					if (base+i)%(cfg.Nodes/want+1) == 0 {
						labels = append(labels, label)
					}
					if _, err := tx.CreateNode(labels, neograph.Props{"i": neograph.Int(int64(base + i))}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			made += n
		}
		// Churn: flip the label on some nodes so dead index entries exist.
		db.Update(0, func(tx *neograph.Tx) error {
			hits, err := tx.NodesByLabel(label)
			if err != nil {
				return err
			}
			for i, id := range hits {
				if i%3 == 0 {
					if err := tx.RemoveLabel(id, label); err != nil {
						return err
					}
					if err := tx.AddLabel(id, label); err != nil {
						return err
					}
				}
			}
			return nil
		})

		var hits int
		var indexPer, scanPer time.Duration
		err = db.View(func(tx *neograph.Tx) error {
			t0 := time.Now()
			var got []neograph.NodeID
			for i := 0; i < cfg.Lookups; i++ {
				var err error
				got, err = tx.NodesByLabel(label)
				if err != nil {
					return err
				}
			}
			indexPer = time.Since(t0) / time.Duration(cfg.Lookups)
			hits = len(got)

			t0 = time.Now()
			var scanned []neograph.NodeID
			for i := 0; i < cfg.Lookups; i++ {
				scanned = scanned[:0]
				all, err := tx.AllNodes()
				if err != nil {
					return err
				}
				for _, id := range all {
					has, err := tx.HasLabel(id, label)
					if err != nil {
						return err
					}
					if has {
						scanned = append(scanned, id)
					}
				}
			}
			scanPer = time.Since(t0) / time.Duration(cfg.Lookups)
			if len(scanned) != hits {
				return fmt.Errorf("bench: index (%d) and scan (%d) disagree", hits, len(scanned))
			}
			return nil
		})
		db.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, E6Row{Selectivity: sel, Hits: hits, IndexTime: indexPer, ScanTime: scanPer})
	}

	if w != nil {
		section(w, "E6", "versioned label index vs full scan (paper §4)")
		t := &Table{Headers: []string{"selectivity", "hits", "index/lookup", "scan/lookup", "speedup"}}
		for _, r := range rows {
			sp := float64(r.ScanTime) / float64(maxInt64(int64(r.IndexTime), 1))
			t.Add(fmt.Sprintf("%.3f", r.Selectivity), r.Hits, r.IndexTime, r.ScanTime, sp)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: index wins at low selectivity; gap narrows as selectivity -> 1")
	}
	return rows, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
