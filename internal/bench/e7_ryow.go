package bench

import (
	"fmt"
	"io"
	"time"

	"neograph"
)

// E7Config parameterises the read-your-own-writes overhead experiment.
type E7Config struct {
	BaseNodes     int   // committed nodes under the probed label
	WriteSetSizes []int // staged writes in the probing transaction
	Lookups       int
	Seed          int64
}

// E7Row is one measured cell.
type E7Row struct {
	WriteSet   int
	PerLookup  time.Duration
	ResultSize int
}

// RunE7 quantifies the enriched iterator of §4: every snapshot lookup
// must merge the transaction's private write set over the committed
// index/iterator result. The merge cost grows with the write-set size —
// the table shows per-lookup latency against staged writes.
func RunE7(w io.Writer, cfg E7Config) ([]E7Row, error) {
	if cfg.BaseNodes <= 0 {
		cfg.BaseNodes = 5_000
	}
	if len(cfg.WriteSetSizes) == 0 {
		cfg.WriteSetSizes = []int{0, 10, 100, 1000, 10000}
	}
	if cfg.Lookups <= 0 {
		cfg.Lookups = 50
	}
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	const label = "Probe"
	const batch = 1024
	made := 0
	for made < cfg.BaseNodes {
		n := minInt(batch, cfg.BaseNodes-made)
		err := db.Update(0, func(tx *neograph.Tx) error {
			for i := 0; i < n; i++ {
				if _, err := tx.CreateNode([]string{label}, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		made += n
	}

	var rows []E7Row
	for _, ws := range cfg.WriteSetSizes {
		tx := db.Begin()
		for i := 0; i < ws; i++ {
			if _, err := tx.CreateNode([]string{label}, nil); err != nil {
				tx.Abort()
				return nil, err
			}
		}
		t0 := time.Now()
		var got []neograph.NodeID
		for i := 0; i < cfg.Lookups; i++ {
			var err error
			got, err = tx.NodesByLabel(label)
			if err != nil {
				tx.Abort()
				return nil, err
			}
		}
		per := time.Since(t0) / time.Duration(cfg.Lookups)
		if len(got) != cfg.BaseNodes+ws {
			tx.Abort()
			return nil, fmt.Errorf("bench: RYOW merge lost rows: %d != %d", len(got), cfg.BaseNodes+ws)
		}
		tx.Abort()
		rows = append(rows, E7Row{WriteSet: ws, PerLookup: per, ResultSize: len(got)})
	}

	if w != nil {
		section(w, "E7", "read-your-own-writes iterator merge overhead (paper §3/§4)")
		t := &Table{Headers: []string{"staged writes", "result size", "per lookup"}}
		for _, r := range rows {
			t.Add(r.WriteSet, r.ResultSize, r.PerLookup)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: latency grows smoothly with write-set size; correctness is exact")
	}
	return rows, nil
}
