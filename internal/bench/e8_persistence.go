package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"neograph"
)

// E8Config parameterises the persistence experiment.
type E8Config struct {
	Entities       int // nodes written
	UpdatesPerNode int // committed versions per node
	Seed           int64
	// Dir is the working directory (a temp dir is created when empty).
	Dir string
	// SyncedWriters drives the group-commit durability phase: that many
	// concurrent writers commit with fsync enabled against the recovered
	// store, then the store is crashed and recovered again. Zero means 8.
	SyncedWriters int
	// SyncedCommitsPerWriter is the per-writer commit count for the synced
	// phase. Zero means 25.
	SyncedCommitsPerWriter int
}

// E8Result captures the persistence measurements.
type E8Result struct {
	Entities          int
	VersionsPerEntity int
	// LatestOnlyBytes is what the checkpointer actually wrote (the
	// paper's design: one version per entity).
	LatestOnlyBytes uint64
	// AllVersionsBytes is the ablation: what a store persisting every
	// version would have written.
	AllVersionsBytes uint64
	WALBeforeCkpt    int64
	WALAfterCkpt     int64
	RecoveryTime     time.Duration
	RecoveredNodes   int
	// Group-commit durability phase: synced concurrent commits, the
	// fsyncs they shared, and how many of those commits survived a second
	// crash+recovery (must equal SyncedCommits).
	SyncedCommits    uint64
	SyncedFlushes    uint64
	SyncedThroughput float64 // synced commits per second
	SyncedRecovered  int
}

// RunE8 validates §4's persistence design: only the most recent committed
// version of each entity reaches the store. The ablation column shows the
// write amplification a persist-every-version design would pay, and the
// recovery measurement shows a crash restart (store + WAL tail replay).
func RunE8(w io.Writer, cfg E8Config) (E8Result, error) {
	if cfg.Entities <= 0 {
		cfg.Entities = 2_000
	}
	if cfg.UpdatesPerNode <= 0 {
		cfg.UpdatesPerNode = 5
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "neograph-e8-*")
		if err != nil {
			return E8Result{}, err
		}
		defer os.RemoveAll(dir)
	}

	db, err := neograph.Open(neograph.Options{Dir: dir, DisableSyncCommits: true})
	if err != nil {
		return E8Result{}, err
	}
	nodes := make([]neograph.NodeID, 0, cfg.Entities)
	const batch = 512
	for len(nodes) < cfg.Entities {
		n := minInt(batch, cfg.Entities-len(nodes))
		err := db.Update(0, func(tx *neograph.Tx) error {
			for i := 0; i < n; i++ {
				id, err := tx.CreateNode([]string{"Data"}, neograph.Props{
					"v":   neograph.Int(0),
					"pad": neograph.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
				})
				if err != nil {
					return err
				}
				nodes = append(nodes, id)
			}
			return nil
		})
		if err != nil {
			db.Close()
			return E8Result{}, err
		}
	}
	for u := 1; u < cfg.UpdatesPerNode; u++ {
		for start := 0; start < len(nodes); start += batch {
			end := minInt(start+batch, len(nodes))
			err := db.Update(0, func(tx *neograph.Tx) error {
				for _, id := range nodes[start:end] {
					if err := tx.SetNodeProp(id, "v", neograph.Int(int64(u))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				db.Close()
				return E8Result{}, err
			}
		}
	}

	res := E8Result{Entities: cfg.Entities, VersionsPerEntity: cfg.UpdatesPerNode}
	res.WALBeforeCkpt = dirSize(filepath.Join(dir, "wal"))
	// The all-versions ablation: every version's bytes.
	res.AllVersionsBytes = uint64(db.VersionBytes())
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return E8Result{}, err
	}
	res.LatestOnlyBytes = db.Stats().CheckpointBytes
	res.WALAfterCkpt = dirSize(filepath.Join(dir, "wal"))
	// Crash and recover.
	if err := db.Engine().Crash(); err != nil {
		return E8Result{}, err
	}
	t0 := time.Now()
	db2, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		return E8Result{}, err
	}
	res.RecoveryTime = time.Since(t0)
	db2.View(func(tx *neograph.Tx) error {
		all, err := tx.AllNodes()
		if err != nil {
			return err
		}
		res.RecoveredNodes = len(all)
		return nil
	})
	db2.Close()

	// Group-commit durability phase: concurrent writers commit with fsync
	// enabled (the batched group-commit pipeline), then crash and recover
	// once more — every acknowledged commit must be replayed.
	writers := cfg.SyncedWriters
	if writers <= 0 {
		writers = 8
	}
	perWriter := cfg.SyncedCommitsPerWriter
	if perWriter <= 0 {
		perWriter = 25
	}
	db3, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		return E8Result{}, err
	}
	t0 = time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				err := db3.Update(3, func(tx *neograph.Tx) error {
					_, err := tx.CreateNode([]string{"Synced"}, neograph.Props{
						"writer": neograph.Int(int64(i)),
						"seq":    neograph.Int(int64(j)),
					})
					return err
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errCh)
	if err := <-errCh; err != nil {
		db3.Close()
		return E8Result{}, err
	}
	st := db3.Stats()
	res.SyncedCommits = st.WALSyncedCommits
	res.SyncedFlushes = st.WALFlushes
	res.SyncedThroughput = float64(writers*perWriter) / elapsed.Seconds()
	if err := db3.Engine().Crash(); err != nil {
		return E8Result{}, err
	}
	db4, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		return E8Result{}, err
	}
	db4.View(func(tx *neograph.Tx) error {
		ids, err := tx.NodesByLabel("Synced")
		if err != nil {
			return err
		}
		res.SyncedRecovered = len(ids)
		return nil
	})
	db4.Close()

	if w != nil {
		section(w, "E8", "persist only the latest committed version (paper §4)")
		t := &Table{Headers: []string{"metric", "value"}}
		t.Add("entities", res.Entities)
		t.Add("versions per entity", res.VersionsPerEntity)
		t.Add("checkpoint bytes (latest-only, paper)", res.LatestOnlyBytes)
		t.Add("version bytes in cache (all-versions ablation)", res.AllVersionsBytes)
		t.Add("wal bytes before checkpoint", res.WALBeforeCkpt)
		t.Add("wal bytes after checkpoint", res.WALAfterCkpt)
		t.Add("crash recovery time", res.RecoveryTime)
		t.Add("recovered nodes", res.RecoveredNodes)
		t.Add("synced commits (group commit)", res.SyncedCommits)
		t.Add("commit fsyncs", res.SyncedFlushes)
		t.Add("synced commit/s", res.SyncedThroughput)
		t.Add("synced commits recovered after crash", res.SyncedRecovered)
		t.Print(w)
		fmt.Fprintln(w, "expected shape: latest-only bytes ~= 1/versions of the all-versions ablation;")
		fmt.Fprintln(w, "WAL shrinks at checkpoint; recovery restores every entity;")
		fmt.Fprintln(w, "fsyncs <= synced commits (group commit) and none of those commits is lost")
	}
	return res, nil
}

func dirSize(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}
