package bench

import (
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"neograph"
	"neograph/internal/cluster"
	"neograph/internal/server"
)

// E15Config parameterises the auto-failover unavailability experiment.
type E15Config struct {
	// PreCommits is how many acknowledged commits land before the
	// primary is killed.
	PreCommits int
	// SyncLevels are the SyncReplicas settings swept (0 = async
	// baseline, where acknowledged loss is possible; 1 = quorum, where
	// it must be zero).
	SyncLevels []int
	// SuspectAfter / ElectionTimeout / ProbeEvery tune the controllers;
	// zero picks bench defaults (200ms / 1s / 50ms) — production-shaped
	// but fast enough for a smoke run.
	SuspectAfter    time.Duration
	ElectionTimeout time.Duration
	ProbeEvery      time.Duration
	Seed            int64
}

// E15Row is one sync level's measurement of the window a primary death
// leaves the cluster unwritable.
type E15Row struct {
	SyncReplicas int `json:"sync_replicas"`
	PreCommits   int `json:"pre_commits"`
	// UnavailSeconds is last-ack-before-kill to first-commit-after-auto-
	// promote: the full client-visible write outage, covering suspicion,
	// quorum confirmation, election, and promotion.
	UnavailSeconds float64 `json:"unavail_seconds"`
	// RecoveriesPS is 1/UnavailSeconds — the higher-is-better form the
	// trend gate tracks.
	RecoveriesPS float64 `json:"recoveries_per_sec"`
	// Survived counts pre-kill acknowledged commits readable on the new
	// primary; Lost is PreCommits - Survived. Lost must be 0 at quorum
	// >= 1; at quorum 0 it reports what async replication gave up.
	Survived int `json:"survived"`
	Lost     int `json:"lost"`
	// WinnerEpoch sanity-checks that exactly one promotion happened.
	WinnerEpoch uint64 `json:"winner_epoch"`
}

// RunE15 measures the unavailability window of a self-driving failover
// (E15): a 3-node fleet under cluster controllers, the primary killed
// hard mid-workload, and the clock running from the last acknowledged
// commit until the auto-promoted winner accepts the next one. No
// operator action occurs between those two commits.
func RunE15(w io.Writer, cfg E15Config) ([]E15Row, error) {
	if cfg.PreCommits <= 0 {
		cfg.PreCommits = 100
	}
	if len(cfg.SyncLevels) == 0 {
		cfg.SyncLevels = []int{0, 1}
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 200 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = time.Second
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 50 * time.Millisecond
	}

	var rows []E15Row
	for _, level := range cfg.SyncLevels {
		row, err := runE15Config(level, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}

	if w != nil {
		section(w, "E15", "auto-failover unavailability window (last ack -> first post-promotion commit)")
		t := &Table{Headers: []string{"sync replicas", "pre commits", "unavail", "recoveries/s", "survived", "lost", "winner epoch"}}
		for _, r := range rows {
			t.Add(r.SyncReplicas, r.PreCommits,
				time.Duration(r.UnavailSeconds*float64(time.Second)).Round(time.Millisecond),
				fmt.Sprintf("%.2f", r.RecoveriesPS), r.Survived, r.Lost, r.WinnerEpoch)
		}
		t.Print(w)
		fmt.Fprintln(w, "expected shape: unavailability ~ SuspectAfter + a few probe ticks at both levels;")
		fmt.Fprintln(w, "lost must be 0 at quorum >= 1 (async level 0 may lose the unreplicated tail)")
	}
	return rows, nil
}

// e15Node is one fleet member: DB + server + controller.
type e15Node struct {
	db   *neograph.DB
	srv  *server.Server
	ctrl *cluster.Controller
	addr string
	repl string
}

func (n *e15Node) close() {
	if n.ctrl != nil {
		n.ctrl.Stop()
	}
	if n.srv != nil {
		n.srv.Close()
	}
	if n.db != nil {
		n.db.Close()
	}
}

// reservePort grabs and releases a loopback port.
func reservePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func runE15Config(level int, cfg E15Config) (E15Row, error) {
	row := E15Row{SyncReplicas: level, PreCommits: cfg.PreCommits}

	nodes := make([]*e15Node, 3)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.close()
			}
		}
	}()
	for i := range nodes {
		dir, err := os.MkdirTemp("", "neograph-e15-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(dir)
		addr, err := reservePort()
		if err != nil {
			return row, err
		}
		repl, err := reservePort()
		if err != nil {
			return row, err
		}
		n := &e15Node{addr: addr, repl: repl}
		opts := neograph.Options{
			Dir:                dir,
			SyncReplicas:       level,
			SyncReplicaTimeout: -1,
		}
		if i == 0 {
			opts.ReplicationAddr = repl
		} else {
			opts.ReplicaOf = nodes[0].repl
		}
		if n.db, err = neograph.Open(opts); err != nil {
			return row, err
		}
		if n.srv, err = server.New(n.db, addr); err != nil {
			return row, err
		}
		nodes[i] = n
	}
	for i, n := range nodes {
		var peers []string
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p.addr)
			}
		}
		ctrl, err := cluster.New(n.db, cluster.Options{
			NodeID:          uint64(i + 1),
			SelfAddr:        n.addr,
			SelfReplAddr:    n.repl,
			Peers:           peers,
			SuspectAfter:    cfg.SuspectAfter,
			ElectionTimeout: cfg.ElectionTimeout,
			ProbeEvery:      cfg.ProbeEvery,
		})
		if err != nil {
			return row, err
		}
		n.srv.SetClusterInfo(func() any { return ctrl.NodeStatus() })
		ctrl.Start()
		n.ctrl = ctrl
	}

	// Warm-up: both replicas streaming before the clock matters.
	warm := nodes[0].db.Begin()
	if _, err := warm.CreateNode([]string{"E15Warm"}, nil); err != nil {
		warm.Abort()
		return row, err
	}
	if err := warm.Commit(); err != nil {
		return row, err
	}
	for i, n := range nodes[1:] {
		if err := n.db.WaitApplied(warm.CommitLSN(), 60*time.Second); err != nil {
			return row, fmt.Errorf("replica %d warm-up: %w", i, err)
		}
	}

	// Acked workload, then a hard kill.
	for i := 0; i < cfg.PreCommits; i++ {
		err := nodes[0].db.Update(3, func(tx *neograph.Tx) error {
			_, err := tx.CreateNode([]string{"E15"}, neograph.Props{"i": neograph.Int(int64(i))})
			return err
		})
		if err != nil {
			return row, err
		}
	}
	lastAck := time.Now()
	nodes[0].srv.Close()
	nodes[0].db.Crash()
	go nodes[0].ctrl.Stop() // its last tick may still be draining probes

	// The unavailability window closes at the first commit the
	// auto-promoted winner acknowledges; survivors reject writes with
	// ErrReadOnlyReplica until then.
	deadline := time.Now().Add(60 * time.Second)
	var winner *e15Node
	for winner == nil {
		for _, n := range nodes[1:] {
			err := n.db.Update(1, func(tx *neograph.Tx) error {
				_, err := tx.CreateNode([]string{"E15"}, neograph.Props{"i": neograph.Int(int64(cfg.PreCommits))})
				return err
			})
			if err == nil {
				winner = n
				break
			}
		}
		if winner == nil {
			if time.Now().After(deadline) {
				return row, fmt.Errorf("bench: E15 no node auto-promoted within 60s at quorum %d", level)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	row.UnavailSeconds = time.Since(lastAck).Seconds()
	row.RecoveriesPS = 1 / row.UnavailSeconds
	row.WinnerEpoch, _ = winner.db.Epoch()

	// Acked survival census on the winner (its own post-kill commit is
	// excluded by the index property range).
	survived := 0
	err := winner.db.View(func(tx *neograph.Tx) error {
		ids, err := tx.NodesByLabel("E15")
		if err != nil {
			return err
		}
		for _, id := range ids {
			n, err := tx.GetNode(id)
			if err != nil {
				return err
			}
			if v, _ := n.Props["i"].AsInt(); v < int64(cfg.PreCommits) {
				survived++
			}
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	row.Survived = survived
	row.Lost = cfg.PreCommits - survived
	if level >= 1 && row.Lost > 0 {
		return row, fmt.Errorf("bench: E15 lost %d acknowledged commits at quorum %d", row.Lost, level)
	}
	return row, nil
}
