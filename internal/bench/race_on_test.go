//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this test
// binary: per-operation CPU cost is several times higher, which starves
// timing-sensitive shape assertions on small machines.
const raceEnabled = true
