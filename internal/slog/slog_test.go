package slog

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the concurrency test read while loggers write.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLevels(t *testing.T) {
	var buf syncBuffer
	l := New(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := buf.String()
	if strings.Contains(out, "DEBUG") || strings.Contains(out, "INFO") {
		t.Fatalf("below-level records written: %q", out)
	}
	if !strings.Contains(out, "WARN w") || !strings.Contains(out, "ERROR e") {
		t.Fatalf("missing records: %q", out)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatalf("SetLevel(debug) not effective")
	}
	l.Debug("now")
	if !strings.Contains(buf.String(), "DEBUG now") {
		t.Fatalf("debug record missing after SetLevel")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatalf("ParseLevel accepted garbage")
	}
}

func TestFieldsAndFormatting(t *testing.T) {
	var buf syncBuffer
	l := New(&buf, LevelInfo).With("component", "wal")
	l.Info("fsync done", "batch", 12, "took", 250*time.Millisecond,
		"err", errors.New("disk on fire"), "path", "/var/lib/ng data")
	out := buf.String()
	for _, w := range []string{
		"component=wal",
		"batch=12",
		"took=250ms",
		`err="disk on fire"`,
		`path="/var/lib/ng data"`,
		`"fsync done"`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("output %q missing %q", out, w)
		}
	}
	// Dangling key is marked, not silently dropped.
	l.Info("odd", "lonely")
	if !strings.Contains(buf.String(), "lonely=!MISSING") {
		t.Fatalf("dangling key not marked: %q", buf.String())
	}
}

func TestWithTrace(t *testing.T) {
	var buf syncBuffer
	l := New(&buf, LevelInfo)
	l.WithTrace("abc123").Info("traced op")
	l.WithTrace("").Info("untraced op")
	out := buf.String()
	if !strings.Contains(out, "trace=abc123") {
		t.Fatalf("trace id not stamped: %q", out)
	}
	if strings.Count(out, "trace=") != 1 {
		t.Fatalf("empty trace id stamped a field: %q", out)
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	l.SetLevel(LevelDebug)
	if l.With("k", "v") != nil {
		t.Fatalf("With on nil logger allocated")
	}
	if l.Enabled(LevelError) {
		t.Fatalf("nil logger claims enabled")
	}
}

func TestConcurrentWriters(t *testing.T) {
	var buf syncBuffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sub := l.With("writer", n)
			for j := 0; j < 100; j++ {
				sub.Info("tick", "j", j)
			}
		}(i)
	}
	wg.Wait()
	// Every line must be whole: timestamp-first, newline-terminated.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, "INFO tick") {
			t.Fatalf("torn line: %q", line)
		}
	}
}
