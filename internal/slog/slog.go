// Package slog is a small leveled, structured (key=value) logger shared
// by every neograph component. It exists so the engine, server, and
// replication layers log through one seam — levels settable at runtime,
// fields pre-bindable per component, trace IDs stamped when present —
// without pulling in a logging dependency. (The name predates any
// stdlib; internal packages never import the standard log/slog.)
//
// A nil *Logger is valid and silent, so library code logs
// unconditionally and tests stay quiet by default.
package slog

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. Records below the logger's level are
// dropped before formatting.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int32(l))
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("slog: unknown level %q (want debug, info, warn or error)", s)
}

// sink is the shared write end: every Logger derived via With points at
// the same sink, so SetLevel anywhere governs the whole family and
// lines never interleave.
type sink struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// Logger formats records as
//
//	2006-01-02T15:04:05.000Z LEVEL message key=value ...
//
// Bound fields (With) render before per-call ones.
type Logger struct {
	s      *sink
	fields string // pre-rendered " k=v ..." suffix
}

// New builds a Logger writing to w at the given minimum level.
func New(w io.Writer, level Level) *Logger {
	s := &sink{w: w}
	s.level.Store(int32(level))
	return &Logger{s: s}
}

// SetLevel changes the minimum level for this logger and everything
// sharing its sink (all With-derived loggers).
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.s.level.Store(int32(level))
}

// Enabled reports whether a record at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.s.level.Load())
}

// With returns a Logger that prefixes every record with the given
// key/value pairs. With(nil receiver) stays nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.fields)
	appendKV(&b, kv)
	return &Logger{s: l.s, fields: b.String()}
}

// WithTrace binds a trace ID field; an empty ID binds nothing, so call
// sites can stamp unconditionally.
func (l *Logger) WithTrace(traceID string) *Logger {
	if traceID == "" {
		return l
	}
	return l.With("trace", traceID)
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.fields))
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	b.WriteString(quoteIfNeeded(msg))
	b.WriteString(l.fields)
	appendKV(&b, kv)
	b.WriteByte('\n')
	l.s.mu.Lock()
	io.WriteString(l.s.w, b.String())
	l.s.mu.Unlock()
}

// appendKV renders " k=v" pairs; a dangling key gets an explicit
// missing-value marker instead of silently shifting the rest.
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(keyString(kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(valueString(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteByte(' ')
		b.WriteString(keyString(kv[len(kv)-1]))
		b.WriteString(`=!MISSING`)
	}
}

func keyString(k any) string {
	if s, ok := k.(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

func valueString(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		if t == nil {
			return "<nil>"
		}
		return t.Error()
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return t.String()
	}
	return fmt.Sprint(v)
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
