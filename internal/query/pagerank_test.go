package query

import (
	"math"
	"testing"

	"neograph"
)

func TestPageRankStar(t *testing.T) {
	db := openDB(t)
	// Star: spokes all point at the hub; the hub must rank highest.
	var hub neograph.NodeID
	var spokes []neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		hub, _ = tx.CreateNode(nil, nil)
		for i := 0; i < 6; i++ {
			s, _ := tx.CreateNode(nil, nil)
			spokes = append(spokes, s)
			tx.CreateRel("E", s, hub, nil)
		}
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ranks) != 7 {
			t.Fatalf("ranks = %d", len(ranks))
		}
		if ranks[0].Node != hub {
			t.Fatalf("top = %v, want hub %d", ranks[0], hub)
		}
		// Scores sum to ~1.
		sum := 0.0
		for _, r := range ranks {
			sum += r.Score
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("rank mass = %f", sum)
		}
		top := TopK(ranks, 3)
		if len(top) != 3 || top[0].Node != hub {
			t.Fatalf("TopK = %v", top)
		}
		if TopK(ranks, 100)[0].Node != hub || len(TopK(ranks, 100)) != 7 {
			t.Fatal("TopK overflow clamp broken")
		}
		return nil
	})
}

func TestPageRankSymmetricCycle(t *testing.T) {
	db := openDB(t)
	// A directed 4-cycle: perfectly symmetric, all ranks equal.
	var ids []neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		for i := 0; i < 4; i++ {
			id, _ := tx.CreateNode(nil, nil)
			ids = append(ids, id)
		}
		for i := range ids {
			tx.CreateRel("E", ids[i], ids[(i+1)%4], nil)
		}
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ranks {
			if math.Abs(r.Score-0.25) > 1e-4 {
				t.Fatalf("cycle rank %v, want 0.25", r)
			}
		}
		return nil
	})
}

func TestPageRankEmptyAndDangling(t *testing.T) {
	db := openDB(t)
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{})
		if err != nil || ranks != nil {
			t.Fatalf("empty graph: %v, %v", ranks, err)
		}
		return nil
	})
	// Dangling node (no out edges) must not leak rank mass.
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ := tx.CreateNode(nil, nil)
		b, _ := tx.CreateNode(nil, nil)
		tx.CreateRel("E", a, b, nil) // b dangles
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, r := range ranks {
			sum += r.Score
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("dangling leaked mass: sum = %f", sum)
		}
		return nil
	})
}

func TestPageRankTypeFilter(t *testing.T) {
	db := openDB(t)
	var a, b, c neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ = tx.CreateNode(nil, nil)
		b, _ = tx.CreateNode(nil, nil)
		c, _ = tx.CreateNode(nil, nil)
		tx.CreateRel("FOLLOW", a, b, nil)
		tx.CreateRel("IGNORE", a, c, nil)
		tx.CreateRel("FOLLOW", c, b, nil)
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{RelTypes: []string{"FOLLOW"}})
		if err != nil {
			t.Fatal(err)
		}
		if ranks[0].Node != b {
			t.Fatalf("top = %v, want b=%d", ranks[0], b)
		}
		return nil
	})
}
