package query

import (
	"errors"
	"reflect"
	"testing"

	"neograph"
	"neograph/internal/wire"
)

// collect drains a plan into rows via Run.
func collect(t *testing.T, tx *neograph.Tx, plan *wire.QueryPlan) []Row {
	t.Helper()
	var rows []Row
	if err := Run(tx, plan, func(r Row) error {
		rows = append(rows, r)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rows
}

func tagged(t *testing.T, v neograph.Value) []byte {
	t.Helper()
	raw, err := wire.EncodeValue(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestQueryPipelineKHopMatchesBFS checks the streamed khop operator
// agrees with the embedded BFS — same visit set, order, and depths.
func TestQueryPipelineKHopMatchesBFS(t *testing.T) {
	db := openDB(t)
	// A small braided graph: chain with extra skip edges and a branch.
	ids := buildChain(t, db, 12)
	err := db.Update(0, func(tx *neograph.Tx) error {
		for i := 0; i+3 < len(ids); i += 3 {
			if _, err := tx.CreateRel("SKIP", ids[i], ids[i+3], nil); err != nil {
				return err
			}
		}
		branch, err := tx.CreateNode([]string{"B"}, nil)
		if err != nil {
			return err
		}
		_, err = tx.CreateRel("NEXT", ids[1], branch, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *neograph.Tx) error {
		for _, depth := range []int{1, 3, 64} {
			var want []Row
			if err := BFS(tx, ids[0], neograph.Both, depth, func(id neograph.NodeID, d int) bool {
				want = append(want, Row{ID: id, Depth: d})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			got := collect(t, tx, &wire.QueryPlan{
				Seed:   wire.QuerySeed{IDs: []uint64{ids[0]}},
				Stages: []wire.QueryStage{{Op: wire.StageKHop, Dir: "both", Depth: depth}},
			})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("depth %d: khop = %v, want %v", depth, got, want)
			}
		}
		return nil
	})
}

// TestQueryPipelineExpandFilterLimitCount exercises the composable
// operators end to end over label/property data.
func TestQueryPipelineExpandFilterLimitCount(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 8) // each node has prop i = index, label N
	db.View(func(tx *neograph.Tx) error {
		// expand out from node 2: exactly node 3 at depth 1.
		rows := collect(t, tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{IDs: []uint64{ids[2]}},
			Stages: []wire.QueryStage{{Op: wire.StageExpand, Dir: "out"}},
		})
		if len(rows) != 1 || rows[0].ID != ids[3] || rows[0].Depth != 1 {
			t.Errorf("expand = %v", rows)
		}

		// all → filter i < 5 → count = 5.
		rows = collect(t, tx, &wire.QueryPlan{
			Seed: wire.QuerySeed{All: true},
			Stages: []wire.QueryStage{
				{Op: wire.StageFilterLt, Key: "i", Value: tagged(t, neograph.Int(5))},
				{Op: wire.StageCount},
			},
		})
		if len(rows) != 1 || rows[0].Count != 5 {
			t.Errorf("count = %v, want one row of 5", rows)
		}

		// label seed → filter_eq i=3 → that one node.
		rows = collect(t, tx, &wire.QueryPlan{
			Seed: wire.QuerySeed{Label: "N"},
			Stages: []wire.QueryStage{
				{Op: wire.StageFilterEq, Key: "i", Value: tagged(t, neograph.Int(3))},
			},
		})
		if len(rows) != 1 || rows[0].ID != ids[3] {
			t.Errorf("filter_eq = %v, want [%d]", rows, ids[3])
		}

		// property seed + limit.
		rows = collect(t, tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{Key: "i", Value: tagged(t, neograph.Int(6))},
			Stages: []wire.QueryStage{{Op: wire.StageLimit, N: 3}},
		})
		if len(rows) != 1 || rows[0].ID != ids[6] {
			t.Errorf("property seed = %v, want [%d]", rows, ids[6])
		}

		// filter_lt with a non-numeric reference keeps nothing (ints and
		// strings are not ordered against each other).
		rows = collect(t, tx, &wire.QueryPlan{
			Seed: wire.QuerySeed{All: true},
			Stages: []wire.QueryStage{
				{Op: wire.StageFilterLt, Key: "i", Value: tagged(t, neograph.String("zz"))},
				{Op: wire.StageCount},
			},
		})
		if len(rows) != 1 || rows[0].Count != 0 {
			t.Errorf("cross-kind filter_lt = %v, want count 0", rows)
		}
		return nil
	})
}

// TestQueryPipelineShortestPath checks the lazy shortest-path terminal
// emits the embedded ShortestPath result as ordered rows.
func TestQueryPipelineShortestPath(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 6)
	db.View(func(tx *neograph.Tx) error {
		want, err := ShortestPath(tx, ids[0], ids[4], neograph.Outgoing)
		if err != nil {
			t.Fatal(err)
		}
		rows := collect(t, tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{IDs: []uint64{ids[0]}},
			Stages: []wire.QueryStage{{Op: wire.StageShortestPath, End: ids[4], Dir: "out"}},
		})
		if len(rows) != len(want.Nodes) {
			t.Fatalf("path rows = %d, want %d", len(rows), len(want.Nodes))
		}
		for i, r := range rows {
			if r.ID != want.Nodes[i] || r.Depth != i {
				t.Errorf("row %d = %+v, want node %d depth %d", i, r, want.Nodes[i], i)
			}
			if i > 0 && r.Rel != want.Rels[i-1] {
				t.Errorf("row %d rel = %d, want %d", i, r.Rel, want.Rels[i-1])
			}
		}

		// No path in the other direction: the error streams out.
		err = Run(tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{IDs: []uint64{ids[0]}},
			Stages: []wire.QueryStage{{Op: wire.StageShortestPath, End: ids[4], Dir: "in"}},
		}, func(Row) error { return nil })
		if !errors.Is(err, ErrNoPath) {
			t.Errorf("reverse path err = %v, want ErrNoPath", err)
		}
		return nil
	})
}

// TestQueryPipelinePageRank checks the pagerank terminal matches the
// embedded PageRank + TopK.
func TestQueryPipelinePageRank(t *testing.T) {
	db := openDB(t)
	buildChain(t, db, 10)
	db.View(func(tx *neograph.Tx) error {
		ranks, err := PageRank(tx, PageRankConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want := TopK(ranks, 3)
		rows := collect(t, tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{All: true},
			Stages: []wire.QueryStage{{Op: wire.StagePageRank, N: 3}},
		})
		if len(rows) != len(want) {
			t.Fatalf("pagerank rows = %d, want %d", len(rows), len(want))
		}
		for i, r := range rows {
			if r.ID != want[i].Node || r.Score != want[i].Score {
				t.Errorf("rank %d = %+v, want %+v", i, r, want[i])
			}
		}
		return nil
	})
}

// TestQueryPipelineSeedErrors checks a missing explicit seed surfaces
// ErrNotFound and an invalid plan fails at compile.
func TestQueryPipelineSeedErrors(t *testing.T) {
	db := openDB(t)
	buildChain(t, db, 2)
	db.View(func(tx *neograph.Tx) error {
		err := Run(tx, &wire.QueryPlan{Seed: wire.QuerySeed{IDs: []uint64{99999}}},
			func(Row) error { return nil })
		if !errors.Is(err, neograph.ErrNotFound) {
			t.Errorf("missing seed err = %v, want ErrNotFound", err)
		}
		if _, err := Compile(tx, &wire.QueryPlan{}); err == nil {
			t.Error("empty plan compiled")
		}
		return nil
	})
}

// TestQueryPipelineSeesTxWrites checks plans run over the session
// transaction's own uncommitted writes (the snapshot+tx-buffer merged
// iterator at work).
func TestQueryPipelineSeesTxWrites(t *testing.T) {
	db := openDB(t)
	err := db.Update(0, func(tx *neograph.Tx) error {
		a, err := tx.CreateNode([]string{"Fresh"}, nil)
		if err != nil {
			return err
		}
		b, err := tx.CreateNode([]string{"Fresh"}, nil)
		if err != nil {
			return err
		}
		if _, err := tx.CreateRel("R", a, b, nil); err != nil {
			return err
		}
		rows := collect(t, tx, &wire.QueryPlan{
			Seed:   wire.QuerySeed{Label: "Fresh"},
			Stages: []wire.QueryStage{{Op: wire.StageKHop, Dir: "out", Depth: 1}},
		})
		// Seeds a and b at depth 0; b is not re-emitted when reached from a.
		if len(rows) != 2 || rows[0].ID != a || rows[1].ID != b {
			return errors.New("uncommitted writes not visible to pipeline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
