package query

import (
	"errors"
	"reflect"
	"testing"

	"neograph"
)

// buildChain creates a path graph a0 -> a1 -> ... -> a(n-1), returning IDs.
func buildChain(t *testing.T, db *neograph.DB, n int) []neograph.NodeID {
	t.Helper()
	ids := make([]neograph.NodeID, n)
	err := db.Update(0, func(tx *neograph.Tx) error {
		for i := 0; i < n; i++ {
			var err error
			ids[i], err = tx.CreateNode([]string{"N"}, neograph.Props{"i": neograph.Int(int64(i))})
			if err != nil {
				return err
			}
		}
		for i := 0; i+1 < n; i++ {
			if _, err := tx.CreateRel("NEXT", ids[i], ids[i+1], nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func openDB(t *testing.T) *neograph.DB {
	t.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBFSDepths(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 5)
	db.View(func(tx *neograph.Tx) error {
		depths := map[neograph.NodeID]int{}
		err := BFS(tx, ids[0], neograph.Outgoing, -1, func(id neograph.NodeID, d int) bool {
			depths[id] = d
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if depths[id] != i {
				t.Errorf("node %d depth = %d, want %d", i, depths[id], i)
			}
		}
		return nil
	})
}

func TestBFSMaxDepthAndStop(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 10)
	db.View(func(tx *neograph.Tx) error {
		visited := 0
		BFS(tx, ids[0], neograph.Outgoing, 3, func(neograph.NodeID, int) bool {
			visited++
			return true
		})
		if visited != 4 { // depths 0..3
			t.Errorf("maxDepth visit count = %d, want 4", visited)
		}
		visited = 0
		BFS(tx, ids[0], neograph.Outgoing, -1, func(neograph.NodeID, int) bool {
			visited++
			return visited < 2
		})
		if visited != 2 {
			t.Errorf("early stop visited %d", visited)
		}
		return nil
	})
}

func TestBFSMissingStart(t *testing.T) {
	db := openDB(t)
	db.View(func(tx *neograph.Tx) error {
		err := BFS(tx, 999, neograph.Both, -1, func(neograph.NodeID, int) bool { return true })
		if !errors.Is(err, neograph.ErrNotFound) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestReachableRespectsDirection(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 4)
	db.View(func(tx *neograph.Tx) error {
		fwd, err := Reachable(tx, ids[1], neograph.Outgoing, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fwd, []neograph.NodeID{ids[2], ids[3]}) {
			t.Errorf("forward = %v", fwd)
		}
		back, _ := Reachable(tx, ids[1], neograph.Incoming, -1)
		if !reflect.DeepEqual(back, []neograph.NodeID{ids[0]}) {
			t.Errorf("backward = %v", back)
		}
		both, _ := Reachable(tx, ids[1], neograph.Both, 1)
		if len(both) != 2 {
			t.Errorf("1-hop both = %v", both)
		}
		return nil
	})
}

func TestShortestPath(t *testing.T) {
	db := openDB(t)
	// Diamond: a -> b -> d, a -> c -> d, plus long way a -> e -> f -> d.
	var a, b, c, d, e, f neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ = tx.CreateNode(nil, nil)
		b, _ = tx.CreateNode(nil, nil)
		c, _ = tx.CreateNode(nil, nil)
		d, _ = tx.CreateNode(nil, nil)
		e, _ = tx.CreateNode(nil, nil)
		f, _ = tx.CreateNode(nil, nil)
		tx.CreateRel("E", a, b, nil)
		tx.CreateRel("E", b, d, nil)
		tx.CreateRel("E", a, c, nil)
		tx.CreateRel("E", c, d, nil)
		tx.CreateRel("E", a, e, nil)
		tx.CreateRel("E", e, f, nil)
		tx.CreateRel("E", f, d, nil)
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		p, err := ShortestPath(tx, a, d, neograph.Outgoing)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Nodes) != 3 || p.Nodes[0] != a || p.Nodes[2] != d || p.Cost != 2 {
			t.Errorf("path = %+v", p)
		}
		if len(p.Rels) != 2 {
			t.Errorf("rels = %v", p.Rels)
		}
		// Trivial path.
		p0, _ := ShortestPath(tx, a, a, neograph.Outgoing)
		if len(p0.Nodes) != 1 || p0.Cost != 0 {
			t.Errorf("self path = %+v", p0)
		}
		// No path against direction.
		if _, err := ShortestPath(tx, d, a, neograph.Outgoing); !errors.Is(err, ErrNoPath) {
			t.Errorf("err = %v, want ErrNoPath", err)
		}
		return nil
	})
}

func TestWeightedShortestPath(t *testing.T) {
	db := openDB(t)
	// a->b->c costs 1+1=2; direct a->c costs 5.
	var a, b, c neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ = tx.CreateNode(nil, nil)
		b, _ = tx.CreateNode(nil, nil)
		c, _ = tx.CreateNode(nil, nil)
		tx.CreateRel("E", a, b, neograph.Props{"w": neograph.Float(1)})
		tx.CreateRel("E", b, c, neograph.Props{"w": neograph.Float(1)})
		tx.CreateRel("E", a, c, neograph.Props{"w": neograph.Float(5)})
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		p, err := WeightedShortestPath(tx, a, c, neograph.Outgoing, "w", 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost != 2 || len(p.Nodes) != 3 {
			t.Errorf("weighted path = %+v", p)
		}
		return nil
	})
}

func TestWeightedDefaultWeight(t *testing.T) {
	db := openDB(t)
	var a, b neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ = tx.CreateNode(nil, nil)
		b, _ = tx.CreateNode(nil, nil)
		tx.CreateRel("E", a, b, nil) // no weight property
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		p, err := WeightedShortestPath(tx, a, b, neograph.Outgoing, "w", 7)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost != 7 {
			t.Errorf("cost = %f, want default 7", p.Cost)
		}
		return nil
	})
}

func TestConnectedComponents(t *testing.T) {
	db := openDB(t)
	c1 := buildChain(t, db, 4)
	c2 := buildChain(t, db, 2)
	var isolated neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		isolated, _ = tx.CreateNode(nil, nil)
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		comps, err := ConnectedComponents(tx)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != 3 {
			t.Fatalf("components = %d, want 3", len(comps))
		}
		if len(comps[0]) != 4 || comps[0][0] != c1[0] {
			t.Errorf("largest = %v", comps[0])
		}
		if len(comps[1]) != 2 || comps[1][0] != c2[0] {
			t.Errorf("second = %v", comps[1])
		}
		if !reflect.DeepEqual(comps[2], []neograph.NodeID{isolated}) {
			t.Errorf("isolated = %v", comps[2])
		}
		return nil
	})
}

func TestTriangleCount(t *testing.T) {
	db := openDB(t)
	var a, b, c, d neograph.NodeID
	db.Update(0, func(tx *neograph.Tx) error {
		a, _ = tx.CreateNode(nil, nil)
		b, _ = tx.CreateNode(nil, nil)
		c, _ = tx.CreateNode(nil, nil)
		d, _ = tx.CreateNode(nil, nil)
		tx.CreateRel("E", a, b, nil)
		tx.CreateRel("E", b, c, nil)
		tx.CreateRel("E", c, a, nil) // triangle abc
		tx.CreateRel("E", c, d, nil) // dangling edge
		return nil
	})
	db.View(func(tx *neograph.Tx) error {
		n, err := TriangleCount(tx)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("triangles = %d, want 1", n)
		}
		return nil
	})
}

func TestDegrees(t *testing.T) {
	db := openDB(t)
	buildChain(t, db, 3) // degrees 1,2,1
	db.View(func(tx *neograph.Tx) error {
		st, err := Degrees(tx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Nodes != 3 || st.Rels != 2 || st.MinDegree != 1 || st.MaxDegree != 2 {
			t.Errorf("stats = %+v", st)
		}
		return nil
	})
}

func TestDegreesEmpty(t *testing.T) {
	db := openDB(t)
	db.View(func(tx *neograph.Tx) error {
		st, err := Degrees(tx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Nodes != 0 || st.MinDegree != 0 {
			t.Errorf("empty stats = %+v", st)
		}
		return nil
	})
}

// TestTraversalStableUnderConcurrentMutation is the paper's motivating
// graph scenario (§1): a two-step algorithm traverses a path; a
// concurrent transaction deletes an edge on that path mid-traversal.
// Under SI the second step still sees the path.
func TestTraversalStableUnderConcurrentMutation(t *testing.T) {
	db := openDB(t)
	ids := buildChain(t, db, 5)

	tx := db.Begin()
	// Step 1: find the path.
	p1, err := ShortestPath(tx, ids[0], ids[4], neograph.Outgoing)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent edge deletion.
	err = db.Update(0, func(w *neograph.Tx) error { return w.DeleteRel(p1.Rels[2]) })
	if err != nil {
		t.Fatal(err)
	}
	// Step 2: walk the found path again in the same transaction.
	p2, err := ShortestPath(tx, ids[0], ids[4], neograph.Outgoing)
	if err != nil {
		t.Fatalf("SI traversal lost its path mid-transaction: %v", err)
	}
	if !reflect.DeepEqual(p1.Nodes, p2.Nodes) {
		t.Fatalf("path changed: %v -> %v", p1.Nodes, p2.Nodes)
	}
	tx.Abort()

	// A read-committed transaction experiences exactly the §1 anomaly.
	rc := db.BeginIsolation(neograph.ReadCommitted)
	defer rc.Abort()
	if _, err := ShortestPath(rc, ids[0], ids[4], neograph.Outgoing); !errors.Is(err, ErrNoPath) {
		t.Fatalf("read committed unexpectedly still has a path: %v", err)
	}
}
