package query

import (
	"fmt"
	"math"
	"sort"

	"neograph"
)

// PageRankConfig tunes the power iteration.
type PageRankConfig struct {
	// Damping is the probability of following an edge (default 0.85).
	Damping float64
	// MaxIterations bounds the power iteration (default 50).
	MaxIterations int
	// Tolerance stops the iteration when the total rank change drops
	// below it (default 1e-6).
	Tolerance float64
	// RelTypes optionally restricts the edges followed.
	RelTypes []string
}

// Rank is one node's PageRank score.
type Rank struct {
	Node  neograph.NodeID
	Score float64
}

// PageRank computes PageRank over the snapshot visible to tx, following
// relationships in their stored direction. Because the whole iteration
// runs inside one transaction, the scores are consistent even while
// writers mutate the graph — the property RC cannot offer (§1).
func PageRank(tx *neograph.Tx, cfg PageRankConfig) ([]Rank, error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		cfg.Damping = 0.85
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}
	nodes, err := tx.AllNodes()
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	if n == 0 {
		return nil, nil
	}
	idx := make(map[neograph.NodeID]int, n)
	for i, id := range nodes {
		idx[id] = i
	}
	// Build the out-adjacency once from the snapshot.
	out := make([][]int, n)
	for i, id := range nodes {
		rels, err := tx.Relationships(id, neograph.Outgoing, cfg.RelTypes...)
		if err != nil {
			return nil, err
		}
		for _, r := range rels {
			if j, ok := idx[r.End]; ok {
				out[i] = append(out[i], j)
			}
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for i, targets := range out {
			if len(targets) == 0 {
				dangling += rank[i]
				continue
			}
			share := cfg.Damping * rank[i] / float64(len(targets))
			for _, j := range targets {
				next[j] += share
			}
		}
		// Dangling mass is redistributed uniformly.
		if dangling > 0 {
			spread := cfg.Damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		delta := 0.0
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < cfg.Tolerance {
			break
		}
	}

	res := make([]Rank, n)
	for i, id := range nodes {
		res[i] = Rank{Node: id, Score: rank[i]}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Node < res[j].Node
	})
	return res, nil
}

// TopK returns the k highest-ranked entries (or all if fewer).
func TopK(ranks []Rank, k int) []Rank {
	if k > len(ranks) {
		k = len(ranks)
	}
	return ranks[:k]
}

// String renders a rank for logs.
func (r Rank) String() string { return fmt.Sprintf("node %d: %.6f", r.Node, r.Score) }
