// Package query provides graph traversal algorithms over a neograph
// transaction: breadth-first search, shortest paths (unweighted and
// weighted), connected components and simple graph statistics. These are
// the multi-hop, whole-query-on-the-engine traversals the paper's
// introduction motivates — and because they take a transaction, every
// algorithm runs against one consistent snapshot under SI, which is
// precisely what read committed cannot guarantee (a path traversed once
// "might not exist when trying to go through it later in the same
// transaction", §1).
package query

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"neograph"
)

// ErrNoPath reports that no path exists between the requested endpoints.
var ErrNoPath = errors.New("query: no path")

// BFSVisit is called for each node reached by BFS with its depth.
// Returning false stops the traversal.
type BFSVisit func(id neograph.NodeID, depth int) bool

// BFS walks the graph breadth-first from start, following relationships
// in the given direction (optionally type-filtered) up to maxDepth
// (negative = unlimited). The visit function receives each node once.
func BFS(tx *neograph.Tx, start neograph.NodeID, dir neograph.Direction, maxDepth int, visit BFSVisit, relTypes ...string) error {
	if ok, err := tx.NodeExists(start); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: node %d", neograph.ErrNotFound, start)
	}
	type item struct {
		id    neograph.NodeID
		depth int
	}
	seen := map[neograph.NodeID]bool{start: true}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.id, cur.depth) {
			return nil
		}
		if maxDepth >= 0 && cur.depth == maxDepth {
			continue
		}
		nbrs, err := tx.Neighbors(cur.id, dir, relTypes...)
		if err != nil {
			return err
		}
		for _, n := range nbrs {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, item{n, cur.depth + 1})
			}
		}
	}
	return nil
}

// Reachable returns the set of nodes reachable from start within maxDepth
// hops (negative = unlimited), excluding start itself.
func Reachable(tx *neograph.Tx, start neograph.NodeID, dir neograph.Direction, maxDepth int, relTypes ...string) ([]neograph.NodeID, error) {
	var out []neograph.NodeID
	err := BFS(tx, start, dir, maxDepth, func(id neograph.NodeID, depth int) bool {
		if depth > 0 {
			out = append(out, id)
		}
		return true
	}, relTypes...)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Path is a node sequence with the relationships connecting it.
type Path struct {
	Nodes []neograph.NodeID
	Rels  []neograph.RelID
	// Cost is hop count for unweighted paths, accumulated weight for
	// weighted ones.
	Cost float64
}

// ShortestPath finds a minimum-hop path from start to end via BFS.
func ShortestPath(tx *neograph.Tx, start, end neograph.NodeID, dir neograph.Direction, relTypes ...string) (Path, error) {
	if start == end {
		return Path{Nodes: []neograph.NodeID{start}}, nil
	}
	preds := map[neograph.NodeID]predecessor{}
	seen := map[neograph.NodeID]bool{start: true}
	queue := []neograph.NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		rels, err := tx.Relationships(cur, dir, relTypes...)
		if err != nil {
			return Path{}, err
		}
		for _, r := range rels {
			next, ok := follow(r, cur, dir)
			if !ok || seen[next] {
				continue
			}
			seen[next] = true
			preds[next] = predecessor{cur, r.ID}
			if next == end {
				return buildPath(start, end, preds), nil
			}
			queue = append(queue, next)
		}
	}
	return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, start, end)
}

// follow returns the node on the far side of r from cur under dir.
func follow(r neograph.Relationship, cur neograph.NodeID, dir neograph.Direction) (neograph.NodeID, bool) {
	switch dir {
	case neograph.Outgoing:
		if r.Start == cur {
			return r.End, true
		}
	case neograph.Incoming:
		if r.End == cur {
			return r.Start, true
		}
	default:
		if r.Start == cur {
			return r.End, true
		}
		if r.End == cur {
			return r.Start, true
		}
	}
	return 0, false
}

// predecessor records how a node was first reached during a search.
type predecessor struct {
	node neograph.NodeID
	rel  neograph.RelID
}

func buildPath(start, end neograph.NodeID, preds map[neograph.NodeID]predecessor) Path {
	var nodes []neograph.NodeID
	var rels []neograph.RelID
	for at := end; ; {
		nodes = append(nodes, at)
		if at == start {
			break
		}
		p := preds[at]
		rels = append(rels, p.rel)
		at = p.node
	}
	reverseNodes(nodes)
	reverseRels(rels)
	return Path{Nodes: nodes, Rels: rels, Cost: float64(len(rels))}
}

func reverseNodes(s []neograph.NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseRels(s []neograph.RelID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node neograph.NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }
func (q pq) peek() pqItem       { return q[0] }
func (q pq) emptied() bool      { return len(q) == 0 }

// WeightedShortestPath runs Dijkstra from start to end using the numeric
// relationship property weightProp as edge cost (edges without the
// property, or with non-numeric or negative values, cost defaultWeight).
func WeightedShortestPath(tx *neograph.Tx, start, end neograph.NodeID, dir neograph.Direction, weightProp string, defaultWeight float64, relTypes ...string) (Path, error) {
	dist := map[neograph.NodeID]float64{start: 0}
	preds := map[neograph.NodeID]predecessor{}
	done := map[neograph.NodeID]bool{}
	q := &pq{{start, 0}}
	for !q.emptied() {
		cur := heap.Pop(q).(pqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == end {
			p := buildPath(start, end, preds)
			p.Cost = cur.dist
			return p, nil
		}
		rels, err := tx.Relationships(cur.node, dir, relTypes...)
		if err != nil {
			return Path{}, err
		}
		for _, r := range rels {
			next, ok := follow(r, cur.node, dir)
			if !ok || done[next] {
				continue
			}
			w := defaultWeight
			if wp, ok := r.Props[weightProp]; ok {
				if f, ok := wp.Numeric(); ok && f >= 0 {
					w = f
				}
			}
			nd := cur.dist + w
			if old, ok := dist[next]; !ok || nd < old {
				dist[next] = nd
				preds[next] = predecessor{cur.node, r.ID}
				heap.Push(q, pqItem{next, nd})
			}
		}
	}
	return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, start, end)
}

// ConnectedComponents returns the undirected connected components of the
// visible graph, each sorted, largest first.
func ConnectedComponents(tx *neograph.Tx) ([][]neograph.NodeID, error) {
	all, err := tx.AllNodes()
	if err != nil {
		return nil, err
	}
	seen := make(map[neograph.NodeID]bool, len(all))
	var comps [][]neograph.NodeID
	for _, root := range all {
		if seen[root] {
			continue
		}
		var comp []neograph.NodeID
		stack := []neograph.NodeID{root}
		seen[root] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			nbrs, err := tx.Neighbors(cur, neograph.Both)
			if err != nil {
				return nil, err
			}
			for _, n := range nbrs {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps, nil
}

// TriangleCount counts undirected triangles in the visible graph.
func TriangleCount(tx *neograph.Tx) (int, error) {
	all, err := tx.AllNodes()
	if err != nil {
		return 0, err
	}
	adj := make(map[neograph.NodeID]map[neograph.NodeID]bool, len(all))
	for _, id := range all {
		nbrs, err := tx.Neighbors(id, neograph.Both)
		if err != nil {
			return 0, err
		}
		set := make(map[neograph.NodeID]bool, len(nbrs))
		for _, n := range nbrs {
			if n != id {
				set[n] = true
			}
		}
		adj[id] = set
	}
	count := 0
	for a, na := range adj {
		for b := range na {
			if b <= a {
				continue
			}
			for c := range adj[b] {
				if c <= b {
					continue
				}
				if na[c] {
					count++
				}
			}
		}
	}
	return count, nil
}

// DegreeStats summarises the degree distribution of the visible graph.
type DegreeStats struct {
	Nodes     int
	Rels      int
	MinDegree int
	MaxDegree int
	AvgDegree float64
}

// Degrees computes degree statistics over the visible graph.
func Degrees(tx *neograph.Tx) (DegreeStats, error) {
	all, err := tx.AllNodes()
	if err != nil {
		return DegreeStats{}, err
	}
	st := DegreeStats{Nodes: len(all), MinDegree: math.MaxInt}
	total := 0
	for _, id := range all {
		d, err := tx.Degree(id, neograph.Both)
		if err != nil {
			return DegreeStats{}, err
		}
		total += d
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	if st.Nodes == 0 {
		st.MinDegree = 0
		return st, nil
	}
	rels, err := tx.AllRels()
	if err != nil {
		return DegreeStats{}, err
	}
	st.Rels = len(rels)
	st.AvgDegree = float64(total) / float64(st.Nodes)
	return st, nil
}
