package query

import (
	"errors"
	"fmt"
	"sort"

	"neograph"
	"neograph/internal/wire"
)

// This file is the operator-pipeline form of the package: the same
// traversals as the embedded API, refactored into small composable
// operators (seed → expand / filter / limit / count) that PULL rows one
// at a time from their upstream. A compiled pipeline runs against a
// single transaction, so — like every algorithm here — the whole plan
// sees one MVCC snapshot; and because rows stream through the operators
// instead of materialising between stages, the server can ship a
// million-row result in chunk-sized memory. Label and full scans seed
// from the engine's NodeIterator, the snapshot+tx-buffer merged iterator
// (read-your-own-writes included).

// Row is one pipeline result row. Which fields are meaningful depends on
// the plan's last stage: traversals fill Depth, shortest-path rows carry
// the relationship that reached the node, PageRank fills Score, count
// fills only Count.
type Row struct {
	ID    neograph.NodeID
	Depth int
	Rel   neograph.RelID
	Score float64
	Count uint64
}

// WireRow converts a row to its wire form.
func (r Row) WireRow() wire.QueryRow {
	return wire.QueryRow{ID: r.ID, Depth: r.Depth, Rel: r.Rel, Score: r.Score, Count: r.Count}
}

// Emit receives pipeline rows one at a time. Returning an error stops
// execution and propagates out of Run.
type Emit func(Row) error

// rowIter is the internal pull contract every operator implements:
// next returns the next row, false at exhaustion, or an error.
type rowIter interface {
	next() (Row, bool, error)
}

// Pipeline is a compiled plan: a pull-based row stream over one
// transaction's snapshot.
type Pipeline struct {
	it rowIter
}

// Next returns the next result row, false when the stream is exhausted.
func (p *Pipeline) Next() (Row, bool, error) { return p.it.next() }

// Run compiles plan and streams every result row to emit.
func Run(tx *neograph.Tx, plan *wire.QueryPlan, emit Emit) error {
	p, err := Compile(tx, plan)
	if err != nil {
		return err
	}
	for {
		row, ok, err := p.Next()
		if err != nil || !ok {
			return err
		}
		if err := emit(row); err != nil {
			return err
		}
	}
}

// Compile validates plan and builds its operator pipeline over tx. The
// returned Pipeline borrows tx and must be drained before tx ends.
func Compile(tx *neograph.Tx, plan *wire.QueryPlan) (*Pipeline, error) {
	if err := wire.ValidateQueryPlan(plan); err != nil {
		return nil, err
	}
	it, err := compileSeed(tx, &plan.Seed)
	if err != nil {
		return nil, err
	}
	for i := range plan.Stages {
		st := &plan.Stages[i]
		if it, err = compileStage(tx, plan, st, it); err != nil {
			return nil, err
		}
	}
	return &Pipeline{it: it}, nil
}

// compileSeed builds the seed operator. Explicit IDs stream with an
// existence check; label and full scans stream through the engine's
// merged snapshot+tx-buffer NodeIterator; property seeds resolve through
// the versioned property index.
func compileSeed(tx *neograph.Tx, seed *wire.QuerySeed) (rowIter, error) {
	switch {
	case len(seed.IDs) > 0:
		return &idSeed{tx: tx, ids: seed.IDs}, nil
	case seed.Label != "":
		ids, err := tx.NodesByLabel(seed.Label)
		if err != nil {
			return nil, err
		}
		return &scanSeed{tx: tx, ids: ids}, nil
	case seed.Key != "":
		v, err := wire.DecodeValue(seed.Value)
		if err != nil {
			return nil, err
		}
		ids, err := tx.NodesByProperty(seed.Key, v)
		if err != nil {
			return nil, err
		}
		return &idList{ids: ids}, nil
	default: // All — guaranteed by validation
		ids, err := tx.AllNodes()
		if err != nil {
			return nil, err
		}
		return &scanSeed{tx: tx, ids: ids}, nil
	}
}

// compileStage wraps one operator around its upstream.
func compileStage(tx *neograph.Tx, plan *wire.QueryPlan, st *wire.QueryStage, in rowIter) (rowIter, error) {
	switch st.Op {
	case wire.StageExpand:
		dir, err := parsePlanDir(st.Dir)
		if err != nil {
			return nil, err
		}
		return &expandIter{tx: tx, in: in, dir: dir, types: st.Types}, nil
	case wire.StageKHop:
		dir, err := parsePlanDir(st.Dir)
		if err != nil {
			return nil, err
		}
		return &khopIter{tx: tx, in: in, dir: dir, types: st.Types, depth: st.Depth}, nil
	case wire.StageShortestPath:
		dir, err := parsePlanDir(st.Dir)
		if err != nil {
			return nil, err
		}
		start, end := plan.Seed.IDs[0], st.End
		types := st.Types
		return &lazyIter{gen: func() ([]Row, error) {
			path, err := ShortestPath(tx, start, end, dir, types...)
			if err != nil {
				return nil, err
			}
			rows := make([]Row, len(path.Nodes))
			for i, n := range path.Nodes {
				rows[i] = Row{ID: n, Depth: i}
				if i > 0 {
					rows[i].Rel = path.Rels[i-1]
				}
			}
			return rows, nil
		}}, nil
	case wire.StagePageRank:
		cfg := PageRankConfig{Damping: st.Damping, MaxIterations: st.Iterations, RelTypes: st.Types}
		topN := st.N
		return &lazyIter{gen: func() ([]Row, error) {
			ranks, err := PageRank(tx, cfg)
			if err != nil {
				return nil, err
			}
			if topN > 0 {
				ranks = TopK(ranks, topN)
			}
			rows := make([]Row, len(ranks))
			for i, r := range ranks {
				rows[i] = Row{ID: r.Node, Score: r.Score}
			}
			return rows, nil
		}}, nil
	case wire.StageFilterLabel:
		label := st.Label
		return &filterIter{in: in, keep: func(id neograph.NodeID) (bool, error) {
			return tx.HasLabel(id, label)
		}}, nil
	case wire.StageFilterEq, wire.StageFilterLt:
		ref, err := wire.DecodeValue(st.Value)
		if err != nil {
			return nil, err
		}
		key, lt := st.Key, st.Op == wire.StageFilterLt
		return &filterIter{in: in, keep: func(id neograph.NodeID) (bool, error) {
			n, err := tx.GetNode(id)
			if err != nil {
				if errors.Is(err, neograph.ErrNotFound) {
					return false, nil
				}
				return false, err
			}
			v, ok := n.Props[key]
			if !ok {
				return false, nil
			}
			if lt {
				return lessThan(v, ref), nil
			}
			return v.Equal(ref), nil
		}}, nil
	case wire.StageLimit:
		return &limitIter{in: in, n: st.N}, nil
	case wire.StageCount:
		return &countIter{in: in}, nil
	default:
		return nil, fmt.Errorf("query: unknown stage %q", st.Op)
	}
}

// lessThan orders two property values for filter_lt: numerics compare
// numerically across int/float; otherwise only same-kind values are
// comparable (a string is never "less than" an int — such rows filter
// out rather than order arbitrarily by kind).
func lessThan(a, b neograph.Value) bool {
	if fa, ok := a.Numeric(); ok {
		if fb, ok := b.Numeric(); ok {
			return fa < fb
		}
	}
	if a.Kind() != b.Kind() {
		return false
	}
	return a.Compare(b) < 0
}

// parsePlanDir maps a wire direction to the engine's.
func parsePlanDir(d string) (neograph.Direction, error) {
	switch d {
	case "out":
		return neograph.Outgoing, nil
	case "in":
		return neograph.Incoming, nil
	case "", "both":
		return neograph.Both, nil
	default:
		return 0, fmt.Errorf("query: bad direction %q", d)
	}
}

// idSeed yields explicit seed nodes, verifying each exists in the
// snapshot (same contract as BFS's start check).
type idSeed struct {
	tx  *neograph.Tx
	ids []uint64
	pos int
}

func (s *idSeed) next() (Row, bool, error) {
	if s.pos >= len(s.ids) {
		return Row{}, false, nil
	}
	id := s.ids[s.pos]
	s.pos++
	if ok, err := s.tx.NodeExists(id); err != nil {
		return Row{}, false, err
	} else if !ok {
		return Row{}, false, fmt.Errorf("%w: seed node %d", neograph.ErrNotFound, id)
	}
	return Row{ID: id}, true, nil
}

// idList yields a pre-resolved ID list (property-index seeds).
type idList struct {
	ids []uint64
	pos int
}

func (s *idList) next() (Row, bool, error) {
	if s.pos >= len(s.ids) {
		return Row{}, false, nil
	}
	id := s.ids[s.pos]
	s.pos++
	return Row{ID: id}, true, nil
}

// scanSeed streams a label or full scan's ID list with a per-row
// visibility recheck. The listing already merges the snapshot with this
// transaction's write buffer; NodeExists (no snapshot materialization —
// the props map is never cloned) drops nodes this transaction deleted
// after the listing, mirroring NodeIterator's skip semantics at a
// fraction of its cost.
type scanSeed struct {
	tx  *neograph.Tx
	ids []neograph.NodeID
	pos int
}

func (s *scanSeed) next() (Row, bool, error) {
	for s.pos < len(s.ids) {
		id := s.ids[s.pos]
		s.pos++
		ok, err := s.tx.NodeExists(id)
		if err != nil {
			return Row{}, false, err
		}
		if ok {
			return Row{ID: id}, true, nil
		}
	}
	return Row{}, false, nil
}

// expand collects node's neighbors into scratch (reused across calls —
// ForEachNeighbor allocates nothing per relationship) and returns it
// sorted, so expansion order matches Neighbors' sorted contract (and
// through it the embedded BFS) without paying Neighbors' per-call set
// and result slice. Duplicates from parallel edges survive in scratch;
// the caller's seen check drops them.
func expand(tx *neograph.Tx, node neograph.NodeID, dir neograph.Direction, types []string, scratch []neograph.NodeID) ([]neograph.NodeID, error) {
	scratch = scratch[:0]
	err := tx.ForEachNeighbor(node, dir, func(n neograph.NodeID) {
		scratch = append(scratch, n)
	}, types...)
	if err != nil {
		return scratch, err
	}
	sortIDs(scratch)
	return scratch, nil
}

// sortIDs sorts a neighborhood in place. Frontiers are degree-sized, so
// insertion sort beats sort.Slice's reflection overhead by a wide margin
// on the traversal hot path; fall back to sort.Slice for heavy hubs.
func sortIDs(s []neograph.NodeID) {
	if len(s) > 64 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// idSet is a visited set over allocator-dense node IDs: a growable bool
// slice beats a hash map by an order of magnitude on the traversal hot
// path (no hashing, no rehash-on-grow). Memory is bounded by the largest
// ID ever marked, which the allocator keeps proportional to the number
// of nodes ever created.
type idSet struct{ b []bool }

// visit marks id and reports whether it was already present.
func (s *idSet) visit(id neograph.NodeID) bool {
	if id >= neograph.NodeID(len(s.b)) {
		nb := make([]bool, id+1+1024)
		copy(nb, s.b)
		s.b = nb
	}
	if s.b[id] {
		return true
	}
	s.b[id] = true
	return false
}

// expandIter replaces the stream with its one-hop neighborhood, each
// neighbor emitted once across the whole stage.
type expandIter struct {
	tx      *neograph.Tx
	in      rowIter
	dir     neograph.Direction
	types   []string
	seen    idSet
	buf     []Row
	head    int
	scratch []neograph.NodeID
}

func (e *expandIter) next() (Row, bool, error) {
	for {
		if e.head < len(e.buf) {
			r := e.buf[e.head]
			e.head++
			if e.head == len(e.buf) {
				e.buf, e.head = e.buf[:0], 0
			}
			return r, true, nil
		}
		in, ok, err := e.in.next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		if e.scratch, err = expand(e.tx, in.ID, e.dir, e.types, e.scratch); err != nil {
			return Row{}, false, err
		}
		for _, n := range e.scratch {
			if !e.seen.visit(n) {
				e.buf = append(e.buf, Row{ID: n, Depth: in.Depth + 1})
			}
		}
	}
}

// khopIter streams the breadth-first k-hop neighborhood of the upstream
// rows: every node within depth hops, visited once, emitted with its
// discovery depth (seeds at 0). The traversal is incremental — each next
// pops one node and expands its frontier — so memory is the seen set
// plus the frontier, never the full result. Same algorithm, order and
// depths as the embedded BFS.
type khopIter struct {
	tx      *neograph.Tx
	in      rowIter
	dir     neograph.Direction
	types   []string
	depth   int
	seen    idSet
	queue   []Row // FIFO window is queue[head:]
	head    int
	scratch []neograph.NodeID
	seeded  bool
}

func (k *khopIter) next() (Row, bool, error) {
	if !k.seeded {
		k.seeded = true
		for {
			in, ok, err := k.in.next()
			if err != nil {
				return Row{}, false, err
			}
			if !ok {
				break
			}
			if !k.seen.visit(in.ID) {
				k.queue = append(k.queue, Row{ID: in.ID, Depth: 0})
			}
		}
	}
	if k.head == len(k.queue) {
		return Row{}, false, nil
	}
	cur := k.queue[k.head]
	k.head++
	// Compact once the dead prefix dominates, so appends extend a slice
	// whose length tracks the live frontier instead of every row ever
	// queued (popping with queue = queue[1:] makes append reallocate and
	// copy the window over and over — the traversal's hottest path).
	if k.head > 1024 && k.head*2 > len(k.queue) {
		n := copy(k.queue, k.queue[k.head:])
		k.queue, k.head = k.queue[:n], 0
	}
	if cur.Depth < k.depth {
		var err error
		if k.scratch, err = expand(k.tx, cur.ID, k.dir, k.types, k.scratch); err != nil {
			return Row{}, false, err
		}
		for _, n := range k.scratch {
			if !k.seen.visit(n) {
				k.queue = append(k.queue, Row{ID: n, Depth: cur.Depth + 1})
			}
		}
	}
	return cur, true, nil
}

// filterIter keeps rows the predicate accepts.
type filterIter struct {
	in   rowIter
	keep func(neograph.NodeID) (bool, error)
}

func (f *filterIter) next() (Row, bool, error) {
	for {
		r, ok, err := f.in.next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		keep, err := f.keep(r.ID)
		if err != nil {
			return Row{}, false, err
		}
		if keep {
			return r, true, nil
		}
	}
}

// limitIter stops the stream after n rows without draining upstream.
type limitIter struct {
	in rowIter
	n  int
}

func (l *limitIter) next() (Row, bool, error) {
	if l.n <= 0 {
		return Row{}, false, nil
	}
	r, ok, err := l.in.next()
	if ok {
		l.n--
	}
	return r, ok, err
}

// countIter drains upstream and emits a single count row.
type countIter struct {
	in   rowIter
	done bool
}

func (c *countIter) next() (Row, bool, error) {
	if c.done {
		return Row{}, false, nil
	}
	c.done = true
	var n uint64
	for {
		_, ok, err := c.in.next()
		if err != nil {
			return Row{}, false, err
		}
		if !ok {
			return Row{Count: n}, true, nil
		}
		n++
	}
}

// lazyIter defers a whole-plan algorithm (shortest path, PageRank) to
// the first pull, then streams its materialised rows. The deferral
// matters server-side: compile errors are cheap frames, execution errors
// surface through the stream like any operator's.
type lazyIter struct {
	gen  func() ([]Row, error)
	rows []Row
	pos  int
	ran  bool
}

func (l *lazyIter) next() (Row, bool, error) {
	if !l.ran {
		l.ran = true
		rows, err := l.gen()
		if err != nil {
			return Row{}, false, err
		}
		l.rows = rows
	}
	if l.pos >= len(l.rows) {
		return Row{}, false, nil
	}
	r := l.rows[l.pos]
	l.pos++
	return r, true, nil
}
