package record

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"neograph/internal/ids"
)

func TestNodeRoundTrip(t *testing.T) {
	cases := []NodeRecord{
		{},
		{InUse: true, FirstRel: 7, FirstProp: 9, LabelRef: 11},
		{InUse: true, Tombstone: true, FirstRel: ids.NoID, FirstProp: ids.NoID, LabelRef: ids.NoID},
	}
	for _, n := range cases {
		var buf [NodeSize]byte
		EncodeNode(buf[:], &n)
		got, err := DecodeNode(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Errorf("round trip: got %+v, want %+v", got, n)
		}
	}
}

func TestRelRoundTrip(t *testing.T) {
	r := RelRecord{
		InUse: true, Type: 42,
		StartNode: 1, EndNode: 2,
		StartPrev: ids.NoID, StartNext: 5, EndPrev: 6, EndNext: ids.NoID,
		FirstProp: 99,
	}
	var buf [RelSize]byte
	EncodeRel(buf[:], &r)
	got, err := DecodeRel(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
}

func TestPropRoundTripInline(t *testing.T) {
	p := PropRecord{InUse: true, Key: 3, Next: 17, SpillRef: ids.NoID, Inline: []byte("short value")}
	var buf [PropSize]byte
	EncodeProp(buf[:], &p)
	got, err := DecodeProp(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != 3 || got.Next != 17 || !bytes.Equal(got.Inline, p.Inline) || got.Spilled {
		t.Errorf("round trip: got %+v", got)
	}
}

func TestPropRoundTripSpilled(t *testing.T) {
	p := PropRecord{InUse: true, Key: 8, Next: ids.NoID, Spilled: true, SpillRef: 1234}
	var buf [PropSize]byte
	EncodeProp(buf[:], &p)
	got, err := DecodeProp(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Spilled || got.SpillRef != 1234 || len(got.Inline) != 0 {
		t.Errorf("round trip: got %+v", got)
	}
}

func TestPropInlineTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := PropRecord{Inline: make([]byte, PropInlineMax+1)}
	var buf [PropSize]byte
	EncodeProp(buf[:], &p)
}

func TestDynRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, DynPayload} {
		d := DynRecord{InUse: true, Next: 5, Payload: bytes.Repeat([]byte{0xAB}, n)}
		var buf [DynSize]byte
		EncodeDyn(buf[:], &d)
		got, err := DecodeDyn(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if got.InUse != d.InUse || got.Next != d.Next || !bytes.Equal(got.Payload, d.Payload) {
			t.Errorf("payload %d: got %+v", n, got)
		}
	}
}

func TestDynTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d := DynRecord{Payload: make([]byte, DynPayload+1)}
	var buf [DynSize]byte
	EncodeDyn(buf[:], &d)
}

func TestShortBuffersError(t *testing.T) {
	short := make([]byte, 4)
	if _, err := DecodeNode(short); err == nil {
		t.Error("DecodeNode should fail on short buffer")
	}
	if _, err := DecodeRel(short); err == nil {
		t.Error("DecodeRel should fail on short buffer")
	}
	if _, err := DecodeProp(short); err == nil {
		t.Error("DecodeProp should fail on short buffer")
	}
	if _, err := DecodeDyn(short); err == nil {
		t.Error("DecodeDyn should fail on short buffer")
	}
}

func TestCorruptLengths(t *testing.T) {
	var pbuf [PropSize]byte
	pbuf[0] = FlagInUse
	pbuf[propHeader] = PropInlineMax + 1
	if _, err := DecodeProp(pbuf[:]); err == nil {
		t.Error("oversized inline length should fail")
	}
	var dbuf [DynSize]byte
	dbuf[0] = FlagInUse
	dbuf[1] = 0xFF
	dbuf[2] = 0xFF
	dbuf[3] = 0xFF
	if _, err := DecodeDyn(dbuf[:]); err == nil {
		t.Error("oversized dyn length should fail")
	}
}

func TestRecordsFitPages(t *testing.T) {
	// Record sizes must divide the page size so records never straddle pages.
	const page = 8192
	for name, size := range map[string]int{"node": NodeSize, "rel": RelSize, "prop": PropSize, "dyn": DynSize} {
		if page%size != 0 {
			t.Errorf("%s record size %d does not divide page size", name, size)
		}
	}
}

func TestQuickRelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		r := RelRecord{
			InUse:     rr.Intn(2) == 0,
			Tombstone: rr.Intn(2) == 0,
			Type:      rr.Uint32(),
			StartNode: rr.Uint64(), EndNode: rr.Uint64(),
			StartPrev: rr.Uint64(), StartNext: rr.Uint64(),
			EndPrev: rr.Uint64(), EndNext: rr.Uint64(),
			FirstProp: rr.Uint64(),
		}
		var buf [RelSize]byte
		EncodeRel(buf[:], &r)
		got, err := DecodeRel(buf[:])
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
