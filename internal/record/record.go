// Package record defines the on-disk record formats of the persistent
// store (Figure 1 of the paper). Like Neo4j, every store file is an array
// of fixed-size records addressed by ID:
//
//   - node records hold the ID of the node's first relationship and first
//     property, plus a reference to its label set;
//   - relationship records hold source and destination node IDs, the
//     relationship type token, and the prev/next pointers of the two
//     doubly-linked relationship chains (one per endpoint) that make
//     adjacency traversal a pointer chase;
//   - property records are chained blocks holding one key/value each, with
//     small values inlined and large values spilled to the dynamic store;
//   - dynamic records are chained blocks of raw bytes used for long
//     strings, byte arrays and label sets.
//
// The package is pure encoding: it knows nothing about files or caching.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"

	"neograph/internal/ids"
)

// Record sizes in bytes. Node/relationship/property records are sized so a
// whole number fit in one 8 KiB page.
const (
	NodeSize = 32
	RelSize  = 64
	PropSize = 64
	DynSize  = 128

	// PropInlineMax is the largest encoded value stored inline in a
	// property record; longer values spill to the dynamic store.
	PropInlineMax = PropSize - propHeader - 1 // 1 byte inline length

	// DynPayload is the usable payload per dynamic record.
	DynPayload = DynSize - dynHeader
)

const (
	propHeader = 1 + 4 + 8 + 8 // flags, keyID, next, prev... see PropRecord
	dynHeader  = 1 + 3 + 8     // flags, length, next
)

// Record flags.
const (
	FlagInUse     = 1 << 0 // record is live
	FlagSpilled   = 1 << 1 // property value lives in the dynamic store
	FlagTombstone = 1 << 2 // entity is a deletion marker (paper §4: tombstone versions)
)

// ErrCorrupt reports a malformed record.
var ErrCorrupt = errors.New("record: corrupt record")

// NodeRecord is the fixed-size persistent image of a node. Exactly one
// (the newest committed) version of each node is persisted (paper §4).
type NodeRecord struct {
	InUse     bool
	Tombstone bool
	FirstRel  ids.ID // head of the relationship chain, NoID if none
	FirstProp ids.ID // head of the property chain, NoID if none
	LabelRef  ids.ID // dynamic store record holding the label token list, NoID if none
}

// EncodeNode writes n into dst, which must be at least NodeSize bytes.
func EncodeNode(dst []byte, n *NodeRecord) {
	_ = dst[:NodeSize]
	var flags byte
	if n.InUse {
		flags |= FlagInUse
	}
	if n.Tombstone {
		flags |= FlagTombstone
	}
	dst[0] = flags
	binary.LittleEndian.PutUint64(dst[1:], n.FirstRel)
	binary.LittleEndian.PutUint64(dst[9:], n.FirstProp)
	binary.LittleEndian.PutUint64(dst[17:], n.LabelRef)
	for i := 25; i < NodeSize; i++ {
		dst[i] = 0
	}
}

// DecodeNode parses a node record from src (at least NodeSize bytes).
func DecodeNode(src []byte) (NodeRecord, error) {
	if len(src) < NodeSize {
		return NodeRecord{}, fmt.Errorf("%w: short node record (%d bytes)", ErrCorrupt, len(src))
	}
	flags := src[0]
	return NodeRecord{
		InUse:     flags&FlagInUse != 0,
		Tombstone: flags&FlagTombstone != 0,
		FirstRel:  binary.LittleEndian.Uint64(src[1:]),
		FirstProp: binary.LittleEndian.Uint64(src[9:]),
		LabelRef:  binary.LittleEndian.Uint64(src[17:]),
	}, nil
}

// RelRecord is the fixed-size persistent image of a relationship. The
// four Prev/Next pointers thread this record into the relationship chains
// of its start and end node, exactly as in Neo4j's store format.
type RelRecord struct {
	InUse     bool
	Tombstone bool
	Type      uint32 // relationship type token
	StartNode ids.ID
	EndNode   ids.ID
	StartPrev ids.ID // previous rel in the start node's chain
	StartNext ids.ID // next rel in the start node's chain
	EndPrev   ids.ID // previous rel in the end node's chain
	EndNext   ids.ID // next rel in the end node's chain
	FirstProp ids.ID
}

// EncodeRel writes r into dst, which must be at least RelSize bytes.
func EncodeRel(dst []byte, r *RelRecord) {
	_ = dst[:RelSize]
	var flags byte
	if r.InUse {
		flags |= FlagInUse
	}
	if r.Tombstone {
		flags |= FlagTombstone
	}
	dst[0] = flags
	binary.LittleEndian.PutUint32(dst[1:], r.Type)
	binary.LittleEndian.PutUint64(dst[5:], r.StartNode)
	binary.LittleEndian.PutUint64(dst[13:], r.EndNode)
	binary.LittleEndian.PutUint64(dst[21:], r.StartPrev)
	binary.LittleEndian.PutUint64(dst[29:], r.StartNext)
	binary.LittleEndian.PutUint64(dst[37:], r.EndPrev)
	binary.LittleEndian.PutUint64(dst[45:], r.EndNext)
	binary.LittleEndian.PutUint64(dst[53:], r.FirstProp)
	for i := 61; i < RelSize; i++ {
		dst[i] = 0
	}
}

// DecodeRel parses a relationship record from src (at least RelSize bytes).
func DecodeRel(src []byte) (RelRecord, error) {
	if len(src) < RelSize {
		return RelRecord{}, fmt.Errorf("%w: short rel record (%d bytes)", ErrCorrupt, len(src))
	}
	flags := src[0]
	return RelRecord{
		InUse:     flags&FlagInUse != 0,
		Tombstone: flags&FlagTombstone != 0,
		Type:      binary.LittleEndian.Uint32(src[1:]),
		StartNode: binary.LittleEndian.Uint64(src[5:]),
		EndNode:   binary.LittleEndian.Uint64(src[13:]),
		StartPrev: binary.LittleEndian.Uint64(src[21:]),
		StartNext: binary.LittleEndian.Uint64(src[29:]),
		EndPrev:   binary.LittleEndian.Uint64(src[37:]),
		EndNext:   binary.LittleEndian.Uint64(src[45:]),
		FirstProp: binary.LittleEndian.Uint64(src[53:]),
	}, nil
}

// PropRecord is one block in an entity's property chain: one key/value
// pair. Values whose encoding fits PropInlineMax bytes are inlined;
// longer ones live in a dynamic-store chain referenced by SpillRef.
type PropRecord struct {
	InUse    bool
	Key      uint32 // property key token
	Next     ids.ID // next property block, NoID at end of chain
	SpillRef ids.ID // dynamic record holding the value when spilled
	Inline   []byte // encoded value when not spilled (<= PropInlineMax)
	Spilled  bool
}

// EncodeProp writes p into dst, which must be at least PropSize bytes.
// It panics if Inline exceeds PropInlineMax — callers must spill first.
func EncodeProp(dst []byte, p *PropRecord) {
	_ = dst[:PropSize]
	if len(p.Inline) > PropInlineMax {
		panic(fmt.Sprintf("record: inline property payload %d > max %d", len(p.Inline), PropInlineMax))
	}
	var flags byte
	if p.InUse {
		flags |= FlagInUse
	}
	if p.Spilled {
		flags |= FlagSpilled
	}
	dst[0] = flags
	binary.LittleEndian.PutUint32(dst[1:], p.Key)
	binary.LittleEndian.PutUint64(dst[5:], p.Next)
	binary.LittleEndian.PutUint64(dst[13:], p.SpillRef)
	dst[propHeader] = byte(len(p.Inline))
	copy(dst[propHeader+1:], p.Inline)
	for i := propHeader + 1 + len(p.Inline); i < PropSize; i++ {
		dst[i] = 0
	}
}

// DecodeProp parses a property record from src (at least PropSize bytes).
func DecodeProp(src []byte) (PropRecord, error) {
	if len(src) < PropSize {
		return PropRecord{}, fmt.Errorf("%w: short prop record (%d bytes)", ErrCorrupt, len(src))
	}
	flags := src[0]
	p := PropRecord{
		InUse:    flags&FlagInUse != 0,
		Spilled:  flags&FlagSpilled != 0,
		Key:      binary.LittleEndian.Uint32(src[1:]),
		Next:     binary.LittleEndian.Uint64(src[5:]),
		SpillRef: binary.LittleEndian.Uint64(src[13:]),
	}
	n := int(src[propHeader])
	if n > PropInlineMax {
		return PropRecord{}, fmt.Errorf("%w: inline length %d > max %d", ErrCorrupt, n, PropInlineMax)
	}
	if n > 0 {
		p.Inline = make([]byte, n)
		copy(p.Inline, src[propHeader+1:propHeader+1+n])
	}
	return p, nil
}

// DynRecord is one block of a dynamic-store chain holding raw bytes.
type DynRecord struct {
	InUse   bool
	Payload []byte // at most DynPayload bytes
	Next    ids.ID // next block, NoID at end of chain
}

// EncodeDyn writes d into dst, which must be at least DynSize bytes. It
// panics if Payload exceeds DynPayload.
func EncodeDyn(dst []byte, d *DynRecord) {
	_ = dst[:DynSize]
	if len(d.Payload) > DynPayload {
		panic(fmt.Sprintf("record: dynamic payload %d > max %d", len(d.Payload), DynPayload))
	}
	var flags byte
	if d.InUse {
		flags |= FlagInUse
	}
	dst[0] = flags
	dst[1] = byte(len(d.Payload))
	dst[2] = byte(len(d.Payload) >> 8)
	dst[3] = byte(len(d.Payload) >> 16)
	binary.LittleEndian.PutUint64(dst[4:], d.Next)
	copy(dst[dynHeader:], d.Payload)
	for i := dynHeader + len(d.Payload); i < DynSize; i++ {
		dst[i] = 0
	}
}

// DecodeDyn parses a dynamic record from src (at least DynSize bytes).
func DecodeDyn(src []byte) (DynRecord, error) {
	if len(src) < DynSize {
		return DynRecord{}, fmt.Errorf("%w: short dyn record (%d bytes)", ErrCorrupt, len(src))
	}
	n := int(src[1]) | int(src[2])<<8 | int(src[3])<<16
	if n > DynPayload {
		return DynRecord{}, fmt.Errorf("%w: dyn length %d > max %d", ErrCorrupt, n, DynPayload)
	}
	d := DynRecord{
		InUse: src[0]&FlagInUse != 0,
		Next:  binary.LittleEndian.Uint64(src[4:]),
	}
	if n > 0 {
		d.Payload = make([]byte, n)
		copy(d.Payload, src[dynHeader:dynHeader+n])
	}
	return d, nil
}
