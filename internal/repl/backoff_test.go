package repl

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitteredBackoffBounds: every jittered delay stays within [d/2, d],
// so the configured RetryMax is a true cap and the floor never collapses
// to a hot retry loop.
func TestJitteredBackoffBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []time.Duration{
		time.Millisecond, 50 * time.Millisecond, 2 * time.Second,
	} {
		var min, max time.Duration
		for i := 0; i < 10_000; i++ {
			got := jitteredBackoff(d, rng)
			if got < d/2 || got > d {
				t.Fatalf("jitteredBackoff(%v) = %v, outside [%v, %v]", d, got, d/2, d)
			}
			if i == 0 || got < min {
				min = got
			}
			if got > max {
				max = got
			}
		}
		// The jitter must actually spread: identical delays would herd
		// every reconnecting replica onto the same instant.
		if min == max {
			t.Fatalf("jitteredBackoff(%v) never varied (always %v)", d, min)
		}
	}
	// Degenerate inputs pass through.
	if got := jitteredBackoff(0, rng); got != 0 {
		t.Fatalf("jitteredBackoff(0) = %v", got)
	}
	if got := jitteredBackoff(1, rng); got != 1 {
		t.Fatalf("jitteredBackoff(1) = %v", got)
	}
}
