package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/core"
	"neograph/internal/slog"
)

// ApplierOptions tune the replica side.
type ApplierOptions struct {
	// RetryMin/RetryMax bound the reconnect backoff. Zero means
	// 50ms / 2s.
	RetryMin, RetryMax time.Duration
	// DialTimeout bounds one connection attempt. Zero means 5s.
	DialTimeout time.Duration
	// ReadTimeout is how long the applier waits for any frame before
	// declaring the connection dead; the primary heartbeats far more
	// often. Zero means 30s.
	ReadTimeout time.Duration
	// SyncEvery rate-limits the replica's own WAL fsyncs: the applied
	// tail is made durable at most this often (heartbeats arrive once per
	// shipped batch, far too often to fsync each). A replica crash only
	// re-fetches the unsynced tail from the primary, so the window trades
	// re-fetch volume, not correctness. Zero means 200ms.
	SyncEvery time.Duration
	// Logger receives connection state changes (info/warn) and the
	// per-attempt reconnect failures (debug — they repeat on the backoff
	// cadence for as long as the primary is down). Nil is silent.
	Logger *slog.Logger
}

// ApplierStatus snapshots the replica's replication state.
type ApplierStatus struct {
	PrimaryAddr string `json:"primary_addr"`
	Connected   bool   `json:"connected"`
	// AppliedPos is the position one past the last applied record.
	AppliedPos uint64 `json:"applied_pos"`
	// PrimaryDurable is the primary's durability horizon from the last
	// heartbeat; PrimaryDurable - AppliedPos is the byte lag.
	PrimaryDurable uint64 `json:"primary_durable"`
	// LagSeconds is how long the replica has continuously been behind the
	// primary's durability horizon (0 when caught up) — the wall-clock
	// companion to the byte lag above, and the series operators alert on.
	LagSeconds float64 `json:"lag_seconds"`
	LastError  string  `json:"last_error,omitempty"`
	// ReseedRequired is set when the last stream attempt ended with
	// ErrReseedRequired: reconnecting can never succeed, the data dir
	// must be replaced by a snapshot from the primary.
	ReseedRequired bool `json:"reseed_required,omitempty"`
}

// ErrApplierClosed reports a wait cut off by Close.
var ErrApplierClosed = errors.New("repl: applier closed")

// ErrWaitTimeout reports a WaitApplied that ran out its timeout before
// the applied position reached the requested gate. Callers polling in
// bounded slices (the server's drain-aware WaitLSN gate) test for it
// with errors.Is to distinguish "not yet" from a real failure.
var ErrWaitTimeout = errors.New("repl: apply wait timed out")

// ErrReseedRequired reports that this replica's log cannot resume the
// stream — it diverged past a fork point, fell behind the primary's
// retained WAL, or its epoch history conflicts with the primary's. The
// replica's data dir must be replaced by a snapshot from the primary
// (DB.ReseedFrom / the cluster controller do this automatically).
var ErrReseedRequired = errors.New("repl: re-seed required")

// Applier maintains the replica's connection to its primary: it dials,
// resumes the stream from the local log end, redo-applies every record
// through the engine's recovery apply path, and reconnects with backoff
// after any failure. One Applier is the sole writer of its engine's WAL.
type Applier struct {
	e       *core.Engine
	primary string
	opts    ApplierOptions
	// id identifies this applier instance across reconnects (random,
	// non-zero) so the primary's quorum accounting can deduplicate a
	// replica's old and new connections.
	id  uint64
	log *slog.Logger
	// sessionUp flags that the current streamOnce established its
	// connection, so run can tell a lost session (warn — a state change)
	// from a failed reconnect attempt (debug — backoff spam).
	sessionUp atomic.Bool

	applied atomic.Uint64
	// primaryDurable is the primary's durability horizon from the last
	// heartbeat (atomic so lag accounting and scrapes skip a.mu).
	primaryDurable atomic.Uint64
	// behindSince is the UnixNano instant the replica last fell behind the
	// primary's horizon, 0 while caught up. LagSeconds derives from it.
	behindSince atomic.Int64

	mu        sync.Mutex
	conn      net.Conn // live connection, for Close to sever
	connected bool
	lastErr   error
	notifyC   chan struct{} // closed when applied advances
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewApplier creates (but does not start) an applier feeding e, which
// must be open in replica mode, from the primary's shipper address.
func NewApplier(e *core.Engine, primaryAddr string, opts ApplierOptions) (*Applier, error) {
	if !e.IsReplica() {
		return nil, errors.New("repl: applier requires an engine in replica mode")
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 30 * time.Second
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 200 * time.Millisecond
	}
	a := &Applier{e: e, primary: primaryAddr, opts: opts, stop: make(chan struct{})}
	a.log = opts.Logger.With("component", "repl.applier", "primary", primaryAddr)
	for a.id == 0 {
		a.id = rand.Uint64()
	}
	a.applied.Store(e.AppliedLSN())
	return a, nil
}

// Start launches the connect/apply/reconnect loop.
func (a *Applier) Start() {
	a.wg.Add(1)
	go a.run()
}

// Close severs the connection and stops reconnecting. Waiters in
// WaitApplied are released with ErrApplierClosed.
func (a *Applier) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
	close(a.stop)
	a.wg.Wait()
	a.mu.Lock()
	a.wakeLocked()
	a.mu.Unlock()
}

// AppliedLSN returns the position one past the last applied record.
func (a *Applier) AppliedLSN() uint64 { return a.applied.Load() }

// Status snapshots the replication state.
func (a *Applier) Status() ApplierStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ApplierStatus{
		PrimaryAddr:    a.primary,
		Connected:      a.connected,
		AppliedPos:     a.applied.Load(),
		PrimaryDurable: a.primaryDurable.Load(),
		LagSeconds:     a.LagSeconds(),
	}
	if a.lastErr != nil {
		st.LastError = a.lastErr.Error()
		st.ReseedRequired = errors.Is(a.lastErr, ErrReseedRequired)
	}
	return st
}

// WaitApplied blocks until the applied position reaches pos — the
// read-your-writes gate: pos is the commit-LSN token the primary
// returned for the write the caller must observe. A zero timeout waits
// indefinitely (until Close).
func (a *Applier) WaitApplied(pos uint64, timeout time.Duration) error {
	if a.applied.Load() >= pos {
		return nil
	}
	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	for {
		a.mu.Lock()
		if a.applied.Load() >= pos {
			a.mu.Unlock()
			return nil
		}
		if a.closed {
			a.mu.Unlock()
			return ErrApplierClosed
		}
		if a.notifyC == nil {
			a.notifyC = make(chan struct{})
		}
		c := a.notifyC
		a.mu.Unlock()
		select {
		case <-c:
		case <-timerC:
			return fmt.Errorf("%w: position %d (applied %d)", ErrWaitTimeout, pos, a.applied.Load())
		case <-a.stop:
			return ErrApplierClosed
		}
	}
}

// wakeLocked releases WaitApplied callers. Caller holds a.mu.
func (a *Applier) wakeLocked() {
	if a.notifyC != nil {
		close(a.notifyC)
		a.notifyC = nil
	}
}

// run is the reconnect loop: stream until failure, back off, retry. The
// backoff doubles up to RetryMax and every sleep is jittered, so a fleet
// of replicas orphaned by a primary crash doesn't reconnect in lockstep
// when the promoted node starts shipping on the old address.
func (a *Applier) run() {
	defer a.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := a.opts.RetryMin
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		start := time.Now()
		err := a.streamOnce()
		hadConn := a.sessionUp.Swap(false)
		a.mu.Lock()
		a.lastErr = err
		closed := a.closed
		a.mu.Unlock()
		switch {
		case closed || errors.Is(err, ErrApplierClosed):
			// Shutting down; the teardown error is not news.
		case hadConn:
			a.log.Warn("primary connection lost", "err", err)
		default:
			a.log.Debug("reconnect attempt failed", "err", err, "backoff", backoff)
		}
		if time.Since(start) > 5*time.Second {
			backoff = a.opts.RetryMin // the session was healthy; reset
		}
		select {
		case <-a.stop:
			return
		case <-time.After(jitteredBackoff(backoff, rng)):
		}
		if backoff *= 2; backoff > a.opts.RetryMax {
			backoff = a.opts.RetryMax
		}
	}
}

// jitteredBackoff spreads one reconnect delay uniformly over [d/2, d].
// The cap stays d (== RetryMax once the doubling saturates): jitter must
// never push a sleep past the configured maximum, or a "max 2s" applier
// could be observed sleeping longer.
func jitteredBackoff(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}

// streamOnce runs one replication session: handshake from the local log
// end, then apply frames until the connection dies.
func (a *Applier) streamOnce() error {
	conn, err := net.DialTimeout("tcp", a.primary, a.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("repl: dial primary: %w", err)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		return ErrApplierClosed
	}
	a.conn = conn
	a.connected = true
	a.mu.Unlock()
	a.sessionUp.Store(true)
	a.log.Info("connected to primary", "resume_from", a.e.AppliedLSN())
	defer func() {
		conn.Close()
		a.mu.Lock()
		a.conn = nil
		a.connected = false
		a.mu.Unlock()
	}()

	from := a.e.AppliedLSN()
	myEpoch, _ := a.e.Epoch()
	conn.SetWriteDeadline(time.Now().Add(a.opts.DialTimeout))
	if err := writeHandshake(conn, modeStream, from, myEpoch, a.id); err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriter(conn)
	buf := make([]byte, 32<<10)
	lastSync := time.Now()
	sawEpoch := false
	for {
		conn.SetReadDeadline(time.Now().Add(a.opts.ReadTimeout))
		typ, lsn, payload, err := readFrame(br, buf)
		if err != nil {
			return fmt.Errorf("repl: stream: %w", err)
		}
		switch typ {
		case frameEpoch:
			// First frame: the primary's full epoch history (16-byte
			// entries, oldest first; lsn = its current epoch). A primary
			// behind our epoch is a stale ex-primary still shipping its
			// dead timeline — refuse before applying anything. And before
			// adopting a newer timeline, our own log end must sit at or
			// before the fork point of EVERY epoch we missed: past any of
			// them, our tail is dead-timeline bytes the primary-side check
			// also refuses, but a replica must not rely on the peer alone.
			if len(payload) == 0 || len(payload)%16 != 0 {
				return fmt.Errorf("repl: malformed epoch frame (%d payload bytes)", len(payload))
			}
			hist := make([]core.EpochEntry, 0, len(payload)/16)
			for off := 0; off < len(payload); off += 16 {
				hist = append(hist, core.EpochEntry{
					Epoch: binary.LittleEndian.Uint64(payload[off:]),
					Start: binary.LittleEndian.Uint64(payload[off+8:]),
				})
			}
			primaryEpoch := lsn
			cur, _ := a.e.Epoch()
			if primaryEpoch < cur {
				return fmt.Errorf("repl: primary epoch %d behind replica epoch %d; refusing stale primary", primaryEpoch, cur)
			}
			for _, en := range hist {
				if en.Epoch > cur && from > en.Start {
					return fmt.Errorf("repl: local log end %d diverged past the epoch-%d fork point %d: %w", from, en.Epoch, en.Start, ErrReseedRequired)
				}
			}
			// Epoch numbers alone cannot fence a double claim: if a winner
			// crashed mid-promotion after persisting epoch N and a second
			// election claimed the same N with a different fork point, the
			// two timelines share an epoch number but not a history. Any
			// epoch we both know must fork at the same position — otherwise
			// our prefix is from the dead claimant's timeline.
			local := a.e.EpochHistory()
			for _, en := range hist {
				for _, mine := range local {
					if mine.Epoch == en.Epoch && mine.Start != en.Start {
						return fmt.Errorf("repl: epoch %d forks at %d locally but at %d on the primary — conflicting histories: %w",
							en.Epoch, mine.Start, en.Start, ErrReseedRequired)
					}
				}
			}
			if err := a.e.AdoptEpochHistory(hist); err != nil {
				return err
			}
			sawEpoch = true
		case frameRecord:
			if !sawEpoch {
				return errors.New("repl: record before epoch announce")
			}
			if err := a.e.ApplyReplicated(lsn, payload); err != nil {
				return err
			}
			a.advanceApplied(a.e.AppliedLSN())
		case frameHeartbeat:
			a.primaryDurable.Store(lsn)
			a.updateLag()
			// Heartbeats close every shipped batch — far too often to pay
			// an fsync each, so local durability is rate-limited — unless
			// the primary runs synchronous replication and asked for a
			// durable ack (hbFlagSyncAck), in which case the fsync happens
			// now: the primary's commits are parked on this ack. The ack
			// reports the locally *durable* position: it is the WAL
			// retention floor on the primary, a quorum vote under sync
			// replication, and a crashed replica resumes from its durable
			// log end.
			syncNow := len(payload) > 0 && payload[0]&hbFlagSyncAck != 0
			if syncNow || time.Since(lastSync) >= a.opts.SyncEvery {
				if err := a.e.SyncWAL(); err != nil {
					return fmt.Errorf("repl: replica wal sync: %w", err)
				}
				lastSync = time.Now()
			}
			conn.SetWriteDeadline(time.Now().Add(a.opts.ReadTimeout))
			if err := writeFrame(bw, frameAck, a.e.DurableLSN(), nil); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case frameError:
			// The primary's refusal text is the only channel it has; map
			// the "re-seed required" family onto the structured error so
			// the controller can turn it into an automatic re-seed.
			if bytes.Contains(payload, []byte("re-seed required")) {
				return fmt.Errorf("repl: primary refused stream: %s: %w", payload, ErrReseedRequired)
			}
			return fmt.Errorf("repl: primary refused stream: %s", payload)
		default:
			return fmt.Errorf("repl: unknown frame type %q", typ)
		}
	}
}

// advanceApplied publishes a new applied position and wakes waiters.
func (a *Applier) advanceApplied(pos uint64) {
	a.applied.Store(pos)
	a.updateLag()
	a.mu.Lock()
	a.wakeLocked()
	a.mu.Unlock()
}

// updateLag reconciles behindSince with the current applied/horizon gap:
// caught up clears it, falling behind stamps the instant it started. The
// CAS keeps the stamp at the *first* fall-behind instant when heartbeats
// and applies race.
func (a *Applier) updateLag() {
	if a.applied.Load() >= a.primaryDurable.Load() {
		a.behindSince.Store(0)
	} else {
		a.behindSince.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// LagSeconds reports how long the replica has continuously been behind
// the primary's durability horizon, 0 when caught up.
func (a *Applier) LagSeconds() float64 {
	s := a.behindSince.Load()
	if s == 0 {
		return 0
	}
	return time.Since(time.Unix(0, s)).Seconds()
}

// LagBytes reports the byte gap to the primary's durability horizon
// (0 when caught up or before the first heartbeat).
func (a *Applier) LagBytes() uint64 {
	d, ap := a.primaryDurable.Load(), a.applied.Load()
	if d <= ap {
		return 0
	}
	return d - ap
}
