package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/core"
	"neograph/internal/wal"
)

// ShipperOptions tune the primary side.
type ShipperOptions struct {
	// HeartbeatEvery is the idle heartbeat interval (also the cadence at
	// which replica acknowledgements are solicited). Zero means 100ms.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds one write batch to a replica; a replica that
	// cannot drain the stream this long is disconnected rather than
	// allowed to wedge the shipper. Zero means 30s.
	WriteTimeout time.Duration
}

// ReplicaInfo describes one connected replica for status reporting.
type ReplicaInfo struct {
	Addr string `json:"addr"`
	// ShippedPos is the position up to which the stream has been sent.
	ShippedPos uint64 `json:"shipped_pos"`
	// AckedPos is the replica's last acknowledged applied position.
	AckedPos uint64 `json:"acked_pos"`
}

// shipConn is one replica connection's state.
type shipConn struct {
	conn net.Conn
	// pos is the next position to ship — the WAL retention floor for
	// this replica.
	pos   atomic.Uint64
	acked atomic.Uint64
}

// Shipper streams the engine's WAL to any number of replicas. It ships
// only durable records (group-commit fsyncs drive the tail forward), and
// holds checkpoint truncation of the WAL below the position of the
// slowest connected replica.
type Shipper struct {
	e    *core.Engine
	ln   net.Listener
	opts ShipperOptions

	mu     sync.Mutex
	conns  map[*shipConn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewShipper starts serving the engine's WAL on addr (":0" picks a port).
func NewShipper(e *core.Engine, addr string, opts ShipperOptions) (*Shipper, error) {
	if e.WAL() == nil {
		return nil, errors.New("repl: replication requires a persistent store")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen: %w", err)
	}
	s := &Shipper{
		e:     e,
		ln:    ln,
		opts:  opts,
		conns: make(map[*shipConn]struct{}),
		stop:  make(chan struct{}),
	}
	e.SetWALRetain(s.retainPos)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound replication address.
func (s *Shipper) Addr() string { return s.ln.Addr().String() }

// Replicas snapshots the connected replicas.
func (s *Shipper) Replicas() []ReplicaInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, ReplicaInfo{
			Addr:       c.conn.RemoteAddr().String(),
			ShippedPos: c.pos.Load(),
			AckedPos:   c.acked.Load(),
		})
	}
	return out
}

// retainPos is the checkpointer's WAL retention hook: keep segments from
// the slowest connected replica's *acknowledged* position on. Shipped
// bytes sitting unapplied in a replica's socket buffer don't count — a
// replica that dies there reconnects from its applied position and needs
// those segments again.
func (s *Shipper) retainPos() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min uint64
	ok := false
	for c := range s.conns {
		if p := c.acked.Load(); !ok || p < min {
			min, ok = p, true
		}
	}
	return min, ok
}

// Close stops accepting, disconnects every replica, and releases the
// WAL retention hold.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.e.SetWALRetain(nil)
	close(s.stop)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Shipper) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one replica: catch-up from whatever segments hold its
// resume position, then the live tail as records become durable.
func (s *Shipper) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	from, err := readHandshake(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	c := &shipConn{conn: conn}
	c.pos.Store(from)
	c.acked.Store(from)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	bw := bufio.NewWriterSize(conn, 64<<10)
	w := s.e.WAL()

	sendErr := func(msg string) {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		writeFrame(bw, frameError, 0, []byte(msg))
		bw.Flush()
	}
	if from > w.DurableLSN() {
		// A replica ahead of the primary's durable log is from a
		// different history (e.g. it applied records a crashed primary
		// never recovered — impossible while shipping only durable
		// records, so the replica must be re-seeded).
		sendErr(fmt.Sprintf("repl: replica position %d ahead of primary durable log %d; re-seed required", from, w.DurableLSN()))
		return
	}

	// Drain acknowledgements; a read error closes the connection and so
	// unblocks any in-flight write.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			typ, lsn, _, err := readFrame(br, nil)
			if err != nil || typ != frameAck {
				return
			}
			c.acked.Store(lsn)
		}
	}()

	pos := from
	for {
		horizon, err := w.WaitShippable(pos, s.opts.HeartbeatEvery, s.stop)
		if err != nil {
			if !errors.Is(err, wal.ErrCanceled) && !errors.Is(err, wal.ErrClosed) {
				sendErr(err.Error())
			}
			return
		}
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		if horizon > pos {
			err := w.ReadRange(pos, horizon, func(lsn uint64, payload []byte) error {
				c.pos.Store(lsn)
				return writeFrame(bw, frameRecord, lsn, payload)
			})
			if err != nil {
				if errors.Is(err, wal.ErrTruncated) {
					sendErr(err.Error())
				}
				return
			}
			pos = horizon
			c.pos.Store(pos)
		}
		// Heartbeat after every batch and on idle: carries the durability
		// horizon so replicas can report lag even when nothing ships.
		if err := writeFrame(bw, frameHeartbeat, s.e.DurableLSN(), nil); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}
