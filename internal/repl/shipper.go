package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/core"
	"neograph/internal/slog"
	"neograph/internal/wal"
)

// ShipperOptions tune the primary side.
type ShipperOptions struct {
	// HeartbeatEvery is the idle heartbeat interval (also the cadence at
	// which replica acknowledgements are solicited). Zero means 100ms.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds one write batch to a replica; a replica that
	// cannot drain the stream this long is disconnected rather than
	// allowed to wedge the shipper. Zero means 30s.
	WriteTimeout time.Duration
	// SyncReplicas makes replication synchronous: a commit is
	// acknowledged only once this many replicas have durably acked its
	// WAL end position (heartbeats then ask replicas to fsync before
	// acking). Zero keeps replication asynchronous.
	SyncReplicas int
	// SyncTimeout is the degrade-to-async window: a commit that cannot
	// assemble its quorum this long is acknowledged anyway and counted in
	// Degraded (availability over consistency, like a primary whose
	// replicas all died). Zero means 1s; negative means wait forever.
	SyncTimeout time.Duration
	// ReseedRetainFor holds WAL truncation at a served snapshot's end
	// position for this long, so the joiner can reconnect and resume the
	// record stream before the segments it needs are truncated away.
	// Zero means 60s.
	ReseedRetainFor time.Duration
	// Logger receives replica connect/disconnect and stream refusals;
	// nil is silent.
	Logger *slog.Logger
}

// DefaultSyncTimeout is the degrade-to-async window when unset.
const DefaultSyncTimeout = time.Second

// ReplicaInfo describes one connected replica for status reporting.
type ReplicaInfo struct {
	Addr string `json:"addr"`
	// ShippedPos is the position up to which the stream has been sent.
	ShippedPos uint64 `json:"shipped_pos"`
	// AckedPos is the replica's last acknowledged applied position.
	AckedPos uint64 `json:"acked_pos"`
}

// shipConn is one replica connection's state.
type shipConn struct {
	conn net.Conn
	// id is the replica's instance id from the handshake (0 from clients
	// that sent none); quorum votes are deduplicated by it so a zombie
	// connection plus its replacement never count as two replicas.
	id uint64
	// pos is the next position to ship — the WAL retention floor for
	// this replica.
	pos atomic.Uint64
	// acked is the position the replica has durably acknowledged on THIS
	// connection. It starts at zero — never at the handshake position,
	// which is the replica's applied-but-possibly-unsynced log end and
	// must not satisfy a durability quorum.
	acked atomic.Uint64
}

// Shipper streams the engine's WAL to any number of replicas. It ships
// only durable records (group-commit fsyncs drive the tail forward), and
// holds checkpoint truncation of the WAL below the position of the
// slowest connected replica.
type Shipper struct {
	e    *core.Engine
	ln   net.Listener
	opts ShipperOptions
	log  *slog.Logger

	mu     sync.Mutex
	conns  map[*shipConn]struct{}
	closed bool
	// reseedFloors holds WAL retention at served snapshots' end positions
	// (position -> hold expiry) until the joiners reconnect as streaming
	// replicas or the hold times out.
	reseedFloors map[uint64]time.Time
	// ackC, when non-nil, is closed whenever any replica's acknowledged
	// position advances (or a replica disconnects), waking quorum waiters.
	ackC chan struct{}

	// degraded counts commits acknowledged without their quorum because
	// SyncTimeout elapsed.
	degraded atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewShipper starts serving the engine's WAL on addr (":0" picks a port).
func NewShipper(e *core.Engine, addr string, opts ShipperOptions) (*Shipper, error) {
	if e.WAL() == nil {
		return nil, errors.New("repl: replication requires a persistent store")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 30 * time.Second
	}
	if opts.SyncTimeout == 0 {
		opts.SyncTimeout = DefaultSyncTimeout
	}
	if opts.ReseedRetainFor <= 0 {
		opts.ReseedRetainFor = 60 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen: %w", err)
	}
	s := &Shipper{
		e:            e,
		ln:           ln,
		opts:         opts,
		log:          opts.Logger.With("component", "repl.shipper"),
		conns:        make(map[*shipConn]struct{}),
		reseedFloors: make(map[uint64]time.Time),
		stop:         make(chan struct{}),
	}
	e.SetWALRetain(s.retainPos)
	if opts.SyncReplicas > 0 {
		e.SetCommitSyncWait(s.waitQuorum)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound replication address.
func (s *Shipper) Addr() string { return s.ln.Addr().String() }

// Replicas snapshots the connected replicas.
func (s *Shipper) Replicas() []ReplicaInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, ReplicaInfo{
			Addr:       c.conn.RemoteAddr().String(),
			ShippedPos: c.pos.Load(),
			AckedPos:   c.acked.Load(),
		})
	}
	return out
}

// retainPos is the checkpointer's WAL retention hook: keep segments from
// the slowest connected replica's *acknowledged* position on. Shipped
// bytes sitting unapplied in a replica's socket buffer don't count — a
// replica that dies there reconnects from its applied position and needs
// those segments again.
func (s *Shipper) retainPos() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min uint64
	ok := false
	for c := range s.conns {
		if p := c.acked.Load(); !ok || p < min {
			min, ok = p, true
		}
	}
	// Recently served snapshots hold retention at their end position until
	// the joiner reconnects (or the hold expires): truncating the tail a
	// fresh joiner is about to resume from would force it straight into a
	// second re-seed.
	now := time.Now()
	for pos, expiry := range s.reseedFloors {
		if now.After(expiry) {
			delete(s.reseedFloors, pos)
			continue
		}
		if !ok || pos < min {
			min, ok = pos, true
		}
	}
	return min, ok
}

// Degraded counts commits acknowledged without their replica quorum
// because SyncTimeout elapsed.
func (s *Shipper) Degraded() uint64 { return s.degraded.Load() }

// wakeAcks releases quorum waiters to re-check replica positions.
func (s *Shipper) wakeAcks() {
	s.mu.Lock()
	if s.ackC != nil {
		close(s.ackC)
		s.ackC = nil
	}
	s.mu.Unlock()
}

// waitQuorum is the engine's commit hook under synchronous replication:
// it blocks until SyncReplicas distinct replicas have durably acked the
// commit's end position. On SyncTimeout — or a shipper shutdown racing
// the commit — it degrades: the commit is acknowledged anyway and
// counted, because a primary whose replicas died must stay available,
// and every quorum-less acknowledgement must be visible to the operator
// through Degraded.
func (s *Shipper) waitQuorum(end uint64) error {
	var timerC <-chan time.Time
	if s.opts.SyncTimeout > 0 {
		t := time.NewTimer(s.opts.SyncTimeout)
		defer t.Stop()
		timerC = t.C
	}
	timedOut := false
	for {
		s.mu.Lock()
		// Votes are per replica instance, not per connection: a zombie
		// connection surviving alongside its replacement must not double
		// a single replica's vote. Id 0 (a client that sent none) cannot
		// be deduplicated and counts per connection.
		seen := make(map[uint64]struct{}, len(s.conns))
		n := 0
		for c := range s.conns {
			if c.acked.Load() < end {
				continue
			}
			if c.id != 0 {
				if _, dup := seen[c.id]; dup {
					continue
				}
				seen[c.id] = struct{}{}
			}
			n++
		}
		if n >= s.opts.SyncReplicas {
			// A quorum that assembled is a quorum, even if the degrade
			// timer raced the deciding ack — never a degraded commit.
			s.mu.Unlock()
			return nil
		}
		if s.closed || timedOut {
			s.mu.Unlock()
			s.degraded.Add(1)
			return nil
		}
		if s.ackC == nil {
			s.ackC = make(chan struct{})
		}
		ch := s.ackC
		s.mu.Unlock()
		select {
		case <-ch:
		case <-timerC:
			// Recount before declaring the degrade: select picks randomly
			// among ready cases, so the timer can win against an ack that
			// already completed the quorum.
			timedOut = true
		case <-s.stop:
			// Close sets closed before closing stop: loop once more so a
			// quorum that did assemble is honoured, else count the degrade.
		}
	}
}

// Close stops accepting, disconnects every replica, and releases the
// WAL retention hold and the commit quorum hook.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.e.SetWALRetain(nil)
	if s.opts.SyncReplicas > 0 {
		s.e.SetCommitSyncWait(nil)
	}
	close(s.stop)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Shipper) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one replica: catch-up from whatever segments hold its
// resume position, then the live tail as records become durable.
func (s *Shipper) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	mode, from, repEpoch, repID, err := readHandshake(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	if mode == modeReseed {
		s.handleReseed(conn)
		return
	}

	c := &shipConn{conn: conn, id: repID}
	c.pos.Store(from)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	log := s.log.With("replica", conn.RemoteAddr().String())
	log.Info("replica connected", "resume_from", from)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			log.Info("replica disconnected", "shipped", c.pos.Load(), "acked", c.acked.Load())
		}
		// Quorum waiters must re-count: this replica no longer votes.
		s.wakeAcks()
	}()

	bw := bufio.NewWriterSize(conn, 64<<10)
	w := s.e.WAL()

	sendErr := func(msg string) {
		log.Warn("refusing replica stream", "reason", msg)
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		writeFrame(bw, frameError, 0, []byte(msg))
		bw.Flush()
	}
	// Epoch fencing. A replica that has seen a newer epoch than ours
	// means *we* are the stale side (e.g. a demoted primary restarted
	// with its old role); shipping would fork history. A replica on an
	// older epoch is fine only while its log does not extend past the
	// fork point of ANY epoch it missed — checking just the newest fork
	// would wave through a node diverged before an earlier promotion,
	// whose bytes belong to a timeline dead for several generations.
	hist := s.e.EpochHistory()
	myEpoch, _ := s.e.Epoch()
	if repEpoch > myEpoch {
		sendErr(fmt.Sprintf("repl: replica epoch %d ahead of primary epoch %d; this primary is stale", repEpoch, myEpoch))
		return
	}
	for _, en := range hist {
		if en.Epoch > repEpoch && from > en.Start {
			sendErr(fmt.Sprintf("repl: replica log end %d on epoch %d diverged past the epoch-%d fork point %d; re-seed required", from, repEpoch, en.Epoch, en.Start))
			return
		}
	}
	if from > w.DurableLSN() {
		// A replica ahead of the primary's durable log is from a
		// different history (e.g. it applied records a crashed primary
		// never recovered — impossible while shipping only durable
		// records, so the replica must be re-seeded).
		sendErr(fmt.Sprintf("repl: replica position %d ahead of primary durable log %d; re-seed required", from, w.DurableLSN()))
		return
	}
	if start, serr := w.StartLSN(); serr == nil && from < start {
		// Checkpoints truncated the segments this replica would resume
		// from before it connected; only a snapshot can bring it back.
		sendErr(fmt.Sprintf("repl: replica position %d predates the oldest retained segment %d; re-seed required", from, start))
		return
	}

	// Announce our full epoch history before any record so the replica
	// can adopt (or refuse) the timeline up front.
	epochPayload := make([]byte, 0, 16*len(hist))
	for _, en := range hist {
		epochPayload = binary.LittleEndian.AppendUint64(epochPayload, en.Epoch)
		epochPayload = binary.LittleEndian.AppendUint64(epochPayload, en.Start)
	}
	// Flushed immediately: if the catch-up read below fails (e.g. the
	// replica's resume position is mid-record on OUR log — a diverged
	// timeline that shares our epoch number), the replica must still
	// receive the history so it can classify the conflict as
	// re-seed-required instead of retrying a bare EOF forever.
	if err := writeFrame(bw, frameEpoch, myEpoch, epochPayload); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Drain acknowledgements; a read error closes the connection and so
	// unblocks any in-flight write.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			typ, lsn, _, err := readFrame(br, nil)
			if err != nil || typ != frameAck {
				return
			}
			c.acked.Store(lsn)
			s.wakeAcks()
		}
	}()

	pos := from
	for {
		horizon, err := w.WaitShippable(pos, s.opts.HeartbeatEvery, s.stop)
		if err != nil {
			if !errors.Is(err, wal.ErrCanceled) && !errors.Is(err, wal.ErrClosed) {
				sendErr(err.Error())
			}
			return
		}
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		if horizon > pos {
			err := w.ReadRange(pos, horizon, func(lsn uint64, payload []byte) error {
				c.pos.Store(lsn)
				return writeFrame(bw, frameRecord, lsn, payload)
			})
			if err != nil {
				if errors.Is(err, wal.ErrTruncated) {
					sendErr(err.Error())
				}
				return
			}
			pos = horizon
			c.pos.Store(pos)
		}
		// Heartbeat after every batch and on idle: carries the durability
		// horizon so replicas can report lag even when nothing ships, and
		// under synchronous replication asks for an fsynced ack so quorum
		// votes mean replica-durable.
		hbFlags := []byte{0}
		if s.opts.SyncReplicas > 0 {
			hbFlags[0] |= hbFlagSyncAck
		}
		if err := writeFrame(bw, frameHeartbeat, s.e.DurableLSN(), hbFlags); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}
