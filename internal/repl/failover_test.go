package repl_test

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"neograph/internal/core"
	"neograph/internal/faultfs"
	"neograph/internal/repl"
	"neograph/internal/value"
)

// This file proves the failover story end to end with deterministic
// fault injection: a primary killed at every WAL crash point, a replica
// promoted in its place, and the invariants that make the pairing safe —
// zero acknowledged-commit loss under synchronous replication, prefix
// consistency under async, and epoch fencing against the dead timeline.

// crashWorkload is the number of committed transactions each crash-matrix
// case attempts. Small enough to keep the matrix fast, large enough that
// every commit-path WAL op (append header, append payload, group-commit
// fsync) recurs at several log positions.
const crashWorkload = 8

// tryCommitNode is commitNode without the fatal-on-error: crash cases
// expect the tail of the workload to fail.
func tryCommitNode(e *core.Engine, label string, v int64) (uint64, uint64, error) {
	tx := e.Begin()
	id, err := tx.CreateNode([]string{label}, value.Map{"v": value.Int(v)})
	if err != nil {
		tx.Abort()
		return 0, 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, 0, err
	}
	return id, tx.CommitLSN(), nil
}

// recordCrashPoints runs the crash-matrix workload against an injector
// with no fault armed and returns the per-point hit counts — the
// registry the matrix enumerates. No replica is attached: the WAL
// write/sync schedule is a function of the commit sequence alone.
func recordCrashPoints(t *testing.T) map[string]int {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	e, err := core.Open(core.Options{Dir: t.TempDir(), FS: inj, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashWorkload; i++ {
		if _, _, err := tryCommitNode(e, "W", int64(i)); err != nil {
			t.Fatalf("recording commit %d: %v", i, err)
		}
	}
	counts := inj.Counts()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	return counts
}

// runCrashCase kills the primary with the given fault mid-workload,
// promotes its replica, and asserts the loss invariant for the
// replication mode: with syncReplicas=1 every acknowledged commit must
// survive promotion; in async mode the replica must hold a prefix of the
// committed sequence. Finally the promoted node must accept writes at a
// bumped epoch.
func runCrashCase(t *testing.T, fault faultfs.Fault, syncReplicas int) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	inj.Arm(fault)

	primary, err := core.Open(core.Options{Dir: t.TempDir(), FS: inj, WALSegmentSize: 2048})
	if err != nil {
		// Early crash points fire inside Open itself (e.g. recovery's
		// pre-replay sync): the primary never comes up, so nothing was
		// acknowledged and there is nothing to lose — but the failure must
		// be the injected crash, not a latent bug.
		if errors.Is(err, faultfs.ErrCrashed) {
			return
		}
		t.Fatalf("open primary: %v", err)
	}
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		SyncReplicas:   syncReplicas,
		// Never degrade: an acknowledged commit must mean "on the replica"
		// for the zero-loss assertion to be meaningful.
		SyncTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	replica := openReplica(t, t.TempDir())
	applier := fastApplier(t, replica, ship.Addr())

	// Workload: sequential commits until the injected crash kills the
	// primary (or the workload completes, for faults scheduled past it).
	type ackedCommit struct {
		id uint64
		v  int64
	}
	var acked []ackedCommit
	for i := 0; i < crashWorkload; i++ {
		id, _, err := tryCommitNode(primary, "W", int64(i))
		if err != nil {
			break
		}
		acked = append(acked, ackedCommit{id, int64(i)})
	}

	// Kill whatever is left of the primary and promote the replica.
	ship.Close()
	primary.Crash() // teardown of a crashed engine; errors expected

	applier.Close()
	if err := replica.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// Loss accounting.
	tx := replica.Begin()
	defer tx.Abort()
	ids, err := tx.NodesByLabel("W")
	if err != nil {
		t.Fatal(err)
	}
	var have []int64
	for _, id := range ids {
		n, err := tx.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := n.Props["v"].AsInt()
		have = append(have, v)
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	// Prefix consistency in every mode: the replica's workload state must
	// be exactly the first M commits for some M.
	for i, v := range have {
		if v != int64(i) {
			t.Fatalf("replica state is not a commit prefix: %v", have)
		}
	}
	if syncReplicas > 0 {
		// Zero acknowledged-commit loss: the quorum held every Commit()
		// that returned nil until the replica durably acked it.
		if len(have) < len(acked) {
			t.Fatalf("sync mode lost acknowledged commits: acked %d, replica has %d (%v)",
				len(acked), len(have), have)
		}
		for _, ac := range acked {
			if _, err := tx.GetNode(ac.id); err != nil {
				t.Fatalf("acked node %d (v=%d) lost after promotion: %v", ac.id, ac.v, err)
			}
		}
	}

	// The promoted node is a writable primary on the next epoch.
	if epoch, _ := replica.Epoch(); epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if replica.IsReplica() {
		t.Fatal("promoted engine still reports replica mode")
	}
	if _, _, err := tryCommitNode(replica, "PostPromote", 1); err != nil {
		t.Fatalf("promoted node rejects writes: %v", err)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixPromotion is the crash matrix of the issue: a recording
// pass registers every WAL crash point the workload passes through, and
// the primary is then killed once at each (point, hit) — write points
// alternating clean-kill and torn-write modes, fsync points as kills —
// always under SyncReplicas=1, asserting zero acknowledged-commit loss
// across kill -> promote.
func TestCrashMatrixPromotion(t *testing.T) {
	counts := recordCrashPoints(t)
	writes, syncs := counts["wal.write"], counts["wal.sync"]
	if writes < 2*crashWorkload || syncs < crashWorkload {
		t.Fatalf("crash-point registry too small: %v", counts)
	}
	for hit := 1; hit <= writes; hit++ {
		fault := faultfs.Fault{Point: "wal.write", Hit: hit, Mode: faultfs.ModeCrash}
		name := fmt.Sprintf("write-%d-kill", hit)
		if hit%2 == 0 {
			// Torn variant: half the frame reaches the disk. The torn tail
			// must never be acknowledged or shipped.
			fault.Mode, fault.TornBytes = faultfs.ModeTornWrite, -1
			name = fmt.Sprintf("write-%d-torn", hit)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runCrashCase(t, fault, 1)
		})
	}
	for hit := 1; hit <= syncs; hit++ {
		fault := faultfs.Fault{Point: "wal.sync", Hit: hit, Mode: faultfs.ModeCrash}
		t.Run(fmt.Sprintf("sync-%d-kill", hit), func(t *testing.T) {
			t.Parallel()
			runCrashCase(t, fault, 1)
		})
	}
}

// TestCrashMatrixAsyncPrefix samples the same matrix in async mode
// (SyncReplicas=0): acknowledged commits may be lost, but the replica
// must still promote to a clean prefix of the primary's history.
func TestCrashMatrixAsyncPrefix(t *testing.T) {
	counts := recordCrashPoints(t)
	for _, fault := range []faultfs.Fault{
		{Point: "wal.write", Hit: counts["wal.write"] / 2, Mode: faultfs.ModeTornWrite, TornBytes: -1},
		{Point: "wal.write", Hit: counts["wal.write"] - 1, Mode: faultfs.ModeCrash},
		{Point: "wal.sync", Hit: counts["wal.sync"] / 2, Mode: faultfs.ModeCrash},
	} {
		fault := fault
		t.Run(fmt.Sprintf("%s-%d", fault.Point, fault.Hit), func(t *testing.T) {
			t.Parallel()
			runCrashCase(t, fault, 0)
		})
	}
}

// TestPromotionBasic: promote a converged replica after a clean primary
// death, and prove the promotion survives a restart (epoch and data are
// persistent, and the node reopens as a primary).
func TestPromotionBasic(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rdir := t.TempDir()
	replica := openReplica(t, rdir)
	applier := fastApplier(t, replica, ship.Addr())
	for i := 0; i < 50; i++ {
		commitNode(t, primary, "Pre", int64(i))
	}
	waitConverged(t, applier, primary)

	// Promote on a live replica must be refused until the applier stops;
	// on a non-replica it must be refused outright.
	if err := primary.Promote(); !errors.Is(err, core.ErrNotReplica) {
		t.Fatalf("promote of a primary err = %v, want ErrNotReplica", err)
	}

	ship.Close()
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}
	applier.Close()
	if err := replica.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := replica.Promote(); !errors.Is(err, core.ErrNotReplica) {
		t.Fatalf("second promote err = %v, want ErrNotReplica", err)
	}
	if got := countLabel(t, replica, "Pre"); got != 50 {
		t.Fatalf("promoted node has %d Pre nodes, want 50", got)
	}
	commitNode(t, replica, "Post", 1)
	if epoch, _ := replica.Epoch(); epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}

	// Restart: the epoch file and data survive, and the node comes back
	// as a writable primary.
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := core.Open(core.Options{Dir: rdir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if epoch, _ := reopened.Epoch(); epoch != 2 {
		t.Fatalf("epoch after restart = %d, want 2", epoch)
	}
	if got := countLabel(t, reopened, "Post"); got != 1 {
		t.Fatalf("post-promotion commit lost across restart: %d", got)
	}
	commitNode(t, reopened, "Post", 2)
}

// TestDivergenceRejected is the satellite divergence scenario: the old
// primary dies holding commits it never shipped, the replica is
// promoted, and the demoted primary's attempts to rejoin — in either
// role — are refused by the epoch checks rather than silently applied.
func TestDivergenceRejected(t *testing.T) {
	pdir := t.TempDir()
	primary := openPrimary(t, pdir)
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	replica := openReplica(t, t.TempDir())
	applier := fastApplier(t, replica, ship.Addr())
	for i := 0; i < 20; i++ {
		commitNode(t, primary, "Shared", int64(i))
	}
	waitConverged(t, applier, primary)

	// The primary keeps committing after shipping stops: these records
	// exist only on its timeline.
	ship.Close()
	for i := 0; i < 5; i++ {
		commitNode(t, primary, "Diverged", int64(i))
	}
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}

	// Failover.
	applier.Close()
	if err := replica.Promote(); err != nil {
		t.Fatal(err)
	}
	ship2, err := repl.NewShipper(replica, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship2.Close()
	baseline := countLabel(t, replica, "Shared")

	// The demoted primary restarts as a replica of the promoted node. Its
	// log runs past the fork point, so the promoted node must refuse it.
	old, err := core.Open(core.Options{Dir: pdir, Replica: true, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	oldApplied := old.AppliedLSN()
	oldApplier := fastApplier(t, old, ship2.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := oldApplier.Status()
		if strings.Contains(st.LastError, "diverged") && strings.Contains(st.LastError, "re-seed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no divergence rejection; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := old.AppliedLSN(); got != oldApplied {
		t.Fatalf("demoted primary applied %d bytes from the new timeline", got-oldApplied)
	}
	if got := countLabel(t, old, "Diverged"); got != 5 {
		t.Fatalf("demoted primary's local state changed: %d Diverged nodes", got)
	}
	oldApplier.Close()
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	// And the reverse pairing: a node that has seen epoch 2 pointed at a
	// stale epoch-1 primary must refuse the stream.
	stale, err := core.Open(core.Options{Dir: pdir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	staleShip, err := repl.NewShipper(stale, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer staleShip.Close()
	follower := openReplica(t, t.TempDir())
	defer follower.Close()
	fApplier := fastApplier(t, follower, ship2.Addr())
	waitConverged(t, fApplier, replica) // adopts epoch 2
	fApplier.Close()
	if epoch, _ := follower.Epoch(); epoch != 2 {
		t.Fatalf("follower epoch = %d, want 2", epoch)
	}
	fApplier2 := fastApplier(t, follower, staleShip.Addr())
	defer fApplier2.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := fApplier2.Status()
		if strings.Contains(st.LastError, "stale") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stale-primary rejection; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Promoted node's state never moved.
	if got := countLabel(t, replica, "Shared"); got != baseline {
		t.Fatalf("promoted node's state changed: %d", got)
	}
	if got := countLabel(t, replica, "Diverged"); got != 0 {
		t.Fatalf("diverged commits leaked onto the new timeline: %d", got)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDoublePromotionFencesOldTimeline: fencing must remember EVERY
// fork point, not just the newest. A node diverged before the first
// promotion tries to rejoin after a second promotion — its log end sits
// below the newest fork point, so a latest-fork-only check would wave
// it through and silently merge a timeline dead for two generations.
func TestDoublePromotionFencesOldTimeline(t *testing.T) {
	adir := t.TempDir()
	nodeA := openPrimary(t, adir)
	shipA, err := repl.NewShipper(nodeA, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	nodeB := openReplica(t, t.TempDir())
	applierB := fastApplier(t, nodeB, shipA.Addr())
	for i := 0; i < 10; i++ {
		commitNode(t, nodeA, "Shared", int64(i))
	}
	waitConverged(t, applierB, nodeA)

	// A diverges past the coming fork point, then dies.
	shipA.Close()
	for i := 0; i < 3; i++ {
		commitNode(t, nodeA, "DeadTimeline", int64(i))
	}
	if err := nodeA.Crash(); err != nil {
		t.Fatal(err)
	}

	// First promotion: B becomes epoch 2 and grows the log well past A's
	// end, then hands off to C via a second promotion (epoch 3).
	applierB.Close()
	if err := nodeB.Promote(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		commitNode(t, nodeB, "Epoch2", int64(i))
	}
	shipB, err := repl.NewShipper(nodeB, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	nodeC := openReplica(t, t.TempDir())
	applierC := fastApplier(t, nodeC, shipB.Addr())
	waitConverged(t, applierC, nodeB)
	applierC.Close()
	shipB.Close()
	if err := nodeB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodeC.Promote(); err != nil {
		t.Fatal(err)
	}
	if epoch, _ := nodeC.Epoch(); epoch != 3 {
		t.Fatalf("nodeC epoch = %d, want 3", epoch)
	}
	shipC, err := repl.NewShipper(nodeC, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shipC.Close()

	// A rejoins C. Its log end is far below C's epoch-3 fork point but
	// past the epoch-2 one — the history check must refuse it.
	oldA, err := core.Open(core.Options{Dir: adir, Replica: true, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer oldA.Close()
	applied := oldA.AppliedLSN()
	applierA := fastApplier(t, oldA, shipC.Addr())
	defer applierA.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := applierA.Status()
		if strings.Contains(st.LastError, "diverged") && strings.Contains(st.LastError, "epoch-2 fork point") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old timeline not fenced after double promotion; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := oldA.AppliedLSN(); got != applied {
		t.Fatalf("dead-timeline node applied %d bytes from epoch 3", got-applied)
	}
	if err := nodeC.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectConvergesAfterPromotion: a surviving replica keeps
// retrying the dead primary's replication address with capped, jittered
// backoff; when the promoted node starts shipping on that same address,
// the replica reconnects, adopts the new epoch and converges.
func TestReconnectConvergesAfterPromotion(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := ship.Addr()

	candidate := openReplica(t, t.TempDir())
	candApplier := fastApplier(t, candidate, addr)
	survivor := openReplica(t, t.TempDir())
	defer survivor.Close()
	survApplier := fastApplier(t, survivor, addr)
	defer survApplier.Close()

	for i := 0; i < 30; i++ {
		commitNode(t, primary, "Pre", int64(i))
	}
	waitConverged(t, candApplier, primary)
	waitConverged(t, survApplier, primary)

	// Primary dies; the survivor's applier now spins against a dead
	// address with backoff.
	ship.Close()
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}
	candApplier.Close()
	if err := candidate.Promote(); err != nil {
		t.Fatal(err)
	}
	// Give the survivor time to fail into its backoff loop, then start
	// shipping from the promoted node on the very same address.
	time.Sleep(50 * time.Millisecond)
	ship2, err := repl.NewShipper(candidate, addr, repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship2.Close()

	commitNode(t, candidate, "Post", 1)
	waitConverged(t, survApplier, candidate)
	if got := countLabel(t, survivor, "Post"); got != 1 {
		t.Fatalf("survivor missed post-failover commit: %d", got)
	}
	if got := countLabel(t, survivor, "Pre"); got != 30 {
		t.Fatalf("survivor lost history: %d", got)
	}
	if epoch, _ := survivor.Epoch(); epoch != 2 {
		t.Fatalf("survivor epoch = %d, want 2 after reconnecting to the promoted node", epoch)
	}
	if err := candidate.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncReplicasQuorumAndDegrade: with SyncReplicas=1 and no replica,
// commits degrade to async after the timeout (and are counted); with a
// connected replica the quorum ack means the write is readable on the
// replica the moment Commit returns.
func TestSyncReplicasQuorumAndDegrade(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	defer primary.Close()
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		SyncReplicas:   1,
		SyncTimeout:    150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	// No replica: the commit must still be acknowledged, after roughly
	// the degrade window, and counted.
	t0 := time.Now()
	commitNode(t, primary, "Degraded", 1)
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("degraded commit returned after %v, want >= ~150ms wait", d)
	}
	if got := ship.Degraded(); got != 1 {
		t.Fatalf("Degraded() = %d, want 1", got)
	}

	// A connection that only handshakes — claiming the caught-up position
	// but never sending a durable ack — must not vote: the handshake
	// position is the replica's applied-but-possibly-unsynced log end.
	conn, err := net.Dial("tcp", ship.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRawHandshake(conn, primary.DurableLSN()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the shipper register it
	commitNode(t, primary, "Degraded", 2)
	if got := ship.Degraded(); got != 2 {
		t.Fatalf("handshake-only connection satisfied the quorum: Degraded() = %d, want 2", got)
	}
	conn.Close()

	// With a caught-up replica the quorum assembles and the committed
	// write is immediately readable there — no WaitApplied needed.
	replica := openReplica(t, t.TempDir())
	defer replica.Close()
	applier := fastApplier(t, replica, ship.Addr())
	defer applier.Close()
	waitConverged(t, applier, primary)
	for i := 0; i < 10; i++ {
		id, _, err := tryCommitNode(primary, "Quorum", int64(i))
		if err != nil {
			t.Fatal(err)
		}
		tx := replica.Begin()
		if _, err := tx.GetNode(id); err != nil {
			t.Fatalf("commit %d acked but not on replica: %v", i, err)
		}
		tx.Abort()
	}
	if got := ship.Degraded(); got != 2 {
		t.Fatalf("quorum commits degraded: Degraded() = %d, want still 2", got)
	}
}
