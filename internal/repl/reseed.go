package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"

	"neograph/internal/core"
	"neograph/internal/faultfs"
	"neograph/internal/slog"
)

// reseedTmpDir is the staging directory a joiner downloads the snapshot
// into before swapping it into place.
const reseedTmpDir = "reseed.tmp"

// reseedChunkSize is one snapshot data frame's payload.
const reseedChunkSize = 256 << 10

// handleReseed serves one snapshot request: checkpoint, then stream every
// store file, the epoch history, and the retained WAL while maintMu
// freezes them in place. Commits keep flowing — they only append beyond
// the snapshot's end LSN.
func (s *Shipper) handleReseed(conn net.Conn) {
	log := s.log.With("joiner", conn.RemoteAddr().String())
	bw := bufio.NewWriterSize(conn, 256<<10)
	sendErr := func(msg string) {
		log.Warn("refusing snapshot", "reason", msg)
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		writeFrame(bw, frameError, 0, []byte(msg))
		bw.Flush()
	}

	var endLSN uint64
	var files, bytes int64
	started := time.Now()
	err := s.e.WithSnapshot(func(snap []core.SnapshotFile, end uint64) error {
		endLSN = end
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(snap)))
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		if err := writeFrame(bw, frameSnapBegin, end, cnt[:]); err != nil {
			return err
		}
		fs := s.e.FS()
		dir := s.e.Dir()
		buf := make([]byte, reseedChunkSize)
		for _, sf := range snap {
			if err := writeFrame(bw, frameSnapFile, uint64(sf.Size), []byte(sf.Rel)); err != nil {
				return err
			}
			f, err := fs.Open(filepath.Join(dir, filepath.FromSlash(sf.Rel)))
			if err != nil {
				return fmt.Errorf("repl: snapshot open %s: %w", sf.Rel, err)
			}
			remaining := sf.Size
			for remaining > 0 {
				n := int64(len(buf))
				if remaining < n {
					n = remaining
				}
				if _, err := io.ReadFull(f, buf[:n]); err != nil {
					f.Close()
					return fmt.Errorf("repl: snapshot read %s: %w", sf.Rel, err)
				}
				conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
				if err := writeFrame(bw, frameSnapChunk, 0, buf[:n]); err != nil {
					f.Close()
					return err
				}
				remaining -= n
			}
			f.Close()
			files++
			bytes += sf.Size
		}
		if err := writeFrame(bw, frameSnapEnd, end, nil); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		sendErr(err.Error())
		return
	}
	// Hold WAL truncation at the snapshot's end until the joiner comes
	// back as a streaming replica (its connection then holds retention
	// itself) or the hold times out.
	s.mu.Lock()
	if !s.closed {
		s.reseedFloors[endLSN] = time.Now().Add(s.opts.ReseedRetainFor)
	}
	s.mu.Unlock()
	log.Info("snapshot served", "end_lsn", endLSN, "files", files,
		"bytes", bytes, "elapsed", time.Since(started))
}

// FetchOptions tune a snapshot fetch.
type FetchOptions struct {
	// DialTimeout bounds the connection attempt. Zero means 5s.
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for any single frame. Zero means 30s.
	ReadTimeout time.Duration
	// Logger receives fetch progress; nil is silent.
	Logger *slog.Logger
}

// ReseedStats reports what a snapshot fetch shipped.
type ReseedStats struct {
	// EndLSN is the snapshot's WAL end — the position the re-seeded
	// replica resumes streaming from.
	EndLSN uint64
	// Files and Bytes count the shipped snapshot.
	Files int
	Bytes int64
	// Duration is the wall-clock fetch+swap time.
	Duration time.Duration
}

// FetchSnapshot replaces dir's contents with a consistent snapshot
// fetched from the primary's replication address. The engine owning dir
// must be closed. The swap is crash-safe: the snapshot lands in a
// staging dir first, and a marker file (core.ReseedMarkerName) brackets
// the destructive phase — a crash before the marker leaves the old dir
// intact, a crash inside it leaves the marker, which core.Open refuses,
// so the caller wipes and fetches again. Only after every new file and
// the directory itself are fsynced is the marker removed.
func FetchSnapshot(dir string, fsys faultfs.FS, primaryAddr string, opts FetchOptions) (ReseedStats, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 30 * time.Second
	}
	fsys = faultfs.OrOS(fsys)
	log := opts.Logger.With("component", "repl.reseed", "primary", primaryAddr)
	started := time.Now()

	tmp := filepath.Join(dir, reseedTmpDir)
	if err := removeTree(fsys, tmp); err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed: clear staging dir: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(tmp, "wal"), 0o755); err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed: staging dir: %w", err)
	}

	stats, err := downloadSnapshot(tmp, fsys, primaryAddr, opts)
	if err != nil {
		return ReseedStats{}, err
	}
	log.Info("snapshot downloaded", "end_lsn", stats.EndLSN, "files", stats.Files, "bytes", stats.Bytes)

	if err := swapSnapshot(dir, tmp, fsys); err != nil {
		return ReseedStats{}, err
	}
	stats.Duration = time.Since(started)
	log.Info("snapshot swapped into place", "elapsed", stats.Duration)
	return stats, nil
}

// downloadSnapshot streams the snapshot into the staging dir, fsyncing
// every file and the staging directories themselves.
func downloadSnapshot(tmp string, fsys faultfs.FS, primaryAddr string, opts FetchOptions) (ReseedStats, error) {
	conn, err := net.DialTimeout("tcp", primaryAddr, opts.DialTimeout)
	if err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed dial: %w", err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(opts.DialTimeout))
	if err := writeHandshake(conn, modeReseed, 0, 0, 0); err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed handshake: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})

	br := bufio.NewReaderSize(conn, 256<<10)
	buf := make([]byte, reseedChunkSize)
	conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
	typ, endLSN, payload, err := readFrame(br, buf)
	if err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed: %w", err)
	}
	if typ == frameError {
		return ReseedStats{}, fmt.Errorf("repl: primary refused snapshot: %s", payload)
	}
	if typ != frameSnapBegin || len(payload) != 4 {
		return ReseedStats{}, fmt.Errorf("repl: reseed: unexpected frame %q before snapshot begin", typ)
	}
	count := binary.LittleEndian.Uint32(payload)

	stats := ReseedStats{EndLSN: endLSN}
	for i := uint32(0); i < count; i++ {
		conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
		typ, size, payload, err := readFrame(br, buf)
		if err != nil {
			return ReseedStats{}, fmt.Errorf("repl: reseed: %w", err)
		}
		if typ == frameError {
			return ReseedStats{}, fmt.Errorf("repl: primary aborted snapshot: %s", payload)
		}
		if typ != frameSnapFile {
			return ReseedStats{}, fmt.Errorf("repl: reseed: unexpected frame %q, want file header", typ)
		}
		rel := string(payload)
		if err := validateSnapshotRel(rel); err != nil {
			return ReseedStats{}, err
		}
		if err := receiveFile(fsys, filepath.Join(tmp, filepath.FromSlash(rel)), int64(size), conn, br, buf, opts.ReadTimeout); err != nil {
			return ReseedStats{}, err
		}
		stats.Files++
		stats.Bytes += int64(size)
	}
	conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
	typ, _, payload, err = readFrame(br, buf)
	if err != nil {
		return ReseedStats{}, fmt.Errorf("repl: reseed: %w", err)
	}
	if typ == frameError {
		return ReseedStats{}, fmt.Errorf("repl: primary aborted snapshot: %s", payload)
	}
	if typ != frameSnapEnd {
		return ReseedStats{}, fmt.Errorf("repl: reseed: unexpected frame %q, want snapshot end", typ)
	}
	if err := syncDir(fsys, filepath.Join(tmp, "wal")); err != nil {
		return stats, err
	}
	if err := syncDir(fsys, tmp); err != nil {
		return stats, err
	}
	return stats, nil
}

// validateSnapshotRel rejects hostile snapshot paths: only "epoch",
// "neostore.*" and "wal/<segment>" may land in the staging dir.
func validateSnapshotRel(rel string) error {
	if rel == "" || path.Clean(rel) != rel || strings.HasPrefix(rel, "/") || strings.Contains(rel, "..") {
		return fmt.Errorf("repl: reseed: unsafe snapshot path %q", rel)
	}
	d, base := path.Split(rel)
	switch {
	case d == "" && (base == "epoch" || strings.HasPrefix(base, "neostore.")):
		return nil
	case d == "wal/" && strings.HasPrefix(base, "wal-") && strings.HasSuffix(base, ".log"):
		return nil
	}
	return fmt.Errorf("repl: reseed: unexpected snapshot path %q", rel)
}

// receiveFile writes one snapshot file from chunk frames and fsyncs it.
func receiveFile(fsys faultfs.FS, dst string, size int64, conn net.Conn, br *bufio.Reader, buf []byte, readTimeout time.Duration) error {
	f, err := fsys.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repl: reseed create %s: %w", dst, err)
	}
	remaining := size
	for remaining > 0 {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		typ, _, payload, err := readFrame(br, buf)
		if err != nil {
			f.Close()
			return fmt.Errorf("repl: reseed: %w", err)
		}
		if typ == frameError {
			f.Close()
			return fmt.Errorf("repl: primary aborted snapshot: %s", payload)
		}
		if typ != frameSnapChunk || int64(len(payload)) > remaining {
			f.Close()
			return fmt.Errorf("repl: reseed: unexpected frame %q mid-file", typ)
		}
		if _, err := f.Write(payload); err != nil {
			f.Close()
			return fmt.Errorf("repl: reseed write %s: %w", dst, err)
		}
		remaining -= int64(len(payload))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: reseed sync %s: %w", dst, err)
	}
	return f.Close()
}

// swapSnapshot replaces dir's data files with the staged snapshot. The
// marker brackets the destructive phase; see FetchSnapshot.
func swapSnapshot(dir, tmp string, fsys faultfs.FS) error {
	marker := filepath.Join(dir, core.ReseedMarkerName)
	mf, err := fsys.OpenFile(marker, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repl: reseed marker: %w", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return fmt.Errorf("repl: reseed marker sync: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("repl: reseed marker close: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		return err
	}

	// Destructive phase: remove the old data files, then rename the new
	// ones into place. A crash anywhere in here leaves the marker, and
	// core.Open refuses the dir until a fresh fetch completes the swap.
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("repl: reseed readdir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case name == reseedTmpDir || name == core.ReseedMarkerName:
			continue
		case ent.IsDir() && name == "wal":
			if err := removeTree(fsys, filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("repl: reseed remove old wal: %w", err)
			}
		case !ent.IsDir() && (name == "epoch" || name == "epoch.tmp" || strings.HasPrefix(name, "neostore.")):
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("repl: reseed remove %s: %w", name, err)
			}
		}
	}
	staged, err := fsys.ReadDir(tmp)
	if err != nil {
		return fmt.Errorf("repl: reseed readdir staging: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		return fmt.Errorf("repl: reseed mkdir wal: %w", err)
	}
	for _, ent := range staged {
		name := ent.Name()
		if ent.IsDir() {
			if name != "wal" {
				continue
			}
			segs, err := fsys.ReadDir(filepath.Join(tmp, "wal"))
			if err != nil {
				return fmt.Errorf("repl: reseed readdir staged wal: %w", err)
			}
			for _, seg := range segs {
				if err := fsys.Rename(filepath.Join(tmp, "wal", seg.Name()), filepath.Join(dir, "wal", seg.Name())); err != nil {
					return fmt.Errorf("repl: reseed install %s: %w", seg.Name(), err)
				}
			}
			continue
		}
		if err := fsys.Rename(filepath.Join(tmp, name), filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("repl: reseed install %s: %w", name, err)
		}
	}
	if err := syncDir(fsys, filepath.Join(dir, "wal")); err != nil {
		return err
	}
	if err := syncDir(fsys, dir); err != nil {
		return err
	}
	if err := fsys.Remove(marker); err != nil {
		return fmt.Errorf("repl: reseed remove marker: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		return err
	}
	return removeTree(fsys, tmp)
}

// syncDir fsyncs a directory so renames and removals in it are durable.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("repl: reseed open dir %s: %w", dir, err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("repl: reseed sync dir %s: %w", dir, err)
	}
	return nil
}

// removeTree removes path and everything under it through the faultfs
// seam (os.RemoveAll would bypass fault injection). A missing path is
// not an error.
func removeTree(fsys faultfs.FS, path string) error {
	st, err := fsys.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if st.IsDir() {
		entries, err := fsys.ReadDir(path)
		if err != nil {
			return err
		}
		for _, ent := range entries {
			if err := removeTree(fsys, filepath.Join(path, ent.Name())); err != nil {
				return err
			}
		}
	}
	return fsys.Remove(path)
}
