package repl_test

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"neograph/internal/core"
	"neograph/internal/repl"
	"neograph/internal/value"
)

// openPrimary opens a primary engine with small WAL segments so tests
// exercise multi-segment catch-up.
func openPrimary(t *testing.T, dir string) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{Dir: dir, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func openReplica(t *testing.T, dir string) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{Dir: dir, Replica: true, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// commitNode writes one node on e and returns (id, commit position).
func commitNode(t *testing.T, e *core.Engine, label string, v int64) (uint64, uint64) {
	t.Helper()
	tx := e.Begin()
	id, err := tx.CreateNode([]string{label}, value.Map{"v": value.Int(v)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return id, tx.CommitLSN()
}

func countLabel(t *testing.T, e *core.Engine, label string) int {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()
	ids, err := tx.NodesByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return len(ids)
}

// waitConverged polls until the replica's applied position reaches the
// primary's durable horizon.
func waitConverged(t *testing.T, a *repl.Applier, p *core.Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		want := p.DurableLSN()
		if got := a.AppliedLSN(); got >= want && want > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, primary durable %d (status %+v)",
				a.AppliedLSN(), p.DurableLSN(), a.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fastApplier(t *testing.T, e *core.Engine, addr string) *repl.Applier {
	t.Helper()
	a, err := repl.NewApplier(e, addr, repl.ApplierOptions{
		RetryMin: 10 * time.Millisecond,
		RetryMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	return a
}

// TestReplicationEndToEnd is the integration scenario from the issue: a
// replica cold-starts against a primary that already has sealed WAL
// segments, catches up, streams live commits, serves read-your-writes at
// the returned LSN token, and after a primary crash+restart reconnects
// and converges to the primary's durable position.
func TestReplicationEndToEnd(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	primary := openPrimary(t, pdir)

	// Phase 1: history before the replica exists — enough to seal several
	// 2 KiB segments.
	const warm = 200
	for i := 0; i < warm; i++ {
		commitNode(t, primary, "Warm", int64(i))
	}
	if n, err := primary.WAL().Size(); err != nil || n < 3*2048 {
		t.Fatalf("want multiple sealed segments, wal size %d (%v)", n, err)
	}

	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{
		HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := ship.Addr()

	// Phase 2: cold start + catch-up.
	replica := openReplica(t, rdir)
	applier := fastApplier(t, replica, addr)
	waitConverged(t, applier, primary)
	if got := countLabel(t, replica, "Warm"); got != warm {
		t.Fatalf("replica sees %d Warm nodes, want %d", got, warm)
	}

	// Phase 3: live streaming + read-your-writes.
	id, pos := commitNode(t, primary, "Live", 42)
	if pos == 0 {
		t.Fatal("commit returned no LSN token")
	}
	if err := applier.WaitApplied(pos, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	rtx := replica.Begin()
	snap, err := rtx.GetNode(id)
	if err != nil {
		t.Fatalf("read-your-writes read: %v", err)
	}
	if v, _ := snap.Props["v"].AsInt(); v != 42 {
		t.Fatalf("read-your-writes value = %v", snap.Props["v"])
	}
	rtx.Abort()

	// Replica-local writes must be rejected.
	wtx := replica.Begin()
	if _, err := wtx.CreateNode([]string{"X"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Commit(); !errors.Is(err, core.ErrReadOnlyReplica) {
		t.Fatalf("replica commit err = %v, want ErrReadOnlyReplica", err)
	}

	// Phase 4: primary crash + restart; replica reconnects and converges.
	ship.Close()
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}
	primary = openPrimary(t, pdir)
	defer primary.Close()
	ship2, err := repl.NewShipper(primary, addr, repl.ShipperOptions{
		HeartbeatEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship2.Close()
	for i := 0; i < 10; i++ {
		commitNode(t, primary, "PostCrash", int64(i))
	}
	waitConverged(t, applier, primary)
	if got, want := applier.AppliedLSN(), primary.DurableLSN(); got != want {
		t.Fatalf("applied %d != primary durable %d", got, want)
	}
	if got := countLabel(t, replica, "PostCrash"); got != 10 {
		t.Fatalf("replica sees %d PostCrash nodes, want 10", got)
	}
	if got := countLabel(t, replica, "Warm"); got != warm {
		t.Fatalf("replica lost history: %d Warm nodes", got)
	}

	// Phase 5: replica restart resumes from its own recovered log.
	applier.Close()
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	replica = openReplica(t, rdir)
	defer replica.Close()
	commitNode(t, primary, "PostCrash", 99)
	applier2 := fastApplier(t, replica, addr)
	defer applier2.Close()
	waitConverged(t, applier2, primary)
	if got := countLabel(t, replica, "PostCrash"); got != 11 {
		t.Fatalf("restarted replica sees %d PostCrash nodes, want 11", got)
	}
}

// TestReplicaSnapshotIsolation: a snapshot opened on the replica does not
// observe commits applied after it began — prefix consistency at the
// applied position, not read-latest.
func TestReplicaSnapshotIsolation(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	defer primary.Close()
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()
	id, _ := commitNode(t, primary, "Iso", 1)
	replica := openReplica(t, t.TempDir())
	defer replica.Close()
	applier := fastApplier(t, replica, ship.Addr())
	defer applier.Close()
	waitConverged(t, applier, primary)

	snap := replica.Begin() // snapshot at the current applied position
	defer snap.Abort()

	// Overwrite the value on the primary and wait for it to apply.
	tx := primary.Begin()
	if err := tx.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := applier.WaitApplied(tx.CommitLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still reads v=1; a fresh one reads v=2.
	got, err := snap.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Props["v"].AsInt(); v != 1 {
		t.Fatalf("old snapshot sees v=%d, want 1", v)
	}
	fresh := replica.Begin()
	defer fresh.Abort()
	got, err = fresh.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Props["v"].AsInt(); v != 2 {
		t.Fatalf("fresh snapshot sees v=%d, want 2", v)
	}
}

// TestShipperHoldsTruncationForConnectedReplica: a checkpoint on the
// primary must not delete segments a connected replica still needs.
func TestShipperHoldsTruncationForConnectedReplica(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	defer primary.Close()
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	// A raw connection that handshakes from 0 and then reads nothing:
	// the slowest possible replica.
	conn, err := net.Dial("tcp", ship.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeRawHandshake(conn, 0); err != nil {
		t.Fatal(err)
	}
	// Give the shipper a moment to register the connection.
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 60; i++ {
		commitNode(t, primary, "T", int64(i))
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Segment 0 must still exist: a real replica can still catch up
	// from position 0 over a fresh connection.
	replica := openReplica(t, t.TempDir())
	defer replica.Close()
	applier := fastApplier(t, replica, ship.Addr())
	defer applier.Close()
	waitConverged(t, applier, primary)
	if got := countLabel(t, replica, "T"); got != 60 {
		t.Fatalf("replica sees %d nodes, want 60", got)
	}
}

// TestBehindHorizonRejected: without a connected replica holding
// retention, a checkpoint truncates the log and a cold replica can no
// longer catch up — the shipper must refuse with a clear error instead
// of shipping a hole.
func TestBehindHorizonRejected(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	defer primary.Close()
	for i := 0; i < 60; i++ {
		commitNode(t, primary, "T", int64(i))
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	conn, err := net.Dial("tcp", ship.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeRawHandshake(conn, 0); err != nil {
		t.Fatal(err)
	}
	// The epoch announce ('g') and heartbeats precede the failure; the
	// truncation error must arrive within a few frames.
	br := bufio.NewReader(conn)
	for i := 0; ; i++ {
		typ, _, payload, err := readRawFrame(t, conn, br)
		if err != nil {
			t.Fatal(err)
		}
		if typ == 'g' || typ == 'h' {
			if i > 16 {
				t.Fatal("no error frame after 16 frames")
			}
			continue
		}
		if typ != 'e' || !strings.Contains(string(payload), "oldest retained segment") {
			t.Fatalf("frame = %c %q, want truncation error", typ, payload)
		}
		break
	}
}

// TestShipperRejectsGarbageHandshake: junk bytes must not wedge or crash
// the shipper; a well-formed replica connects fine afterwards.
func TestShipperRejectsGarbageHandshake(t *testing.T) {
	primary := openPrimary(t, t.TempDir())
	defer primary.Close()
	commitNode(t, primary, "T", 1)
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	conn, err := net.Dial("tcp", ship.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	// The shipper hangs up on a bad handshake.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("shipper kept talking to a garbage handshake")
	}
	conn.Close()

	replica := openReplica(t, t.TempDir())
	defer replica.Close()
	applier := fastApplier(t, replica, ship.Addr())
	defer applier.Close()
	waitConverged(t, applier, primary)
}

// writeRawHandshake mirrors the v3 protocol for tests that need a raw
// conn (stream mode; epoch 1: a pristine replica; fixed instance id).
func writeRawHandshake(w io.Writer, from uint64) error {
	buf := make([]byte, 31)
	copy(buf, "NGRP")
	binary.LittleEndian.PutUint16(buf[4:], 3)
	buf[6] = 0 // modeStream
	binary.LittleEndian.PutUint64(buf[7:], from)
	binary.LittleEndian.PutUint64(buf[15:], 1)
	binary.LittleEndian.PutUint64(buf[23:], 0xbadcafe)
	_, err := w.Write(buf)
	return err
}

func readRawFrame(t *testing.T, conn net.Conn, br *bufio.Reader) (byte, uint64, []byte, error) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hdr := make([]byte, 13)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, nil, err
	}
	lsn := binary.LittleEndian.Uint64(hdr[1:])
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > 1<<20 {
		return 0, 0, nil, fmt.Errorf("absurd frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, 0, nil, err
	}
	return hdr[0], lsn, payload, nil
}
