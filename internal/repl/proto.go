// Package repl implements WAL-shipping replication: a primary-side
// Shipper that streams the write-ahead log over TCP — sealed segments
// for catch-up, then the live tail as records become durable — and a
// replica-side Applier that redo-applies the stream into its own engine,
// so the replica serves fully snapshot-isolated reads at its applied
// position.
//
// The consistency contract is prefix consistency: a replica's state is
// always the primary's state as of some durable log prefix, applied in
// order. Only records at or below the primary's durability horizon are
// shipped, so a replica can never be ahead of what the primary would
// recover to after a crash — which is what lets a reconnecting replica
// resume the stream from its own log end without reconciliation. Clients
// that need read-your-writes carry the commit's end position (the LSN
// token returned by the primary) and wait until the replica has applied
// past it.
//
// Stream layout: the replica opens a TCP connection, sends a fixed
// handshake naming the position it wants the stream to resume from and
// the newest replication epoch it has seen, and the primary replies with
// a sequence of frames:
//
//	handshake  magic "NGRP"  version:u16le  from:u64le  epoch:u64le
//	frame      type:u8  lsn:u64le  len:u32le  payload
//
// Frame types: 'g' announces the primary's full epoch history (lsn =
// current epoch; payload = 16-byte entries, oldest first, each epoch
// u64le then fork-start-LSN u64le) and is always the first frame; 'r'
// carries one WAL record (lsn = record start position, payload = record
// bytes); 'h' is a heartbeat (lsn = primary durability horizon, payload
// = one flags byte) emitted after every shipped batch and on an idle
// timer — hbFlagSyncAck asks the replica to fsync before acknowledging,
// which is how synchronous replication gets prompt durable acks; 'e'
// carries a terminal error message. The replica sends 'a' acknowledgement
// frames (lsn = its durable applied position) back on the same
// connection; the primary uses them for quorum commit gating and status
// reporting, and the positions of connected replicas hold back WAL
// truncation so their backlog stays readable.
//
// The epoch exchange is the failover fence: a promotion bumps the epoch
// and records the fork-point LSN, so a demoted primary whose log runs
// past the fork is refused by the promoted node ("re-seed required"),
// and a primary that sees a replica with a newer epoch knows it is
// itself stale and refuses to ship.
//
// Re-seed phase (protocol v3): a handshake whose mode byte is modeReseed
// asks the primary for a consistent snapshot instead of a record stream.
// The primary checkpoints, freezes its store files and WAL truncation,
// and replies 'S' (lsn = snapshot end LSN, payload = u32le file count),
// then per file a 'f' header (lsn = file size, payload = slash-separated
// relative path) followed by 'c' chunks carrying the bytes, and finally
// 'z' (lsn = snapshot end LSN again). The joiner writes the files into a
// staging dir and swaps them into its data dir behind a crash marker, so
// "re-seed required" is an automatic recovery action, not an operator
// runbook step.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	magic = "NGRP"
	// protoVersion 2 added the epoch field to the handshake, the epoch
	// announce frame and the heartbeat flags byte. Version 3 added the
	// handshake mode byte and the snapshot re-seed frames.
	protoVersion = 3

	// maxFramePayload bounds one frame's payload. WAL records are capped
	// by the segment size (16 MiB default); anything larger is a corrupt
	// or hostile stream.
	maxFramePayload = 64 << 20

	frameEpoch     = 'g' // primary -> replica: epoch + fork-point LSN, first frame
	frameRecord    = 'r' // primary -> replica: one WAL record
	frameHeartbeat = 'h' // primary -> replica: durability horizon + flags
	frameError     = 'e' // primary -> replica: terminal error, then close
	frameAck       = 'a' // replica -> primary: durable applied position

	frameSnapBegin = 'S' // primary -> joiner: snapshot end LSN + file count
	frameSnapFile  = 'f' // primary -> joiner: next file's size + relative path
	frameSnapChunk = 'c' // primary -> joiner: file bytes
	frameSnapEnd   = 'z' // primary -> joiner: snapshot complete

	// hbFlagSyncAck in a heartbeat's flags byte asks the replica to make
	// its applied tail durable before acknowledging — set by primaries
	// running synchronous replication so quorum acks mean replica-durable.
	hbFlagSyncAck = 1

	// Handshake modes.
	modeStream = 0 // resume the WAL record stream from `from`
	modeReseed = 1 // fetch a consistent snapshot (from/epoch ignored)
)

const handshakeLen = 4 + 2 + 1 + 8 + 8 + 8

// writeHandshake sends the stream-resume request: the requested mode
// (record stream or snapshot re-seed), the position to resume from, the
// newest epoch this replica has seen, and the replica's instance id (a
// random non-zero value per applier) so the primary can tell a reconnect
// of the same replica from a second replica — quorum votes are per
// replica, not per connection.
func writeHandshake(w io.Writer, mode byte, from, epoch, id uint64) error {
	var buf [handshakeLen]byte
	copy(buf[:4], magic)
	binary.LittleEndian.PutUint16(buf[4:], protoVersion)
	buf[6] = mode
	binary.LittleEndian.PutUint64(buf[7:], from)
	binary.LittleEndian.PutUint64(buf[15:], epoch)
	binary.LittleEndian.PutUint64(buf[23:], id)
	_, err := w.Write(buf[:])
	return err
}

// readHandshake validates the magic and version and returns the mode,
// resume position, the replica's epoch, and its instance id.
func readHandshake(r io.Reader) (mode byte, from, epoch, id uint64, err error) {
	var buf [handshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("repl: read handshake: %w", err)
	}
	if string(buf[:4]) != magic {
		return 0, 0, 0, 0, fmt.Errorf("repl: bad handshake magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != protoVersion {
		return 0, 0, 0, 0, fmt.Errorf("repl: protocol version %d, want %d", v, protoVersion)
	}
	mode = buf[6]
	if mode != modeStream && mode != modeReseed {
		return 0, 0, 0, 0, fmt.Errorf("repl: unknown handshake mode %d", mode)
	}
	return mode, binary.LittleEndian.Uint64(buf[7:]), binary.LittleEndian.Uint64(buf[15:]),
		binary.LittleEndian.Uint64(buf[23:]), nil
}

const frameHeaderLen = 1 + 8 + 4

// writeFrame appends one frame to w (the caller flushes).
func writeFrame(w *bufio.Writer, typ byte, lsn uint64, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:], lsn)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, reusing buf for the payload when it fits.
// The returned payload is only valid until the next call.
func readFrame(r *bufio.Reader, buf []byte) (typ byte, lsn uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	lsn = binary.LittleEndian.Uint64(hdr[1:])
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("repl: frame payload %d bytes exceeds limit", n)
	}
	if n == 0 {
		return typ, lsn, nil, nil
	}
	if int(n) <= cap(buf) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("repl: read frame payload: %w", err)
	}
	return typ, lsn, payload, nil
}
