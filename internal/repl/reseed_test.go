package repl_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"neograph/internal/core"
	"neograph/internal/faultfs"
	"neograph/internal/repl"
)

// This file proves the snapshot re-seed phase end to end: a joiner whose
// position predates the primary's retained WAL downloads a consistent
// checkpoint plus WAL tail, swaps it in crash-safely, and resumes the
// ordinary stream — and a crash at ANY file operation during the
// download/swap leaves the data directory either openable or explicitly
// refused (reseed.incomplete), never torn.

// waitReseedRequired polls until the applier has classified its refusal
// as re-seed-required.
func waitReseedRequired(t *testing.T, a *repl.Applier) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := a.Status()
		if st.ReseedRequired {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("applier never reported ReseedRequired; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// truncatedPrimary builds a primary whose early WAL segments are gone: a
// workload followed by a checkpoint with no replica holding retention.
func truncatedPrimary(t *testing.T, n int) (*core.Engine, *repl.Shipper) {
	t.Helper()
	primary := openPrimary(t, t.TempDir())
	for i := 0; i < n; i++ {
		commitNode(t, primary, "Pre", int64(i))
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ship, err := repl.NewShipper(primary, "127.0.0.1:0", repl.ShipperOptions{
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return primary, ship
}

// TestReseedRoundTrip: a cold joiner is refused the stream (behind the
// horizon), classifies the refusal as re-seed-required, fetches the
// snapshot, reopens from it, and then follows the live stream like any
// other replica.
func TestReseedRoundTrip(t *testing.T) {
	primary, ship := truncatedPrimary(t, 60)
	defer primary.Close()
	defer ship.Close()

	// The cold joiner's position 0 predates the oldest retained segment.
	jdir := t.TempDir()
	joiner := openReplica(t, jdir)
	applier := fastApplier(t, joiner, ship.Addr())
	waitReseedRequired(t, applier)
	if st := applier.Status(); !strings.Contains(st.LastError, "re-seed required") {
		t.Fatalf("refusal not labelled for re-seed: %q", st.LastError)
	}
	if joiner.AppliedLSN() != 0 {
		t.Fatal("refused joiner applied bytes")
	}
	applier.Close()
	if err := joiner.Crash(); err != nil {
		t.Fatal(err)
	}

	// Fetch the snapshot into the (dead) joiner's directory.
	stats, err := repl.FetchSnapshot(jdir, faultfs.OS{}, ship.Addr(), repl.FetchOptions{})
	if err != nil {
		t.Fatalf("fetch snapshot: %v", err)
	}
	if stats.EndLSN == 0 || stats.Files < 2 || stats.Bytes == 0 {
		t.Fatalf("implausible snapshot stats: %+v", stats)
	}

	// The directory now opens exactly like a restarted replica: the full
	// pre-checkpoint state is there.
	joiner2 := openReplica(t, jdir)
	defer joiner2.Close()
	if got := countLabel(t, joiner2, "Pre"); got != 60 {
		t.Fatalf("snapshot delivered %d Pre nodes, want 60", got)
	}
	if got := joiner2.DurableLSN(); got < stats.EndLSN {
		t.Fatalf("joiner durable %d < snapshot end %d", got, stats.EndLSN)
	}

	// And the ordinary stream resumes from the snapshot end.
	applier2 := fastApplier(t, joiner2, ship.Addr())
	defer applier2.Close()
	for i := 0; i < 10; i++ {
		commitNode(t, primary, "Post", int64(i))
	}
	waitConverged(t, applier2, primary)
	if got := countLabel(t, joiner2, "Post"); got != 10 {
		t.Fatalf("resumed stream delivered %d Post nodes, want 10", got)
	}
}

// TestReseedRetainsWAL: serving a snapshot must hold WAL truncation at
// the snapshot's end until the retention TTL lapses — otherwise the
// joiner's resume position could fall behind the horizon the moment a
// checkpoint runs between its download and its reconnect.
func TestReseedRetainsWAL(t *testing.T) {
	primary, ship := truncatedPrimary(t, 40)
	defer primary.Close()
	defer ship.Close()

	jdir := t.TempDir()
	stats, err := repl.FetchSnapshot(jdir, faultfs.OS{}, ship.Addr(), repl.FetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Commit past the snapshot and checkpoint: without the retention
	// floor this would truncate the segments the joiner resumes from.
	for i := 0; i < 40; i++ {
		commitNode(t, primary, "Post", int64(i))
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	joiner := openReplica(t, jdir)
	defer joiner.Close()
	applier := fastApplier(t, joiner, ship.Addr())
	defer applier.Close()
	waitConverged(t, applier, primary)
	if st := applier.Status(); st.ReseedRequired {
		t.Fatalf("joiner fell behind the horizon despite the retention floor: %+v", st)
	}
	if got := countLabel(t, joiner, "Post"); got != 40 {
		t.Fatalf("joiner has %d Post nodes, want 40 (snapshot end %d)", got, stats.EndLSN)
	}
}

// TestReseedCrashMatrix kills the JOINER at every file operation the
// fetch/swap path performs — download writes and fsyncs, the marker
// create, old-file removal, the staged renames, directory fsyncs — and
// asserts the crash-safety contract: the directory either opens as a
// normal (possibly empty) replica, or core.Open refuses it with
// ErrReseedIncomplete; and a clean re-fetch always heals it.
func TestReseedCrashMatrix(t *testing.T) {
	primary, ship := truncatedPrimary(t, 60)
	t.Cleanup(func() { ship.Close(); primary.Close() })
	addr := ship.Addr()

	// Recording pass: every crash point one fetch passes through.
	rec := faultfs.NewInjector(faultfs.OS{}, nil)
	if _, err := repl.FetchSnapshot(t.TempDir(), rec, addr, repl.FetchOptions{}); err != nil {
		t.Fatalf("recording fetch: %v", err)
	}
	counts := rec.Counts()
	if counts["store.write"] == 0 || counts["wal.rename"] == 0 || counts["fs.sync"] == 0 {
		t.Fatalf("crash-point registry implausible: %v", counts)
	}

	for point, hits := range counts {
		for hit := 1; hit <= hits; hit++ {
			point, hit := point, hit
			t.Run(fmt.Sprintf("%s-%d", point, hit), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				inj := faultfs.NewInjector(faultfs.OS{}, nil)
				inj.Arm(faultfs.Fault{Point: point, Hit: hit, Mode: faultfs.ModeCrash})
				_, err := repl.FetchSnapshot(dir, inj, addr, repl.FetchOptions{})
				if err == nil {
					// The primary's WAL grows by a checkpoint marker per
					// served snapshot, so late-scheduled points can drift past
					// the ops this fetch performed. A completed fetch must
					// simply have worked.
					if !inj.Fired() {
						openAndCount(t, dir, 60)
						return
					}
					t.Fatal("fetch reported success after an injected crash")
				}

				// Crash-safety: the directory is openable or explicitly
				// refused — never a torn open, never a silent partial state.
				if e, oerr := core.Open(core.Options{Dir: dir, Replica: true, WALSegmentSize: 2048}); oerr == nil {
					// Pre-swap crash: the old (here: empty) directory is
					// untouched.
					if got := countLabel(t, e, "Pre"); got != 0 && got != 60 {
						t.Fatalf("partially swapped state visible: %d Pre nodes", got)
					}
					if err := e.Crash(); err != nil {
						t.Fatal(err)
					}
				} else if !errors.Is(oerr, core.ErrReseedIncomplete) {
					t.Fatalf("crashed dir refused with the wrong error: %v", oerr)
				}

				// Re-fetch heals every crash state: leftover tmp dirs,
				// markers, and half-swapped files are all replaced.
				if _, err := repl.FetchSnapshot(dir, faultfs.OS{}, addr, repl.FetchOptions{}); err != nil {
					t.Fatalf("healing fetch: %v", err)
				}
				openAndCount(t, dir, 60)
			})
		}
	}
}

func openAndCount(t *testing.T, dir string, want int) {
	t.Helper()
	e, err := core.Open(core.Options{Dir: dir, Replica: true, WALSegmentSize: 2048})
	if err != nil {
		t.Fatalf("healed dir does not open: %v", err)
	}
	if got := countLabel(t, e, "Pre"); got != want {
		t.Fatalf("healed dir has %d Pre nodes, want %d", got, want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReseedHistoryConflictClassified: two nodes that each won an
// election for the SAME epoch number hold irreconcilable histories even
// when every numeric epoch check passes. The applier must classify the
// conflict as re-seed-required rather than merging the timelines.
func TestReseedHistoryConflictClassified(t *testing.T) {
	// Build a primary at epoch 2 via a real promotion.
	p1 := openPrimary(t, t.TempDir())
	ship1, err := repl.NewShipper(p1, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	winner := openReplica(t, t.TempDir())
	wApplier := fastApplier(t, winner, ship1.Addr())
	for i := 0; i < 10; i++ {
		commitNode(t, p1, "Shared", int64(i))
	}
	waitConverged(t, wApplier, p1)

	// A second replica stops at a shorter prefix, then also promotes to
	// epoch 2 — same number, different fork point.
	rdir := t.TempDir()
	rival := openReplica(t, rdir)
	rApplier := fastApplier(t, rival, ship1.Addr())
	waitConverged(t, rApplier, p1)
	rApplier.Close()
	for i := 0; i < 5; i++ {
		commitNode(t, p1, "Late", int64(i))
	}
	waitConverged(t, wApplier, p1)
	ship1.Close()
	if err := p1.Crash(); err != nil {
		t.Fatal(err)
	}
	wApplier.Close()
	if err := winner.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := rival.Promote(); err != nil {
		t.Fatal(err)
	}
	we, _ := winner.Epoch()
	re, _ := rival.Epoch()
	if we != 2 || re != 2 {
		t.Fatalf("epochs = %d, %d, want 2, 2 (the collision under test)", we, re)
	}

	// The rival re-points at the winner: epoch numbers agree, but the
	// histories fork epoch 2 at different positions.
	wShip, err := repl.NewShipper(winner, "127.0.0.1:0", repl.ShipperOptions{HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer wShip.Close()
	defer winner.Close()
	if err := rival.Close(); err != nil {
		t.Fatal(err)
	}
	rival2, err := core.Open(core.Options{Dir: rdir, Replica: true, WALSegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	a := fastApplier(t, rival2, wShip.Addr())
	defer a.Close()
	defer rival2.Close()
	waitReseedRequired(t, a)
	if st := a.Status(); !strings.Contains(st.LastError, "conflicting histories") {
		t.Fatalf("conflict not classified: %q", st.LastError)
	}
}
