package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the tracer's ring as JSONL: one trace per line, oldest
// first. Query parameters: ?trace_id=<id> filters to one trace,
// ?n=<count> keeps only the newest count traces.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		if want := r.URL.Query().Get("trace_id"); want != "" {
			kept := traces[:0]
			for _, tr := range traces {
				if tr.TraceID == want {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		if ns := r.URL.Query().Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		enc := json.NewEncoder(w) // Encode terminates each value with \n
		for _, tr := range traces {
			if err := enc.Encode(tr); err != nil {
				return
			}
		}
	})
}
