// Package trace is a dependency-free distributed tracing layer for the
// commit pipeline: trace ID + span ID + parent, monotonic-clock span
// timings, head-based sampling, and a bounded in-memory ring of traces.
//
// The sampling decision is made once, at the head (StartRoot): a request
// the head chose not to trace carries no context and costs nothing
// downstream. A sampled trace's context travels over the wire (the
// request's optional `trace` field) and through the WAL to replicas (the
// 'T' record), and every hop records its spans into its own Tracer's
// ring — one trace ID, one causal tree, per process a partial view.
//
// Spans are recorded into their trace when they finish, so a trace in
// the ring grows as late spans (a replica apply, a quorum ack) land;
// /debug/traces always shows the tree as currently known.
package trace

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Context is the wire-portable identity of a span: enough for the far
// side to attach children to the right place in the right trace.
type Context struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.TraceID != "" }

// SpanRecord is one finished span as stored and serialized.
type SpanRecord struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"` // offset from the trace's first-seen instant
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is one trace as serialized to /debug/traces (one JSON
// object per line) and handed to the slow-op hook.
type TraceRecord struct {
	TraceID string       `json:"trace_id"`
	Start   time.Time    `json:"start"`
	Spans   []SpanRecord `json:"spans"`
}

// traceEntry is a trace accumulating finished spans in the ring.
type traceEntry struct {
	id    string
	start time.Time // first span's start; carries the monotonic clock

	mu    sync.Mutex
	spans []SpanRecord
}

func (e *traceEntry) record(s SpanRecord) {
	e.mu.Lock()
	e.spans = append(e.spans, s)
	e.mu.Unlock()
}

func (e *traceEntry) snapshot() TraceRecord {
	e.mu.Lock()
	spans := make([]SpanRecord, len(e.spans))
	copy(spans, e.spans)
	e.mu.Unlock()
	return TraceRecord{TraceID: e.id, Start: e.start.Round(0), Spans: spans}
}

// Tracer owns a sampling rate and a bounded ring of traces. The zero
// Tracer is not usable; a nil *Tracer is a valid no-op (every method on
// a nil Tracer or nil Span is safe and free).
type Tracer struct {
	sample   float64
	capacity int

	mu   sync.Mutex
	byID map[string]*traceEntry
	ring []*traceEntry // circular once len == capacity
	next int           // eviction cursor

	slowMu        sync.Mutex
	slowThreshold time.Duration
	slowFn        func(TraceRecord, SpanRecord)
}

// DefaultCapacity bounds the trace ring when New is given zero.
const DefaultCapacity = 256

// New builds a Tracer that head-samples new roots at rate sample
// (0 disables, 1 traces everything) and retains the last capacity
// traces (0 means DefaultCapacity).
func New(sample float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		sample:   sample,
		capacity: capacity,
		byID:     make(map[string]*traceEntry),
	}
}

// SetSlowOp installs the slow-op hook: whenever a local-root span (a
// StartRoot or StartRemote span) finishes with duration ≥ threshold, fn
// receives the trace as currently known plus the offending span.
// A zero threshold disables the hook.
func (t *Tracer) SetSlowOp(threshold time.Duration, fn func(TraceRecord, SpanRecord)) {
	if t == nil {
		return
	}
	t.slowMu.Lock()
	t.slowThreshold = threshold
	t.slowFn = fn
	t.slowMu.Unlock()
}

func (t *Tracer) sampled() bool {
	if t.sample <= 0 {
		return false
	}
	return t.sample >= 1 || rand.Float64() < t.sample
}

// entry returns the ring slot for traceID, creating (and, at capacity,
// evicting the oldest trace) as needed.
func (t *Tracer) entry(traceID string, start time.Time) *traceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.byID[traceID]; ok {
		return e
	}
	e := &traceEntry{id: traceID, start: start}
	t.byID[traceID] = e
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, e)
	} else {
		delete(t.byID, t.ring[t.next].id)
		t.ring[t.next] = e
		t.next = (t.next + 1) % t.capacity
	}
	return e
}

func newTraceID() string { return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64()) }
func newSpanID() string  { return fmt.Sprintf("%016x", rand.Uint64()) }

func (t *Tracer) newSpan(traceID, parent, name string, localRoot bool, start time.Time) *Span {
	return &Span{
		tracer: t,
		tr:     t.entry(traceID, start),
		id:     newSpanID(),
		parent: parent,
		name:   name,
		local:  localRoot,
		start:  start,
	}
}

// StartRoot makes the head sampling decision and, when sampled, opens a
// new trace rooted at a span named name. Returns nil (a free no-op
// span) when unsampled or t is nil.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || !t.sampled() {
		return nil
	}
	return t.newSpan(newTraceID(), "", name, true, time.Now())
}

// StartRemote continues a trace begun elsewhere (the head already chose
// to sample it) with a local-root span: its finish drives the slow-op
// hook on this process.
func (t *Tracer) StartRemote(c Context, name string) *Span {
	if t == nil || !c.Valid() {
		return nil
	}
	return t.newSpan(c.TraceID, c.SpanID, name, true, time.Now())
}

// Traces snapshots the ring, oldest first.
func (t *Tracer) Traces() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	entries := make([]*traceEntry, 0, len(t.ring))
	// next is the oldest slot once the ring has wrapped.
	for i := 0; i < len(t.ring); i++ {
		entries = append(entries, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]TraceRecord, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.snapshot())
	}
	return out
}

// Span is one timed operation within a trace. All methods are safe on a
// nil receiver — the unsampled path costs a nil check per call site.
type Span struct {
	tracer *Tracer
	tr     *traceEntry
	id     string
	parent string
	name   string
	local  bool
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

// Context returns the span's wire-portable identity.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.tr.id, SpanID: s.id}
}

// TraceID returns the owning trace's ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Child opens a child span in the same trace on the same tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(s.tr.id, s.id, name, false, time.Now())
}

// Set attaches a key=value attribute to the span.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Finish records the span into its trace; duration comes from the
// monotonic clock. Finishing twice records once. Finishing a local-root
// span runs the tracer's slow-op hook when the threshold is met.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()

	dur := time.Since(s.start)
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.tr.start).Microseconds(),
		DurUS:   dur.Microseconds(),
		Attrs:   attrs,
	}
	s.tr.record(rec)

	if s.local {
		s.tracer.slowMu.Lock()
		threshold, fn := s.tracer.slowThreshold, s.tracer.slowFn
		s.tracer.slowMu.Unlock()
		if fn != nil && threshold > 0 && dur >= threshold {
			fn(s.tr.snapshot(), rec)
		}
	}
}

type ctxKey struct{}

// ContextWith returns ctx carrying s (nil s returns ctx unchanged).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpanCtx opens a span as a child of the one carried by ctx, or —
// when ctx carries none — as a new sampled root on t. The returned
// context carries the new span for further nesting; when unsampled it
// is ctx unchanged and the span is nil.
func (t *Tracer) StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFrom(ctx); parent != nil {
		sp := parent.Child(name)
		return ContextWith(ctx, sp), sp
	}
	sp := t.StartRoot(name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWith(ctx, sp), sp
}
