package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSampling(t *testing.T) {
	off := New(0, 8)
	if sp := off.StartRoot("x"); sp != nil {
		t.Fatalf("sample=0 minted a span")
	}
	on := New(1, 8)
	sp := on.StartRoot("x")
	if sp == nil {
		t.Fatalf("sample=1 returned nil span")
	}
	if !sp.Context().Valid() || sp.TraceID() == "" {
		t.Fatalf("sampled span has no identity: %+v", sp.Context())
	}
	// A nil tracer and nil span are free no-ops end to end.
	var nilT *Tracer
	nsp := nilT.StartRoot("x")
	nsp.Set("k", "v")
	nsp.Child("c").Finish()
	nsp.Finish()
	if got := nilT.Traces(); got != nil {
		t.Fatalf("nil tracer returned traces: %v", got)
	}
}

func TestTraceTree(t *testing.T) {
	tr := New(1, 8)
	root := tr.StartRoot("client.call")
	child := root.Child("server.op")
	grand := child.Child("commit.validate")
	grand.Set("stripe", "3")
	grand.Finish()
	child.Finish()
	root.Finish()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.TraceID != root.TraceID() {
		t.Fatalf("trace id %q, want %q", got.TraceID, root.TraceID())
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(got.Spans), got.Spans)
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["client.call"].Parent != "" {
		t.Fatalf("root has parent %q", byName["client.call"].Parent)
	}
	if byName["server.op"].Parent != byName["client.call"].ID {
		t.Fatalf("server.op parent %q, want %q", byName["server.op"].Parent, byName["client.call"].ID)
	}
	if byName["commit.validate"].Parent != byName["server.op"].ID {
		t.Fatalf("commit.validate parent mismatch")
	}
	if byName["commit.validate"].Attrs["stripe"] != "3" {
		t.Fatalf("attr lost: %+v", byName["commit.validate"].Attrs)
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	client := New(1, 8)
	server := New(0, 8) // remote side records regardless of its own rate
	root := client.StartRoot("client.call")
	sp := server.StartRemote(root.Context(), "server.op")
	if sp == nil {
		t.Fatalf("StartRemote returned nil for a valid context")
	}
	if sp.TraceID() != root.TraceID() {
		t.Fatalf("remote span on trace %q, want %q", sp.TraceID(), root.TraceID())
	}
	sp.Finish()
	root.Finish()
	if got := server.Traces(); len(got) != 1 || got[0].Spans[0].Parent != root.Context().SpanID {
		t.Fatalf("server side tree wrong: %+v", got)
	}
	if sp2 := server.StartRemote(Context{}, "x"); sp2 != nil {
		t.Fatalf("invalid context minted a span")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(1, 2)
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("op")
		ids = append(ids, sp.TraceID())
		sp.Finish()
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d, want 2", len(traces))
	}
	if traces[0].TraceID != ids[1] || traces[1].TraceID != ids[2] {
		t.Fatalf("ring kept %q,%q; want newest two of %v", traces[0].TraceID, traces[1].TraceID, ids)
	}
	// The evicted trace must not resurrect through a stale span.
	for _, got := range tr.Traces() {
		if got.TraceID == ids[0] {
			t.Fatalf("evicted trace still present")
		}
	}
}

func TestSlowOpHook(t *testing.T) {
	tr := New(1, 8)
	var mu sync.Mutex
	var fired []SpanRecord
	tr.SetSlowOp(5*time.Millisecond, func(_ TraceRecord, root SpanRecord) {
		mu.Lock()
		fired = append(fired, root)
		mu.Unlock()
	})
	fast := tr.StartRoot("fast")
	fast.Finish()
	slow := tr.StartRoot("slow")
	time.Sleep(10 * time.Millisecond)
	// Child finishes never fire the hook — only local roots do.
	c := slow.Child("inner")
	c.Finish()
	slow.Finish()
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0].Name != "slow" {
		t.Fatalf("slow-op hook fired for %+v, want exactly [slow]", fired)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := New(1, 8)
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatalf("empty ctx carries a span")
	}
	ctx, root := tr.StartSpanCtx(ctx, "root")
	if root == nil || SpanFrom(ctx) != root {
		t.Fatalf("root not threaded through ctx")
	}
	ctx2, child := tr.StartSpanCtx(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child on different trace")
	}
	if SpanFrom(ctx2) != child {
		t.Fatalf("ctx2 does not carry the child")
	}
	// Unsampled tracer: ctx passes through unchanged.
	off := New(0, 8)
	ctx3, sp := off.StartSpanCtx(context.Background(), "x")
	if sp != nil || SpanFrom(ctx3) != nil {
		t.Fatalf("unsampled StartSpanCtx minted state")
	}
}

func TestHandlerJSONL(t *testing.T) {
	tr := New(1, 8)
	a := tr.StartRoot("a")
	a.Finish()
	b := tr.StartRoot("b")
	b.Child("b.child").Finish()
	b.Finish()

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var lines []TraceRecord
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		var tl TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, tl)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].TraceID != a.TraceID() || lines[1].TraceID != b.TraceID() {
		t.Fatalf("order wrong: %q then %q", lines[0].TraceID, lines[1].TraceID)
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+b.TraceID(), nil))
	out := strings.TrimSpace(rec.Body.String())
	if strings.Count(out, "\n")+1 != 1 || !strings.Contains(out, b.TraceID()) {
		t.Fatalf("trace_id filter returned %q", out)
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	if got := strings.TrimSpace(rec.Body.String()); !strings.Contains(got, b.TraceID()) || strings.Contains(got, a.TraceID()) {
		t.Fatalf("n=1 kept %q, want only the newest", got)
	}
}

func TestTraceConcurrency(t *testing.T) {
	tr := New(1, 4)
	root := tr.StartRoot("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("c")
				c.Set("j", "x")
				c.Finish()
				// Interleave unrelated roots to churn the ring.
				tr.StartRoot("noise").Finish()
			}
		}()
	}
	wg.Wait()
	root.Finish()
	_ = tr.Traces()
}
