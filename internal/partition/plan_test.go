package partition

import (
	"strings"
	"testing"

	"neograph/internal/wire"
)

func TestParsePeers(t *testing.T) {
	pm, err := ParsePeers("1=c:1,d:2; 0=a:1,b:2")
	if err != nil {
		t.Fatal(err)
	}
	if pm.Count != 2 || pm.Version != 1 {
		t.Fatalf("count=%d version=%d", pm.Count, pm.Version)
	}
	// Sorted by ID regardless of spec order.
	if pm.Groups[0].ID != 0 || pm.Groups[1].ID != 1 {
		t.Fatalf("group order: %+v", pm.Groups)
	}
	if len(pm.Groups[0].Addrs) != 2 || pm.Groups[0].Addrs[0] != "a:1" {
		t.Fatalf("group 0 addrs: %v", pm.Groups[0].Addrs)
	}

	for _, bad := range []string{
		"",             // empty
		"0=a:1;2=b:1",  // gap: no partition 1
		"0=a:1;0=b:1",  // duplicate
		"0=",           // no addrs
		"x=a:1",        // bad id
		"just-an-addr", // no '='
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): want error", bad)
		}
	}
}

func TestTopologyPartitionOfAndAdopt(t *testing.T) {
	pm, _ := ParsePeers("0=a:1;1=b:1;2=c:1")
	topo := NewTopology(pm)
	if topo.Count() != 3 {
		t.Fatalf("count=%d", topo.Count())
	}
	for id := uint64(0); id < 10; id++ {
		if got := topo.PartitionOf(id); got != uint32(id%3) {
			t.Fatalf("PartitionOf(%d)=%d", id, got)
		}
	}
	if a := topo.Addrs(1); len(a) != 1 || a[0] != "b:1" {
		t.Fatalf("Addrs(1)=%v", a)
	}
	if topo.Addrs(9) != nil {
		t.Fatal("Addrs of unknown partition should be nil")
	}

	// Adopt: same/lower version ignored, higher version wins.
	stale := topo.Map()
	if topo.Adopt(&stale) {
		t.Fatal("adopted a same-version map")
	}
	newer, _ := ParsePeers("0=x:1;1=y:1;2=z:1")
	newer.Version = 7
	if !topo.Adopt(&newer) {
		t.Fatal("refused a newer map")
	}
	if a := topo.Addrs(0); a[0] != "x:1" {
		t.Fatalf("after adopt Addrs(0)=%v", a)
	}
	// Mutating the adopted source must not leak into the topology.
	newer.Groups[0].Addrs[0] = "mutated"
	if a := topo.Addrs(0); a[0] != "x:1" {
		t.Fatal("Adopt did not deep-copy")
	}
}

func ref(i int) *int { return &i }

func TestPlanBatchSinglePartitionRefsStayLocal(t *testing.T) {
	// node, node, rel between them — all creations land on the
	// coordinator, refs become local indices.
	batch := []wire.Request{
		{Op: wire.OpCreateNode},
		{Op: wire.OpCreateNode},
		{Op: wire.OpCreateRel, Type: "KNOWS", StartRef: ref(0), EndRef: ref(1)},
	}
	p, err := planBatch(batch, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sub) != 1 || len(p.sub[1]) != 3 {
		t.Fatalf("sub: %+v", p.sub)
	}
	if len(p.subs) != 0 {
		t.Fatalf("unexpected pending subs: %+v", p.subs)
	}
	rel := p.sub[1][2]
	if rel.StartRef == nil || *rel.StartRef != 0 || rel.EndRef == nil || *rel.EndRef != 1 {
		t.Fatalf("local refs not rewritten: %+v", rel)
	}
	if len(p.order) != 1 || p.order[0] != 1 {
		t.Fatalf("order: %v", p.order)
	}
}

func TestPlanBatchCrossPartitionEdge(t *testing.T) {
	// Node created on coordinator (partition 0 of 2); edge from it to a
	// pre-existing node 7 (partition 1): edge stays with its start
	// partition, node 7 goes on partition 1's validate list.
	batch := []wire.Request{
		{Op: wire.OpCreateNode},
		{Op: wire.OpCreateRel, Type: "KNOWS", StartRef: ref(0), End: 7},
	}
	p, err := planBatch(batch, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sub[0]) != 2 {
		t.Fatalf("coordinator sub: %+v", p.sub[0])
	}
	if got := p.validate[1]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("validate[1]=%v", got)
	}
	// Partition 1 participates (validate-only, empty sub-batch is fine).
	found := false
	for _, part := range p.order {
		if part == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("partition 1 not in order %v", p.order)
	}
}

func TestPlanBatchCrossPartitionRefSubstitution(t *testing.T) {
	// Update on partition 1's node 3, node created on coordinator 0,
	// edge anchored to partition 1's node referencing the new node:
	// partition 0 must prepare before partition 1, and the edge's End
	// ref becomes a pending substitution.
	batch := []wire.Request{
		{Op: wire.OpCreateNode},
		{Op: wire.OpCreateRel, Type: "KNOWS", Start: 3, EndRef: ref(0)},
	}
	p, err := planBatch(batch, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.subs) != 1 {
		t.Fatalf("pending subs: %+v", p.subs)
	}
	s := p.subs[0]
	if s.part != 1 || s.localIdx != 0 || s.field != fieldEnd || s.target != 0 {
		t.Fatalf("sub: %+v", s)
	}
	// The cleared ref must not survive in partition 1's sub-batch.
	if p.sub[1][0].EndRef != nil {
		t.Fatal("cross-partition ref not cleared")
	}
	// 0 before 1 in prepare order.
	if len(p.order) != 2 || p.order[0] != 0 || p.order[1] != 1 {
		t.Fatalf("order: %v", p.order)
	}
}

func TestPlanBatchRejectsScansAndCycles(t *testing.T) {
	if _, err := planBatch([]wire.Request{{Op: wire.OpAllNodes}}, 0, 2); err == nil || !strings.Contains(err.Error(), "scan") {
		t.Fatalf("scan: %v", err)
	}
	// Circular: partition 0's op references partition 1's creation and
	// vice versa. create_rel anchored by Start ID, End by ref.
	batch := []wire.Request{
		{Op: wire.OpCreateNode}, // coordinator (0)
		{Op: wire.OpCreateRel, Type: "A", Start: 1, EndRef: ref(0)}, // partition 1, needs 0
		{Op: wire.OpCreateRel, Type: "B", Start: 0, EndRef: ref(1)}, // partition 0, needs 1
	}
	if _, err := planBatch(batch, 0, 2); err == nil || !strings.Contains(err.Error(), "circular") {
		t.Fatalf("cycle: %v", err)
	}
}

func TestCrossPartition(t *testing.T) {
	cases := []struct {
		name  string
		batch []wire.Request
		self  uint32
		count int
		want  bool
	}{
		{"unpartitioned", []wire.Request{{Op: wire.OpGetNode, ID: 5}}, 0, 1, false},
		{"creates only", []wire.Request{{Op: wire.OpCreateNode}, {Op: wire.OpCreateNode}}, 1, 4, false},
		{"local id", []wire.Request{{Op: wire.OpGetNode, ID: 4}}, 0, 2, false},
		{"remote id", []wire.Request{{Op: wire.OpGetNode, ID: 5}}, 0, 2, true},
		{"rel local both", []wire.Request{{Op: wire.OpCreateRel, Start: 2, End: 4}}, 0, 2, false},
		{"rel remote end", []wire.Request{{Op: wire.OpCreateRel, Start: 2, End: 5}}, 0, 2, true},
		{"rel by refs", []wire.Request{
			{Op: wire.OpCreateNode}, {Op: wire.OpCreateNode},
			{Op: wire.OpCreateRel, StartRef: ref(0), EndRef: ref(1)},
		}, 0, 2, false},
		{"scan ignored", []wire.Request{{Op: wire.OpAllNodes}}, 0, 2, false},
	}
	for _, c := range cases {
		if got := CrossPartition(c.batch, c.self, c.count); got != c.want {
			t.Errorf("%s: CrossPartition=%v want %v", c.name, got, c.want)
		}
	}
}
