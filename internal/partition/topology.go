// Package partition implements the hash-partitioned vertex space: a
// static, versioned topology mapping entity IDs to partitions
// (id % Count), and a two-phase-commit coordinator giving
// cross-partition transactions atomicity on top of each partition's
// existing single-partition commit path.
//
// Each partition is one replication group (a primary and its replicas)
// running the unmodified single-partition stack; the partition layer
// adds ID striding (each partition allocates only its own congruence
// class), prepare/decide records in the WAL, and client-side routing.
package partition

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"neograph/internal/wire"
)

// Topology is a node's current view of the partition map, safe for
// concurrent use. Maps are versioned: Adopt keeps the highest version
// seen, so topology changes propagate through cluster_status gossip
// without config pushes.
type Topology struct {
	mu sync.RWMutex
	pm wire.PartitionMap
}

// NewTopology wraps a partition map. A zero-count map means
// unpartitioned (PartitionOf always 0).
func NewTopology(pm wire.PartitionMap) *Topology {
	return &Topology{pm: pm}
}

// ParsePeers parses the -partition-peers flag format:
//
//	0=host1:7475,host2:7475;1=host3:7475,host4:7475
//
// — semicolon-separated groups, each "id=addr[,addr...]". Partition IDs
// must be exactly 0..n-1. The resulting map has Version 1.
func ParsePeers(spec string) (wire.PartitionMap, error) {
	var pm wire.PartitionMap
	if strings.TrimSpace(spec) == "" {
		return pm, fmt.Errorf("partition: empty peers spec")
	}
	seen := make(map[uint32]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return pm, fmt.Errorf("partition: bad group %q (want id=addr,addr)", part)
		}
		id64, err := strconv.ParseUint(strings.TrimSpace(part[:eq]), 10, 32)
		if err != nil {
			return pm, fmt.Errorf("partition: bad partition id in %q: %w", part, err)
		}
		id := uint32(id64)
		if seen[id] {
			return pm, fmt.Errorf("partition: duplicate partition id %d", id)
		}
		seen[id] = true
		var addrs []string
		for _, a := range strings.Split(part[eq+1:], ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return pm, fmt.Errorf("partition: partition %d has no addresses", id)
		}
		pm.Groups = append(pm.Groups, wire.PartitionGroup{ID: id, Addrs: addrs})
	}
	pm.Count = len(pm.Groups)
	for id := 0; id < pm.Count; id++ {
		if !seen[uint32(id)] {
			return pm, fmt.Errorf("partition: ids must be contiguous 0..%d, missing %d", pm.Count-1, id)
		}
	}
	sort.Slice(pm.Groups, func(i, j int) bool { return pm.Groups[i].ID < pm.Groups[j].ID })
	pm.Version = 1
	return pm, nil
}

// Count returns the partition count (0 when unpartitioned).
func (t *Topology) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pm.Count
}

// PartitionOf maps an entity ID to its owning partition.
func (t *Topology) PartitionOf(id uint64) uint32 {
	t.mu.RLock()
	n := t.pm.Count
	t.mu.RUnlock()
	if n <= 1 {
		return 0
	}
	return uint32(id % uint64(n))
}

// Addrs returns the client-facing addresses of one partition's
// replication group (a copy).
func (t *Topology) Addrs(part uint32) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, g := range t.pm.Groups {
		if g.ID == part {
			return append([]string(nil), g.Addrs...)
		}
	}
	return nil
}

// Map returns a copy of the current partition map.
func (t *Topology) Map() wire.PartitionMap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pm := t.pm
	pm.Groups = make([]wire.PartitionGroup, len(t.pm.Groups))
	for i, g := range t.pm.Groups {
		pm.Groups[i] = wire.PartitionGroup{ID: g.ID, Addrs: append([]string(nil), g.Addrs...)}
	}
	return pm
}

// Adopt installs pm if it is newer than the current map; reports
// whether the topology changed.
func (t *Topology) Adopt(pm *wire.PartitionMap) bool {
	if pm == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pm.Version <= t.pm.Version && t.pm.Count > 0 {
		return false
	}
	cp := *pm
	cp.Groups = make([]wire.PartitionGroup, len(pm.Groups))
	for i, g := range pm.Groups {
		cp.Groups[i] = wire.PartitionGroup{ID: g.ID, Addrs: append([]string(nil), g.Addrs...)}
	}
	t.pm = cp
	return true
}
