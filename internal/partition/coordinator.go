package partition

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/slog"
	"neograph/internal/wire"
)

// gtxnSeqBits is how much of a global transaction ID the per-coordinator
// sequence occupies; the coordinating partition sits above it, so IDs
// from different coordinators can never collide.
const gtxnSeqBits = 48

// resolveEvery paces the background in-doubt resolver and decision
// repusher.
const resolveEvery = 500 * time.Millisecond

// rpcTimeout bounds one coordinator-to-participant round trip when the
// request carries no deadline of its own.
const rpcTimeout = 5 * time.Second

// Local is the coordinator's handle on its own partition: batch
// preparation runs through the server (it owns op execution), the rest
// through the database's two-phase-commit surface.
type Local interface {
	// PrepareBatch executes batch in a fresh transaction and parks it
	// prepared under gtxn (see wire.OpPrepare). The response carries
	// per-op Results and the prepare record's LSN.
	PrepareBatch(gtxn uint64, coordPart uint32, batch []wire.Request, validate []uint64) *wire.Response
	// DecideTxn commits or aborts the locally prepared gtxn.
	DecideTxn(gtxn uint64, commit bool, participants []uint32) (uint64, error)
	// TxnStatus answers what became of gtxn: "committed", "aborted",
	// "pending", or "unknown".
	TxnStatus(gtxn uint64) string
	// AckDecision records a participant's acknowledgement of gtxn's
	// commit decision.
	AckDecision(gtxn uint64, participant uint32)
	// InDoubt lists locally prepared transactions with no decision, as
	// (gtxn, coordPart) pairs.
	InDoubt() []InDoubtTxn
	// UnackedDecisions lists commit decisions awaiting participant
	// acknowledgements.
	UnackedDecisions() []UnackedTxn
}

// InDoubtTxn is one prepared-but-undecided transaction.
type InDoubtTxn struct {
	Gtxn      uint64
	CoordPart uint32
}

// UnackedTxn is one commit decision with outstanding acknowledgements.
type UnackedTxn struct {
	Gtxn         uint64
	Participants []uint32
}

// Coordinator runs cross-partition transactions over the partition
// topology: it splits a batch per partition, prepares every participant
// (its own partition through Local, the rest over the wire), makes the
// commit decision durable locally, and pushes it out. Background loops
// resolve in-doubt prepares (participant side) and re-push unacked
// decisions (coordinator side) after crashes.
type Coordinator struct {
	self  uint32
	topo  *Topology
	local Local
	log   *slog.Logger

	seq atomic.Uint64

	// inflight guards live coordinations: the resolver must not
	// presume-abort a local prepare whose decision is milliseconds away.
	inflightMu sync.Mutex
	inflight   map[uint64]struct{}

	// primaries caches each partition's last known good address.
	primaries sync.Map // uint32 -> string

	connMu sync.Mutex
	conns  map[string]*rpcConn

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator creates a coordinator for partition self. seqBase
// seeds the global-transaction sequence; pass the engine's applied LSN
// so a restarted coordinator can never re-mint a still-in-doubt ID.
func NewCoordinator(self uint32, topo *Topology, local Local, seqBase uint64, logger *slog.Logger) *Coordinator {
	c := &Coordinator{
		self:     self,
		topo:     topo,
		local:    local,
		log:      logger,
		inflight: make(map[uint64]struct{}),
		conns:    make(map[string]*rpcConn),
		stop:     make(chan struct{}),
	}
	c.seq.Store(seqBase)
	return c
}

// Start launches the background resolver and repusher.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(resolveEvery)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.ResolveInDoubt()
				c.RepushDecisions()
			}
		}
	}()
}

// Close stops the background loops and drops cached connections.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
	c.connMu.Lock()
	for _, rc := range c.conns {
		rc.close()
	}
	c.conns = map[string]*rpcConn{}
	c.connMu.Unlock()
}

// mint issues a cluster-unique global transaction ID.
func (c *Coordinator) mint() uint64 {
	return uint64(c.self)<<gtxnSeqBits | (c.seq.Add(1) & (1<<gtxnSeqBits - 1))
}

func (c *Coordinator) markInflight(gtxn uint64) {
	c.inflightMu.Lock()
	c.inflight[gtxn] = struct{}{}
	c.inflightMu.Unlock()
}

func (c *Coordinator) unmarkInflight(gtxn uint64) {
	c.inflightMu.Lock()
	delete(c.inflight, gtxn)
	c.inflightMu.Unlock()
}

func (c *Coordinator) isInflight(gtxn uint64) bool {
	c.inflightMu.Lock()
	_, ok := c.inflight[gtxn]
	c.inflightMu.Unlock()
	return ok
}

// CommitBatch runs one cross-partition batch to a decision and returns
// the merged response. deadline bounds the whole coordination (zero
// means none). The response's LSN is the local decision record's end
// position — the read-your-writes token for this partition.
func (c *Coordinator) CommitBatch(batch []wire.Request, deadline time.Time) *wire.Response {
	plan, err := planBatch(batch, c.self, c.topo.Count())
	if err != nil {
		return &wire.Response{Error: err.Error()}
	}
	gtxn := c.mint()
	c.markInflight(gtxn)
	defer c.unmarkInflight(gtxn)

	// createdID[g] is the entity ID created by global sub-op g, learned
	// as each partition's prepare returns; localResults mirrors per
	// partition.
	created := make(map[int]uint64)
	results := make(map[uint32][]wire.Response)
	var prepared []uint32

	abortAll := func(failIdx int, msg string) *wire.Response {
		for _, p := range prepared {
			if p == c.self {
				c.local.DecideTxn(gtxn, false, nil)
			} else if err := c.decideRemote(p, gtxn, false, deadline); err != nil {
				// The participant resolves through the in-doubt loop:
				// our status for gtxn stays "unknown" — presumed abort.
				c.log.Warn("partition: abort push failed", "gtxn", gtxn, "part", p, "err", err.Error())
			}
		}
		resp := &wire.Response{Error: fmt.Sprintf("partition: cross-partition batch aborted: %s", msg)}
		if failIdx >= 0 {
			resp.FailedOp = &failIdx
		}
		return resp
	}

	for _, part := range plan.order {
		sub := plan.sub[part]
		// Fill cross-partition references now that their targets have
		// prepared (plan.order guarantees they have).
		for _, ps := range plan.subs {
			if ps.part != part {
				continue
			}
			id, ok := created[ps.target]
			if !ok {
				return abortAll(-1, fmt.Sprintf("internal: unresolved reference to sub-op %d", ps.target))
			}
			switch ps.field {
			case fieldID:
				sub[ps.localIdx].ID = id
			case fieldStart:
				sub[ps.localIdx].Start = id
			case fieldEnd:
				sub[ps.localIdx].End = id
			}
		}

		var resp *wire.Response
		if part == c.self {
			resp = c.local.PrepareBatch(gtxn, c.self, sub, plan.validate[part])
		} else {
			resp = c.prepareRemote(part, gtxn, sub, plan.validate[part], deadline)
		}
		if !resp.OK {
			idx := -1
			if resp.FailedOp != nil {
				// Map the participant's local failed index back to the
				// caller's global batch order.
				for g, r := range plan.route {
					if r.part == part && r.localIdx == *resp.FailedOp {
						idx = g
						break
					}
				}
			}
			return abortAll(idx, resp.Error)
		}
		prepared = append(prepared, part)
		results[part] = resp.Results
		for li, r := range resp.Results {
			for g, rt := range plan.route {
				if rt.part == part && rt.localIdx == li && r.ID != 0 {
					created[g] = r.ID
				}
			}
		}
	}

	// The local durable decision record is the global commit point:
	// after this returns, the transaction is committed no matter which
	// processes die.
	participants := make([]uint32, 0, len(prepared))
	for _, p := range prepared {
		if p != c.self {
			participants = append(participants, p)
		}
	}
	lsn, err := c.local.DecideTxn(gtxn, true, participants)
	if err != nil {
		return abortAll(-1, fmt.Sprintf("decision: %v", err))
	}

	// Push the decision; failures are retried by the repush loop (the
	// outcome is already durable).
	for _, p := range participants {
		if err := c.decideRemote(p, gtxn, true, deadline); err != nil {
			c.log.Warn("partition: decide push failed, repush pending", "gtxn", gtxn, "part", p, "err", err.Error())
			continue
		}
		c.local.AckDecision(gtxn, p)
	}

	// Merge per-partition results back into submission order.
	merged := make([]wire.Response, len(batch))
	for g, rt := range plan.route {
		rs := results[rt.part]
		if rt.localIdx < len(rs) {
			merged[g] = rs[rt.localIdx]
		} else {
			merged[g] = wire.Response{OK: true}
		}
	}
	return &wire.Response{OK: true, Results: merged, LSN: lsn}
}

// ResolveInDoubt drives one pass of the participant-side resolver:
// every locally prepared transaction whose coordinator is another
// partition asks that partition for the outcome; "committed" applies
// it, "aborted"/"unknown" discards it (presumed abort), "pending" waits.
// Prepares coordinated by this very partition that are not currently in
// flight are orphans of a coordinator crash before the decision — the
// local status is authoritative, so they abort.
func (c *Coordinator) ResolveInDoubt() {
	for _, d := range c.local.InDoubt() {
		if c.isInflight(d.Gtxn) {
			continue
		}
		if d.CoordPart == c.self {
			// Our own orphan: no durable decision exists (a decided
			// transaction is no longer in doubt), so nobody was ever
			// acked — presumed abort.
			c.local.DecideTxn(d.Gtxn, false, nil)
			c.log.Info("partition: aborted orphaned local prepare", "gtxn", d.Gtxn)
			continue
		}
		state, err := c.statusRemote(d.CoordPart, d.Gtxn)
		if err != nil {
			continue // coordinator unreachable; retry next pass
		}
		switch state {
		case "committed":
			c.local.DecideTxn(d.Gtxn, true, nil)
		case "aborted", "unknown":
			c.local.DecideTxn(d.Gtxn, false, nil)
		}
	}
}

// RepushDecisions drives one pass of the coordinator-side repusher:
// every unacknowledged commit decision is re-sent to its outstanding
// participants; an acknowledged push ends that participant's share of
// the obligation.
func (c *Coordinator) RepushDecisions() {
	for _, d := range c.local.UnackedDecisions() {
		for _, p := range d.Participants {
			if p == c.self {
				c.local.AckDecision(d.Gtxn, p)
				continue
			}
			if err := c.decideRemote(p, d.Gtxn, true, time.Time{}); err != nil {
				continue
			}
			c.local.AckDecision(d.Gtxn, p)
		}
	}
}

// ---- remote calls ----

func (c *Coordinator) prepareRemote(part uint32, gtxn uint64, batch []wire.Request, validate []uint64, deadline time.Time) *wire.Response {
	req := &wire.Request{
		Op:            wire.OpPrepare,
		TxnID:         gtxn,
		CoordPart:     c.self,
		Batch:         batch,
		ValidateNodes: validate,
	}
	resp, err := c.rpc(part, req, deadline)
	if err != nil {
		return &wire.Response{Error: fmt.Sprintf("partition %d unreachable: %v", part, err)}
	}
	return resp
}

func (c *Coordinator) decideRemote(part uint32, gtxn uint64, commit bool, deadline time.Time) error {
	v := commit
	resp, err := c.rpc(part, &wire.Request{Op: wire.OpDecide, TxnID: gtxn, Commit: &v}, deadline)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("partition %d: %s", part, resp.Error)
	}
	return nil
}

func (c *Coordinator) statusRemote(part uint32, gtxn uint64) (string, error) {
	resp, err := c.rpc(part, &wire.Request{Op: wire.OpTxnStatus, TxnID: gtxn}, time.Time{})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("partition %d: %s", part, resp.Error)
	}
	return resp.State, nil
}

// rpc performs one request against partition part's current primary:
// the cached primary first, then every configured group address. An
// address that is unreachable — or answers as a read-only replica —
// falls through to the next; any other response is final.
func (c *Coordinator) rpc(part uint32, req *wire.Request, deadline time.Time) (*wire.Response, error) {
	addrs := c.topo.Addrs(part)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no addresses for partition %d", part)
	}
	if cached, ok := c.primaries.Load(part); ok {
		if a := cached.(string); a != "" {
			ordered := []string{a}
			for _, x := range addrs {
				if x != a {
					ordered = append(ordered, x)
				}
			}
			addrs = ordered
		}
	}
	var lastErr error
	for _, addr := range addrs {
		resp, err := c.roundTrip(addr, req, deadline)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK && strings.Contains(resp.Error, "replica") {
			lastErr = fmt.Errorf("%s: %s", addr, resp.Error)
			continue
		}
		c.primaries.Store(part, addr)
		return resp, nil
	}
	return nil, lastErr
}

// rpcConn is one cached connection, serialized by its mutex: the 2PC
// control ops are stateless request/response pairs, so a single
// connection per address is enough.
type rpcConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func (rc *rpcConn) close() {
	rc.mu.Lock()
	if rc.conn != nil {
		rc.conn.Close()
		rc.conn = nil
	}
	rc.mu.Unlock()
}

func (c *Coordinator) roundTrip(addr string, req *wire.Request, deadline time.Time) (*wire.Response, error) {
	c.connMu.Lock()
	rc := c.conns[addr]
	if rc == nil {
		rc = &rpcConn{}
		c.conns[addr] = rc
	}
	c.connMu.Unlock()

	rc.mu.Lock()
	defer rc.mu.Unlock()
	if deadline.IsZero() {
		deadline = time.Now().Add(rpcTimeout)
	}
	try := func() (*wire.Response, error) {
		if rc.conn == nil {
			conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
			if err != nil {
				return nil, err
			}
			rc.conn = conn
			rc.enc = json.NewEncoder(conn)
			rc.dec = json.NewDecoder(conn)
		}
		rc.conn.SetDeadline(deadline)
		if err := rc.enc.Encode(req); err != nil {
			return nil, err
		}
		var resp wire.Response
		if err := rc.dec.Decode(&resp); err != nil {
			return nil, err
		}
		rc.conn.SetDeadline(time.Time{})
		return &resp, nil
	}
	resp, err := try()
	if err != nil && rc.conn != nil {
		// A stale cached connection (server restarted) gets one redial.
		rc.conn.Close()
		rc.conn, rc.enc, rc.dec = nil, nil, nil
		resp, err = try()
	}
	if err != nil && rc.conn != nil {
		rc.conn.Close()
		rc.conn, rc.enc, rc.dec = nil, nil, nil
	}
	return resp, err
}
