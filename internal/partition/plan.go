package partition

import (
	"fmt"

	"neograph/internal/wire"
)

// refField names which wire.Request field a cross-partition
// substitution fills once the referenced creation's ID is known.
type refField int

const (
	fieldID refField = iota
	fieldStart
	fieldEnd
)

// pendingSub is one cross-partition back reference: sub-op localIdx of
// partition part needs the entity ID created by global sub-op target.
type pendingSub struct {
	part     uint32
	localIdx int
	field    refField
	target   int
}

// opRoute locates one global sub-op inside the per-partition split.
type opRoute struct {
	part     uint32
	localIdx int
}

// batchPlan is a cross-partition batch split into per-partition
// sub-batches plus the bookkeeping to merge results back.
type batchPlan struct {
	// order is the prepare order: every partition whose sub-batch
	// references another partition's creation prepares after it.
	order []uint32
	sub   map[uint32][]wire.Request
	// validate lists pre-existing node IDs each partition must pin
	// alive (edge endpoints referenced from other partitions).
	validate map[uint32][]uint64
	route    []opRoute
	subs     []pendingSub
}

// scanOps are partition-local scans that have no well-defined meaning
// inside a coordinated cross-partition batch (they would silently see
// one partition's slice); the query path fans them out instead.
var scanOps = map[string]bool{
	wire.OpNodesByLabel: true, wire.OpNodesByProp: true, wire.OpAllNodes: true,
}

// planBatch splits a validated batch across partitions. self is the
// coordinating partition (creations without an anchor go there), count
// the partition count. Returns an error for shapes coordination cannot
// express: scans, or circular cross-partition references.
func planBatch(batch []wire.Request, self uint32, count int) (*batchPlan, error) {
	p := &batchPlan{
		sub:      make(map[uint32][]wire.Request),
		validate: make(map[uint32][]uint64),
		route:    make([]opRoute, len(batch)),
	}
	owner := func(id uint64) uint32 { return uint32(id % uint64(count)) }
	// deps[a][b]: partition a's sub-batch references a creation on b,
	// so b must prepare first.
	deps := make(map[uint32]map[uint32]bool)
	addDep := func(after, before uint32) {
		if after == before {
			return
		}
		if deps[after] == nil {
			deps[after] = make(map[uint32]bool)
		}
		deps[after][before] = true
	}

	for i := range batch {
		op := batch[i] // copy: refs are rewritten per partition
		if scanOps[op.Op] {
			return nil, fmt.Errorf("partition: op %q (sub-op %d) is a partition-local scan; run it outside the cross-partition batch", op.Op, i)
		}
		// Partition assignment: a back reference anchors the op to the
		// referenced creation's partition; an explicit ID to its owner;
		// create_node (and ping) to the coordinator.
		var part uint32
		switch {
		case op.IDRef != nil:
			part = p.route[*op.IDRef].part
		case op.Op == wire.OpCreateRel:
			if op.StartRef != nil {
				part = p.route[*op.StartRef].part
			} else {
				part = owner(op.Start)
			}
		case op.Op == wire.OpCreateNode, op.Op == wire.OpPing:
			part = self
		default:
			part = owner(op.ID)
		}

		// Rewrite each back reference: same-partition references become
		// local indices; cross-partition ones are cleared and filled
		// with the concrete ID once the owning partition has prepared.
		localIdx := len(p.sub[part])
		rewrite := func(ref **int, field refField) {
			if *ref == nil {
				return
			}
			global := **ref
			tgt := p.route[global]
			if tgt.part == part {
				li := tgt.localIdx
				*ref = &li
				return
			}
			*ref = nil
			p.subs = append(p.subs, pendingSub{part: part, localIdx: localIdx, field: field, target: global})
			addDep(part, tgt.part)
		}
		rewrite(&op.IDRef, fieldID)
		rewrite(&op.StartRef, fieldStart)
		rewrite(&op.EndRef, fieldEnd)

		// A relationship's remote pre-existing end node is guarded by
		// the owning partition's prepare (liveness-validated and pinned
		// until the decision). The start node is always local — the
		// edge is assigned to its partition — and endpoints created
		// inside this batch are guarded by their creation's prepared
		// entry on whichever partition holds it.
		if op.Op == wire.OpCreateRel && batch[i].EndRef == nil && owner(op.End) != part {
			p.validate[owner(op.End)] = append(p.validate[owner(op.End)], op.End)
		}

		p.route[i] = opRoute{part: part, localIdx: localIdx}
		p.sub[part] = append(p.sub[part], op)
	}

	// The coordinator always participates — an empty local prepare
	// anchors the decision record even when it owns no sub-op.
	if _, ok := p.sub[self]; !ok && p.validate[self] == nil {
		p.sub[self] = nil
	}

	order, err := topoOrder(p.involved(), deps)
	if err != nil {
		return nil, err
	}
	p.order = order
	return p, nil
}

// involved returns every partition with a sub-batch or a validate set.
func (p *batchPlan) involved() []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	add := func(id uint32) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for id := range p.sub {
		add(id)
	}
	for id := range p.validate {
		add(id)
	}
	return out
}

// topoOrder orders the involved partitions so every referenced creation
// prepares before its referrer. A circular cross-partition reference
// chain cannot be prepared in any order — the client must split the
// batch.
func topoOrder(parts []uint32, deps map[uint32]map[uint32]bool) ([]uint32, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[uint32]int, len(parts))
	var order []uint32
	var visit func(uint32) error
	visit = func(p uint32) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("partition: circular cross-partition references (partition %d); split the batch", p)
		}
		state[p] = grey
		for q := range deps[p] {
			if err := visit(q); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range parts {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// CrossPartition reports whether a batch touches more than one
// partition — i.e. needs coordinated commit rather than the local
// single-partition fast path on partition self of count.
func CrossPartition(batch []wire.Request, self uint32, count int) bool {
	if count <= 1 {
		return false
	}
	owner := func(id uint64) uint32 { return uint32(id % uint64(count)) }
	for i := range batch {
		op := &batch[i]
		// Back references stay within whatever partition their target
		// landed on; only explicit IDs can point off-partition.
		switch op.Op {
		case wire.OpCreateNode, wire.OpPing:
		case wire.OpCreateRel:
			if op.StartRef == nil && owner(op.Start) != self {
				return true
			}
			if op.EndRef == nil && owner(op.End) != self {
				return true
			}
		default:
			if scanOps[op.Op] {
				continue
			}
			if op.IDRef == nil && owner(op.ID) != self {
				return true
			}
		}
	}
	return false
}
