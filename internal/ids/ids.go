// Package ids provides identifier allocation for store records, mirroring
// Neo4j's ".id" files: each record store owns an Allocator that hands out
// monotonically increasing IDs and recycles the IDs of deleted records
// through a free list. Allocators can persist their state (high-water mark
// plus free list) so that a reopened store continues where it left off.
package ids

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// ID identifies a record within one store. IDs are dense, starting at 0,
// so they double as record offsets (offset = id * recordSize).
type ID = uint64

// NoID is the sentinel for "no record", used to terminate record chains,
// matching Neo4j's 0xFFFFFFFF... null pointer.
const NoID ID = ^ID(0)

// Allocator hands out record IDs with free-list reuse. It is safe for
// concurrent use.
type Allocator struct {
	mu     sync.Mutex
	next   ID
	free   []ID
	stride ID // 0 = dense; otherwise Next yields only ids ≡ offset (mod stride)
	offset ID
}

// NewAllocator returns an allocator whose next fresh ID is 0.
func NewAllocator() *Allocator { return &Allocator{} }

// Next returns a free ID, preferring recycled IDs over extending the
// high-water mark (keeping store files dense, as Neo4j does). Under a
// stride (SetStride) only IDs of the allocator's congruence class are
// handed out.
func (a *Allocator) Next() ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		return id
	}
	id := a.next
	if a.stride > 0 {
		id = a.alignUp(id)
		a.next = id + a.stride
	} else {
		a.next++
	}
	return id
}

// alignUp returns the smallest id ≥ from with id % stride == offset.
// Caller holds a.mu and has checked stride > 0.
func (a *Allocator) alignUp(from ID) ID {
	rem := from % a.stride
	if rem == a.offset {
		return from
	}
	if rem < a.offset {
		return from + (a.offset - rem)
	}
	return from + (a.stride - rem) + a.offset
}

// SetStride restricts the allocator to the congruence class
// id % stride == offset — the hash-partitioning contract that makes an
// entity's owning partition computable from its ID alone. Free-list
// entries of other classes (possible after an allocator rebuild that
// scanned a partitioned store file) are dropped: they belong to peers
// and must never be handed out here. stride 0 restores dense
// allocation; offset must be < stride.
func (a *Allocator) SetStride(offset, stride ID) {
	if stride > 0 && offset >= stride {
		panic(fmt.Sprintf("ids: stride offset %d >= stride %d", offset, stride))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stride, a.offset = stride, offset
	if stride == 0 {
		return
	}
	kept := a.free[:0]
	for _, id := range a.free {
		if id%stride == offset {
			kept = append(kept, id)
		}
	}
	a.free = kept
}

// Release returns id to the free list. Releasing an ID at or above the
// high-water mark, or NoID, is a programming error and panics.
func (a *Allocator) Release(id ID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id == NoID || id >= a.next {
		panic(fmt.Sprintf("ids: release of unallocated id %d (high water %d)", id, a.next))
	}
	a.free = append(a.free, id)
}

// HighWater returns the lowest ID never handed out. Record stores size
// their files from this.
func (a *Allocator) HighWater() ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// FreeCount returns the number of recycled IDs currently available.
func (a *Allocator) FreeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// SetHighWater forces the high-water mark, used when rebuilding allocator
// state from a scanned store file. It panics if the mark would shrink
// below an ID already handed out.
func (a *Allocator) SetHighWater(hw ID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hw < a.next {
		panic(fmt.Sprintf("ids: cannot shrink high water from %d to %d", a.next, hw))
	}
	a.next = hw
}

// idFileMagic guards .id files against being confused with store files.
var idFileMagic = [8]byte{'n', 'g', 'i', 'd', 0, 0, 0, 1}

// ErrBadIDFile is returned when loading a corrupt or foreign .id file.
var ErrBadIDFile = errors.New("ids: bad id file")

// Save writes the allocator state to path atomically (write temp + rename).
func (a *Allocator) Save(path string) error {
	a.mu.Lock()
	buf := make([]byte, 0, 24+8*len(a.free))
	buf = append(buf, idFileMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, a.next)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(a.free)))
	for _, id := range a.free {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	a.mu.Unlock()

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("ids: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ids: save %s: %w", path, err)
	}
	return nil
}

// Load reads allocator state previously written by Save. A missing file is
// not an error: it yields a fresh allocator (first open of a store).
func Load(path string) (*Allocator, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewAllocator(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("ids: load %s: %w", path, err)
	}
	if len(buf) < 24 || string(buf[:8]) != string(idFileMagic[:]) {
		return nil, fmt.Errorf("%w: %s", ErrBadIDFile, path)
	}
	a := NewAllocator()
	a.next = binary.LittleEndian.Uint64(buf[8:])
	n := binary.LittleEndian.Uint64(buf[16:])
	if uint64(len(buf)) != 24+8*n {
		return nil, fmt.Errorf("%w: %s: truncated free list", ErrBadIDFile, path)
	}
	a.free = make([]ID, 0, n)
	for i := uint64(0); i < n; i++ {
		id := binary.LittleEndian.Uint64(buf[24+8*i:])
		if id >= a.next {
			return nil, fmt.Errorf("%w: %s: free id %d beyond high water %d", ErrBadIDFile, path, id, a.next)
		}
		a.free = append(a.free, id)
	}
	return a, nil
}
