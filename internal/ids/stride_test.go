package ids

import "testing"

// A strided allocator must hand out only IDs of its congruence class —
// fresh IDs and recycled IDs alike — so partition ownership stays
// computable as id % stride.
func TestStrideNext(t *testing.T) {
	a := NewAllocator()
	a.SetStride(1, 4)
	for want := ID(1); want <= 13; want += 4 {
		if got := a.Next(); got != want {
			t.Fatalf("Next() = %d, want %d", got, want)
		}
	}
	// Recycled IDs come back before the high water extends.
	a.Release(5)
	if got := a.Next(); got != 5 {
		t.Fatalf("Next() after Release(5) = %d, want 5", got)
	}
	if got := a.Next(); got != 17 {
		t.Fatalf("Next() = %d, want 17", got)
	}
}

// SetStride on a rebuilt allocator (scan released every hole, including
// peers' IDs) must drop foreign-class free entries.
func TestStrideFiltersForeignFreeIDs(t *testing.T) {
	a := NewAllocator()
	a.SetHighWater(8)
	for id := ID(0); id < 8; id++ {
		a.Release(id)
	}
	a.SetStride(2, 4)
	if n := a.FreeCount(); n != 2 {
		t.Fatalf("FreeCount after SetStride = %d, want 2 (ids 2 and 6)", n)
	}
	seen := map[ID]bool{a.Next(): true, a.Next(): true}
	if !seen[2] || !seen[6] {
		t.Fatalf("recycled ids = %v, want {2, 6}", seen)
	}
	// Fresh path resumes past the old high water, still congruent.
	if got := a.Next(); got != 10 {
		t.Fatalf("fresh Next() = %d, want 10", got)
	}
}

// Offset zero and stride zero (dense) both behave.
func TestStrideZeroAndDense(t *testing.T) {
	a := NewAllocator()
	a.SetStride(0, 2)
	if got := a.Next(); got != 0 {
		t.Fatalf("Next() = %d, want 0", got)
	}
	if got := a.Next(); got != 2 {
		t.Fatalf("Next() = %d, want 2", got)
	}
	a.SetStride(0, 0) // back to dense
	if got := a.Next(); got != 4 {
		t.Fatalf("dense Next() = %d, want 4", got)
	}
}
