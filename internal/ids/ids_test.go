package ids

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNextMonotonic(t *testing.T) {
	a := NewAllocator()
	for want := ID(0); want < 100; want++ {
		if got := a.Next(); got != want {
			t.Fatalf("Next() = %d, want %d", got, want)
		}
	}
	if a.HighWater() != 100 {
		t.Fatalf("HighWater() = %d, want 100", a.HighWater())
	}
}

func TestReleaseReuse(t *testing.T) {
	a := NewAllocator()
	for i := 0; i < 10; i++ {
		a.Next()
	}
	a.Release(3)
	a.Release(7)
	if a.FreeCount() != 2 {
		t.Fatalf("FreeCount() = %d, want 2", a.FreeCount())
	}
	got := map[ID]bool{a.Next(): true, a.Next(): true}
	if !got[3] || !got[7] {
		t.Fatalf("recycled IDs = %v, want {3,7}", got)
	}
	if next := a.Next(); next != 10 {
		t.Fatalf("after recycling, Next() = %d, want 10", next)
	}
}

func TestReleasePanics(t *testing.T) {
	a := NewAllocator()
	a.Next()
	for _, bad := range []ID{5, NoID} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Release(%d) should panic", bad)
				}
			}()
			a.Release(bad)
		}()
	}
}

func TestSetHighWater(t *testing.T) {
	a := NewAllocator()
	a.SetHighWater(50)
	if got := a.Next(); got != 50 {
		t.Fatalf("Next() after SetHighWater(50) = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shrinking SetHighWater should panic")
			}
		}()
		a.SetHighWater(10)
	}()
}

func TestConcurrentAllocationUnique(t *testing.T) {
	a := NewAllocator()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				results[g] = append(results[g], a.Next())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[ID]bool, goroutines*perG)
	for _, rs := range results {
		for _, id := range rs {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique ids, want %d", len(seen), goroutines*perG)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.id")

	a := NewAllocator()
	for i := 0; i < 20; i++ {
		a.Next()
	}
	a.Release(4)
	a.Release(11)
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}

	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.HighWater() != 20 || b.FreeCount() != 2 {
		t.Fatalf("loaded hw=%d free=%d, want 20/2", b.HighWater(), b.FreeCount())
	}
	got := map[ID]bool{b.Next(): true, b.Next(): true}
	if !got[4] || !got[11] {
		t.Fatalf("loaded free list = %v, want {4,11}", got)
	}
}

func TestLoadMissingFileFresh(t *testing.T) {
	a, err := Load(filepath.Join(t.TempDir(), "absent.id"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Next() != 0 {
		t.Fatal("missing file should give fresh allocator")
	}
}

func TestLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"short.id":    {1, 2, 3},
		"badmagic.id": append([]byte("XXXXXXXX"), make([]byte, 16)...),
		"truncfree.id": func() []byte {
			b := append([]byte{}, idFileMagic[:]...)
			b = append(b, make([]byte, 8)...) // next = 0
			b = append(b, 5, 0, 0, 0, 0, 0, 0, 0)
			return b // claims 5 free ids, none present
		}(),
		"freebeyond.id": func() []byte {
			b := append([]byte{}, idFileMagic[:]...)
			b = append(b, 1, 0, 0, 0, 0, 0, 0, 0) // next = 1
			b = append(b, 1, 0, 0, 0, 0, 0, 0, 0) // one free id
			b = append(b, 9, 0, 0, 0, 0, 0, 0, 0) // free id 9 >= next
			return b
		}(),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
