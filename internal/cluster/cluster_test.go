package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"net"

	"neograph"
	"neograph/client"
	"neograph/internal/cluster"
	"neograph/internal/faultfs"
	"neograph/internal/server"
)

// These tests run the whole self-driving stack end to end: real DBs,
// real servers, real controllers, over loopback TCP. The scenarios are
// the ISSUE's acceptance matrix — auto-failover with zero acknowledged
// loss, primary kills at recorded WAL crash points, no false failover on
// replica death, and a node that slept through consecutive promotions
// being fenced and then re-seeding itself back into the fleet.

// reserveAddr grabs a free localhost port and releases it, so a node
// keeps a stable address across kill/restart cycles.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type tnode struct {
	id       uint64
	dir      string
	addr     string // client-protocol address, stable across restarts
	replAddr string // WAL-shipping address if/when this node is primary

	db   *neograph.DB
	srv  *server.Server
	ctrl *cluster.Controller
	dead bool
}

type tcluster struct {
	t     *testing.T
	sync  int
	nodes []*tnode
}

// startCluster boots n nodes — node index 0 as the initial primary, the
// rest as its replicas — each with a server and a fast-tuned controller.
// primaryFS optionally routes the primary's file I/O through a fault
// injector for the crash matrix.
func startCluster(t *testing.T, n, syncReplicas int, primaryFS faultfs.FS) *tcluster {
	t.Helper()
	c := &tcluster{t: t, sync: syncReplicas}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &tnode{
			id:       uint64(i + 1),
			dir:      t.TempDir(),
			addr:     reserveAddr(t),
			replAddr: reserveAddr(t),
		})
	}
	for i, nd := range c.nodes {
		opts := neograph.Options{
			Dir:                nd.dir,
			WALSegmentSize:     4096,
			SyncReplicas:       syncReplicas,
			SyncReplicaTimeout: -1, // never degrade: acked means replicated
		}
		if i == 0 {
			opts.ReplicationAddr = nd.replAddr
			opts.FS = primaryFS
		} else {
			opts.ReplicaOf = c.nodes[0].replAddr
		}
		c.boot(nd, opts)
	}
	return c
}

// boot opens the DB, serves it, and starts its controller. Used both at
// cluster start and when restarting a killed node.
func (c *tcluster) boot(nd *tnode, opts neograph.Options) {
	t := c.t
	t.Helper()
	db, err := neograph.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, nd.addr)
	if err != nil {
		db.Close()
		t.Fatalf("listen %s: %v", nd.addr, err)
	}
	var peers []string
	for _, p := range c.nodes {
		if p != nd {
			peers = append(peers, p.addr)
		}
	}
	ctrl, err := cluster.New(db, cluster.Options{
		NodeID:          nd.id,
		SelfAddr:        nd.addr,
		SelfReplAddr:    nd.replAddr,
		Peers:           peers,
		SuspectAfter:    150 * time.Millisecond,
		ElectionTimeout: 800 * time.Millisecond,
		ProbeEvery:      40 * time.Millisecond,
		ProbeTimeout:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetClusterInfo(func() any { return ctrl.NodeStatus() })
	ctrl.Start()
	nd.db, nd.srv, nd.ctrl, nd.dead = db, srv, ctrl, false
	t.Cleanup(func() { c.kill(nd) })
}

// kill simulates a hard node death: controller gone, listener gone,
// engine crashed without flushing. Idempotent.
func (c *tcluster) kill(nd *tnode) {
	if nd.dead {
		return
	}
	nd.dead = true
	nd.ctrl.Stop()
	nd.srv.Close()
	nd.db.Crash()
}

// restart reopens a killed node from its surviving directory as a
// replica of replicaOf (possibly a dead address — the controller's job
// is to find the real primary), with a fresh server and controller.
func (c *tcluster) restart(nd *tnode, replicaOf string) {
	c.t.Helper()
	if !nd.dead {
		c.t.Fatal("restart of a live node")
	}
	c.boot(nd, neograph.Options{
		Dir:                nd.dir,
		WALSegmentSize:     4096,
		ReplicaOf:          replicaOf,
		SyncReplicas:       c.sync,
		SyncReplicaTimeout: -1,
	})
}

// waitPrimary polls until exactly one live node reports the primary
// role and returns it. Two simultaneous primaries fail immediately —
// that is the split-brain the epoch fencing must prevent.
func (c *tcluster) waitPrimary(timeout time.Duration) *tnode {
	t := c.t
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var prim *tnode
		n := 0
		for _, nd := range c.nodes {
			if nd.dead {
				continue
			}
			if st := nd.db.ReplStatus(); st.Role == "primary" {
				prim, n = nd, n+1
			}
		}
		if n > 1 {
			t.Fatalf("%d simultaneous primaries", n)
		}
		if n == 1 {
			return prim
		}
		if time.Now().After(deadline) {
			t.Fatal("no node promoted itself")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitFollowing polls until nd streams from replAddr with a live
// connection.
func (c *tcluster) waitFollowing(nd *tnode, replAddr string, timeout time.Duration) {
	t := c.t
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := nd.db.ReplStatus()
		if st.Role == "replica" && st.PrimaryAddr == replAddr && st.Connected {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never followed %s; status %+v", nd.id, replAddr, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// settle waits for every live replica to stream from the given primary.
func (c *tcluster) settle(prim *tnode, timeout time.Duration) {
	c.t.Helper()
	for _, nd := range c.nodes {
		if nd.dead || nd == prim {
			continue
		}
		c.waitFollowing(nd, prim.replAddr, timeout)
	}
}

// writeAcked commits n labelled nodes through addr one at a time,
// returning how many were acknowledged and the first error.
func writeAcked(t *testing.T, addr, label string, n, base int) (int, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := client.Dial(ctx, addr)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	for i := 0; i < n; i++ {
		if _, err := cl.CreateNode(ctx, []string{label},
			neograph.Props{"i": neograph.Int(int64(base + i))}); err != nil {
			return i, err
		}
	}
	return n, nil
}

// countVia counts label through a node's server (so replicas answer at
// their applied position, exactly what a client would see).
func countVia(t *testing.T, addr, label string) int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	ids, err := cl.NodesByLabel(ctx, label)
	if err != nil {
		t.Fatalf("count %s on %s: %v", label, addr, err)
	}
	return len(ids)
}

// waitCount polls until addr serves exactly want label-nodes.
func waitCount(t *testing.T, addr, label string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if got := countVia(t, addr, label); got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%s serves %d %s nodes, want %d", addr, got, label, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAutoFailover is the headline scenario: the primary dies hard and,
// with no operator in the loop, the fleet detects it, elects the
// most-advanced replica, promotes it, re-points the survivor, and loses
// no acknowledged commit.
func TestAutoFailover(t *testing.T) {
	c := startCluster(t, 3, 1, nil)
	c.settle(c.nodes[0], 10*time.Second)

	const acked = 20
	if n, err := writeAcked(t, c.nodes[0].addr, "Acked", acked, 0); err != nil {
		t.Fatalf("write %d: %v", n, err)
	}

	c.kill(c.nodes[0])
	w := c.waitPrimary(10 * time.Second)
	if w == c.nodes[0] {
		t.Fatal("dead node counted as primary")
	}
	if ep, _ := w.db.Epoch(); ep != 2 {
		t.Fatalf("winner epoch = %d, want 2", ep)
	}

	// The loser re-targets at the winner automatically.
	var surv *tnode
	for _, nd := range c.nodes[1:] {
		if nd != w {
			surv = nd
		}
	}
	c.waitFollowing(surv, w.replAddr, 10*time.Second)

	// Zero acknowledged-commit loss, and the fleet is writable again.
	if got := countVia(t, w.addr, "Acked"); got != acked {
		t.Fatalf("winner has %d acked nodes, want %d", got, acked)
	}
	if _, err := writeAcked(t, w.addr, "Acked", 1, acked); err != nil {
		t.Fatalf("write after auto-failover: %v", err)
	}
	waitCount(t, surv.addr, "Acked", acked+1, 10*time.Second)
	if ep, _ := surv.db.Epoch(); ep != 2 {
		t.Fatalf("survivor epoch = %d, want 2", ep)
	}
}

// TestReplicaDeathNoFailover: losing a replica must not trigger an
// election — the primary keeps its role and epoch and keeps serving
// writes. One node's silence is not a cluster emergency.
func TestReplicaDeathNoFailover(t *testing.T) {
	c := startCluster(t, 3, 0, nil)
	c.settle(c.nodes[0], 10*time.Second)
	if _, err := writeAcked(t, c.nodes[0].addr, "Pre", 5, 0); err != nil {
		t.Fatal(err)
	}

	c.kill(c.nodes[2])
	// Several suspicion windows pass; nothing may change hands.
	time.Sleep(1 * time.Second)
	if st := c.nodes[0].db.ReplStatus(); st.Role != "primary" {
		t.Fatalf("primary role changed to %q after a replica died", st.Role)
	}
	if ep, _ := c.nodes[0].db.Epoch(); ep != 1 {
		t.Fatalf("epoch bumped to %d by a replica death", ep)
	}
	if st := c.nodes[1].db.ReplStatus(); st.Role != "replica" || !st.Connected {
		t.Fatalf("surviving replica disturbed: %+v", st)
	}
	if _, err := writeAcked(t, c.nodes[0].addr, "Pre", 5, 5); err != nil {
		t.Fatalf("write after replica death: %v", err)
	}
	waitCount(t, c.nodes[1].addr, "Pre", 10, 10*time.Second)
}

// TestClusterCrashMatrixPrimary kills the primary at recorded WAL crash
// points — mid-record-write and mid-fsync — while acknowledged writes
// are in flight, and asserts the fleet self-heals with zero acked loss
// and exactly one epoch-2 leader.
func TestClusterCrashMatrixPrimary(t *testing.T) {
	const workload = 12

	// Recording pass: which wal-side ops does the acked workload perform?
	rec := faultfs.NewInjector(faultfs.OS{}, nil)
	c := startCluster(t, 3, 1, rec)
	c.settle(c.nodes[0], 10*time.Second)
	base := rec.Counts()
	if n, err := writeAcked(t, c.nodes[0].addr, "Acked", workload, 0); err != nil {
		t.Fatalf("recording write %d: %v", n, err)
	}
	counts := rec.Counts()
	type pt struct {
		point string
		hits  int
	}
	var points []pt
	for _, p := range []string{"wal.write", "wal.sync"} {
		if d := counts[p] - base[p]; d > 0 {
			points = append(points, pt{p, d})
		} else {
			t.Fatalf("workload performed no %s ops: %v", p, counts)
		}
	}

	// Hits are sampled first/middle/last per point: the interesting
	// states are "nothing durable yet", "mid-stream", and "mid-final-op".
	for _, p := range points {
		hits := []int{1, (p.hits + 1) / 2, p.hits}
		seen := map[int]bool{}
		for _, hit := range hits {
			if seen[hit] {
				continue
			}
			seen[hit] = true
			fault := faultfs.Fault{Point: p.point, Hit: hit, Mode: faultfs.ModeCrash}
			t.Run(fmt.Sprintf("%s-%d", p.point, hit), func(t *testing.T) {
				t.Parallel()
				runPrimaryKillCase(t, fault, workload)
			})
		}
	}
}

func runPrimaryKillCase(t *testing.T, fault faultfs.Fault, workload int) {
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	c := startCluster(t, 3, 1, inj)
	c.settle(c.nodes[0], 10*time.Second)

	inj.Arm(fault)
	acked, werr := writeAcked(t, c.nodes[0].addr, "Acked", workload, 0)
	if werr == nil {
		if inj.Fired() {
			t.Fatal("every write acknowledged after an injected crash")
		}
		return // fault drifted past the workload's ops: vacuous pass
	}

	// The engine is storage-dead; a real process would exit. Kill it so
	// the fleet sees a dead node, not a zombie answering probes.
	c.kill(c.nodes[0])
	w := c.waitPrimary(10 * time.Second)
	var surv *tnode
	for _, nd := range c.nodes[1:] {
		if nd != w {
			surv = nd
		}
	}
	c.waitFollowing(surv, w.replAddr, 10*time.Second)

	// Every acknowledged commit survived the failover. (The write that
	// crashed may or may not have replicated before dying — both are
	// correct — so the surviving count is bounded below by the acks.)
	got := countVia(t, w.addr, "Acked")
	if got < acked {
		t.Fatalf("acknowledged-commit loss: %d acked, %d survived", acked, got)
	}
	if ep, _ := w.db.Epoch(); ep != 2 {
		t.Fatalf("winner epoch = %d, want 2", ep)
	}

	// The healed fleet accepts and replicates new writes.
	if _, err := writeAcked(t, w.addr, "Acked", 3, got); err != nil {
		t.Fatalf("write after crash failover: %v", err)
	}
	waitCount(t, surv.addr, "Acked", got+3, 10*time.Second)
}

// TestFencedAfterMissedPromotionsAutoReseeds is the satellite extending
// TestDoublePromotionFencesOldTimeline to the automatic path: the
// original primary sleeps through TWO elections (epoch 1 → 2 → 3),
// restarts pointing at its own long-dead address, and the controller —
// not an operator — must discover the real primary, hit the fork-point
// fence, and re-seed the node back to full convergence.
func TestFencedAfterMissedPromotionsAutoReseeds(t *testing.T) {
	c := startCluster(t, 4, 1, nil)
	c.settle(c.nodes[0], 10*time.Second)
	total := 0
	write := func(addr string, n int) {
		t.Helper()
		if _, err := writeAcked(t, addr, "Acked", n, total); err != nil {
			t.Fatalf("write at %d: %v", total, err)
		}
		total += n
	}
	write(c.nodes[0].addr, 8)

	// First missed promotion: epoch 2.
	c.kill(c.nodes[0])
	w1 := c.waitPrimary(10 * time.Second)
	c.settle(w1, 10*time.Second)
	write(w1.addr, 8)

	// Second missed promotion: epoch 3.
	c.kill(w1)
	w2 := c.waitPrimary(10 * time.Second)
	c.settle(w2, 10*time.Second)
	if ep, _ := w2.db.Epoch(); ep != 3 {
		t.Fatalf("second winner epoch = %d, want 3", ep)
	}
	write(w2.addr, 8)

	// The original primary wakes up with an epoch-1 log extending past
	// both fork points, pointed at its own dead address. Left alone, the
	// controller must re-target it to w2, get fenced, and re-seed.
	c.restart(c.nodes[0], c.nodes[0].replAddr)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := c.nodes[0].db.ReplStatus()
		ep, _ := c.nodes[0].db.Epoch()
		if st.Role == "replica" && st.Connected && ep == 3 &&
			countVia(t, c.nodes[0].addr, "Acked") == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fenced node never re-seeded: status %+v epoch %d count %d",
				st, ep, countVia(t, c.nodes[0].addr, "Acked"))
		}
		time.Sleep(25 * time.Millisecond)
	}
	// And it is a first-class replica again: it follows new writes.
	write(w2.addr, 4)
	waitCount(t, c.nodes[0].addr, "Acked", total, 10*time.Second)
}
