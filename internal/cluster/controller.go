// Package cluster turns a fleet of neograph nodes into a self-driving
// cluster: each node runs a Controller beside its DB that detects a
// failed primary, elects a replacement deterministically, re-points the
// survivors, and re-seeds nodes whose logs can no longer resume the
// stream.
//
// The control loop is deliberately simple — a single goroutine ticking
// at a jittered ProbeEvery — and leans on the replication layer for all
// safety: epochs fence stale timelines, the fork-point history rejects
// diverged logs, and sync replication bounds acknowledged-commit loss.
// The controller only decides WHEN to call Promote / Retarget /
// ReseedFrom; it never relaxes what those calls enforce.
//
// Failure detection is two-stage. A replica first notices its own WAL
// stream is down (suspicion starts when the applier reports
// disconnected, confirmed after SuspectAfter of continuous outage);
// it then polls the rest of the fleet and proceeds to an election only
// when a quorum of the primary's replicas agree the primary is gone —
// one replica's broken link must not trigger a failover while everyone
// else is streaming fine.
//
// Elections are deterministic, not randomized: among the confirming
// replicas the one with the highest epoch wins, ties broken by the
// highest durable LSN, then the lowest node ID. Every voter computes
// the same winner from the same statuses, so no coordination round is
// needed; losers simply wait for the winner's promotion to show up
// (with a fresh epoch) and re-target, re-running the election only if
// nothing appears within ElectionTimeout.
//
// A node that cannot rejoin the stream — it missed promotions past the
// primary's WAL horizon, or its log diverged across a fork point — sees
// ReseedRequired from its applier and rebuilds itself automatically
// from the current primary's snapshot stream (DB.ReseedFrom). An old
// primary that wakes up to find a rival with a higher epoch (or an
// equal epoch and a lower node ID, the same total order elections use)
// demotes itself the same way.
package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/metrics"
	"neograph/internal/slog"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// Options configures a node's cluster controller.
type Options struct {
	// NodeID uniquely identifies this node in the fleet and breaks
	// election ties (lower wins). Required, non-zero.
	NodeID uint64
	// SelfAddr is this node's client-protocol address as peers should
	// dial it (announced in cluster_status membership).
	SelfAddr string
	// SelfReplAddr is the replication address this node will serve WAL
	// shipping on if promoted, and announces to peers so they can
	// re-target or re-seed from it.
	SelfReplAddr string
	// Peers lists the OTHER cluster members' client-protocol addresses
	// (the full fleet minus this node). The primary must be included:
	// probing it is how a replica distinguishes "primary died" from "my
	// link died".
	Peers []string
	// SuspectAfter is how long the local WAL stream must be continuously
	// down before this replica suspects the primary (default 2s).
	SuspectAfter time.Duration
	// ElectionTimeout is how long an election loser waits for the
	// winner's promotion to become visible before re-running the
	// election (default 5s).
	ElectionTimeout time.Duration
	// ProbeEvery is the control-loop tick interval; each tick is
	// jittered over [ProbeEvery/2, ProbeEvery] so a fleet started
	// together doesn't probe in lockstep (default 500ms).
	ProbeEvery time.Duration
	// ProbeTimeout bounds each peer status probe (default 1s).
	ProbeTimeout time.Duration

	// Metrics, Tracer, and Logger are optional observability sinks.
	Metrics *metrics.Registry
	Tracer  *trace.Tracer
	Logger  *slog.Logger

	// PartitionID is the hash partition this node's replication group
	// serves (partitioned deployments only; the controller's election
	// and failover logic is per-group and unaffected).
	PartitionID uint32
	// Partitions is the partition topology announced in cluster_status
	// so clients learn the whole fleet from any one node. Nil on
	// unpartitioned deployments.
	Partitions *wire.PartitionMap
}

// Controller drives one node's share of the cluster control loop.
type Controller struct {
	db     *neograph.DB
	opts   Options
	log    *slog.Logger
	tracer *trace.Tracer

	elections *metrics.Counter
	failovers *metrics.Counter
	retargets *metrics.Counter
	reseeds   *metrics.Counter
	demotions *metrics.Counter
	detection *metrics.Histogram

	mu               sync.Mutex
	suspectSince     time.Time
	electionDeadline time.Time
	reseeding        bool
	peerInfo         map[string]wire.ClusterInfo // last successful probe per peer

	cliMu   sync.Mutex
	clients map[string]*client.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New creates (but does not start) a controller for db.
func New(db *neograph.DB, opts Options) (*Controller, error) {
	if db == nil {
		return nil, errors.New("cluster: nil DB")
	}
	if opts.NodeID == 0 {
		return nil, errors.New("cluster: NodeID is required and must be non-zero")
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 2 * time.Second
	}
	if opts.ElectionTimeout <= 0 {
		opts.ElectionTimeout = 5 * time.Second
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 500 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	c := &Controller{
		db:       db,
		opts:     opts,
		log:      opts.Logger.With("component", "cluster", "node", opts.NodeID),
		tracer:   opts.Tracer,
		peerInfo: make(map[string]wire.ClusterInfo),
		clients:  make(map[string]*client.Client),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.elections = &metrics.Counter{}
	c.failovers = &metrics.Counter{}
	c.retargets = &metrics.Counter{}
	c.reseeds = &metrics.Counter{}
	c.demotions = &metrics.Counter{}
	c.detection = metrics.NewHistogram(metrics.ExpBuckets(1e-3, 2, 18))
	if reg := opts.Metrics; reg != nil {
		c.elections = reg.Counter("neograph_cluster_elections_total",
			"elections this node ran (as a voter or candidate)")
		c.failovers = reg.Counter("neograph_cluster_failovers_total",
			"successful self-promotions after winning an election")
		c.retargets = reg.Counter("neograph_cluster_retargets_total",
			"times this replica re-pointed its WAL stream at a new primary")
		c.reseeds = reg.Counter("neograph_cluster_reseeds_total",
			"snapshot re-seeds this node performed on itself")
		c.demotions = reg.Counter("neograph_cluster_demotions_total",
			"times this node self-demoted after finding a fencing rival primary")
		reg.AttachHistogram("neograph_cluster_detection_seconds",
			"suspicion start to successful promotion", c.detection)
	}
	return c, nil
}

// Start launches the control loop.
func (c *Controller) Start() {
	go c.loop()
}

// Stop terminates the control loop and closes cached peer connections.
// A Promote/ReseedFrom already in flight finishes first.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
	c.cliMu.Lock()
	for addr, cl := range c.clients {
		cl.Close()
		delete(c.clients, addr)
	}
	c.cliMu.Unlock()
}

func (c *Controller) loop() {
	defer close(c.done)
	for {
		d := c.opts.ProbeEvery/2 + time.Duration(rand.Int63n(int64(c.opts.ProbeEvery/2)+1))
		select {
		case <-c.stop:
			return
		case <-time.After(d):
		}
		c.tick()
	}
}

func (c *Controller) tick() {
	st := c.db.ReplStatus()
	switch st.Role {
	case "replica":
		c.replicaTick(st)
	case "primary":
		c.mu.Lock()
		c.suspectSince = time.Time{}
		c.electionDeadline = time.Time{}
		c.mu.Unlock()
		c.primaryTick(st)
	}
}

// --- replica side: detection, election, retarget, re-seed -------------

func (c *Controller) replicaTick(st neograph.ReplStatus) {
	if st.ReseedRequired {
		c.reseed(st)
		return
	}
	if st.Connected {
		c.mu.Lock()
		c.suspectSince = time.Time{}
		c.electionDeadline = time.Time{}
		c.mu.Unlock()
		return
	}
	now := time.Now()
	c.mu.Lock()
	if c.suspectSince.IsZero() {
		c.suspectSince = now
	}
	since := c.suspectSince
	deadline := c.electionDeadline
	c.mu.Unlock()
	if now.Sub(since) < c.opts.SuspectAfter {
		return
	}

	infos := c.probePeers()
	// A live primary with an epoch at least ours ends the emergency: our
	// primary answered (the outage is our link, not its death), or a
	// newly promoted winner appeared — follow it.
	if p, ok := livePrimary(infos, st.Epoch); ok {
		if p.ReplAddr != "" && p.ReplAddr != st.PrimaryAddr {
			c.log.Info("new primary announced; re-targeting",
				"primary", p.ReplAddr, "epoch", p.Epoch)
			if err := c.db.Retarget(p.ReplAddr); err != nil {
				c.log.Warn("retarget failed", "err", err)
				return
			}
			c.retargets.Inc()
		}
		c.mu.Lock()
		c.suspectSince = time.Time{}
		c.electionDeadline = time.Time{}
		c.mu.Unlock()
		return
	}
	// Lost a recent election: give the winner ElectionTimeout to show up
	// as a primary before trying again.
	if !deadline.IsZero() && now.Before(deadline) {
		return
	}
	c.runElection(st, infos, since)
}

// livePrimary returns a probed peer acting as primary (or standalone)
// whose epoch is not stale relative to ours.
func livePrimary(infos map[string]wire.ClusterInfo, epoch uint64) (wire.ClusterInfo, bool) {
	best, ok := wire.ClusterInfo{}, false
	for _, ci := range infos {
		if (ci.Role == "primary" || ci.Role == "standalone") && ci.Epoch >= epoch {
			if !ok || ci.Epoch > best.Epoch {
				best, ok = ci, true
			}
		}
	}
	return best, ok
}

// candidate orders election contenders: most-advanced epoch first, then
// the longest durable log, then the lowest node ID. Every voter ranks
// the same statuses, so every voter computes the same winner.
type candidate struct {
	epoch    uint64
	durable  uint64
	nodeID   uint64
	replAddr string
}

func (a candidate) beats(b candidate) bool {
	if a.epoch != b.epoch {
		return a.epoch > b.epoch
	}
	if a.durable != b.durable {
		return a.durable > b.durable
	}
	return a.nodeID < b.nodeID
}

func (c *Controller) runElection(st neograph.ReplStatus, infos map[string]wire.ClusterInfo, since time.Time) {
	c.elections.Inc()
	sp := c.tracer.StartRoot("cluster.election")
	defer sp.Finish()
	sp.Set("node", itoa(c.opts.NodeID))
	sp.Set("epoch", itoa(st.Epoch))

	// Quorum is a majority of the primary's replicas — the fleet minus
	// the node we believe dead. (For a two-node cluster that is 1, i.e.
	// the lone replica may promote alone; larger fleets need agreement.)
	members := len(c.opts.Peers) + 1
	quorum := (members-1)/2 + 1
	confirms := 1 // our own applier's view
	// Only a node that announces a replication address can stand: a
	// winner with nothing to ship on would strand the losers waiting to
	// re-target at "". Such nodes still vote — they confirm the outage.
	var cands []candidate
	if c.opts.SelfReplAddr != "" {
		cands = append(cands, candidate{st.Epoch, st.DurableLSN, c.opts.NodeID, c.opts.SelfReplAddr})
	}
	for _, ci := range infos {
		if ci.Role != "replica" || ci.PrimaryReplAddr != st.PrimaryAddr || ci.Connected {
			continue // following someone else, or its stream is fine
		}
		confirms++
		if ci.NodeID != 0 && ci.ReplAddr != "" {
			cands = append(cands, candidate{ci.Epoch, ci.DurableLSN, ci.NodeID, ci.ReplAddr})
		}
	}
	if confirms < quorum {
		c.log.Info("primary suspected but no quorum; waiting",
			"confirms", confirms, "quorum", quorum)
		sp.Set("outcome", "no-quorum")
		return
	}
	if len(cands) == 0 {
		c.log.Warn("quorum confirms the outage but no confirming node has a replication address; cannot elect")
		sp.Set("outcome", "no-candidate")
		return
	}
	best := cands[0]
	for _, x := range cands[1:] {
		if x.beats(best) {
			best = x
		}
	}
	if best.nodeID != c.opts.NodeID {
		c.log.Info("election lost; waiting for winner to promote",
			"winner", best.nodeID, "winner_repl", best.replAddr)
		sp.Set("outcome", "lost")
		sp.Set("winner", itoa(best.nodeID))
		c.mu.Lock()
		c.electionDeadline = time.Now().Add(c.opts.ElectionTimeout)
		c.mu.Unlock()
		return
	}
	// Won. Re-verify the outage right before the irreversible step — the
	// stream may have come back while we were polling peers.
	if c.db.ReplStatus().Connected {
		c.log.Info("stream recovered during election; aborting promotion")
		sp.Set("outcome", "recovered")
		c.mu.Lock()
		c.suspectSince = time.Time{}
		c.mu.Unlock()
		return
	}
	c.log.Warn("election won; promoting",
		"confirms", confirms, "quorum", quorum, "durable", st.DurableLSN)
	if err := c.db.Promote(c.opts.SelfReplAddr); err != nil {
		c.log.Warn("promotion failed", "err", err)
		sp.Set("outcome", "promote-failed")
		return
	}
	c.failovers.Inc()
	c.detection.Observe(time.Since(since).Seconds())
	sp.Set("outcome", "promoted")
	c.mu.Lock()
	c.suspectSince = time.Time{}
	c.electionDeadline = time.Time{}
	c.mu.Unlock()
}

// reseed rebuilds this node from the current primary's snapshot stream.
// The applier has already proven the local log can never resume (fenced
// past a fork point, behind the WAL horizon, or a conflicting epoch
// history), so the only way back into the fleet is a fresh copy.
func (c *Controller) reseed(st neograph.ReplStatus) {
	src := ""
	for _, ci := range c.probePeers() {
		if (ci.Role == "primary" || ci.Role == "standalone") && ci.ReplAddr != "" && ci.Epoch >= st.Epoch {
			src = ci.ReplAddr
			break
		}
	}
	if src == "" {
		// No announced primary: fall back to the address we were
		// streaming from — the refusal proves something answers there.
		src = st.PrimaryAddr
	}
	if src == "" {
		c.log.Warn("re-seed required but no primary known; waiting")
		return
	}
	c.mu.Lock()
	c.reseeding = true
	c.mu.Unlock()
	sp := c.tracer.StartRoot("cluster.reseed")
	sp.Set("source", src)
	c.log.Warn("log cannot resume the stream; re-seeding from snapshot",
		"source", src, "last_error", st.LastError)
	err := c.db.ReseedFrom(src)
	sp.Finish()
	c.mu.Lock()
	c.reseeding = false
	c.suspectSince = time.Time{}
	c.electionDeadline = time.Time{}
	c.mu.Unlock()
	if err != nil {
		c.log.Warn("re-seed failed", "err", err)
		return
	}
	c.reseeds.Inc()
	c.log.Info("re-seed complete; streaming resumed", "source", src)
}

// --- primary side: rival fencing --------------------------------------

// primaryTick checks for a rival primary that outranks us — a higher
// epoch, or the same epoch held by a lower node ID (the election's own
// tie-break, so both sides of a symmetric split pick the same survivor).
// Losing the comparison means our timeline is (or is about to be)
// fenced: demote by re-seeding from the winner.
func (c *Controller) primaryTick(st neograph.ReplStatus) {
	for _, ci := range c.probePeers() {
		if ci.Role != "primary" && ci.Role != "standalone" {
			continue
		}
		outranked := ci.Epoch > st.Epoch ||
			(ci.Epoch == st.Epoch && ci.NodeID != 0 && ci.NodeID < c.opts.NodeID)
		if !outranked || ci.ReplAddr == "" {
			continue
		}
		c.demotions.Inc()
		c.log.Warn("rival primary outranks this node; demoting via re-seed",
			"rival", ci.NodeID, "rival_epoch", ci.Epoch, "epoch", st.Epoch)
		sp := c.tracer.StartRoot("cluster.demote")
		sp.Set("rival", itoa(ci.NodeID))
		err := c.db.ReseedFrom(ci.ReplAddr)
		sp.Finish()
		if err != nil {
			c.log.Warn("demotion re-seed failed", "err", err)
		}
		return
	}
}

// --- fleet probing -----------------------------------------------------

// probePeers polls every peer's cluster_status (falling back to
// repl_status for nodes without a controller) concurrently and returns
// the successful answers keyed by peer address.
func (c *Controller) probePeers() map[string]wire.ClusterInfo {
	type res struct {
		addr string
		ci   wire.ClusterInfo
		err  error
	}
	ch := make(chan res, len(c.opts.Peers))
	for _, addr := range c.opts.Peers {
		go func(addr string) {
			ci, err := c.probePeer(addr)
			ch <- res{addr, ci, err}
		}(addr)
	}
	out := make(map[string]wire.ClusterInfo, len(c.opts.Peers))
	for range c.opts.Peers {
		r := <-ch
		if r.err != nil {
			continue
		}
		out[r.addr] = r.ci
		c.mu.Lock()
		c.peerInfo[r.addr] = r.ci
		c.mu.Unlock()
	}
	return out
}

func (c *Controller) probePeer(addr string) (wire.ClusterInfo, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	cl, err := c.peerClient(ctx, addr)
	if err != nil {
		return wire.ClusterInfo{}, err
	}
	ci, err := cl.ClusterStatus(ctx)
	if err == nil {
		return ci, nil
	}
	if cl.Broken() {
		c.dropClient(addr, cl)
		return wire.ClusterInfo{}, err
	}
	// The node answered but has no controller: synthesize the fields an
	// election needs from its replication status.
	st, rerr := cl.ReplStatus(ctx)
	if rerr != nil {
		c.dropClient(addr, cl)
		return wire.ClusterInfo{}, rerr
	}
	ci = wire.ClusterInfo{
		Addr:       addr,
		Role:       st.Role,
		Epoch:      st.Epoch,
		DurableLSN: st.DurableLSN,
		AppliedLSN: st.AppliedLSN,
		Connected:  st.Connected,
	}
	if st.Role == "replica" {
		ci.PrimaryReplAddr = st.PrimaryAddr
	} else {
		ci.ReplAddr = st.ReplicationAddr
	}
	return ci, nil
}

func (c *Controller) peerClient(ctx context.Context, addr string) (*client.Client, error) {
	c.cliMu.Lock()
	cl := c.clients[addr]
	c.cliMu.Unlock()
	if cl != nil {
		return cl, nil
	}
	cl, err := client.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c.cliMu.Lock()
	c.clients[addr] = cl
	c.cliMu.Unlock()
	return cl, nil
}

func (c *Controller) dropClient(addr string, cl *client.Client) {
	cl.Close()
	c.cliMu.Lock()
	if c.clients[addr] == cl {
		delete(c.clients, addr)
	}
	c.cliMu.Unlock()
}

// --- status ------------------------------------------------------------

// NodeStatus is this node's cluster self-view, served to clients via
// the cluster_status op (Server.SetClusterInfo). Members always lists
// the full configured fleet; peer replication addresses and node IDs
// fill in as probes learn them.
func (c *Controller) NodeStatus() wire.ClusterInfo {
	st := c.db.ReplStatus()
	c.mu.Lock()
	reseeding := c.reseeding
	members := make([]wire.ClusterMember, 0, len(c.opts.Peers)+1)
	members = append(members, wire.ClusterMember{
		Addr: c.opts.SelfAddr, ReplAddr: c.opts.SelfReplAddr, NodeID: c.opts.NodeID,
		PartitionID: c.opts.PartitionID,
	})
	for _, addr := range c.opts.Peers {
		// Peers are this node's own replication group, so they serve the
		// same partition (probes confirm).
		m := wire.ClusterMember{Addr: addr, PartitionID: c.opts.PartitionID}
		if ci, ok := c.peerInfo[addr]; ok {
			if ci.ReplAddr != "" {
				m.ReplAddr = ci.ReplAddr
			}
			m.NodeID = ci.NodeID
			m.PartitionID = ci.PartitionID
		}
		members = append(members, m)
	}
	c.mu.Unlock()

	info := wire.ClusterInfo{
		NodeID:     c.opts.NodeID,
		Addr:       c.opts.SelfAddr,
		ReplAddr:   c.opts.SelfReplAddr,
		Role:       st.Role,
		Epoch:      st.Epoch,
		DurableLSN: st.DurableLSN,
		AppliedLSN: st.AppliedLSN,
		Connected:  st.Connected,
		Reseeding:  reseeding,
		Members:    members,
	}
	info.PartitionID = c.opts.PartitionID
	if c.opts.Partitions != nil {
		pm := *c.opts.Partitions
		info.Partitions = &pm
	}
	switch st.Role {
	case "replica":
		info.PrimaryReplAddr = st.PrimaryAddr
	case "primary":
		if st.ReplicationAddr != "" {
			info.ReplAddr = st.ReplicationAddr
		}
		info.PrimaryReplAddr = info.ReplAddr
	}
	return info
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
