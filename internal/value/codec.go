package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec for values and property maps.
//
// The encoding is length-prefixed and self-describing:
//
//	value   := kind:u8 payload
//	payload := ""                      (null)
//	         | b:u8                    (bool, 0 or 1)
//	         | i:varint                (int, zig-zag)
//	         | f:u64le                 (float bits)
//	         | len:uvarint bytes       (string | bytes)
//	         | n:uvarint value*n       (list)
//	map     := n:uvarint (klen:uvarint kbytes value)*n
//
// The codec is used by the property store, the WAL and the wire protocol;
// it must remain stable across versions of the library.

// Codec errors.
var (
	ErrCorrupt = errors.New("value: corrupt encoding")
)

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		dst = append(dst, byte(v.num))
	case KindInt:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindString, KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.list)))
		for _, e := range v.list {
			dst = AppendValue(dst, e)
		}
	}
	return dst
}

// EncodeValue returns the binary encoding of v.
func EncodeValue(v Value) []byte { return AppendValue(nil, v) }

// DecodeValue decodes a value from the front of buf, returning the value
// and the number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	k := Kind(buf[0])
	n := 1
	switch k {
	case KindNull:
		return Null, n, nil
	case KindBool:
		if len(buf) < 2 {
			return Null, 0, fmt.Errorf("%w: truncated bool", ErrCorrupt)
		}
		if buf[1] > 1 {
			return Null, 0, fmt.Errorf("%w: bool byte %d", ErrCorrupt, buf[1])
		}
		return Bool(buf[1] == 1), 2, nil
	case KindInt:
		i, m := binary.Varint(buf[n:])
		if m <= 0 {
			return Null, 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
		}
		return Int(i), n + m, nil
	case KindFloat:
		if len(buf) < n+8 {
			return Null, 0, fmt.Errorf("%w: truncated float", ErrCorrupt)
		}
		bits := binary.LittleEndian.Uint64(buf[n:])
		return Float(math.Float64frombits(bits)), n + 8, nil
	case KindString, KindBytes:
		l, m := binary.Uvarint(buf[n:])
		if m <= 0 {
			return Null, 0, fmt.Errorf("%w: bad length", ErrCorrupt)
		}
		n += m
		if uint64(len(buf)-n) < l {
			return Null, 0, fmt.Errorf("%w: truncated payload (want %d, have %d)", ErrCorrupt, l, len(buf)-n)
		}
		payload := string(buf[n : n+int(l)])
		n += int(l)
		if k == KindString {
			return String(payload), n, nil
		}
		return Value{kind: KindBytes, str: payload}, n, nil
	case KindList:
		cnt, m := binary.Uvarint(buf[n:])
		if m <= 0 {
			return Null, 0, fmt.Errorf("%w: bad list count", ErrCorrupt)
		}
		if cnt > uint64(len(buf)) {
			// Every element takes at least one byte; a count larger than the
			// remaining buffer is certainly corrupt and would otherwise let a
			// hostile input force a huge allocation.
			return Null, 0, fmt.Errorf("%w: list count %d exceeds buffer", ErrCorrupt, cnt)
		}
		n += m
		elems := make([]Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			e, m, err := DecodeValue(buf[n:])
			if err != nil {
				return Null, 0, err
			}
			elems = append(elems, e)
			n += m
		}
		return Value{kind: KindList, list: elems}, n, nil
	default:
		return Null, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, k)
	}
}

// AppendMap appends the binary encoding of property map m to dst. Keys are
// written in sorted order so the encoding is deterministic.
func AppendMap(dst []byte, m Map) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	for _, k := range m.Keys() {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = AppendValue(dst, m[k])
	}
	return dst
}

// EncodeMap returns the binary encoding of m.
func EncodeMap(m Map) []byte { return AppendMap(nil, m) }

// DecodeMap decodes a property map from the front of buf, returning the
// map and the number of bytes consumed.
func DecodeMap(buf []byte) (Map, int, error) {
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad map count", ErrCorrupt)
	}
	if cnt > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("%w: map count %d exceeds buffer", ErrCorrupt, cnt)
	}
	m := make(Map, cnt)
	for i := uint64(0); i < cnt; i++ {
		klen, kn := binary.Uvarint(buf[n:])
		if kn <= 0 {
			return nil, 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		n += kn
		if uint64(len(buf)-n) < klen {
			return nil, 0, fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		key := string(buf[n : n+int(klen)])
		n += int(klen)
		v, vn, err := DecodeValue(buf[n:])
		if err != nil {
			return nil, 0, err
		}
		n += vn
		m[key] = v
	}
	return m, n, nil
}
