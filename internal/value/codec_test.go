package value

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueCodecRoundTrip(t *testing.T) {
	cases := []Value{
		Null,
		Bool(true), Bool(false),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-2.5), Float(math.Inf(1)), Float(math.NaN()),
		String(""), String("hello, 世界"),
		Bytes(nil), Bytes([]byte{0, 1, 2, 255}),
		List(), List(Int(1), String("x"), List(Bool(true))),
	}
	for _, v := range cases {
		enc := EncodeValue(v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("decode(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if got.Compare(v) != 0 {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestValueCodecConcatenated(t *testing.T) {
	var buf []byte
	vals := []Value{Int(1), String("two"), Bool(true)}
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	for _, want := range vals {
		v, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Equal(want) {
			t.Fatalf("got %v, want %v", v, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestValueCodecCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindBool)},           // truncated bool
		{byte(KindBool), 2},        // invalid bool byte
		{byte(KindInt)},            // missing varint
		{byte(KindFloat), 1, 2, 3}, // truncated float
		{byte(KindString)},         // missing length
		{byte(KindString), 5, 'a'}, // truncated payload
		{byte(KindList), 200, 1},   // absurd count
		{99},                       // unknown kind
		{byte(KindList), 1},        // truncated element
		{byte(KindInt), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, // overlong varint
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("case %d: expected error for % x", i, c)
		}
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	cases := []Map{
		nil,
		{},
		{"a": Int(1)},
		{"name": String("ada"), "age": Int(36), "scores": List(Float(1.5), Float(2.5))},
	}
	for _, m := range cases {
		enc := EncodeMap(m)
		got, n, err := DecodeMap(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", m, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d", n, len(enc))
		}
		if !got.Equal(m) {
			t.Errorf("round trip: got %v, want %v", got, m)
		}
	}
}

func TestMapCodecDeterministic(t *testing.T) {
	m := Map{"b": Int(2), "a": Int(1), "c": Int(3)}
	first := EncodeMap(m)
	for i := 0; i < 10; i++ {
		if !bytes.Equal(EncodeMap(m.Clone()), first) {
			t.Fatal("map encoding not deterministic")
		}
	}
}

func TestMapCodecCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{200},           // absurd count with no payload... (count 200 > len 1)
		{1},             // missing key
		{1, 5, 'a'},     // truncated key
		{1, 1, 'k'},     // missing value
		{1, 1, 'k', 99}, // bad value kind
	}
	for i, c := range cases {
		if _, _, err := DecodeMap(c); err == nil {
			t.Errorf("case %d: expected error for % x", i, c)
		}
	}
}

func TestQuickValueCodec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		enc := EncodeValue(v)
		got, n, err := DecodeValue(enc)
		return err == nil && n == len(enc) && got.Compare(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMapCodec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := make(Map)
		for i, n := 0, r.Intn(8); i < n; i++ {
			key := make([]byte, 1+r.Intn(10))
			r.Read(key)
			m[string(key)] = randomValue(r, 2)
		}
		enc := EncodeMap(m)
		got, n, err := DecodeMap(enc)
		return err == nil && n == len(enc) && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeMap(b *testing.B) {
	m := Map{"name": String("alice"), "age": Int(42), "score": Float(8.5)}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendMap(buf[:0], m)
	}
}

func BenchmarkDecodeMap(b *testing.B) {
	enc := EncodeMap(Map{"name": String("alice"), "age": Int(42), "score": Float(8.5)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeMap(enc); err != nil {
			b.Fatal(err)
		}
	}
}
