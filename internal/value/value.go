// Package value implements the typed property value model used throughout
// neograph. Nodes and relationships carry property maps whose values are
// drawn from a small closed set of types, mirroring the value model of
// Neo4j: booleans, 64-bit integers, 64-bit floats, strings, byte arrays and
// homogeneous lists thereof.
//
// Values are immutable once constructed. The package provides total
// ordering (for property indexes), equality, hashing, and a compact binary
// codec used by the property store and the write-ahead log.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind and marks the
// absence of a value (for example a property that has been removed).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindList
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable property value. The zero Value is Null.
type Value struct {
	kind Kind
	num  uint64 // bool (0/1), int64 bits, or float64 bits
	str  string // string payload; bytes are stored as string to keep Value comparable-by-method
	list []Value
}

// Null is the absent value.
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns a 64-bit integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a 64-bit floating point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Bytes returns a byte-array value. The slice is copied.
func Bytes(b []byte) Value { return Value{kind: KindBytes, str: string(b)} }

// List returns a list value. The slice is copied.
func List(vs ...Value) Value {
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, list: cp}
}

// Of converts a native Go value to a Value. Supported inputs: nil, bool,
// all signed/unsigned integer types (unsigned must fit in int64), float32,
// float64, string, []byte, []Value, and Value itself. Of panics on any
// other type; use it only with trusted literals — API boundaries should
// construct Values explicitly.
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case Value:
		return x
	case bool:
		return Bool(x)
	case int:
		return Int(int64(x))
	case int8:
		return Int(int64(x))
	case int16:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint:
		return Int(int64(x))
	case uint8:
		return Int(int64(x))
	case uint16:
		return Int(int64(x))
	case uint32:
		return Int(int64(x))
	case uint64:
		if x > math.MaxInt64 {
			panic("value: uint64 overflows int64")
		}
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case string:
		return String(x)
	case []byte:
		return Bytes(x)
	case []Value:
		return List(x...)
	default:
		panic(fmt.Sprintf("value: unsupported Go type %T", v))
	}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false if v is not a bool.
func (v Value) AsBool() (b, ok bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.num != 0, true
}

// AsInt returns the integer payload; ok is false if v is not an int.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return int64(v.num), true
}

// AsFloat returns the float payload; ok is false if v is not a float.
func (v Value) AsFloat() (float64, bool) {
	if v.kind != KindFloat {
		return 0, false
	}
	return math.Float64frombits(v.num), true
}

// AsString returns the string payload; ok is false if v is not a string.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsBytes returns a copy of the byte payload; ok is false if v is not bytes.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return []byte(v.str), true
}

// AsList returns a copy of the list payload; ok is false if v is not a list.
func (v Value) AsList() ([]Value, bool) {
	if v.kind != KindList {
		return nil, false
	}
	cp := make([]Value, len(v.list))
	copy(cp, v.list)
	return cp, true
}

// Numeric reports whether v is an int or float, and its value as float64.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num)), true
	case KindFloat:
		return math.Float64frombits(v.num), true
	}
	return 0, false
}

// String renders the value in a human-readable, Cypher-like notation.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.str)
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return fmt.Sprintf("<invalid kind %d>", v.kind)
	}
}

// Equal reports deep equality of two values. Int and float values of equal
// numeric magnitude are NOT equal unless their kinds match; property
// indexes rely on this strictness.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare defines a total order over all values. Values order first by
// kind (the Kind enumeration order), then within a kind by their natural
// order: false < true, numeric order for int/float, lexicographic for
// string/bytes, element-wise for lists. NaN floats sort before all other
// floats and equal to themselves, keeping the order total.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool, KindInt:
		a, b := int64(v.num), int64(o.num)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindFloat:
		a, b := math.Float64frombits(v.num), math.Float64frombits(o.num)
		an, bn := math.IsNaN(a), math.IsNaN(b)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindString, KindBytes:
		return strings.Compare(v.str, o.str)
	case KindList:
		n := len(v.list)
		if len(o.list) < n {
			n = len(o.list)
		}
		for i := 0; i < n; i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.list) < len(o.list):
			return -1
		case len(v.list) > len(o.list):
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Hash returns a 64-bit FNV-1a style hash of the value, suitable for
// hash-index bucketing. Equal values hash equally.
func (v Value) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix(byte(v.kind))
	switch v.kind {
	case KindBool, KindInt, KindFloat:
		n := v.num
		if v.kind == KindFloat {
			// Normalise NaNs so equal-compare values hash equally.
			f := math.Float64frombits(n)
			if math.IsNaN(f) {
				n = math.Float64bits(math.NaN())
			}
		}
		for i := 0; i < 8; i++ {
			mix(byte(n >> (8 * i)))
		}
	case KindString, KindBytes:
		for i := 0; i < len(v.str); i++ {
			mix(v.str[i])
		}
	case KindList:
		for _, e := range v.list {
			sub := e.Hash()
			for i := 0; i < 8; i++ {
				mix(byte(sub >> (8 * i)))
			}
		}
	}
	return h
}

// Size returns an estimate of the in-memory footprint of the value in
// bytes, used by the object cache and the GC accounting in E5.
func (v Value) Size() int {
	s := 24 // struct header estimate
	s += len(v.str)
	for _, e := range v.list {
		s += e.Size()
	}
	return s
}

// Map is a property map from property-key token name to value. Maps are
// treated as immutable after construction wherever they cross a version
// boundary; Clone before mutating.
type Map map[string]Value

// Clone returns a shallow copy of m (values are immutable, so a shallow
// copy is a deep copy in effect). Clone(nil) returns an empty non-nil map.
func (m Map) Clone() Map {
	cp := make(Map, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// Equal reports whether two maps hold exactly the same key/value pairs.
func (m Map) Equal(o Map) bool {
	if len(m) != len(o) {
		return false
	}
	for k, v := range m {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Keys returns the sorted key set of m.
func (m Map) Keys() []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Size estimates the memory footprint of the map in bytes.
func (m Map) Size() int {
	s := 48
	for k, v := range m {
		s += len(k) + v.Size()
	}
	return s
}

// String renders the map in a stable, Cypher-like `{k: v, ...}` notation.
func (m Map) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range m.Keys() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k)
		sb.WriteString(": ")
		sb.WriteString(m[k].String())
	}
	sb.WriteByte('}')
	return sb.String()
}
