package value

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBytes: "bytes", KindList: "list", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be null")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true) round trip failed")
	}
	if b, ok := Bool(false).AsBool(); !ok || b {
		t.Error("Bool(false) round trip failed")
	}
	if i, ok := Int(-42).AsInt(); !ok || i != -42 {
		t.Error("Int round trip failed")
	}
	if f, ok := Float(3.5).AsFloat(); !ok || f != 3.5 {
		t.Error("Float round trip failed")
	}
	if s, ok := String("hi").AsString(); !ok || s != "hi" {
		t.Error("String round trip failed")
	}
	if bs, ok := Bytes([]byte{1, 2}).AsBytes(); !ok || !reflect.DeepEqual(bs, []byte{1, 2}) {
		t.Error("Bytes round trip failed")
	}
	l, ok := List(Int(1), String("x")).AsList()
	if !ok || len(l) != 2 || !l[0].Equal(Int(1)) || !l[1].Equal(String("x")) {
		t.Error("List round trip failed")
	}
}

func TestAccessorKindMismatch(t *testing.T) {
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on int should fail")
	}
	if _, ok := Bool(true).AsInt(); ok {
		t.Error("AsInt on bool should fail")
	}
	if _, ok := Int(1).AsFloat(); ok {
		t.Error("AsFloat on int should fail")
	}
	if _, ok := Bytes(nil).AsString(); ok {
		t.Error("AsString on bytes should fail")
	}
	if _, ok := String("").AsBytes(); ok {
		t.Error("AsBytes on string should fail")
	}
	if _, ok := String("").AsList(); ok {
		t.Error("AsList on string should fail")
	}
}

func TestBytesCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 9
	got, _ := v.AsBytes()
	if got[0] != 1 {
		t.Error("Bytes must copy its input")
	}
	got[1] = 9
	got2, _ := v.AsBytes()
	if got2[1] != 2 {
		t.Error("AsBytes must return a copy")
	}
}

func TestListCopied(t *testing.T) {
	src := []Value{Int(1)}
	v := List(src...)
	src[0] = Int(9)
	l, _ := v.AsList()
	if !l[0].Equal(Int(1)) {
		t.Error("List must copy its input")
	}
}

func TestOf(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null},
		{true, Bool(true)},
		{int(3), Int(3)},
		{int8(-3), Int(-3)},
		{int16(300), Int(300)},
		{int32(1 << 20), Int(1 << 20)},
		{int64(-1 << 40), Int(-1 << 40)},
		{uint(7), Int(7)},
		{uint8(255), Int(255)},
		{uint16(65535), Int(65535)},
		{uint32(1 << 30), Int(1 << 30)},
		{uint64(1 << 50), Int(1 << 50)},
		{float32(0.5), Float(0.5)},
		{float64(2.25), Float(2.25)},
		{"s", String("s")},
		{[]byte{7}, Bytes([]byte{7})},
		{[]Value{Int(1)}, List(Int(1))},
		{Int(5), Int(5)},
	}
	for _, c := range cases {
		if got := Of(c.in); !got.Equal(c.want) {
			t.Errorf("Of(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOfPanics(t *testing.T) {
	for _, bad := range []any{uint64(math.MaxUint64), struct{}{}, map[string]int{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Of(%T) should panic", bad)
				}
			}()
			Of(bad)
		}()
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Int(4).Numeric(); !ok || f != 4 {
		t.Error("Int.Numeric failed")
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Error("Float.Numeric failed")
	}
	if _, ok := String("4").Numeric(); ok {
		t.Error("String.Numeric should fail")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{String(`a"b`), `"a\"b"`},
		{Bytes([]byte{0xab, 0xcd}), "0xabcd"},
		{List(Int(1), String("x")), `[1, "x"]`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Ordered sample covering kind order and intra-kind order.
	ordered := []Value{
		Null,
		Bool(false), Bool(true),
		Int(-5), Int(0), Int(5),
		Float(math.NaN()), Float(math.Inf(-1)), Float(-1), Float(0), Float(math.Inf(1)),
		String(""), String("a"), String("ab"), String("b"),
		Bytes(nil), Bytes([]byte{1}), Bytes([]byte{1, 2}),
		List(), List(Int(1)), List(Int(1), Int(2)), List(Int(2)),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestEqualStrictKinds(t *testing.T) {
	if Int(1).Equal(Float(1)) {
		t.Error("Int(1) must not equal Float(1)")
	}
	if String("a").Equal(Bytes([]byte("a"))) {
		t.Error("String must not equal Bytes")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(42), Int(42)},
		{String("abc"), String("abc")},
		{Float(math.NaN()), Float(math.Float64frombits(math.Float64bits(math.NaN()) ^ 1<<62))},
		{List(Int(1), String("x")), List(Int(1), String("x"))},
	}
	for _, p := range pairs {
		if p[0].Compare(p[1]) == 0 && p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
	if Int(1).Hash() == Int(2).Hash() && Int(1).Hash() == Int(3).Hash() {
		t.Error("suspiciously colliding hashes")
	}
}

func TestMapCloneAndEqual(t *testing.T) {
	m := Map{"a": Int(1), "b": String("x")}
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c["a"] = Int(2)
	if m.Equal(c) {
		t.Fatal("clone mutation leaked")
	}
	if !Map(nil).Equal(Map{}) {
		t.Error("nil map should equal empty map")
	}
	if (Map{"a": Int(1)}).Equal(Map{"a": Int(2)}) {
		t.Error("different values should not be equal")
	}
	if (Map{"a": Int(1)}).Equal(Map{"b": Int(1)}) {
		t.Error("different keys should not be equal")
	}
}

func TestMapKeysSorted(t *testing.T) {
	m := Map{"z": Null, "a": Null, "m": Null}
	ks := m.Keys()
	if !sort.StringsAreSorted(ks) || len(ks) != 3 {
		t.Errorf("Keys() = %v, want sorted 3 keys", ks)
	}
}

func TestMapString(t *testing.T) {
	m := Map{"b": Int(2), "a": Int(1)}
	if got, want := m.String(), "{a: 1, b: 2}"; got != want {
		t.Errorf("Map.String() = %q, want %q", got, want)
	}
}

func TestSizePositive(t *testing.T) {
	for _, v := range []Value{Null, Int(1), String("hello"), List(Int(1), Int(2))} {
		if v.Size() <= 0 {
			t.Errorf("Size(%v) = %d, want > 0", v, v.Size())
		}
	}
	if (Map{"k": String("vvv")}).Size() <= 0 {
		t.Error("Map.Size must be positive")
	}
}

// randomValue builds an arbitrary value with bounded depth for
// property-based tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k == int(KindList) {
		k = int(KindInt)
	}
	switch Kind(k) {
	case KindNull:
		return Null
	case KindBool:
		return Bool(r.Intn(2) == 0)
	case KindInt:
		return Int(r.Int63() - r.Int63())
	case KindFloat:
		return Float(r.NormFloat64() * 1e6)
	case KindString:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return String(string(b))
	case KindBytes:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return Bytes(b)
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return List(elems...)
	}
}

func TestQuickCompareReflexiveAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rr, 2), randomValue(rr, 2), randomValue(rr, 2)
		if a.Compare(a) != 0 {
			return false
		}
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity spot check: sort three and verify pairwise order.
		vs := []Value{a, b, c}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
		return vs[0].Compare(vs[2]) <= 0 && vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
