package mvcc

import "sync"

// GCList is the global garbage-collection structure of the paper (§4):
// every superseded version is threaded onto a doubly-linked list sorted by
// the timestamp at which it became garbage-eligible. Collection walks the
// list from the oldest end and stops at the first version still above the
// horizon, so its cost is proportional to the garbage actually reclaimed —
// never to the size of the store, which is what makes PostgreSQL's vacuum
// pause (the paper's contrast baseline, implemented as
// Chain.PruneOlderThan).
//
// Commit timestamps are assigned in order but versions are installed
// concurrently, so arrivals can be slightly out of order; Add inserts from
// the tail to keep the list strictly sorted (O(1) amortised for the
// near-sorted arrival stream).
type GCList struct {
	mu         sync.Mutex
	head, tail *Version // head = oldest SupersededAt
	size       int
}

// NewGCList returns an empty list.
func NewGCList() *GCList { return &GCList{} }

// Add threads v — whose SupersededAt must already be set — onto the list.
func (l *GCList) Add(v *Version) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v.inGCList {
		panic("mvcc: version already in GC list")
	}
	v.inGCList = true
	l.size++
	if l.tail == nil {
		l.head, l.tail = v, v
		return
	}
	// Walk back from the tail to the insertion point (usually the tail
	// itself: commit order ≈ timestamp order).
	at := l.tail
	for at != nil && at.SupersededAt > v.SupersededAt {
		at = at.gcPrev
	}
	if at == nil { // new head
		v.gcNext = l.head
		l.head.gcPrev = v
		l.head = v
		return
	}
	v.gcPrev = at
	v.gcNext = at.gcNext
	if at.gcNext != nil {
		at.gcNext.gcPrev = v
	} else {
		l.tail = v
	}
	at.gcNext = v
}

// Len returns the number of versions awaiting collection.
func (l *GCList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// OldestSupersededAt returns the SupersededAt of the list head and whether
// the list is non-empty — the cheapest possible "is there anything to do"
// check for the GC driver.
func (l *GCList) OldestSupersededAt() (TS, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head == nil {
		return 0, false
	}
	return l.head.SupersededAt, true
}

// Collect pops every version with SupersededAt ≤ horizon, unlinks each
// from its entity chain, and calls onDead(chain, version) for every
// removal whose chain became empty (the entity itself is gone — its
// tombstone and all older versions collected). It returns the number of
// versions reclaimed.
//
// The walk touches exactly the versions it reclaims plus one: the cost
// model the paper claims ("the cost of garbage collection is reduced to
// the minimum").
func (l *GCList) Collect(horizon TS, onDead func(*Chain)) int {
	collected := 0
	for {
		l.mu.Lock()
		v := l.head
		if v == nil || v.SupersededAt > horizon {
			l.mu.Unlock()
			return collected
		}
		l.head = v.gcNext
		if l.head != nil {
			l.head.gcPrev = nil
		} else {
			l.tail = nil
		}
		v.gcNext, v.gcPrev = nil, nil
		v.inGCList = false
		l.size--
		l.mu.Unlock()

		if empty := v.chain.remove(v); empty && onDead != nil {
			onDead(v.chain)
		}
		collected++
	}
}

// checkSorted reports whether the list is sorted by SupersededAt; used by
// invariant tests.
func (l *GCList) checkSorted() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for v := l.head; v != nil && v.gcNext != nil; v = v.gcNext {
		if v.SupersededAt > v.gcNext.SupersededAt {
			return false
		}
	}
	return true
}
