package mvcc

import "sync"

// ActiveTable tracks the start timestamp of every active transaction. Its
// single job is to answer the GC horizon question: which is the oldest
// snapshot any active transaction can read (paper §3: versions older than
// what the oldest active transaction can read "will never be read by any
// active transaction")?
type ActiveTable struct {
	mu     sync.Mutex
	active map[uint64]TS // txn id -> start TS
}

// NewActiveTable returns an empty table.
func NewActiveTable() *ActiveTable {
	return &ActiveTable{active: make(map[uint64]TS)}
}

// Register records that transaction id started at ts.
func (t *ActiveTable) Register(id uint64, ts TS) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active[id] = ts
}

// Unregister removes a finished (committed or aborted) transaction.
func (t *ActiveTable) Unregister(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.active, id)
}

// Count returns the number of active transactions.
func (t *ActiveTable) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Horizon returns the GC horizon: the minimum start timestamp over all
// active transactions, or ifIdle when none are active (the caller passes
// the current watermark — with no readers, everything up to the newest
// committed state but excluding current heads is reclaimable).
//
// The table is scanned linearly; GC runs are far rarer than
// register/unregister, so the table optimises for the latter.
func (t *ActiveTable) Horizon(ifIdle TS) TS {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.active) == 0 {
		return ifIdle
	}
	first := true
	var min TS
	for _, ts := range t.active {
		if first || ts < min {
			min = ts
			first = false
		}
	}
	return min
}
