package mvcc

import (
	"sync/atomic"
	"testing"
)

// BenchmarkOracle exercises the oracle's commit-cycle hot path
// (BeginCommit → FinishCommit with a StartTS per cycle, the shape every
// writing transaction drives) across GOMAXPROCS goroutines. The striped
// commit pipeline funnels every commit through these three calls, so
// their scalability bounds multi-writer throughput.
func BenchmarkOracle(b *testing.B) {
	b.Run("commit-cycle", func(b *testing.B) {
		o := NewOracle(0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_ = o.StartTS()
				ts := o.BeginCommit()
				o.FinishCommit(ts)
			}
		})
	})
	b.Run("start-ts", func(b *testing.B) {
		o := NewOracle(0)
		// A background committer keeps the watermark moving so StartTS
		// reads a live value, not a constant.
		stop := make(chan struct{})
		var done atomic.Bool
		go func() {
			for !done.Load() {
				o.FinishCommit(o.BeginCommit())
			}
			close(stop)
		}()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_ = o.StartTS()
			}
		})
		done.Store(true)
		<-stop
	})
}
