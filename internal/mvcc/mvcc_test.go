package mvcc

import (
	"math/rand"
	"sync"
	"testing"
)

func TestOracleWatermarkInOrder(t *testing.T) {
	o := NewOracle(0)
	if o.StartTS() != 0 {
		t.Fatal("fresh oracle start TS must be 0")
	}
	c1 := o.BeginCommit()
	c2 := o.BeginCommit()
	if c1 != 1 || c2 != 2 {
		t.Fatalf("commit TSs = %d, %d", c1, c2)
	}
	if o.Watermark() != 0 {
		t.Fatal("watermark must not advance past pending commits")
	}
	o.FinishCommit(c1)
	if o.Watermark() != 1 {
		t.Fatalf("watermark = %d, want 1", o.Watermark())
	}
	o.FinishCommit(c2)
	if o.Watermark() != 2 {
		t.Fatalf("watermark = %d, want 2", o.Watermark())
	}
}

func TestOracleWatermarkOutOfOrderFinish(t *testing.T) {
	o := NewOracle(0)
	c1, c2, c3 := o.BeginCommit(), o.BeginCommit(), o.BeginCommit()
	o.FinishCommit(c3)
	o.FinishCommit(c2)
	if o.Watermark() != 0 {
		t.Fatalf("watermark = %d, want 0 while c1 pending", o.Watermark())
	}
	o.FinishCommit(c1)
	if o.Watermark() != 3 {
		t.Fatalf("watermark = %d, want 3", o.Watermark())
	}
}

func TestOracleAbortReleases(t *testing.T) {
	o := NewOracle(5)
	c := o.BeginCommit()
	if c != 6 {
		t.Fatalf("commit ts = %d, want 6", c)
	}
	o.AbortCommit(c)
	if o.Watermark() != 6 {
		t.Fatalf("watermark = %d, want 6 after abort", o.Watermark())
	}
}

func TestOracleConcurrent(t *testing.T) {
	o := NewOracle(0)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ts := o.BeginCommit()
				_ = o.StartTS()
				o.FinishCommit(ts)
			}
		}()
	}
	wg.Wait()
	if o.Watermark() != n*100 {
		t.Fatalf("final watermark = %d, want %d", o.Watermark(), n*100)
	}
	if o.StartTS() != o.Watermark() {
		t.Fatal("idle StartTS must equal watermark")
	}
}

func TestChainVisible(t *testing.T) {
	c := NewChain()
	if c.Visible(100) != nil {
		t.Fatal("empty chain must be invisible")
	}
	v10 := &Version{CommitTS: 10, Data: "ten"}
	v20 := &Version{CommitTS: 20, Data: "twenty"}
	v30 := &Version{CommitTS: 30, Data: "thirty"}
	if c.Install(v10) != nil {
		t.Fatal("first install supersedes nothing")
	}
	if sup := c.Install(v20); sup != v10 || sup.SupersededAt != 20 {
		t.Fatalf("superseded = %+v", sup)
	}
	c.Install(v30)

	cases := []struct {
		startTS TS
		want    *Version
	}{
		{5, nil}, {9, nil}, {10, v10}, {15, v10}, {20, v20}, {29, v20}, {30, v30}, {1000, v30},
	}
	for _, tc := range cases {
		if got := c.Visible(tc.startTS); got != tc.want {
			t.Errorf("Visible(%d) = %v, want %v", tc.startTS, got, tc.want)
		}
	}
	if c.Head() != v30 || c.Len() != 3 {
		t.Fatalf("head/len = %v/%d", c.Head(), c.Len())
	}
}

func TestChainInstallOutOfOrderPanics(t *testing.T) {
	c := NewChain()
	c.Install(&Version{CommitTS: 10})
	defer func() {
		if recover() == nil {
			t.Error("out of order install should panic")
		}
	}()
	c.Install(&Version{CommitTS: 10})
}

func TestChainTombstoneVisible(t *testing.T) {
	c := NewChain()
	c.Install(&Version{CommitTS: 10, Data: "live"})
	c.Install(&Version{CommitTS: 20, Deleted: true})
	// Reader at 15 sees the live version; at 25 sees the tombstone.
	if v := c.Visible(15); v == nil || v.Deleted {
		t.Fatal("reader at 15 must see live version")
	}
	if v := c.Visible(25); v == nil || !v.Deleted {
		t.Fatal("reader at 25 must see tombstone")
	}
}

func TestGCListSortedAndCollect(t *testing.T) {
	l := NewGCList()
	chain := NewChain()
	var supers []*Version
	for ts := TS(1); ts <= 10; ts++ {
		if sup := chain.Install(&Version{CommitTS: ts, Data: ts}); sup != nil {
			supers = append(supers, sup)
		}
	}
	// Add out of arrival order to exercise sorted insertion.
	rand.New(rand.NewSource(7)).Shuffle(len(supers), func(i, j int) { supers[i], supers[j] = supers[j], supers[i] })
	for _, s := range supers {
		l.Add(s)
	}
	if !l.checkSorted() {
		t.Fatal("GC list not sorted after shuffled adds")
	}
	if l.Len() != 9 {
		t.Fatalf("len = %d, want 9", l.Len())
	}
	if ts, ok := l.OldestSupersededAt(); !ok || ts != 2 {
		t.Fatalf("oldest = %d/%v, want 2", ts, ok)
	}

	// Horizon 5: versions superseded at TS ≤ 5 (commit TS 1..4) die.
	n := l.Collect(5, nil)
	if n != 4 {
		t.Fatalf("collected %d, want 4", n)
	}
	if chain.Len() != 6 {
		t.Fatalf("chain len = %d, want 6", chain.Len())
	}
	// Visible at old snapshots now returns nil (they were collectable
	// precisely because no reader can sit at those timestamps).
	if v := chain.Visible(10); v == nil || v.CommitTS != 10 {
		t.Fatal("newest version must survive")
	}
	// Collect the rest.
	if n := l.Collect(100, nil); n != 5 {
		t.Fatalf("second collect = %d, want 5", n)
	}
	if chain.Len() != 1 {
		t.Fatalf("chain len = %d, want 1 (head only)", chain.Len())
	}
}

func TestGCListTombstoneKillsEntity(t *testing.T) {
	l := NewGCList()
	chain := NewChain()
	if sup := chain.Install(&Version{CommitTS: 1, Data: "x"}); sup != nil {
		t.Fatal("unexpected supersede")
	}
	tomb := &Version{CommitTS: 2, Deleted: true}
	if sup := chain.Install(tomb); sup != nil {
		sup.SupersededAt = tomb.CommitTS
		l.Add(sup)
	}
	// The tombstone itself becomes garbage at its own commit TS.
	tomb.SupersededAt = tomb.CommitTS
	l.Add(tomb)

	var dead []*Chain
	n := l.Collect(10, func(c *Chain) { dead = append(dead, c) })
	if n != 2 {
		t.Fatalf("collected %d, want 2", n)
	}
	if len(dead) != 1 || dead[0] != chain {
		t.Fatalf("dead chains = %v", dead)
	}
	if chain.Len() != 0 || chain.Head() != nil {
		t.Fatal("chain must be empty after tombstone collection")
	}
}

func TestGCListDoubleAddPanics(t *testing.T) {
	l := NewGCList()
	v := &Version{CommitTS: 1, SupersededAt: 2}
	v.chain = NewChain()
	l.Add(v)
	defer func() {
		if recover() == nil {
			t.Error("double add should panic")
		}
	}()
	l.Add(v)
}

func TestGCCollectStopsAtHorizon(t *testing.T) {
	l := NewGCList()
	chain := NewChain()
	for ts := TS(1); ts <= 5; ts++ {
		if sup := chain.Install(&Version{CommitTS: ts}); sup != nil {
			l.Add(sup)
		}
	}
	if n := l.Collect(0, nil); n != 0 {
		t.Fatalf("horizon 0 collected %d", n)
	}
	if n := l.Collect(3, nil); n != 2 { // superseded at 2 and 3
		t.Fatalf("horizon 3 collected %d, want 2", n)
	}
}

func TestPruneOlderThanVacuum(t *testing.T) {
	chain := NewChain()
	for ts := TS(1); ts <= 5; ts++ {
		chain.Install(&Version{CommitTS: ts, Data: ts})
	}
	removed, empty := chain.PruneOlderThan(3)
	// Versions 1 and 2 were superseded at TS 2 and 3 ≤ horizon.
	if removed != 2 || empty {
		t.Fatalf("removed=%d empty=%v, want 2,false", removed, empty)
	}
	if chain.Len() != 3 {
		t.Fatalf("len = %d, want 3", chain.Len())
	}
	// Reader at horizon still sees the right version.
	if v := chain.Visible(3); v == nil || v.CommitTS != 3 {
		t.Fatalf("Visible(3) = %v", v)
	}
}

func TestPruneTombstoneChainDies(t *testing.T) {
	chain := NewChain()
	chain.Install(&Version{CommitTS: 1, Data: "a"})
	chain.Install(&Version{CommitTS: 2, Data: "b"})
	chain.Install(&Version{CommitTS: 3, Deleted: true})
	removed, empty := chain.PruneOlderThan(3)
	if removed != 3 || !empty {
		t.Fatalf("removed=%d empty=%v, want 3,true", removed, empty)
	}
}

func TestPruneKeepsVisibleAboveHorizon(t *testing.T) {
	chain := NewChain()
	chain.Install(&Version{CommitTS: 10, Data: "a"})
	chain.Install(&Version{CommitTS: 20, Deleted: true})
	removed, empty := chain.PruneOlderThan(15)
	// Tombstone at 20 > horizon: a reader at 15 still sees version 10.
	if removed != 0 || empty {
		t.Fatalf("removed=%d empty=%v, want 0,false", removed, empty)
	}
	if v := chain.Visible(15); v == nil || v.CommitTS != 10 {
		t.Fatal("prune removed a visible version")
	}
}

func TestActiveTableHorizon(t *testing.T) {
	a := NewActiveTable()
	if a.Horizon(42) != 42 {
		t.Fatal("idle horizon must be ifIdle")
	}
	a.Register(1, 10)
	a.Register(2, 7)
	a.Register(3, 30)
	if a.Horizon(42) != 7 {
		t.Fatalf("horizon = %d, want 7", a.Horizon(42))
	}
	a.Unregister(2)
	if a.Horizon(42) != 10 {
		t.Fatalf("horizon = %d, want 10", a.Horizon(42))
	}
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
	a.Unregister(1)
	a.Unregister(3)
	if a.Horizon(42) != 42 {
		t.Fatal("horizon must return to ifIdle")
	}
}

// TestGCNeverCollectsVisible is the paper's central GC safety invariant,
// checked over random histories: after collecting at the horizon, every
// active reader still observes exactly the version it did before.
func TestGCNeverCollectsVisible(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		l := NewGCList()
		const chains = 5
		cs := make([]*Chain, chains)
		for i := range cs {
			cs[i] = NewChain()
		}
		// Random history of 100 commits over 5 entities.
		for ts := TS(1); ts <= 100; ts++ {
			c := cs[r.Intn(chains)]
			head := c.Head()
			if head != nil && head.CommitTS >= ts {
				continue
			}
			if sup := c.Install(&Version{CommitTS: ts, Data: ts}); sup != nil {
				l.Add(sup)
			}
		}
		// Random set of readers.
		readers := make([]TS, 5)
		horizon := TS(101)
		for i := range readers {
			readers[i] = TS(r.Intn(100))
			if readers[i] < horizon {
				horizon = readers[i]
			}
		}
		// Record what each reader sees before GC.
		before := make([][]*Version, len(readers))
		for i, rts := range readers {
			for _, c := range cs {
				before[i] = append(before[i], c.Visible(rts))
			}
		}
		l.Collect(horizon, nil)
		if !l.checkSorted() {
			t.Fatal("list unsorted after collect")
		}
		for i, rts := range readers {
			for j, c := range cs {
				if got := c.Visible(rts); got != before[i][j] {
					t.Fatalf("trial %d: reader %d (ts %d) chain %d: %v -> %v",
						trial, i, rts, j, before[i][j], got)
				}
			}
		}
	}
}

func TestConcurrentInstallAndCollect(t *testing.T) {
	o := NewOracle(0)
	l := NewGCList()
	chain := NewChain()
	var mu sync.Mutex // serialises installs on the single chain (the write rule)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // collector
		defer wg.Done()
		for {
			select {
			case <-stop:
				l.Collect(o.Watermark(), nil)
				return
			default:
				l.Collect(o.Watermark(), nil)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mu.Lock()
				ts := o.BeginCommit()
				if sup := chain.Install(&Version{CommitTS: ts}); sup != nil {
					l.Add(sup)
				}
				o.FinishCommit(ts)
				mu.Unlock()
			}
		}()
	}
	// Writers finish, then collector drains.
	go func() {
		// close stop after writers complete: reuse wg via separate sync
	}()
	wgWait := make(chan struct{})
	go func() { wg.Wait(); close(wgWait) }()
	// Signal the collector once writers are done: writers are 4 of the 5
	// wg members; simplest is to sleep-free poll the oracle.
	for o.Watermark() < 2000 {
	}
	close(stop)
	<-wgWait

	if chain.Len() != 1 {
		t.Fatalf("chain len = %d, want 1 after full collection", chain.Len())
	}
	if head := chain.Head(); head == nil || head.CommitTS != 2000 {
		t.Fatalf("head = %+v", head)
	}
}
