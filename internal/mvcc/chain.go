package mvcc

import "sync"

// Version is one committed version of an entity. Versions are threaded
// twice, exactly as in the paper (§4):
//
//   - within their entity's Chain (newest first, doubly linked so GC can
//     unlink in O(1));
//   - through the global GCList, a doubly-linked list sorted by the
//     timestamp at which the version became superseded.
//
// Uncommitted data never appears in a Version: transactions stage their
// writes privately and install versions only at commit.
type Version struct {
	CommitTS TS
	Deleted  bool // tombstone: the entity was deleted at CommitTS
	Data     any  // engine payload (entity state at this version)

	// Entity chain links (guarded by the owning Chain's mutex).
	newer, older *Version
	chain        *Chain

	// Global GC list links (guarded by the GCList's mutex).
	gcPrev, gcNext *Version
	// SupersededAt is the commit timestamp of the version that replaced
	// this one (or this version's own CommitTS for tombstones). A version
	// is garbage once SupersededAt ≤ the GC horizon: no active or future
	// transaction can ever read it.
	SupersededAt TS
	inGCList     bool
}

// Chain is the version list of one entity, newest first.
type Chain struct {
	mu   sync.RWMutex
	head *Version // newest committed version
	size int
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// Install links v as the new head and returns the superseded previous
// head (nil for the first version). The caller adds the superseded
// version — tagged with v.CommitTS — to the global GC list.
// Install panics if v would break the descending-timestamp invariant;
// the write rule (no two concurrent writers) makes that impossible in
// correct use.
func (c *Chain) Install(v *Version) (superseded *Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.head != nil && c.head.CommitTS >= v.CommitTS {
		panic("mvcc: install out of timestamp order")
	}
	v.chain = c
	v.older = c.head
	if c.head != nil {
		c.head.newer = v
		superseded = c.head
		superseded.SupersededAt = v.CommitTS
	}
	c.head = v
	c.size++
	return superseded
}

// Visible returns the version a transaction with the given start
// timestamp must observe: the newest version with CommitTS ≤ startTS
// (paper §3, the read rule). It returns nil if the entity did not exist
// in that snapshot. A tombstone version is returned as-is; callers treat
// it as "not found" but can distinguish deletion from absence.
func (c *Chain) Visible(startTS TS) *Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for v := c.head; v != nil; v = v.older {
		if v.CommitTS <= startTS {
			return v
		}
	}
	return nil
}

// Head returns the newest committed version (what read-committed reads).
func (c *Chain) Head() *Version {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head
}

// Len returns the number of versions currently in the chain.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// Each calls fn on every version in the chain, newest first, under the
// chain's read lock (fn must not call back into the chain).
func (c *Chain) Each(fn func(*Version)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for v := c.head; v != nil; v = v.older {
		fn(v)
	}
}

// remove unlinks v from the chain. It reports whether the chain is now
// empty. Called by the GC with the version already popped from the
// global list.
func (c *Chain) remove(v *Version) (empty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v.newer != nil {
		v.newer.older = v.older
	} else if c.head == v {
		c.head = v.older
	}
	if v.older != nil {
		v.older.newer = v.newer
	}
	v.newer, v.older = nil, nil
	c.size--
	return c.head == nil
}

// PruneOlderThan implements the vacuum-style baseline collector (the
// PostgreSQL contrast in §4): it scans the whole chain and removes every
// version that is invisible below the horizon — superseded versions and
// horizon-old tombstone heads. It returns the number of versions removed
// and whether the chain is now empty (entity fully dead).
//
// Unlike the threaded GC list, the caller must invoke this on every chain
// in the store, which is exactly the cost the paper's design avoids.
func (c *Chain) PruneOlderThan(horizon TS) (removed int, empty bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.head != nil && c.head.Deleted && c.head.CommitTS <= horizon {
		// The tombstone itself is below the horizon: every transaction,
		// present and future, sees the entity as deleted, so the whole
		// chain is dead.
		for v := c.head; v != nil; {
			older := v.older
			v.newer, v.older = nil, nil
			v = older
			removed++
		}
		c.head = nil
		c.size = 0
		return removed, true
	}
	for v := c.head; v != nil; {
		older := v.older
		if v != c.head && v.newer.CommitTS <= horizon {
			v.newer.older = v.older
			if v.older != nil {
				v.older.newer = v.newer
			}
			v.newer, v.older = nil, nil
			c.size--
			removed++
		}
		v = older
	}
	return removed, c.head == nil
}
