// Package mvcc implements the multi-version concurrency control kernel of
// the paper: the timestamp oracle that orders transactions, per-entity
// version chains, the active-transaction table that defines the garbage
// collection horizon, and the global doubly-linked version list — sorted
// by commit timestamp — that makes garbage collection proportional to the
// amount of garbage rather than to the size of the store (paper §4).
package mvcc

import "sync"

// TS is a logical timestamp. Commit timestamps are dense and start at 1;
// 0 is the timestamp of the initial (empty or recovered) snapshot.
type TS = uint64

// Oracle issues start and commit timestamps.
//
// The commit watermark is the largest timestamp W such that every commit
// with timestamp ≤ W has finished installing its versions. New
// transactions start at the watermark, which guarantees the snapshot they
// read is fully installed — a reader can never observe half of a
// concurrent commit.
type Oracle struct {
	mu         sync.Mutex
	lastCommit TS
	watermark  TS
	pending    map[TS]struct{}
}

// NewOracle returns an oracle whose watermark starts at base. Recovery
// passes the largest commit timestamp found in the store/WAL.
func NewOracle(base TS) *Oracle {
	return &Oracle{lastCommit: base, watermark: base, pending: make(map[TS]struct{})}
}

// StartTS returns the snapshot timestamp for a new transaction: the
// current commit watermark (paper §3, the read rule — the most recent
// committed state at transaction start).
func (o *Oracle) StartTS() TS {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.watermark
}

// BeginCommit assigns the next commit timestamp. The caller must install
// its versions and then call FinishCommit (or AbortCommit) with the same
// timestamp; until then the watermark cannot pass it.
func (o *Oracle) BeginCommit() TS {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.lastCommit++
	ts := o.lastCommit
	o.pending[ts] = struct{}{}
	return ts
}

// FinishCommit marks ts as fully installed and advances the watermark
// past every consecutive finished commit.
func (o *Oracle) FinishCommit(ts TS) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.pending, ts)
	o.advanceLocked()
}

// AbortCommit releases a commit timestamp whose transaction aborted after
// BeginCommit. The timestamp is treated as an empty commit: the watermark
// may pass it.
func (o *Oracle) AbortCommit(ts TS) { o.FinishCommit(ts) }

func (o *Oracle) advanceLocked() {
	for o.watermark < o.lastCommit {
		if _, stillPending := o.pending[o.watermark+1]; stillPending {
			return
		}
		o.watermark++
	}
}

// ObserveCommit folds in a commit timestamp applied from a replication
// stream. The replica has no local committers, so an observed commit is
// fully installed by the time this is called and the watermark may
// advance to it (subject to any pending local commits, of which a replica
// has none).
func (o *Oracle) ObserveCommit(ts TS) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ts > o.lastCommit {
		o.lastCommit = ts
	}
	o.advanceLocked()
}

// Watermark returns the current commit watermark.
func (o *Oracle) Watermark() TS {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.watermark
}

// LastCommit returns the highest commit timestamp handed out so far.
func (o *Oracle) LastCommit() TS {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastCommit
}
