// Package mvcc implements the multi-version concurrency control kernel of
// the paper: the timestamp oracle that orders transactions, per-entity
// version chains, the active-transaction table that defines the garbage
// collection horizon, and the global doubly-linked version list — sorted
// by commit timestamp — that makes garbage collection proportional to the
// amount of garbage rather than to the size of the store (paper §4).
package mvcc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// TS is a logical timestamp. Commit timestamps are dense and start at 1;
// 0 is the timestamp of the initial (empty or recovered) snapshot.
type TS = uint64

// oracleRingSize bounds the number of commits that can sit between
// BeginCommit and FinishCommit at once (it far exceeds any plausible
// committer count; BeginCommit yields if a laggard ever keeps a slot a
// full lap behind). Must be a power of two.
const oracleRingSize = 4096

// Oracle issues start and commit timestamps.
//
// The commit watermark is the largest timestamp W such that every commit
// with timestamp ≤ W has finished installing its versions. New
// transactions start at the watermark, which guarantees the snapshot they
// read is fully installed — a reader can never observe half of a
// concurrent commit.
//
// The oracle sits on every transaction's hot path, so it avoids a global
// mutex: StartTS and Watermark are single atomic loads, BeginCommit is an
// atomic increment, and FinishCommit publishes into a ring of finished
// markers (slot ts%N holds ts once that commit has installed). Only the
// watermark advance — a walk over consecutive finished slots — is
// serialised, and it runs lock-free with respect to the fast paths.
type Oracle struct {
	lastCommit atomic.Uint64
	watermark  atomic.Uint64
	// pending counts local commits between BeginCommit and
	// Finish/AbortCommit; ObserveCommit may fast-forward the watermark
	// only when it is zero (a replica applying a stream has no local
	// committers).
	pending atomic.Int64
	// advanceMu serialises watermark advancement; the fast paths never
	// take it for reads.
	advanceMu sync.Mutex
	ring      [oracleRingSize]atomic.Uint64
}

// NewOracle returns an oracle whose watermark starts at base. Recovery
// passes the largest commit timestamp found in the store/WAL.
func NewOracle(base TS) *Oracle {
	o := &Oracle{}
	o.lastCommit.Store(base)
	o.watermark.Store(base)
	return o
}

// StartTS returns the snapshot timestamp for a new transaction: the
// current commit watermark (paper §3, the read rule — the most recent
// committed state at transaction start).
func (o *Oracle) StartTS() TS { return o.watermark.Load() }

// BeginCommit assigns the next commit timestamp. The caller must install
// its versions and then call FinishCommit (or AbortCommit) with the same
// timestamp; until then the watermark cannot pass it.
func (o *Oracle) BeginCommit() TS {
	o.pending.Add(1)
	ts := o.lastCommit.Add(1)
	// The slot ts occupies is free once the watermark has consumed the
	// occupant one lap behind; with a 4096-deep ring this only ever spins
	// if thousands of commits are simultaneously mid-install.
	for ts-o.watermark.Load() > oracleRingSize {
		runtime.Gosched()
	}
	return ts
}

// FinishCommit marks ts as fully installed and advances the watermark
// past every consecutive finished commit.
func (o *Oracle) FinishCommit(ts TS) {
	o.ring[ts%oracleRingSize].Store(ts)
	o.pending.Add(-1)
	o.advance()
}

// AbortCommit releases a commit timestamp whose transaction aborted after
// BeginCommit. The timestamp is treated as an empty commit: the watermark
// may pass it.
func (o *Oracle) AbortCommit(ts TS) { o.FinishCommit(ts) }

// advance walks the ring from the watermark over consecutive finished
// slots. A finisher whose slot a concurrent advancer already passed
// re-advances after storing its marker, so no finished commit is ever
// stranded below the watermark.
func (o *Oracle) advance() {
	o.advanceMu.Lock()
	w := o.watermark.Load()
	last := o.lastCommit.Load()
	for w < last && o.ring[(w+1)%oracleRingSize].Load() == w+1 {
		w++
		o.watermark.Store(w)
	}
	o.advanceMu.Unlock()
}

// ObserveCommit folds in a commit timestamp applied from a replication
// stream. The replica has no local committers, so an observed commit is
// fully installed by the time this is called and the watermark may
// advance to it (subject to any pending local commits, of which a replica
// has none).
func (o *Oracle) ObserveCommit(ts TS) {
	o.advanceMu.Lock()
	if ts > o.lastCommit.Load() {
		o.lastCommit.Store(ts)
	}
	if o.pending.Load() == 0 {
		if lc := o.lastCommit.Load(); lc > o.watermark.Load() {
			o.watermark.Store(lc)
		}
	}
	o.advanceMu.Unlock()
}

// Watermark returns the current commit watermark.
func (o *Oracle) Watermark() TS { return o.watermark.Load() }

// LastCommit returns the highest commit timestamp handed out so far.
func (o *Oracle) LastCommit() TS { return o.lastCommit.Load() }
