package core

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/trace"
	"neograph/internal/value"
)

// mutation is the neutral form of one entity change: what a commit
// installs, what the WAL records, and what recovery replays.
type mutation struct {
	key     entKey
	created bool
	deleted bool
	node    *NodeState // nodes: state (for tombstones, the last live state)
	rel     *RelState  // relationships: likewise
}

// Commit makes the transaction's writes visible atomically at a fresh
// commit timestamp and durable through the WAL.
//
// The durable commit path is a group-commit pipeline: the redo record is
// appended to the WAL (a buffered write) before installation, but the
// fsync that makes it durable is deferred to the wal.Batcher and awaited
// only after every latch has been released — so N concurrent committers
// share ~1 fsync, and the first-committer-wins latch is held only for
// validation+install, never across disk I/O. A transaction that read
// another's installed-but-not-yet-synced writes necessarily appends a
// later WAL record, so any fsync that covers it covers its dependency.
//
// Early visibility is a deliberate tradeoff (standard for early-lock-
// release group commit): between install and the batched fsync, readers
// can observe a commit that a crash would erase. Dependent *writers* are
// safe by the LSN argument above; a pure reader that must not act on
// unsynced state opts in to read-gating: Engine.WaitDurable at the
// commit's Tx.CommitLSN token blocks until the durability horizon covers
// it.
func (t *Tx) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	defer t.cleanup()

	muts := t.mutations()
	if len(muts) == 0 {
		t.e.stats.committed.Add(1)
		return nil
	}
	if t.e.replica.Load() {
		// Replicas apply the primary's stream and nothing else; local
		// writes would fork the log. The server layer redirects writers
		// to the primary before they get this far.
		t.abortStaged()
		t.e.stats.aborted.Add(1)
		return fmt.Errorf("%w: %d staged writes rejected", ErrReadOnlyReplica, len(muts))
	}

	// First-committer-wins validation: under the commit latches, every
	// non-created write must still derive from the chain head — any newer
	// committed version means a concurrent updater won. The latches cover
	// validation through install; they are dropped before the durability
	// wait. Only the stripes in the write footprint are latched (acquired
	// in ascending index order, so concurrent commits cannot deadlock):
	// commits touching disjoint stripes validate and install fully in
	// parallel, and the oracle's watermark protocol keeps readers off any
	// half-installed commit.
	var latched []*stripe
	unlatch := func() {
		for i := len(latched) - 1; i >= 0; i-- {
			latched[i].valMu.Unlock()
		}
		latched = nil
	}
	// Tracing: sp is nil on unsampled commits, making every span call a
	// nil check. finishValidate is idempotent (Finish records once), so
	// it both runs deferred for the conflict-return paths and explicitly
	// on the success path for an accurate validation end time.
	sp := t.span
	var vsp *trace.Span
	var stripeSpans []*trace.Span
	finishValidate := func() {
		for i := len(stripeSpans) - 1; i >= 0; i-- {
			stripeSpans[i].Finish()
		}
		vsp.Finish()
	}
	defer finishValidate()
	if t.iso == SnapshotIsolation && t.e.opts.Conflict == FirstCommitterWins {
		vsp = sp.Child("commit.validate")
		latched = t.e.latchFCW(t.writes)
		defer unlatch()
		if vsp != nil {
			for _, st := range latched {
				ss := vsp.Child("validate.stripe")
				ss.Set("stripe", strconv.Itoa(t.e.stripeIndexOf(st)))
				stripeSpans = append(stripeSpans, ss)
			}
		}
		// FCW takes no long locks, so a prepared-but-undecided cross-
		// partition transaction guards its keys through the per-stripe
		// prepared tables instead — checked here under the same latches.
		preparedConflict := func(k entKey) error {
			s := t.e.stripeOf(k)
			if g, ok := s.prep[k]; ok {
				t.e.stats.conflicts.Add(1)
				s.conflicts.Add(1)
				t.abortStaged()
				return fmt.Errorf("%w: %s held by prepared transaction %d", ErrWriteConflict, fmtKey(k), g)
			}
			return nil
		}
		for _, w := range t.writes {
			if w.created {
				// Relationship creations validate endpoint liveness.
				if w.rel != nil && !w.deleted {
					for _, n := range []ids.ID{w.rel.Start, w.rel.End} {
						if !t.e.OwnsID(n) {
							continue // a remote endpoint is guarded by its own partition
						}
						if err := t.validateEndpointAlive(n); err != nil {
							t.e.stats.conflicts.Add(1)
							t.e.stripeOf(entKey{lock.KindNode, n}).conflicts.Add(1)
							t.abortStaged()
							return err
						}
						if err := preparedConflict(entKey{lock.KindNode, n}); err != nil {
							return err
						}
					}
				}
				continue
			}
			if err := preparedConflict(w.key); err != nil {
				return err
			}
			o := t.e.getObject(w.key)
			if o == nil || o.chain.Head() != w.base {
				t.e.stats.conflicts.Add(1)
				t.e.stripeOf(w.key).conflicts.Add(1)
				t.abortStaged()
				return fmt.Errorf("%w: %s modified by concurrent transaction (first-committer-wins)",
					ErrWriteConflict, fmtKey(w.key))
			}
		}
		finishValidate()
	}

	// Durability: the redo record precedes installation (write-ahead).
	// The record is rendered into a pooled buffer: WAL.Append writes the
	// bytes through before returning, so the buffer is recycled
	// immediately — the commit hot path allocates no encode buffer once
	// the pool is warm.
	//
	// The commit timestamp is assigned *inside* walSeqMu together with
	// the append, so timestamp order and LSN order agree: a replica
	// applies the log in LSN order and fast-forwards its watermark to
	// each observed timestamp, which is only sound if every lower
	// timestamp's record precedes it in the log. The record is encoded
	// with a placeholder timestamp outside the critical section and
	// patched once the timestamp is known.
	var cts mvcc.TS
	var commitLSN uint64
	if t.e.store == nil {
		// Memory-only engine: no log, no replicas — the timestamp needs
		// no ordering beyond the oracle's own.
		cts = t.e.oracle.BeginCommit()
	} else {
		t.e.commitGate.RLock()
		buf := commitBufPool.Get().(*commitBuf)
		buf.b = appendCommit(buf.b[:0], 0, muts)
		payloadLen := len(buf.b)
		// A traced commit announces its context to replicas with a 'T'
		// record appended (inside walSeqMu) immediately before its commit
		// record: the far side of the shipper stream stashes it and spans
		// the very next commit's apply. Encoded outside the mutex.
		var traceRec []byte
		if sp != nil {
			traceRec = encodeTrace(sp.Context())
		}
		wsp := sp.Child("wal.append")
		t.e.walSeqMu.Lock()
		cts = t.e.oracle.BeginCommit()
		binary.LittleEndian.PutUint64(buf.b[1:], cts)
		var lsn uint64
		var err error
		if traceRec != nil {
			_, err = t.e.wal.Append(traceRec)
		}
		if err == nil {
			lsn, err = t.e.wal.Append(buf.b)
		}
		t.e.walSeqMu.Unlock()
		wsp.Finish()
		commitBufPool.Put(buf)
		if err != nil {
			t.e.commitGate.RUnlock()
			t.e.oracle.AbortCommit(cts)
			t.abortStaged()
			return fmt.Errorf("core: wal append: %w", err)
		}
		commitLSN = lsn
		t.commitEnd = CommitRecordEnd(lsn, payloadLen)
		if t.e.batcher == nil && !t.e.opts.NoSyncCommits {
			// Per-commit fsync baseline (Options.NoGroupCommit): the record
			// is made durable before install, so a failed sync can still
			// abort the transaction cleanly.
			ssp := sp.Child("wal.sync")
			err := t.e.wal.Sync()
			ssp.Finish()
			if err != nil {
				t.e.commitGate.RUnlock()
				t.e.oracle.AbortCommit(cts)
				t.abortStaged()
				return fmt.Errorf("core: wal sync: %w", err)
			}
		}
	}

	isp := sp.Child("commit.install")
	keys := make([]entKey, 0, len(muts))
	for _, m := range muts {
		t.e.install(m, cts)
		keys = append(keys, m.key)
	}
	t.e.markDirty(keys)
	if t.e.store != nil {
		t.e.commitGate.RUnlock()
	}
	isp.Finish()

	t.e.oracle.FinishCommit(cts)
	unlatch()

	// Group commit: park until a batched fsync covers our record. Runs
	// outside commitMu and commitGate so validation and installs proceed
	// while the disk works. A failed fsync cannot be rolled back — the
	// versions are already installed — so it poisons the batcher and every
	// durable commit from here on fails loudly.
	if t.e.batcher != nil {
		fsp := sp.Child("wal.fsync_batch")
		err := t.e.batcher.WaitDurable(commitLSN)
		fsp.Finish()
		if err != nil {
			return fmt.Errorf("core: commit %d installed but not durable: %w", cts, err)
		}
	}
	// Synchronous replication: when the shipper installed a quorum hook,
	// the acknowledgement additionally waits until enough replicas have
	// acked the record's end position (or the shipper degrades to async
	// after its timeout). Like the durability wait, this runs outside
	// every latch.
	if fn := t.e.commitSyncWait(); fn != nil && t.commitEnd > 0 {
		qsp := sp.Child("repl.quorum_wait")
		err := fn(t.commitEnd)
		qsp.Finish()
		if err != nil {
			return fmt.Errorf("core: commit %d durable but not replicated: %w", cts, err)
		}
	}
	t.commitTS = cts
	t.e.stats.committed.Add(1)
	return nil
}

// latchFCW acquires the first-committer-wins validation latches for the
// stripes in a transaction's write footprint, in ascending stripe order
// so two commits latching overlapping sets cannot deadlock. The footprint
// includes the endpoint nodes of created relationships: their liveness
// check must be serialised against any concurrent commit deleting them.
// The returned stripes are latched and must be released in reverse order.
func (e *Engine) latchFCW(writes map[entKey]*writeEntry) []*stripe {
	// The footprint is an insertion-sorted dedup'd set of stripe indices,
	// kept in a stack array: it is bounded by the stripe count, and small
	// transactions (the hot case) must not allocate here.
	var stack [maxCommitStripes]uint16
	idxs := stack[:0]
	add := func(idx uint64) {
		i := len(idxs)
		for i > 0 && uint64(idxs[i-1]) > idx {
			i--
		}
		if i > 0 && uint64(idxs[i-1]) == idx {
			return
		}
		idxs = append(idxs, 0)
		copy(idxs[i+1:], idxs[i:])
		idxs[i] = uint16(idx)
	}
	for k, w := range writes {
		add(e.stripeIndex(k))
		if w.created && w.rel != nil && !w.deleted {
			add(e.stripeIndex(entKey{lock.KindNode, w.rel.Start}))
			if w.rel.End != w.rel.Start {
				add(e.stripeIndex(entKey{lock.KindNode, w.rel.End}))
			}
		}
	}
	latched := make([]*stripe, 0, len(idxs))
	for _, idx := range idxs {
		s := &e.stripes[idx]
		s.valMu.Lock()
		latched = append(latched, s)
	}
	return latched
}

// validateEndpointAlive checks (under the FCW commit latch) that a
// relationship endpoint is still live at commit time.
func (t *Tx) validateEndpointAlive(node ids.ID) error {
	if w, ok := t.writes[entKey{lock.KindNode, node}]; ok {
		if w.deleted {
			return fmt.Errorf("%w: endpoint node %d deleted", ErrNotFound, node)
		}
		return nil
	}
	o := t.e.getObject(entKey{lock.KindNode, node})
	if o == nil {
		return fmt.Errorf("%w: endpoint node %d", ErrNotFound, node)
	}
	head := o.chain.Head()
	if head == nil || head.Deleted {
		return fmt.Errorf("%w: endpoint node %d deleted by concurrent transaction", ErrWriteConflict, node)
	}
	return nil
}

// mutations converts the write set to install order, dropping writes that
// cancelled out (created then deleted in the same transaction).
func (t *Tx) mutations() []mutation {
	out := make([]mutation, 0, len(t.order))
	for _, k := range t.order {
		w := t.writes[k]
		if w.created && w.deleted {
			continue
		}
		m := mutation{key: w.key, created: w.created, deleted: w.deleted}
		if w.deleted {
			// Tombstones carry the last live state so the checkpointer can
			// persist a complete deleted image (paper §4: tombstones are
			// kept until no active transaction can read an older version).
			switch {
			case w.node != nil:
				m.node = w.node
			case w.rel != nil:
				m.rel = w.rel
			case w.base != nil && k.kind == lock.KindNode:
				m.node = w.base.Data.(*NodeState)
			case w.base != nil:
				m.rel = w.base.Data.(*RelState)
			}
		} else {
			m.node, m.rel = w.node, w.rel
		}
		out = append(out, m)
	}
	return out
}

// Abort discards the transaction's staged writes and releases its locks
// and snapshot registration.
func (t *Tx) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.abortStaged()
	t.cleanup()
	t.e.stats.aborted.Add(1)
	return nil
}

// abortStaged returns IDs allocated for created-but-never-committed
// entities.
func (t *Tx) abortStaged() {
	for k, w := range t.writes {
		if !w.created {
			continue
		}
		if k.kind == lock.KindNode {
			t.e.releaseNodeID(k.id)
		} else {
			t.e.releaseRelID(k.id)
		}
	}
}

// cleanup releases long locks and the snapshot registration.
func (t *Tx) cleanup() {
	t.e.locks.ReleaseAll(t.id)
	if t.iso == SnapshotIsolation {
		t.e.active.Unregister(t.id)
	}
}

// install applies one mutation to the object cache, adjacency, indexes
// and GC bookkeeping at commit timestamp cts. Also used by recovery.
func (e *Engine) install(m mutation, cts mvcc.TS) {
	o := e.ensureObject(m.key)

	// Snapshot the previous head state for the index diff.
	var oldNode *NodeState
	var oldRel *RelState
	if head := o.chain.Head(); head != nil && !head.Deleted {
		switch m.key.kind {
		case lock.KindNode:
			oldNode = head.Data.(*NodeState)
		case lock.KindRel:
			oldRel = head.Data.(*RelState)
		}
	}

	v := &mvcc.Version{CommitTS: cts, Deleted: m.deleted}
	switch m.key.kind {
	case lock.KindNode:
		v.Data = m.node
	case lock.KindRel:
		v.Data = m.rel
	}
	superseded := o.chain.Install(v)
	if e.opts.GCMode == GCThreaded {
		if superseded != nil {
			e.gcList.Add(superseded)
		}
		if m.deleted {
			// The tombstone becomes collectable at its own timestamp.
			v.SupersededAt = cts
			e.gcList.Add(v)
		}
	}

	// Adjacency: a created relationship attaches to both endpoints.
	if m.key.kind == lock.KindRel && m.created && m.rel != nil {
		o.start, o.end = m.rel.Start, m.rel.End
		if m.rel.End == m.rel.Start {
			e.addAdjacency(m.rel.Start, m.key.id, adjOut|adjIn)
		} else {
			e.addAdjacency(m.rel.Start, m.key.id, adjOut)
			e.addAdjacency(m.rel.End, m.key.id, adjIn)
		}
	}

	// Versioned index maintenance (§4): diff old state against new.
	switch m.key.kind {
	case lock.KindNode:
		e.indexNodeDiff(m.key.id, oldNode, liveNode(m), cts)
	case lock.KindRel:
		e.indexRelDiff(m.key.id, oldRel, liveRel(m), cts)
	}
}

func liveNode(m mutation) *NodeState {
	if m.deleted {
		return nil
	}
	return m.node
}

func liveRel(m mutation) *RelState {
	if m.deleted {
		return nil
	}
	return m.rel
}

// indexNodeDiff updates the label and node-property indexes for a node
// transition old → new at commit timestamp cts (nil means absent/dead).
func (e *Engine) indexNodeDiff(id ids.ID, old, new *NodeState, cts mvcc.TS) {
	var oldLabels []string
	var oldProps value.Map
	if old != nil {
		oldLabels, oldProps = old.Labels, old.Props
	}
	var newLabels []string
	var newProps value.Map
	if new != nil {
		newLabels, newProps = new.Labels, new.Props
	}
	for _, l := range oldLabels {
		if new == nil || !hasLabel(newLabels, l) {
			e.labelIdx.Remove(e.tok.get(tokLabel, l), id, cts)
		}
	}
	for _, l := range newLabels {
		if old == nil || !hasLabel(oldLabels, l) {
			e.labelIdx.Add(e.tok.get(tokLabel, l), id, cts)
		}
	}
	for k, ov := range oldProps {
		nv, ok := newProps[k]
		if !ok || !nv.Equal(ov) {
			e.nodePropIdx.Remove(e.tok.get(tokPropKey, k), ov, id, cts)
		}
	}
	for k, nv := range newProps {
		ov, ok := oldProps[k]
		if !ok || !ov.Equal(nv) {
			e.nodePropIdx.Add(e.tok.get(tokPropKey, k), nv, id, cts)
		}
	}
}

// indexRelDiff updates the relationship property index.
func (e *Engine) indexRelDiff(id ids.ID, old, new *RelState, cts mvcc.TS) {
	var oldProps, newProps value.Map
	if old != nil {
		oldProps = old.Props
	}
	if new != nil {
		newProps = new.Props
	}
	for k, ov := range oldProps {
		nv, ok := newProps[k]
		if !ok || !nv.Equal(ov) {
			e.relPropIdx.Remove(e.tok.get(tokPropKey, k), ov, id, cts)
		}
	}
	for k, nv := range newProps {
		ov, ok := oldProps[k]
		if !ok || !ov.Equal(nv) {
			e.relPropIdx.Add(e.tok.get(tokPropKey, k), nv, id, cts)
		}
	}
}

// ---- WAL commit-record codec ----

// Record type tags.
const (
	recCommit     = 'C'
	recCheckpoint = 'K'
	// recTrace carries a sampled commit's tracing context to replicas:
	// it is appended immediately before its commit record (both inside
	// walSeqMu, so nothing interleaves) and installs nothing. Recovery
	// skips it; a replica stashes it and spans the next commit's apply.
	recTrace = 'T'
)

// encodeTrace renders a trace-context record: tag, then the trace ID
// and parent span ID as length-prefixed strings.
func encodeTrace(c trace.Context) []byte {
	buf := make([]byte, 0, 3+len(c.TraceID)+len(c.SpanID))
	buf = append(buf, recTrace)
	buf = append(buf, byte(len(c.TraceID)))
	buf = append(buf, c.TraceID...)
	buf = append(buf, byte(len(c.SpanID)))
	buf = append(buf, c.SpanID...)
	return buf
}

// decodeTrace parses a trace-context record.
func decodeTrace(payload []byte) (trace.Context, error) {
	if len(payload) < 3 || payload[0] != recTrace {
		return trace.Context{}, fmt.Errorf("core: not a trace record")
	}
	off := 1
	tl := int(payload[off])
	off++
	if off+tl+1 > len(payload) {
		return trace.Context{}, fmt.Errorf("core: corrupt trace record (trace id)")
	}
	tid := string(payload[off : off+tl])
	off += tl
	sl := int(payload[off])
	off++
	if off+sl != len(payload) {
		return trace.Context{}, fmt.Errorf("core: corrupt trace record (span id)")
	}
	return trace.Context{TraceID: tid, SpanID: string(payload[off : off+sl])}, nil
}

// stripeIndexOf resolves a latched stripe back to its index (tracing
// attrs only — a linear scan bounded by maxCommitStripes, paid solely
// on sampled commits).
func (e *Engine) stripeIndexOf(st *stripe) int {
	for i := range e.stripes {
		if &e.stripes[i] == st {
			return i
		}
	}
	return -1
}

// commitBuf wraps the pooled commit-record encode buffer (boxed so the
// pool traffics in pointers, not slice headers).
type commitBuf struct{ b []byte }

var commitBufPool = sync.Pool{
	New: func() any { return &commitBuf{b: make([]byte, 0, 1024)} },
}

// encodeCommit renders a commit record: tag, timestamp, mutation list.
func encodeCommit(cts mvcc.TS, muts []mutation) []byte {
	return appendCommit(make([]byte, 0, 64*len(muts)+16), cts, muts)
}

// appendCommit renders a commit record into buf (the hot commit path
// passes a pooled buffer).
func appendCommit(buf []byte, cts mvcc.TS, muts []mutation) []byte {
	buf = append(buf, recCommit)
	buf = binary.LittleEndian.AppendUint64(buf, cts)
	return appendMutations(buf, muts)
}

// appendMutations renders a mutation list (the shared tail of commit and
// prepare records): count, then each mutation's key, flags and payload.
func appendMutations(buf []byte, muts []mutation) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		var kind byte
		if m.key.kind == lock.KindRel {
			kind = 1
		}
		buf = append(buf, kind)
		buf = binary.LittleEndian.AppendUint64(buf, m.key.id)
		var flags byte
		if m.created {
			flags |= 1
		}
		if m.deleted {
			flags |= 2
		}
		buf = append(buf, flags)
		switch m.key.kind {
		case lock.KindNode:
			st := m.node
			if st == nil {
				st = &NodeState{}
			}
			buf = binary.AppendUvarint(buf, uint64(len(st.Labels)))
			for _, l := range st.Labels {
				buf = binary.AppendUvarint(buf, uint64(len(l)))
				buf = append(buf, l...)
			}
			buf = value.AppendMap(buf, st.Props)
		case lock.KindRel:
			st := m.rel
			if st == nil {
				st = &RelState{}
			}
			buf = binary.AppendUvarint(buf, uint64(len(st.Type)))
			buf = append(buf, st.Type...)
			buf = binary.LittleEndian.AppendUint64(buf, st.Start)
			buf = binary.LittleEndian.AppendUint64(buf, st.End)
			buf = value.AppendMap(buf, st.Props)
		}
	}
	return buf
}

// encodeCheckpoint renders a checkpoint record at watermark w.
func encodeCheckpoint(w mvcc.TS) []byte {
	buf := make([]byte, 0, 9)
	buf = append(buf, recCheckpoint)
	return binary.LittleEndian.AppendUint64(buf, w)
}

// minMutationBytes is the smallest possible encoded mutation: kind (1) +
// id (8) + flags (1); the payload that follows only adds bytes. It caps
// how many mutations a record of a given size can possibly hold, so a
// corrupt count cannot drive a huge allocation.
const minMutationBytes = 10

// decodeCommit parses a commit record. Returns the commit timestamp and
// mutations.
func decodeCommit(payload []byte) (mvcc.TS, []mutation, error) {
	if len(payload) < 9 || payload[0] != recCommit {
		return 0, nil, fmt.Errorf("core: not a commit record")
	}
	cts := binary.LittleEndian.Uint64(payload[1:])
	muts, _, err := decodeMutations(payload, 9)
	if err != nil {
		return 0, nil, err
	}
	return cts, muts, nil
}

// decodeMutations parses a mutation list starting at off and returns the
// mutations plus the offset just past them.
func decodeMutations(payload []byte, off int) ([]mutation, int, error) {
	n, sz := binary.Uvarint(payload[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("core: corrupt commit record (count)")
	}
	off += sz
	if n > uint64(len(payload)-off)/minMutationBytes {
		return nil, 0, fmt.Errorf("core: corrupt commit record (count %d exceeds %d payload bytes)",
			n, len(payload)-off)
	}
	muts := make([]mutation, 0, n)
	for i := uint64(0); i < n; i++ {
		if off+10 > len(payload) {
			return nil, 0, fmt.Errorf("core: corrupt commit record (header)")
		}
		var m mutation
		if payload[off] == 1 {
			m.key.kind = lock.KindRel
		} else {
			m.key.kind = lock.KindNode
		}
		m.key.id = binary.LittleEndian.Uint64(payload[off+1:])
		flags := payload[off+9]
		m.created = flags&1 != 0
		m.deleted = flags&2 != 0
		off += 10
		switch m.key.kind {
		case lock.KindNode:
			nl, sz := binary.Uvarint(payload[off:])
			// Each label costs at least one length byte, bounding the count
			// by the bytes remaining.
			if sz <= 0 || nl > uint64(len(payload)-off-sz) {
				return nil, 0, fmt.Errorf("core: corrupt commit record (labels)")
			}
			off += sz
			st := &NodeState{}
			for j := uint64(0); j < nl; j++ {
				ll, sz := binary.Uvarint(payload[off:])
				if sz <= 0 || off+sz+int(ll) > len(payload) {
					return nil, 0, fmt.Errorf("core: corrupt commit record (label)")
				}
				off += sz
				st.Labels = append(st.Labels, string(payload[off:off+int(ll)]))
				off += int(ll)
			}
			props, consumed, err := value.DecodeMap(payload[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("core: corrupt commit record: %w", err)
			}
			off += consumed
			st.Props = props
			m.node = st
		case lock.KindRel:
			tl, sz := binary.Uvarint(payload[off:])
			if sz <= 0 || off+sz+int(tl) > len(payload) {
				return nil, 0, fmt.Errorf("core: corrupt commit record (type)")
			}
			off += sz
			st := &RelState{Type: string(payload[off : off+int(tl)])}
			off += int(tl)
			if off+16 > len(payload) {
				return nil, 0, fmt.Errorf("core: corrupt commit record (endpoints)")
			}
			st.Start = binary.LittleEndian.Uint64(payload[off:])
			st.End = binary.LittleEndian.Uint64(payload[off+8:])
			off += 16
			props, consumed, err := value.DecodeMap(payload[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("core: corrupt commit record: %w", err)
			}
			off += consumed
			st.Props = props
			m.rel = st
		}
		muts = append(muts, m)
	}
	return muts, off, nil
}
