package core

import (
	"errors"
	"fmt"
	"testing"

	"neograph/internal/faultfs"
	"neograph/internal/value"
)

// This file is the checkpoint half of the crash story: the WAL crash
// matrix (repl package) proves the log path; here the process dies at
// every store-file operation a checkpoint performs — page writes, page
// fsyncs, the checkpoint marker, the truncation-side WAL ops — and
// recovery must replay the retained WAL into an untorn store with every
// committed entity intact.

// checkpointWorkload commits a mix of nodes and relationships so a
// checkpoint touches both record stores plus the dynamic/property
// stores.
const checkpointWorkload = 12

func runCheckpointWorkload(t *testing.T, e *Engine) []uint64 {
	t.Helper()
	ids := make([]uint64, 0, checkpointWorkload)
	for i := 0; i < checkpointWorkload; i++ {
		id := seedNode(t, e, []string{"CW"}, value.Map{"v": value.Int(int64(i))})
		ids = append(ids, id)
		if i > 0 && i%3 == 0 {
			tx := e.Begin()
			if _, err := tx.CreateRel("LINK", ids[i-1], id, value.Map{"i": value.Int(int64(i))}); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, tx)
		}
	}
	return ids
}

// verifyWorkload asserts every committed entity survived, readable
// end to end (labels, props, and the relationship chains the store
// links — a torn page would surface here).
func verifyWorkload(t *testing.T, e *Engine, ids []uint64) {
	t.Helper()
	tx := e.Begin()
	defer tx.Abort()
	got, err := tx.NodesByLabel("CW")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("recovered %d CW nodes, want %d", len(got), len(ids))
	}
	for i, id := range ids {
		n, err := tx.GetNode(id)
		if err != nil {
			t.Fatalf("node %d lost: %v", id, err)
		}
		if v, _ := n.Props["v"].AsInt(); v != int64(i) {
			t.Fatalf("node %d has v=%d, want %d", id, v, i)
		}
		if i > 0 && i%3 == 0 {
			rels, err := tx.Relationships(id, Incoming, "LINK")
			if err != nil || len(rels) != 1 {
				t.Fatalf("node %d LINK chain broken: %d rels, err=%v", id, len(rels), err)
			}
		}
	}
}

// recordCheckpointPoints returns, per crash point, the hit range
// [first, last] that falls inside Checkpoint() (as opposed to the
// commit workload before it).
func recordCheckpointPoints(t *testing.T) (before, after map[string]int) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	e, err := Open(Options{Dir: t.TempDir(), FS: inj, WALSegmentSize: 2048, StoreCachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	runCheckpointWorkload(t, e)
	before = inj.Counts()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after = inj.Counts()
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	if after["store.write"] <= before["store.write"] || after["store.sync"] <= before["store.sync"] {
		t.Fatalf("checkpoint performed no store writes: before %v after %v", before, after)
	}
	return before, after
}

// runCheckpointCrashCase repeats the workload, kills the engine at the
// armed point inside Checkpoint, and asserts recovery yields an untorn,
// fully usable store.
func runCheckpointCrashCase(t *testing.T, fault faultfs.Fault) {
	t.Helper()
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	e, err := Open(Options{Dir: dir, FS: inj, WALSegmentSize: 2048, StoreCachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	ids := runCheckpointWorkload(t, e)
	inj.Arm(fault)
	cerr := e.Checkpoint()
	if cerr == nil && inj.Fired() {
		t.Fatal("checkpoint reported success after an injected crash")
	}
	if cerr != nil && !errors.Is(cerr, faultfs.ErrCrashed) {
		t.Fatalf("checkpoint failed with a non-injected error: %v", cerr)
	}
	e.Crash()

	// Recovery on the real filesystem: whatever prefix of the checkpoint
	// reached the store, the retained WAL must rebuild the full committed
	// state — replay is idempotent over already-persisted entities.
	re, err := Open(Options{Dir: dir, WALSegmentSize: 2048, StoreCachePages: 8})
	if err != nil {
		t.Fatalf("recovery after checkpoint crash: %v", err)
	}
	verifyWorkload(t, re, ids)

	// The recovered engine checkpoints and commits cleanly — no poisoned
	// state, no torn store pages resurfacing on the next write-back.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
	seedNode(t, re, []string{"CW2"}, nil)
	verifyWorkload(t, re, ids)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCrashMatrix kills the engine at every store-file and
// WAL crash point inside Checkpoint — clean kills on every hit, torn
// writes on every even store-page write.
func TestCheckpointCrashMatrix(t *testing.T) {
	before, after := recordCheckpointPoints(t)
	cases := 0
	for point, total := range after {
		// Arm resets hit counts, so the armed hit is 1-based from the
		// start of the checkpoint: one case per op the recording pass saw
		// inside Checkpoint itself.
		for hit := 1; hit <= total-before[point]; hit++ {
			fault := faultfs.Fault{Point: point, Hit: hit, Mode: faultfs.ModeCrash}
			name := fmt.Sprintf("%s-%d-kill", point, hit)
			if point == "store.write" && hit%2 == 0 {
				fault.Mode, fault.TornBytes = faultfs.ModeTornWrite, -1
				name = fmt.Sprintf("%s-%d-torn", point, hit)
			}
			cases++
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runCheckpointCrashCase(t, fault)
			})
		}
	}
	if cases < 8 {
		t.Fatalf("checkpoint crash matrix too small: %d cases (before %v, after %v)", cases, before, after)
	}
}

// TestCheckpointCrashThenSecondCheckpoint: a crash between two
// checkpoints must not lose entities only the FIRST checkpoint
// persisted — once the WAL below the cut is truncated, the store is the
// only copy, so the truncation must strictly follow the store fsync.
func TestCheckpointCrashThenSecondCheckpoint(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, nil)
	e, err := Open(Options{Dir: dir, FS: inj, WALSegmentSize: 2048, StoreCachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	ids := runCheckpointWorkload(t, e)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second round of commits, then die on its checkpoint's first store
	// fsync: the first checkpoint's truncation already dropped the early
	// WAL, so recovery must find those entities in the store alone.
	for i := 0; i < 5; i++ {
		ids = append(ids, seedNode(t, e, []string{"CW"}, value.Map{"v": value.Int(int64(checkpointWorkload + i))}))
	}
	// Arm resets hit counts, so hit 1 is the first store fsync of the
	// second checkpoint (no new tokens exist, so it is a page flush).
	inj.Arm(faultfs.Fault{Point: "store.sync", Hit: 1, Mode: faultfs.ModeCrash})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("second checkpoint survived the injected crash")
	}
	e.Crash()

	re, err := Open(Options{Dir: dir, WALSegmentSize: 2048, StoreCachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tx := re.Begin()
	defer tx.Abort()
	got, err := tx.NodesByLabel("CW")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("recovered %d CW nodes, want %d", len(got), len(ids))
	}
}
