package core

import (
	"errors"
	"reflect"
	"testing"

	"neograph/internal/value"
)

// memEngine returns an in-memory engine with default (SI, FUW) options.
func memEngine(t *testing.T, opts ...func(*Options)) *Engine {
	t.Helper()
	o := Options{}
	for _, f := range opts {
		f(&o)
	}
	e, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// seedNode creates and commits one node, returning its ID.
func seedNode(t *testing.T, e *Engine, labels []string, props value.Map) uint64 {
	t.Helper()
	tx := e.Begin()
	id, err := tx.CreateNode(labels, props)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	return id
}

func TestCreateGetNode(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, []string{"Person", "Admin"}, value.Map{"name": value.String("ada")})

	tx := e.Begin()
	defer tx.Abort()
	n, err := tx.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.Labels, []string{"Admin", "Person"}) {
		t.Errorf("labels = %v (must be sorted, deduped)", n.Labels)
	}
	if v, _ := n.Props["name"].AsString(); v != "ada" {
		t.Errorf("props = %v", n.Props)
	}
}

func TestGetNodeMissing(t *testing.T) {
	e := memEngine(t)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := tx.GetNode(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if ok, _ := tx.NodeExists(99); ok {
		t.Fatal("NodeExists(99) = true")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	e := memEngine(t)
	tx := e.Begin()
	id, err := tx.CreateNode([]string{"Person"}, value.Map{"name": value.String("bob")})
	if err != nil {
		t.Fatal(err)
	}
	// Visible to the creator before commit (§3).
	n, err := tx.GetNode(id)
	if err != nil {
		t.Fatalf("creator cannot read own write: %v", err)
	}
	if v, _ := n.Props["name"].AsString(); v != "bob" {
		t.Fatal("own write has wrong state")
	}
	// Invisible to a concurrent transaction (uncommitted data is private).
	tx2 := e.Begin()
	if _, err := tx2.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted node leaked to another transaction: %v", err)
	}
	tx2.Abort()
	mustCommit(t, tx)
	// Visible after commit.
	tx3 := e.Begin()
	defer tx3.Abort()
	if _, err := tx3.GetNode(id); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateOwnWriteStacks(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"n": value.Int(0)})
	tx := e.Begin()
	for i := 1; i <= 3; i++ {
		if err := tx.SetNodeProp(id, "n", value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		n, _ := tx.GetNode(id)
		if v, _ := n.Props["n"].AsInt(); v != int64(i) {
			t.Fatalf("iteration %d: read %d", i, v)
		}
	}
	mustCommit(t, tx)
	tx2 := e.Begin()
	defer tx2.Abort()
	n, _ := tx2.GetNode(id)
	if v, _ := n.Props["n"].AsInt(); v != 3 {
		t.Fatalf("committed value = %d, want 3 (one version per commit, not per write)", v)
	}
	// Exactly two versions exist: the create and the one update commit.
	versions, _ := e.VersionCount()
	if versions != 2 {
		t.Fatalf("versions = %d, want 2", versions)
	}
}

func TestAbortDiscards(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(1)})
	tx := e.Begin()
	if err := tx.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	newID, _ := tx.CreateNode(nil, nil)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	defer tx2.Abort()
	n, _ := tx2.GetNode(id)
	if v, _ := n.Props["v"].AsInt(); v != 1 {
		t.Fatalf("aborted write leaked: v = %d", v)
	}
	if _, err := tx2.GetNode(newID); !errors.Is(err, ErrNotFound) {
		t.Fatal("aborted create leaked")
	}
	// The aborted transaction's node ID is recycled.
	tx3 := e.Begin()
	defer tx3.Abort()
	id3, _ := tx3.CreateNode(nil, nil)
	if id3 != newID {
		t.Fatalf("expected recycled id %d, got %d", newID, id3)
	}
}

func TestTxDoneErrors(t *testing.T) {
	e := memEngine(t)
	tx := e.Begin()
	mustCommit(t, tx)
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("abort after commit = %v", err)
	}
	if _, err := tx.GetNode(0); !errors.Is(err, ErrTxDone) {
		t.Fatalf("read after commit = %v", err)
	}
	if _, err := tx.CreateNode(nil, nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("write after commit = %v", err)
	}
}

func TestLabelsAddRemove(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, []string{"A"}, nil)
	tx := e.Begin()
	if err := tx.AddLabel(id, "B"); err != nil {
		t.Fatal(err)
	}
	if err := tx.RemoveLabel(id, "A"); err != nil {
		t.Fatal(err)
	}
	if has, _ := tx.HasLabel(id, "B"); !has {
		t.Fatal("own label add invisible")
	}
	if has, _ := tx.HasLabel(id, "A"); has {
		t.Fatal("own label remove invisible")
	}
	mustCommit(t, tx)
	tx2 := e.Begin()
	defer tx2.Abort()
	n, _ := tx2.GetNode(id)
	if !reflect.DeepEqual(n.Labels, []string{"B"}) {
		t.Fatalf("labels = %v", n.Labels)
	}
}

func TestPropsSetRemove(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"a": value.Int(1), "b": value.Int(2)})
	tx := e.Begin()
	if err := tx.RemoveNodeProp(id, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetNodeProps(id, value.Map{"b": value.Null, "c": value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx2 := e.Begin()
	defer tx2.Abort()
	n, _ := tx2.GetNode(id)
	want := value.Map{"c": value.Int(3)}
	if !n.Props.Equal(want) {
		t.Fatalf("props = %v, want %v", n.Props, want)
	}
}

func TestCreateRelAndTraverse(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	c := seedNode(t, e, nil, nil)

	tx := e.Begin()
	r1, err := tx.CreateRel("KNOWS", a, b, value.Map{"since": value.Int(2009)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tx.CreateRel("WORKS_WITH", a, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// RYOW traversal before commit.
	rels, err := tx.Relationships(a, Outgoing)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("own rels = %d, want 2", len(rels))
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	defer tx2.Abort()
	rels, _ = tx2.Relationships(a, Outgoing)
	if len(rels) != 2 || rels[0].ID != r1 || rels[1].ID != r2 {
		t.Fatalf("rels = %+v", rels)
	}
	// Type filter.
	rels, _ = tx2.Relationships(a, Outgoing, "KNOWS")
	if len(rels) != 1 || rels[0].ID != r1 {
		t.Fatalf("typed rels = %+v", rels)
	}
	// Direction.
	rels, _ = tx2.Relationships(b, Incoming)
	if len(rels) != 1 || rels[0].Start != a {
		t.Fatalf("incoming = %+v", rels)
	}
	if rels, _ := tx2.Relationships(b, Outgoing); len(rels) != 0 {
		t.Fatalf("outgoing of b = %+v", rels)
	}
	// Neighbors and degree.
	nbrs, _ := tx2.Neighbors(a, Both)
	if !reflect.DeepEqual(nbrs, []uint64{b, c}) {
		t.Fatalf("neighbors = %v", nbrs)
	}
	if d, _ := tx2.Degree(a, Both); d != 2 {
		t.Fatalf("degree = %d", d)
	}
	// GetRel.
	r, err := tx2.GetRel(r1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != "KNOWS" || r.Start != a || r.End != b {
		t.Fatalf("rel = %+v", r)
	}
	if v, _ := r.Props["since"].AsInt(); v != 2009 {
		t.Fatalf("rel props = %v", r.Props)
	}
}

func TestSelfLoopTraversal(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	tx := e.Begin()
	if _, err := tx.CreateRel("SELF", a, a, nil); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx2 := e.Begin()
	defer tx2.Abort()
	rels, _ := tx2.Relationships(a, Both)
	if len(rels) != 1 {
		t.Fatalf("self loop appears %d times, want 1", len(rels))
	}
	nbrs, _ := tx2.Neighbors(a, Both)
	if !reflect.DeepEqual(nbrs, []uint64{a}) {
		t.Fatalf("neighbors = %v", nbrs)
	}
}

func TestDeleteRel(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, _ := tx.CreateRel("R", a, b, nil)
	mustCommit(t, tx)

	tx2 := e.Begin()
	if err := tx2.DeleteRel(r); err != nil {
		t.Fatal(err)
	}
	if rels, _ := tx2.Relationships(a, Both); len(rels) != 0 {
		t.Fatal("own delete invisible in traversal")
	}
	mustCommit(t, tx2)

	tx3 := e.Begin()
	defer tx3.Abort()
	if _, err := tx3.GetRel(r); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted rel readable: %v", err)
	}
	if rels, _ := tx3.Relationships(a, Both); len(rels) != 0 {
		t.Fatalf("deleted rel in traversal: %+v", rels)
	}
}

func TestDeleteNodeRequiresNoRels(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	if _, err := tx.CreateRel("R", a, b, nil); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	if err := tx2.DeleteNode(a); !errors.Is(err, ErrHasRels) {
		t.Fatalf("err = %v, want ErrHasRels", err)
	}
	if err := tx2.DetachDeleteNode(a); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	tx3 := e.Begin()
	defer tx3.Abort()
	if _, err := tx3.GetNode(a); !errors.Is(err, ErrNotFound) {
		t.Fatal("detach-deleted node readable")
	}
	if rels, _ := tx3.Relationships(b, Both); len(rels) != 0 {
		t.Fatalf("dangling rel: %+v", rels)
	}
}

func TestCreateDeleteSameTxCancels(t *testing.T) {
	e := memEngine(t)
	tx := e.Begin()
	id, _ := tx.CreateNode(nil, nil)
	if err := tx.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	versions, entities := e.VersionCount()
	if versions != 0 || entities != 0 {
		t.Fatalf("cancelled create left %d versions, %d entities", versions, entities)
	}
}

func TestCreateRelToMissingNode(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := tx.CreateRel("R", a, 999, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := tx.CreateRel("", a, a, nil); err == nil {
		t.Fatal("empty rel type accepted")
	}
}

func TestRelPropsUpdate(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, _ := tx.CreateRel("R", a, b, value.Map{"w": value.Int(1)})
	mustCommit(t, tx)

	tx2 := e.Begin()
	if err := tx2.SetRelProp(r, "w", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.RemoveRelProp(r, "nope"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	tx3 := e.Begin()
	defer tx3.Abort()
	got, _ := tx3.GetRel(r)
	if v, _ := got.Props["w"].AsInt(); v != 2 {
		t.Fatalf("rel prop = %v", got.Props)
	}
}

func TestStatsCounts(t *testing.T) {
	e := memEngine(t)
	seedNode(t, e, nil, nil)
	tx := e.Begin()
	tx.Abort()
	s := e.Stats()
	if s.Begun != 2 || s.Committed != 1 || s.Aborted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWatermarkAdvances(t *testing.T) {
	e := memEngine(t)
	w0 := e.Watermark()
	seedNode(t, e, nil, nil)
	if e.Watermark() != w0+1 {
		t.Fatalf("watermark %d -> %d, want +1", w0, e.Watermark())
	}
}
