package core

import (
	"encoding/binary"
	"testing"

	"neograph/internal/lock"
	"neograph/internal/value"
)

// sampleMutations builds a representative mutation set: a labelled node
// with properties, a tombstoned node, and a relationship.
func sampleMutations() []mutation {
	return []mutation{
		{
			key:     entKey{lock.KindNode, 7},
			created: true,
			node: &NodeState{
				Labels: []string{"Account", "Person"},
				Props:  value.Map{"name": value.String("alice"), "balance": value.Int(42)},
			},
		},
		{
			key:     entKey{lock.KindNode, 9},
			deleted: true,
			node:    &NodeState{Labels: []string{"Gone"}},
		},
		{
			key:     entKey{lock.KindRel, 3},
			created: true,
			rel: &RelState{
				Type: "KNOWS", Start: 7, End: 9,
				Props: value.Map{"since": value.Int(2016)},
			},
		},
	}
}

func TestCommitCodecRoundTrip(t *testing.T) {
	muts := sampleMutations()
	payload := encodeCommit(123, muts)
	cts, got, err := decodeCommit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if cts != 123 {
		t.Fatalf("cts = %d", cts)
	}
	if len(got) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(got), len(muts))
	}
	if got[0].key != muts[0].key || !got[0].created || !got[0].node.Props["name"].Equal(value.String("alice")) {
		t.Fatalf("mutation 0 mismatch: %+v", got[0])
	}
	if !got[1].deleted || got[1].node.Labels[0] != "Gone" {
		t.Fatalf("mutation 1 mismatch: %+v", got[1])
	}
	if got[2].rel.Type != "KNOWS" || got[2].rel.Start != 7 || got[2].rel.End != 9 {
		t.Fatalf("mutation 2 mismatch: %+v", got[2])
	}
}

// TestDecodeCommitAbsurdCount regression-tests the count bound: a tiny
// payload claiming a huge mutation count must be rejected up front (the
// old check compared the count against the total payload length, which a
// small record with a large varint count slipped past, driving a giant
// allocation).
func TestDecodeCommitAbsurdCount(t *testing.T) {
	for _, count := range []uint64{2, 100, 1 << 20, 1 << 40} {
		buf := []byte{recCommit}
		buf = binary.LittleEndian.AppendUint64(buf, 1)
		buf = binary.AppendUvarint(buf, count)
		// One minimal mutation's worth of bytes at most: far fewer than
		// the claimed count needs.
		buf = append(buf, make([]byte, minMutationBytes)...)
		if _, _, err := decodeCommit(buf); err == nil {
			t.Fatalf("count %d over %d payload bytes decoded without error", count, len(buf))
		}
	}
	// The boundary case must still decode: exactly as many minimal
	// mutations as the bytes allow. (A zero-ID node with no labels and a
	// nil map is 12 bytes, so build the record honestly.)
	honest := encodeCommit(1, []mutation{{key: entKey{lock.KindNode, 1}}})
	if _, _, err := decodeCommit(honest); err != nil {
		t.Fatalf("honest minimal record rejected: %v", err)
	}
}

// FuzzDecodeCommit hammers the decoder with corrupted commit records: it
// must reject or decode them without panicking or over-allocating, and
// valid records must round-trip. Runs its seed corpus as a normal test;
// use `go test -fuzz FuzzDecodeCommit ./internal/core` to explore.
func FuzzDecodeCommit(f *testing.F) {
	f.Add(encodeCommit(1, sampleMutations()))
	f.Add(encodeCommit(999, []mutation{{key: entKey{lock.KindRel, 1 << 40}, deleted: true, rel: &RelState{Type: "X"}}}))
	f.Add([]byte{recCommit})
	f.Add([]byte{recCheckpoint, 0, 0, 0, 0, 0, 0, 0, 0})
	// Seed systematic single-byte corruptions of a valid record.
	base := encodeCommit(7, sampleMutations())
	for i := 0; i < len(base); i += 3 {
		cp := append([]byte(nil), base...)
		cp[i] ^= 0xFF
		f.Add(cp)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		cts, muts, err := decodeCommit(payload)
		if err != nil {
			return
		}
		// Whatever decoded must satisfy basic invariants: the count fits
		// the minimum-size bound and every mutation carries its payload.
		if len(muts) > len(payload)/minMutationBytes {
			t.Fatalf("decoded %d mutations from %d bytes", len(muts), len(payload))
		}
		for _, m := range muts {
			if m.key.kind == lock.KindNode && m.node == nil {
				t.Fatalf("node mutation without state (cts %d)", cts)
			}
			if m.key.kind == lock.KindRel && m.rel == nil {
				t.Fatalf("rel mutation without state (cts %d)", cts)
			}
		}
	})
}
