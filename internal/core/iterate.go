package core

import (
	"sort"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/value"
)

// readTS returns the timestamp index lookups should use: the snapshot for
// SI; "latest" for read committed (which by definition sees the newest
// committed state and therefore phantoms).
func (t *Tx) readTS() mvcc.TS {
	if t.iso == ReadCommitted {
		// Strictly below the live-entry sentinel so "added and never
		// removed" entries satisfy added <= ts < removed.
		return ^mvcc.TS(0) - 1
	}
	return t.startTS
}

// NodesByLabel returns the IDs of nodes carrying label in this
// transaction's view: the versioned label index filtered to the snapshot,
// merged with the private write set (read-your-own-writes).
func (t *Tx) NodesByLabel(label string) ([]ids.ID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var committed []uint64
	if tok, ok := t.e.tok.lookup(tokLabel, label); ok {
		committed = t.e.labelIdx.Lookup(tok, t.readTS())
	}
	return t.mergeNodeIDs(committed, func(st *NodeState) bool {
		return hasLabel(st.Labels, label)
	})
}

// NodesByProperty returns the IDs of nodes whose property key equals val
// in this transaction's view.
func (t *Tx) NodesByProperty(key string, val value.Value) ([]ids.ID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var committed []uint64
	if tok, ok := t.e.tok.lookup(tokPropKey, key); ok {
		committed = t.e.nodePropIdx.Lookup(tok, val, t.readTS())
	}
	return t.mergeNodeIDs(committed, func(st *NodeState) bool {
		v, ok := st.Props[key]
		return ok && v.Equal(val)
	})
}

// RelsByProperty returns the IDs of relationships whose property key
// equals val in this transaction's view.
func (t *Tx) RelsByProperty(key string, val value.Value) ([]ids.ID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var committed []uint64
	if tok, ok := t.e.tok.lookup(tokPropKey, key); ok {
		committed = t.e.relPropIdx.Lookup(tok, val, t.readTS())
	}
	match := func(st *RelState) bool {
		v, ok := st.Props[key]
		return ok && v.Equal(val)
	}
	out := make([]ids.ID, 0, len(committed))
	for _, id := range committed {
		// Re-check through the transaction's view: a staged write may have
		// removed the property or deleted the relationship.
		st, ok, err := t.visibleRel(id)
		if err != nil {
			return nil, err
		}
		if ok && match(st) {
			out = append(out, id)
		}
	}
	for k, w := range t.writes {
		if k.kind != lock.KindRel || w.deleted || w.rel == nil || !match(w.rel) {
			continue
		}
		out = append(out, k.id)
	}
	return dedupeSorted(out), nil
}

// mergeNodeIDs applies the read-your-own-writes merge for node index
// lookups: committed hits are re-validated through the transaction view
// (staged updates may falsify them), then staged nodes matching the
// predicate are added.
func (t *Tx) mergeNodeIDs(committed []uint64, match func(*NodeState) bool) ([]ids.ID, error) {
	out := make([]ids.ID, 0, len(committed))
	for _, id := range committed {
		st, ok, err := t.visibleNode(id)
		if err != nil {
			return nil, err
		}
		if ok && match(st) {
			out = append(out, id)
		}
	}
	for k, w := range t.writes {
		if k.kind != lock.KindNode || w.deleted || w.node == nil || !match(w.node) {
			continue
		}
		out = append(out, k.id)
	}
	return dedupeSorted(out), nil
}

func dedupeSorted(in []ids.ID) []ids.ID {
	if len(in) == 0 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:1]
	for _, id := range in[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// AllNodes returns every node ID visible in this transaction's view,
// sorted. It scans the object cache (plus staged creations) — the
// full-scan baseline the versioned indexes beat in experiment E6.
func (t *Tx) AllNodes() ([]ids.ID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var cand []ids.ID
	for i := range t.e.stripes {
		s := &t.e.stripes[i]
		s.mu.RLock()
		for id := range s.nodes {
			cand = append(cand, id)
		}
		s.mu.RUnlock()
	}
	out := make([]ids.ID, 0, len(cand))
	for _, id := range cand {
		_, ok, err := t.visibleNode(id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	for k, w := range t.writes {
		if k.kind == lock.KindNode && w.created && !w.deleted {
			out = append(out, k.id)
		}
	}
	return dedupeSorted(out), nil
}

// AllRels returns every relationship ID visible in this transaction's
// view, sorted.
func (t *Tx) AllRels() ([]ids.ID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var cand []ids.ID
	for i := range t.e.stripes {
		s := &t.e.stripes[i]
		s.mu.RLock()
		for id := range s.rels {
			cand = append(cand, id)
		}
		s.mu.RUnlock()
	}
	out := make([]ids.ID, 0, len(cand))
	for _, id := range cand {
		_, ok, err := t.visibleRel(id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	for k, w := range t.writes {
		if k.kind == lock.KindRel && w.created && !w.deleted {
			out = append(out, k.id)
		}
	}
	return dedupeSorted(out), nil
}

// NodeIterator streams the nodes visible in a transaction's view without
// materialising all snapshots up front — the shape of Neo4j's enriched
// store iterator described in §4.
type NodeIterator struct {
	tx  *Tx
	ids []ids.ID
	pos int
	cur NodeSnapshot
	err error
}

// IterateNodesByLabel returns an iterator over nodes with the label.
func (t *Tx) IterateNodesByLabel(label string) (*NodeIterator, error) {
	ids, err := t.NodesByLabel(label)
	if err != nil {
		return nil, err
	}
	return &NodeIterator{tx: t, ids: ids}, nil
}

// IterateAllNodes returns an iterator over every visible node.
func (t *Tx) IterateAllNodes() (*NodeIterator, error) {
	ids, err := t.AllNodes()
	if err != nil {
		return nil, err
	}
	return &NodeIterator{tx: t, ids: ids}, nil
}

// Next advances to the next visible node, returning false at the end or
// on error (check Err).
func (it *NodeIterator) Next() bool {
	for it.pos < len(it.ids) {
		id := it.ids[it.pos]
		it.pos++
		snap, err := it.tx.GetNode(id)
		if err == nil {
			it.cur = snap
			return true
		}
		// A node deleted by this very transaction after the iterator was
		// created simply disappears from the stream.
	}
	return false
}

// Node returns the current node snapshot.
func (it *NodeIterator) Node() NodeSnapshot { return it.cur }

// Err returns the first iteration error, if any.
func (it *NodeIterator) Err() error { return it.err }
