// Package core implements the paper's contribution: a multi-version
// object cache over the persistent store that provides snapshot isolation
// for a Neo4j-style graph database.
//
// Every node and relationship is represented in the object cache by a
// version chain (internal/mvcc). Transactions read the version visible at
// their start timestamp, stage writes privately, detect write-write
// conflicts through long write locks with a first-updater-wins policy
// (first-committer-wins and the read-committed baseline are selectable),
// and install new versions at commit. Superseded versions are threaded
// onto a global timestamp-sorted list so garbage collection touches only
// garbage; the persistent store receives only the newest committed
// version of each entity, written back by a checkpointer behind a
// write-ahead log.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/faultfs"
	"neograph/internal/ids"
	"neograph/internal/index"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/store"
	"neograph/internal/trace"
	"neograph/internal/value"
	"neograph/internal/wal"
)

// IsolationLevel selects how a transaction reads and locks.
type IsolationLevel uint8

// Isolation levels.
const (
	// SnapshotIsolation is the paper's contribution: reads from the
	// transaction's start-timestamp snapshot, no read locks, write-write
	// conflict detection.
	SnapshotIsolation IsolationLevel = iota
	// ReadCommitted is Neo4j's native level, the baseline: short read
	// locks on the newest committed version, long (blocking) write locks,
	// no snapshot — exhibits unrepeatable reads and phantoms.
	ReadCommitted
)

func (l IsolationLevel) String() string {
	if l == ReadCommitted {
		return "read-committed"
	}
	return "snapshot-isolation"
}

// ConflictPolicy selects how write-write conflicts are resolved under
// snapshot isolation (paper §3).
type ConflictPolicy uint8

// Conflict policies.
const (
	// FirstUpdaterWins aborts the second transaction to update an entity
	// at the moment it tries (no-wait write locks) — the paper's choice.
	FirstUpdaterWins ConflictPolicy = iota
	// FirstCommitterWins lets both update privately and aborts the one
	// that validates second at commit.
	FirstCommitterWins
)

func (p ConflictPolicy) String() string {
	if p == FirstCommitterWins {
		return "first-committer-wins"
	}
	return "first-updater-wins"
}

// GCMode selects the version garbage collector.
type GCMode uint8

// GC modes.
const (
	// GCThreaded uses the paper's global timestamp-sorted doubly-linked
	// list: collection cost is proportional to garbage collected.
	GCThreaded GCMode = iota
	// GCVacuum scans every version chain in the cache, PostgreSQL
	// VACUUM-style: cost proportional to the whole store. The baseline
	// for experiment E4.
	GCVacuum
)

func (m GCMode) String() string {
	if m == GCVacuum {
		return "vacuum"
	}
	return "threaded"
}

// Errors returned by the engine.
var (
	ErrNotFound      = errors.New("core: entity not found")
	ErrWriteConflict = errors.New("core: write-write conflict")
	ErrTxDone        = errors.New("core: transaction already finished")
	ErrHasRels       = errors.New("core: node still has relationships")
	ErrClosed        = errors.New("core: engine closed")
	// ErrReadOnlyReplica rejects write commits on an engine opened in
	// replica mode: the only writer of a replica is its replication
	// applier, which redo-applies the primary's WAL stream.
	ErrReadOnlyReplica = errors.New("core: read-only replica")
	// ErrDeadlock re-exports the lock manager's deadlock error for the
	// read-committed baseline's blocking locks.
	ErrDeadlock = lock.ErrDeadlock
	// ErrReseedIncomplete refuses to open a data dir whose snapshot
	// re-seed crashed mid-swap: the dir holds a mix of old and new files.
	// The caller must wipe it and fetch the snapshot again.
	ErrReseedIncomplete = errors.New("core: interrupted snapshot re-seed; wipe the data dir and re-seed")
)

// Options configure an Engine.
type Options struct {
	// Dir is the store directory. Empty means a purely in-memory engine:
	// no persistent store, no WAL (used by concurrency benchmarks).
	Dir string
	// DefaultIsolation applies to transactions begun without an explicit
	// level. Default SnapshotIsolation.
	DefaultIsolation IsolationLevel
	// Conflict selects FUW (default) or FCW for SI transactions.
	Conflict ConflictPolicy
	// NoSyncCommits disables the commit WAL fsync entirely (the zero
	// Options value is durable). Benchmarks measuring CPU cost rather than
	// disk latency set this. It also bypasses the group-commit batcher.
	NoSyncCommits bool
	// NoGroupCommit reverts to one fsync per committing transaction — the
	// pre-group-commit behaviour, kept as the before/after baseline for the
	// throughput benchmarks. The default pipelines commits through a
	// batched-fsync group commit.
	NoGroupCommit bool
	// CommitMaxBatch is the group-commit linger cutoff: a flush leader
	// stops waiting out CommitMaxDelay once this many committers are
	// queued. Zero means wal.DefaultMaxBatch; it has no effect when
	// CommitMaxDelay is zero (a fsync always covers every record appended
	// before it — coverage itself cannot be capped).
	CommitMaxBatch int
	// CommitMaxDelay lets the group-commit flush leader linger this long to
	// absorb more concurrent committers before issuing the fsync. Zero
	// flushes immediately (commits arriving during an in-flight fsync still
	// coalesce into the next one).
	CommitMaxDelay time.Duration
	// GCMode selects the collector. Default GCThreaded.
	GCMode GCMode
	// GCEvery runs the collector periodically; zero means manual RunGC.
	GCEvery time.Duration
	// CheckpointEvery drives the checkpointer; zero means manual.
	CheckpointEvery time.Duration
	// StoreCachePages is the page-cache capacity per store file.
	StoreCachePages int
	// CommitStripes is the number of stripes the object map, adjacency
	// structure and first-committer-wins validation latches are split
	// into. Transactions whose write footprints touch disjoint stripes
	// validate and install fully in parallel. Zero picks the default
	// (GOMAXPROCS rounded up to a power of two); any other value is
	// rounded up to a power of two and capped at 256. 1 restores the
	// single global latch — the degenerate debugging mode with exactly
	// the pre-striping semantics.
	CommitStripes int
	// Replica opens the engine read-only for local transactions: write
	// commits fail with ErrReadOnlyReplica, and the WAL receives records
	// exclusively through ApplyReplicated so it stays a byte-exact prefix
	// of the primary's log (checkpoints skip their marker record too).
	// Promote flips a running replica back to a writable primary.
	Replica bool
	// WALSegmentSize overrides the WAL segment rotation size (testing and
	// replication experiments). Zero means the wal package default.
	WALSegmentSize int64
	// FS is the file-system seam under the WAL, store, and epoch file —
	// nil means the real OS. Crash tests substitute a faultfs.Injector to
	// kill the engine's I/O at scripted points.
	FS faultfs.FS
	// Tracer records commit-pipeline spans (validate per stripe, WAL
	// append, group fsync, quorum wait) for transactions that carry a
	// trace span, and replica.apply spans for trace contexts arriving
	// through the WAL stream. Nil disables tracing entirely.
	Tracer *trace.Tracer
	// PartitionID / PartitionCount place this engine in a hash-partitioned
	// deployment: entity IDs are allocated strided so that
	// id % PartitionCount == PartitionID, making any entity's owning
	// partition computable from its ID alone. PartitionCount <= 1 means
	// unpartitioned (dense IDs, every ID local).
	PartitionID    int
	PartitionCount int
}

// Stats are cumulative engine counters.
type Stats struct {
	Begun           uint64
	Committed       uint64
	Aborted         uint64
	WriteConflicts  uint64
	Deadlocks       uint64
	GCRuns          uint64
	GCCollected     uint64 // versions reclaimed
	GCScanned       uint64 // versions touched (== collected for threaded; whole store for vacuum)
	EntitiesDead    uint64 // chains fully collected
	Checkpoints     uint64
	CheckpointPuts  uint64 // entity images written back
	CheckpointBytes uint64 // approximate bytes written back
	// WALFlushes / WALSyncedCommits measure group commit: the number of
	// commit fsyncs issued and the number of synced commits they covered.
	// SyncedCommits/Flushes is the mean group size.
	WALFlushes       uint64
	WALSyncedCommits uint64
}

// entKey identifies an entity across the node/relationship namespaces.
type entKey struct {
	kind lock.EntityKind
	id   ids.ID
}

// object is a cached entity: its identity plus its version chain. For
// relationships the immutable endpoints and type are mirrored here so
// that garbage collection of a fully dead relationship (whose chain is
// empty) can still fix up adjacency and the persistent store.
type object struct {
	key        entKey
	chain      *mvcc.Chain
	start, end ids.ID // relationships only
}

// NodeState is the payload of a node version.
type NodeState struct {
	Labels []string // sorted, no duplicates
	Props  value.Map
}

// RelState is the payload of a relationship version. Endpoints and type
// are immutable over the relationship's lifetime.
type RelState struct {
	Type       string
	Start, End ids.ID
	Props      value.Map
}

// stripe is one shard of the engine's in-memory concurrency-critical
// state: a slice of the object and adjacency maps under its own lock,
// plus the first-committer-wins validation latch for the entities that
// hash here. Transactions touching disjoint stripes never contend.
type stripe struct {
	mu    sync.RWMutex                 // guards the maps below
	nodes map[ids.ID]*object           // node objects hashed to this stripe
	rels  map[ids.ID]*object           // rel objects hashed to this stripe
	adj   map[ids.ID]map[ids.ID]adjDir // node -> rel IDs ever attached, with orientation (pruned on rel death)

	// valMu is the per-stripe FCW commit latch: a committing FCW
	// transaction latches every stripe in its write footprint (in index
	// order, so latch acquisition cannot deadlock) across validation and
	// install. With CommitStripes=1 this degenerates to the old single
	// global latch.
	valMu sync.Mutex

	// prep maps entity keys held by prepared-but-undecided cross-
	// partition transactions to their global transaction ID. Guarded by
	// valMu, so first-committer-wins validation — which takes no long
	// locks — sees prepared keys under the latches it already holds.
	// Lock-based transactions are blocked by the prepared transaction's
	// retained long locks instead. Lazily allocated.
	prep map[entKey]uint64

	// conflicts counts FCW validation failures attributed to an entity
	// hashed here — the per-stripe contention series on /metrics. A
	// lopsided distribution means hot keys, not insufficient stripes.
	conflicts atomic.Uint64
}

// Engine is the database engine.
type Engine struct {
	opts    Options
	store   *store.Store // nil in memory-only mode
	wal     *wal.WAL     // nil in memory-only mode
	batcher *wal.Batcher // group-commit fsync batcher; nil when commits are unsynced or NoGroupCommit
	oracle  *mvcc.Oracle
	active  *mvcc.ActiveTable
	locks   *lock.Manager
	gcList  *mvcc.GCList

	// stripes holds the object cache split into power-of-two shards by
	// entity-key hash; stripeMask selects a shard. chainOwner maps a
	// version chain back to its owning object for GC reaping (written
	// once per object lifetime, read only by the collector).
	stripes    []stripe
	stripeMask uint64
	chainOwner sync.Map // *mvcc.Chain -> *object

	labelIdx    *index.LabelIndex
	nodePropIdx *index.PropertyIndex
	relPropIdx  *index.PropertyIndex
	// tok maps label and property-key names to the dense uint32 tokens the
	// indexes are keyed by. Purely in-memory: it is rebuilt from the store
	// and WAL during recovery.
	tok *tokenTable

	// memAlloc is used in memory-only mode in place of store allocators.
	memNodeAlloc, memRelAlloc *ids.Allocator

	// walSeqMu orders commit-timestamp assignment with the WAL append:
	// the record for a lower commit timestamp must land at a lower LSN,
	// or a replica applying the log in LSN order would advance its
	// watermark past a commit it has not applied yet (breaking replica
	// snapshot reads). The WAL already serialises appends internally, so
	// this adds no serial section the log didn't impose — only the atomic
	// timestamp fetch and an 8-byte patch ride inside it.
	walSeqMu sync.Mutex
	// commitGate is held (shared) by every commit from WAL append through
	// dirty marking; the checkpointer takes it exclusively to cut a
	// consistent WAL truncation point.
	commitGate sync.RWMutex

	maintMu sync.Mutex // serialises checkpoint writes and GC store removals
	dirtyMu sync.Mutex
	dirty   map[entKey]struct{} // committed entities awaiting checkpoint

	// retainMu guards retainWAL, a hook installed by the replication
	// shipper: checkpoints keep WAL segments at or above the returned
	// position so connected replicas can still be served their backlog.
	retainMu  sync.Mutex
	retainWAL func() (uint64, bool)

	// replTraceMu guards replTrace, the trace context a replicated 'T'
	// record stashed for the commit record that immediately follows it
	// in the stream (consumed — or discarded — by the very next record).
	replTraceMu sync.Mutex
	replTrace   trace.Context

	// syncWaitMu guards syncWait, the synchronous-replication hook the
	// shipper installs when Options.SyncReplicas > 0: a durable commit's
	// acknowledgement additionally waits until the hook returns — i.e.
	// until the configured quorum of replicas has acked the commit's end
	// position (or the shipper degrades to async on timeout).
	syncWaitMu sync.Mutex
	syncWait   func(endLSN uint64) error

	// replica is the live role flag (Options.Replica is only the opening
	// role); Promote flips it to false on failover.
	replica atomic.Bool
	// fs is the file seam shared by the WAL, store and epoch file.
	fs faultfs.FS
	// epochMu guards the replication epoch history: the generation
	// counters and fork-point LSNs that fence dead timelines out (last
	// entry = current epoch).
	epochMu   sync.Mutex
	epochHist []EpochEntry

	// prepMu guards the two-phase-commit tables: prepared holds
	// in-doubt transactions awaiting a verdict, decided holds this
	// engine's own (coordinator) committed decisions until every
	// participant acked. Both pin the WAL against truncation.
	prepMu   sync.Mutex
	prepared map[uint64]*preparedTxn
	decided  map[uint64]*decidedTxn

	txnSeq  atomic.Uint64
	stats   statsCounters
	closed  atomic.Bool
	bg      sync.WaitGroup
	stopBG  chan struct{}
	stopped sync.Once
}

// statsCounters is the atomic backing of Stats.
type statsCounters struct {
	begun, committed, aborted, conflicts, deadlocks atomic.Uint64
	gcRuns, gcCollected, gcScanned, dead            atomic.Uint64
	checkpoints, checkpointPuts, checkpointBytes    atomic.Uint64
}

// maxCommitStripes bounds the stripe count: beyond this the per-stripe
// maps cost more in memory and latch-set size than they save in
// contention.
const maxCommitStripes = 256

// resolveStripes turns Options.CommitStripes into the actual power-of-two
// stripe count.
func resolveStripes(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxCommitStripes {
		n = maxCommitStripes
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates or opens an engine with the given options, running
// recovery when a store directory is present.
func Open(opts Options) (*Engine, error) {
	if opts.StoreCachePages <= 0 {
		opts.StoreCachePages = store.DefaultCachePages
	}
	opts.CommitStripes = resolveStripes(opts.CommitStripes)
	e := &Engine{
		opts:       opts,
		oracle:     mvcc.NewOracle(0),
		active:     mvcc.NewActiveTable(),
		locks:      lock.NewManager(),
		gcList:     mvcc.NewGCList(),
		stripes:    make([]stripe, opts.CommitStripes),
		stripeMask: uint64(opts.CommitStripes - 1),

		labelIdx:    index.NewLabelIndex(),
		nodePropIdx: index.NewPropertyIndex(),
		relPropIdx:  index.NewPropertyIndex(),
		tok:         newTokenTable(),
		dirty:       make(map[entKey]struct{}),
		prepared:    make(map[uint64]*preparedTxn),
		decided:     make(map[uint64]*decidedTxn),
		stopBG:      make(chan struct{}),
	}
	for i := range e.stripes {
		s := &e.stripes[i]
		s.nodes = make(map[ids.ID]*object)
		s.rels = make(map[ids.ID]*object)
		s.adj = make(map[ids.ID]map[ids.ID]adjDir)
	}
	e.fs = faultfs.OrOS(opts.FS)
	e.replica.Store(opts.Replica)
	if opts.Dir == "" {
		e.memNodeAlloc = ids.NewAllocator()
		e.memRelAlloc = ids.NewAllocator()
		if opts.PartitionCount > 1 {
			e.memNodeAlloc.SetStride(uint64(opts.PartitionID), uint64(opts.PartitionCount))
			e.memRelAlloc.SetStride(uint64(opts.PartitionID), uint64(opts.PartitionCount))
		}
		return e, nil
	}

	// A crashed snapshot re-seed leaves a marker between its destructive
	// swap phases; such a dir holds a mix of old and new files and must
	// be wiped and re-fetched, never opened.
	if _, err := e.fs.Stat(opts.Dir + "/" + ReseedMarkerName); err == nil {
		return nil, fmt.Errorf("%w: marker %s present in %s", ErrReseedIncomplete, ReseedMarkerName, opts.Dir)
	}

	st, err := store.Open(opts.Dir, store.Options{CachePages: opts.StoreCachePages, FS: opts.FS})
	if err != nil {
		return nil, err
	}
	if opts.PartitionCount > 1 {
		// Strided IDs: this partition only ever allocates its own
		// congruence class, so ownership is computable client-side from
		// any ID. Must precede recovery (which may extend high waters).
		st.SetIDStride(uint64(opts.PartitionID), uint64(opts.PartitionCount))
	}
	w, err := wal.Open(opts.Dir+"/wal", wal.Options{
		NoSync:      opts.NoSyncCommits,
		SegmentSize: opts.WALSegmentSize,
		FS:          opts.FS,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	e.store, e.wal = st, w
	if err := e.loadEpoch(); err != nil {
		w.Close()
		st.Close()
		return nil, err
	}
	if !opts.NoSyncCommits && !opts.NoGroupCommit {
		e.batcher = wal.NewBatcher(w, wal.BatcherOptions{
			MaxBatch: opts.CommitMaxBatch,
			MaxDelay: opts.CommitMaxDelay,
		})
	}
	if err := e.recover(); err != nil {
		w.Close()
		st.Close()
		return nil, err
	}
	e.startBackground()
	return e, nil
}

// startBackground launches periodic GC and checkpoint drivers when
// configured.
func (e *Engine) startBackground() {
	if e.opts.GCEvery > 0 {
		e.bg.Add(1)
		go func() {
			defer e.bg.Done()
			t := time.NewTicker(e.opts.GCEvery)
			defer t.Stop()
			for {
				select {
				case <-e.stopBG:
					return
				case <-t.C:
					e.RunGC()
				}
			}
		}()
	}
	if e.opts.CheckpointEvery > 0 && e.store != nil {
		e.bg.Add(1)
		go func() {
			defer e.bg.Done()
			t := time.NewTicker(e.opts.CheckpointEvery)
			defer t.Stop()
			for {
				select {
				case <-e.stopBG:
					return
				case <-t.C:
					if err := e.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
						// Background checkpoint failures surface at Close.
						continue
					}
				}
			}
		}()
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	var flushes, syncedCommits uint64
	if e.batcher != nil {
		bs := e.batcher.Stats()
		flushes, syncedCommits = bs.Flushes, bs.SyncedCommits
	}
	return Stats{
		WALFlushes:       flushes,
		WALSyncedCommits: syncedCommits,
		Begun:            e.stats.begun.Load(),
		Committed:        e.stats.committed.Load(),
		Aborted:          e.stats.aborted.Load(),
		WriteConflicts:   e.stats.conflicts.Load(),
		Deadlocks:        e.stats.deadlocks.Load(),
		GCRuns:           e.stats.gcRuns.Load(),
		GCCollected:      e.stats.gcCollected.Load(),
		GCScanned:        e.stats.gcScanned.Load(),
		EntitiesDead:     e.stats.dead.Load(),
		Checkpoints:      e.stats.checkpoints.Load(),
		CheckpointPuts:   e.stats.checkpointPuts.Load(),
		CheckpointBytes:  e.stats.checkpointBytes.Load(),
	}
}

// StripeConflicts snapshots the per-stripe FCW conflict counters, in
// stripe-index order — the contention-skew series on /metrics.
func (e *Engine) StripeConflicts() []uint64 {
	out := make([]uint64, len(e.stripes))
	for i := range e.stripes {
		out[i] = e.stripes[i].conflicts.Load()
	}
	return out
}

// CommitBatcher exposes the group-commit batcher for metrics sampling
// (queue depth, fsync latency). Nil when commits are unsynced or group
// commit is disabled.
func (e *Engine) CommitBatcher() *wal.Batcher { return e.batcher }

// Watermark exposes the current commit watermark (newest stable snapshot).
func (e *Engine) Watermark() mvcc.TS { return e.oracle.Watermark() }

// ActiveTransactions returns the number of currently active transactions.
func (e *Engine) ActiveTransactions() int { return e.active.Count() }

// VersionCount reports the total number of versions in the cache and the
// number of entities, for the E5 memory accounting.
func (e *Engine) VersionCount() (versions, entities int) {
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		for _, o := range s.nodes {
			versions += o.chain.Len()
		}
		for _, o := range s.rels {
			versions += o.chain.Len()
		}
		entities += len(s.nodes) + len(s.rels)
		s.mu.RUnlock()
	}
	return versions, entities
}

// GCBacklog returns the number of versions waiting on the threaded GC list.
func (e *Engine) GCBacklog() int { return e.gcList.Len() }

// CommitStripes reports the resolved stripe count (the power of two
// Options.CommitStripes rounded up to).
func (e *Engine) CommitStripes() int { return len(e.stripes) }

// Tracer exposes the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *trace.Tracer { return e.opts.Tracer }

// Store exposes the underlying persistent store (nil in memory mode), for
// the F1 architecture report.
func (e *Engine) Store() *store.Store { return e.store }

// WAL exposes the write-ahead log (nil in memory mode) for the
// replication shipper, which reads sealed segments and the live tail.
func (e *Engine) WAL() *wal.WAL { return e.wal }

// FS exposes the engine's (possibly fault-injecting) filesystem so the
// replication layer can stream snapshot files through the same faults
// the engine itself sees.
func (e *Engine) FS() faultfs.FS { return e.fs }

// Dir returns the data directory ("" for a memory-only engine).
func (e *Engine) Dir() string { return e.opts.Dir }

// IsReplica reports whether the engine is currently in replica mode
// (opened with Options.Replica and not yet promoted).
func (e *Engine) IsReplica() bool { return e.replica.Load() }

// SetCommitSyncWait installs (or clears, with nil) the synchronous-
// replication hook: when set, every durable commit's acknowledgement
// additionally waits on fn(commit end LSN) — the shipper's quorum wait.
func (e *Engine) SetCommitSyncWait(fn func(endLSN uint64) error) {
	e.syncWaitMu.Lock()
	e.syncWait = fn
	e.syncWaitMu.Unlock()
}

// commitSyncWait resolves the synchronous-replication hook.
func (e *Engine) commitSyncWait() func(uint64) error {
	e.syncWaitMu.Lock()
	fn := e.syncWait
	e.syncWaitMu.Unlock()
	return fn
}

// DurableLSN returns the WAL durability horizon as an end position: the
// log's bytes below it are fsynced. Zero in memory mode.
func (e *Engine) DurableLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.DurableLSN()
}

// AppliedLSN returns the position one past the last WAL record this
// engine holds — on a replica, how much of the primary's log has been
// applied. Zero in memory mode.
func (e *Engine) AppliedLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.NextLSN()
}

// WaitDurable blocks until the WAL's durability horizon reaches pos (an
// end position, e.g. Tx.CommitLSN). It is the opt-in read gate for
// callers that must not act on commits a crash could still erase: commits
// are visible at install but durable only at the batched fsync. Returns
// immediately in memory mode or with fsync disabled.
func (e *Engine) WaitDurable(pos uint64) error {
	if e.wal == nil || pos == 0 || e.opts.NoSyncCommits {
		return nil
	}
	if e.wal.DurableLSN() >= pos {
		return nil
	}
	if next := e.wal.NextLSN(); pos > next {
		// A bogus token (beyond the log end) would otherwise spin flushes
		// forever waiting for a record that was never appended.
		return fmt.Errorf("core: wait durable: position %d beyond log end %d", pos, next)
	}
	if e.batcher != nil {
		// WaitDurable(lsn) waits for durable > lsn; durable >= pos is
		// exactly durable > pos-1.
		return e.batcher.WaitDurable(pos - 1)
	}
	// Per-commit fsync mode: one explicit sync covers everything appended.
	return e.wal.Sync()
}

// SyncWAL forces an fsync of the WAL (replication applier's periodic
// durability point on replicas, where no commit path runs).
func (e *Engine) SyncWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Sync()
}

// SetWALRetain installs (or clears, with nil) the checkpointer's WAL
// retention hook. When set and returning ok, segments at or above the
// returned position survive checkpoint truncation — the replication
// shipper holds this at the minimum position of its connected replicas.
func (e *Engine) SetWALRetain(fn func() (uint64, bool)) {
	e.retainMu.Lock()
	e.retainWAL = fn
	e.retainMu.Unlock()
}

// walRetainPos resolves the retention hook.
func (e *Engine) walRetainPos() (uint64, bool) {
	e.retainMu.Lock()
	fn := e.retainWAL
	e.retainMu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn()
}

// allocNodeID allocates a node ID from the store (or memory) allocator.
func (e *Engine) allocNodeID() ids.ID {
	if e.store != nil {
		return e.store.AllocNodeID()
	}
	return e.memNodeAlloc.Next()
}

func (e *Engine) allocRelID() ids.ID {
	if e.store != nil {
		return e.store.AllocRelID()
	}
	return e.memRelAlloc.Next()
}

func (e *Engine) releaseNodeID(id ids.ID) {
	if e.store != nil {
		e.store.ReleaseNodeID(id)
	} else {
		e.memNodeAlloc.Release(id)
	}
}

func (e *Engine) releaseRelID(id ids.ID) {
	if e.store != nil {
		e.store.ReleaseRelID(id)
	} else {
		e.memRelAlloc.Release(id)
	}
}

// stripeIndex hashes an entity key to its stripe. Sequential IDs must
// spread across stripes (allocators hand them out densely), so the ID is
// mixed with a Fibonacci/splitmix-style multiply-xor before masking; the
// relationship namespace is offset so node N and rel N land independently.
func (e *Engine) stripeIndex(k entKey) uint64 {
	h := k.id
	if k.kind == lock.KindRel {
		h ^= 0xD6E8FEB86659FD93
	}
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 32
	return h & e.stripeMask
}

// stripeOf returns the stripe owning key.
func (e *Engine) stripeOf(k entKey) *stripe { return &e.stripes[e.stripeIndex(k)] }

// nodeStripe returns the stripe owning a node ID (adjacency lives with
// the node).
func (e *Engine) nodeStripe(id ids.ID) *stripe {
	return e.stripeOf(entKey{lock.KindNode, id})
}

// getObject returns the cached object for key, or nil.
func (e *Engine) getObject(k entKey) *object {
	s := e.stripeOf(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if k.kind == lock.KindNode {
		return s.nodes[k.id]
	}
	return s.rels[k.id]
}

// ensureObject returns the cached object for key, creating an empty one
// if absent (used at commit install for created entities).
func (e *Engine) ensureObject(k entKey) *object {
	if o := e.getObject(k); o != nil {
		return o
	}
	s := e.stripeOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.nodes
	if k.kind == lock.KindRel {
		m = s.rels
	}
	if o, ok := m[k.id]; ok {
		return o
	}
	o := &object{key: k, chain: mvcc.NewChain()}
	m[k.id] = o
	e.chainOwner.Store(o.chain, o)
	return o
}

// adjDir records how a relationship is oriented relative to the node
// that owns the adjacency entry. A self-loop carries both bits.
type adjDir uint8

const (
	adjOut adjDir = 1 << iota
	adjIn
)

// addAdjacency records rel as attached to node with orientation d.
func (e *Engine) addAdjacency(node, rel ids.ID, d adjDir) {
	s := e.nodeStripe(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.adj[node]
	if set == nil {
		set = make(map[ids.ID]adjDir)
		s.adj[node] = set
	}
	set[rel] |= d
}

// adjacentRels snapshots the rel IDs ever attached to node, pre-filtered
// by orientation: a directed traversal never pays a version-chain walk
// for a relationship pointing the wrong way. Visibility is still decided
// per relationship by its own version chain. The returned IDs are
// duplicate-free (the adjacency entry is a set), appended to buf.
func (e *Engine) adjacentRels(node ids.ID, dir Direction, buf []ids.ID) []ids.ID {
	want := adjOut | adjIn
	switch dir {
	case Outgoing:
		want = adjOut
	case Incoming:
		want = adjIn
	}
	s := e.nodeStripe(node)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, d := range s.adj[node] {
		if d&want != 0 {
			buf = append(buf, id)
		}
	}
	return buf
}

// markDirty queues committed entities for the checkpointer.
func (e *Engine) markDirty(keys []entKey) {
	if e.store == nil {
		return
	}
	e.dirtyMu.Lock()
	for _, k := range keys {
		e.dirty[k] = struct{}{}
	}
	e.dirtyMu.Unlock()
}

// Close stops background work, checkpoints once, and closes WAL and store.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return ErrClosed
	}
	e.stopped.Do(func() { close(e.stopBG) })
	e.bg.Wait()
	var firstErr error
	if e.store != nil {
		if err := e.checkpointLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		if e.batcher != nil {
			e.batcher.Close()
		}
		if err := e.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := e.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Crash simulates a process crash for recovery tests: files are closed
// without flushing caches; only WAL-synced and already-flushed data
// survives.
func (e *Engine) Crash() error {
	if e.closed.Swap(true) {
		return ErrClosed
	}
	e.stopped.Do(func() { close(e.stopBG) })
	e.bg.Wait()
	if e.store == nil {
		return nil
	}
	if e.batcher != nil {
		e.batcher.Close()
	}
	// The WAL writes through to the OS on Append; Close without sync is
	// closest to a crash (synced bytes survive; this process wrote them
	// with write(2), so they are visible to a reopen even unsynced — real
	// durability is exercised by the fsync path, torn tails by wal tests).
	if err := e.wal.Close(); err != nil {
		return err
	}
	return e.store.Crash()
}

func fmtKey(k entKey) string {
	if k.kind == lock.KindNode {
		return fmt.Sprintf("node %d", k.id)
	}
	return fmt.Sprintf("rel %d", k.id)
}
