package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neograph/internal/ids"
	"neograph/internal/value"
	"neograph/internal/wal"
)

// TestGroupCommitConcurrentDurability commits from many goroutines with
// fsync enabled, crashes, and checks every acknowledged commit is
// replayed — and that the commits shared fsyncs.
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if e.batcher == nil {
		t.Fatal("durable engine should have a group-commit batcher")
	}

	const writers = 8
	const perWriter = 20
	var mu sync.Mutex
	committed := make(map[ids.ID]string)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				tx := e.Begin()
				name := fmt.Sprintf("w%d-%d", i, j)
				id, err := tx.CreateNode([]string{"GC"}, value.Map{"name": value.String(name)})
				if err != nil {
					t.Errorf("create: %v", err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				mu.Lock()
				committed[id] = name
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	st := e.Stats()
	if st.WALSyncedCommits != writers*perWriter {
		t.Fatalf("WALSyncedCommits = %d, want %d", st.WALSyncedCommits, writers*perWriter)
	}
	if st.WALFlushes == 0 || st.WALFlushes >= st.WALSyncedCommits {
		t.Fatalf("WALFlushes = %d for %d synced commits; want group commit to share fsyncs",
			st.WALFlushes, st.WALSyncedCommits)
	}
	t.Logf("%d commits over %d fsyncs (mean batch %.1f)",
		st.WALSyncedCommits, st.WALFlushes, float64(st.WALSyncedCommits)/float64(st.WALFlushes))

	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Abort()
	for id, want := range committed {
		snap, err := tx.GetNode(id)
		if err != nil {
			t.Fatalf("node %d (%s) lost after crash: %v", id, want, err)
		}
		if got := snap.Props["name"]; !got.Equal(value.String(want)) {
			t.Fatalf("node %d: name = %v, want %q", id, got, want)
		}
	}
}

// TestNoSyncCommitsBypassesBatcher checks the unsynced mode never touches
// the group-commit machinery.
func TestNoSyncCommitsBypassesBatcher(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), NoSyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.batcher != nil {
		t.Fatal("NoSyncCommits engine should not construct a batcher")
	}
	tx := e.Begin()
	if _, err := tx.CreateNode([]string{"N"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WALFlushes != 0 || st.WALSyncedCommits != 0 {
		t.Fatalf("unsynced commits recorded flush stats: %+v", st)
	}
}

// TestNoGroupCommitBaselineIsDurable checks the per-commit-fsync baseline
// still recovers after a crash (and reports no batcher activity).
func TestNoGroupCommitBaselineIsDurable(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.batcher != nil {
		t.Fatal("NoGroupCommit engine should not construct a batcher")
	}
	tx := e.Begin()
	id, err := tx.CreateNode([]string{"Base"}, value.Map{"v": value.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Abort()
	if _, err := tx2.GetNode(id); err != nil {
		t.Fatalf("baseline commit lost after crash: %v", err)
	}
}

// flakySyncer fails Sync after failAfter successes.
type flakySyncer struct {
	next      atomic.Uint64
	syncs     atomic.Uint64
	failAfter uint64
}

func (f *flakySyncer) NextLSN() uint64 { return f.next.Add(1) }
func (f *flakySyncer) Sync() error {
	if f.syncs.Add(1) > f.failAfter {
		return errors.New("injected fsync failure")
	}
	return nil
}

// TestGroupCommitFsyncFailureFailsCommit swaps in a batcher whose fsync
// fails and checks the commit reports the durability loss (and that the
// engine stays poisoned for later durable commits).
func TestGroupCommitFsyncFailureFailsCommit(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Substitute a batcher over a failing disk. The WAL append itself
	// still succeeds — only durability is lost, which is exactly the
	// group-commit failure mode (install already happened).
	e.batcher.Close()
	e.batcher = wal.NewBatcher(&flakySyncer{}, wal.BatcherOptions{})

	tx := e.Begin()
	if _, err := tx.CreateNode([]string{"X"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit claimed durability despite fsync failure")
	} else if !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Poisoned: the next durable commit fails too.
	tx2 := e.Begin()
	if _, err := tx2.CreateNode([]string{"Y"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("engine accepted a durable commit after a failed fsync")
	}
}

// TestGroupCommitLatchNotHeldAcrossFsync regression-tests the latch rule:
// while one FCW committer is parked in a slow fsync, another must be able
// to validate and install. A blocking syncer stands in for the disk.
func TestGroupCommitLatchNotHeldAcrossFsync(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), Conflict: FirstCommitterWins})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	release := make(chan struct{})
	slow := &blockingSyncer{release: release}
	e.batcher.Close()
	e.batcher = wal.NewBatcher(slow, wal.BatcherOptions{})

	done := make(chan error, 1)
	go func() {
		tx := e.Begin()
		if _, err := tx.CreateNode([]string{"A"}, nil); err != nil {
			done <- err
			return
		}
		done <- tx.Commit() // parks in the blocked fsync
	}()

	// Wait until the first committer is inside Sync.
	select {
	case <-slow.entered():
	case <-time.After(5 * time.Second):
		t.Fatal("first committer never reached fsync")
	}

	// The latches must be free: TryLock succeeds on every stripe while
	// the fsync is stuck.
	for i := range e.stripes {
		if !e.stripes[i].valMu.TryLock() {
			t.Fatalf("stripe %d validation latch is held across the fsync", i)
		}
		e.stripes[i].valMu.Unlock()
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first committer: %v", err)
	}
}

// blockingSyncer blocks Sync until release is closed.
type blockingSyncer struct {
	next      atomic.Uint64
	release   chan struct{}
	enterOnce sync.Once
	enteredCh chan struct{}
	initOnce  sync.Once
}

func (b *blockingSyncer) entered() chan struct{} {
	b.initOnce.Do(func() { b.enteredCh = make(chan struct{}) })
	return b.enteredCh
}

func (b *blockingSyncer) NextLSN() uint64 { return b.next.Add(1) }
func (b *blockingSyncer) Sync() error {
	b.initOnce.Do(func() { b.enteredCh = make(chan struct{}) })
	b.enterOnce.Do(func() { close(b.enteredCh) })
	<-b.release
	return nil
}
