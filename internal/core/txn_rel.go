package core

import (
	"fmt"
	"sort"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/value"
)

// Direction selects relationship orientation relative to a node.
type Direction uint8

// Directions.
const (
	Outgoing Direction = iota
	Incoming
	Both
)

func (d Direction) String() string {
	switch d {
	case Outgoing:
		return "outgoing"
	case Incoming:
		return "incoming"
	default:
		return "both"
	}
}

// lockEndpoint takes the long write lock on an endpoint node of a
// relationship being created or deleted, mirroring Neo4j, which locks
// both endpoint nodes to serialise relationship-chain updates. Endpoints
// created by this very transaction are private and need no lock. Under
// first-committer-wins no locks are taken during execution; endpoint
// liveness is re-validated at commit.
func (t *Tx) lockEndpoint(node ids.ID) error {
	k := entKey{lock.KindNode, node}
	if w, ok := t.writes[k]; ok && w.created {
		return nil
	}
	if t.iso == SnapshotIsolation && t.e.opts.Conflict == FirstCommitterWins {
		return nil
	}
	lk := lock.Key{Kind: lock.KindNode, ID: node}
	if t.iso == ReadCommitted {
		if err := t.e.locks.Acquire(t.id, lk, lock.Exclusive); err != nil {
			t.e.stats.deadlocks.Add(1)
			return err
		}
		return nil
	}
	if err := t.e.locks.TryAcquire(t.id, lk, lock.Exclusive); err != nil {
		t.e.stats.conflicts.Add(1)
		return fmt.Errorf("%w: endpoint node %d locked by concurrent transaction", ErrWriteConflict, node)
	}
	return nil
}

// CreateRel creates a relationship of the given type from start to end.
// Both endpoint nodes must be visible in this transaction's snapshot; both
// are write-locked (as in Neo4j) to serialise chain updates.
func (t *Tx) CreateRel(relType string, start, end ids.ID, props value.Map) (ids.ID, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	if relType == "" {
		return 0, fmt.Errorf("core: relationship type must not be empty")
	}
	if _, ok, err := t.visibleNode(start); err != nil {
		return 0, err
	} else if !ok {
		return 0, fmt.Errorf("%w: start node %d", ErrNotFound, start)
	}
	if _, ok, err := t.visibleNode(end); err != nil {
		return 0, err
	} else if !ok {
		return 0, fmt.Errorf("%w: end node %d", ErrNotFound, end)
	}
	if err := t.lockEndpoint(start); err != nil {
		return 0, err
	}
	if end != start {
		if err := t.lockEndpoint(end); err != nil {
			return 0, err
		}
	}
	id := t.e.allocRelID()
	k := entKey{lock.KindRel, id}
	t.writes[k] = &writeEntry{
		key:     k,
		created: true,
		rel:     &RelState{Type: relType, Start: start, End: end, Props: props.Clone()},
	}
	t.order = append(t.order, k)
	return id, nil
}

// CreateRelCrossPartition creates a relationship whose endpoints may
// live on other partitions. Locally-owned endpoints are validated and
// locked exactly as CreateRel does; remote endpoints are skipped here —
// the coordinator guards them through the owning partition's prepared
// validate set, so this must only be called on the two-phase-commit
// prepare path. The edge itself is stored on this (the source ID's
// owning) partition.
func (t *Tx) CreateRelCrossPartition(relType string, start, end ids.ID, props value.Map) (ids.ID, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	if relType == "" {
		return 0, fmt.Errorf("core: relationship type must not be empty")
	}
	for _, n := range []ids.ID{start, end} {
		if !t.e.OwnsID(n) {
			continue
		}
		if _, ok, err := t.visibleNode(n); err != nil {
			return 0, err
		} else if !ok {
			return 0, fmt.Errorf("%w: node %d", ErrNotFound, n)
		}
		if err := t.lockEndpoint(n); err != nil {
			return 0, err
		}
		if end == start {
			break
		}
	}
	id := t.e.allocRelID()
	k := entKey{lock.KindRel, id}
	t.writes[k] = &writeEntry{
		key:     k,
		created: true,
		rel:     &RelState{Type: relType, Start: start, End: end, Props: props.Clone()},
	}
	t.order = append(t.order, k)
	return id, nil
}

// GetRel returns the relationship visible in this transaction's snapshot.
func (t *Tx) GetRel(id ids.ID) (RelSnapshot, error) {
	if err := t.check(); err != nil {
		return RelSnapshot{}, err
	}
	st, ok, err := t.visibleRel(id)
	if err != nil {
		return RelSnapshot{}, err
	}
	if !ok {
		return RelSnapshot{}, fmt.Errorf("%w: rel %d", ErrNotFound, id)
	}
	return RelSnapshot{
		ID: id, Type: st.Type, Start: st.Start, End: st.End, Props: st.Props.Clone(),
	}, nil
}

// SetRelProp sets one property on a relationship.
func (t *Tx) SetRelProp(id ids.ID, key string, v value.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageRelWrite(id)
	if err != nil {
		return err
	}
	w.rel.Props[key] = v
	return nil
}

// RemoveRelProp removes a property from a relationship (no-op if absent).
func (t *Tx) RemoveRelProp(id ids.ID, key string) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageRelWrite(id)
	if err != nil {
		return err
	}
	delete(w.rel.Props, key)
	return nil
}

// DeleteRel deletes a relationship. Both endpoint nodes are write-locked
// (chain update, as in Neo4j).
func (t *Tx) DeleteRel(id ids.ID) error {
	if err := t.check(); err != nil {
		return err
	}
	k := entKey{lock.KindRel, id}
	if w, ok := t.writes[k]; ok && w.created {
		w.deleted = true // created and deleted in the same transaction
		st := w.rel
		w.rel = nil
		if st != nil {
			// Endpoints were locked at create; nothing to undo.
			_ = st
		}
		return nil
	}
	st, ok, err := t.visibleRel(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: rel %d", ErrNotFound, id)
	}
	if err := t.lockEndpoint(st.Start); err != nil {
		return err
	}
	if st.End != st.Start {
		if err := t.lockEndpoint(st.End); err != nil {
			return err
		}
	}
	w, err := t.stageRelWrite(id)
	if err != nil {
		return err
	}
	w.deleted = true
	return nil
}

// Relationships returns the relationships of node visible in this
// snapshot, filtered by direction and (optionally) type, sorted by ID.
//
// This is the paper's "enriched iterator" (§4): the candidate set comes
// from the committed adjacency structure plus the transaction's own
// staged creations; each candidate's visibility is decided by its version
// chain, and staged deletions are excluded — read-your-own-writes.
func (t *Tx) Relationships(node ids.ID, dir Direction, relTypes ...string) ([]RelSnapshot, error) {
	var out []RelSnapshot
	err := t.forEachVisibleRel(node, dir, relTypes, func(rid ids.ID, st *RelState) {
		out = append(out, RelSnapshot{
			ID: rid, Type: st.Type, Start: st.Start, End: st.End, Props: st.Props.Clone(),
		})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// forEachVisibleRel drives the enriched iterator without materialising
// snapshots: fn receives each visible relationship's state borrowed from
// the version chain — NOT cloned, valid only during the call. Traversals
// that only need endpoints (Neighbors, and through it every BFS frontier
// expansion) skip the per-relationship props clone that dominates
// adjacency cost on property-bearing graphs.
func (t *Tx) forEachVisibleRel(node ids.ID, dir Direction, relTypes []string, fn func(rid ids.ID, st *RelState)) error {
	if err := t.check(); err != nil {
		return err
	}
	if _, ok, err := t.visibleNode(node); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: node %d", ErrNotFound, node)
	}
	var candidates []ids.ID
	if !t.adjBusy {
		t.adjBusy = true
		defer func() {
			t.adjBuf = candidates[:0]
			t.adjBusy = false
		}()
		candidates = t.e.adjacentRels(node, dir, t.adjBuf[:0])
	} else {
		candidates = t.e.adjacentRels(node, dir, nil)
	}
	// Merge staged creations touching this node (their IDs are fresh, so
	// they cannot collide with installed candidates — but dedup anyway in
	// case that invariant ever changes).
	staged := 0
	if len(t.writes) > 0 {
		for k, w := range t.writes {
			if k.kind != lock.KindRel || !w.created || w.deleted || w.rel == nil {
				continue
			}
			if w.rel.Start == node || w.rel.End == node {
				candidates = append(candidates, k.id)
				staged++
			}
		}
	}
	var seen map[ids.ID]bool
	if staged > 0 {
		seen = make(map[ids.ID]bool, len(candidates))
	}
	for _, rid := range candidates {
		if seen != nil {
			if seen[rid] {
				continue
			}
			seen[rid] = true
		}
		st, ok, err := t.visibleRel(rid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if st.Start != node && st.End != node {
			continue
		}
		switch dir {
		case Outgoing:
			if st.Start != node {
				continue
			}
		case Incoming:
			if st.End != node {
				continue
			}
		}
		if len(relTypes) > 0 && !typeMatch(relTypes, st.Type) {
			continue
		}
		fn(rid, st)
	}
	return nil
}

// typeMatch reports whether rt is one of types. Type lists are one or
// two entries in practice, so a linear scan beats a per-call map.
func typeMatch(types []string, rt string) bool {
	for _, t := range types {
		if t == rt {
			return true
		}
	}
	return false
}

// Degree returns the number of visible relationships on node.
func (t *Tx) Degree(node ids.ID, dir Direction, relTypes ...string) (int, error) {
	n := 0
	err := t.forEachVisibleRel(node, dir, relTypes, func(ids.ID, *RelState) { n++ })
	if err != nil {
		return 0, err
	}
	return n, nil
}

// ForEachNeighbor streams the ID at the far end of each of node's
// visible relationships — the allocation-free path under Neighbors: no
// snapshot, no per-call set or sort. fn may see the same neighbor more
// than once (parallel edges); traversals dedup against the seen set they
// already carry.
func (t *Tx) ForEachNeighbor(node ids.ID, dir Direction, relTypes []string, fn func(ids.ID)) error {
	return t.forEachVisibleRel(node, dir, relTypes, func(_ ids.ID, st *RelState) {
		other := st.End
		if st.End == node && st.Start != node {
			other = st.Start
		} else if st.Start == node {
			other = st.End
		}
		fn(other)
	})
}

// Neighbors returns the IDs of nodes adjacent to node over visible
// relationships, deduplicated and sorted. It rides the enriched iterator
// directly — endpoints come from the borrowed relationship state, so no
// snapshot (and no props clone) is built per relationship.
func (t *Tx) Neighbors(node ids.ID, dir Direction, relTypes ...string) ([]ids.ID, error) {
	set := make(map[ids.ID]struct{})
	err := t.forEachVisibleRel(node, dir, relTypes, func(_ ids.ID, st *RelState) {
		other := st.End
		if st.End == node && st.Start != node {
			other = st.Start
		} else if st.Start == node {
			other = st.End
		}
		set[other] = struct{}{}
	})
	if err != nil {
		return nil, err
	}
	out := make([]ids.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
