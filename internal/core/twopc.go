package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
)

// Two-phase commit participant and coordinator state.
//
// A cross-partition transaction is prepared on every participant
// partition and decided by its coordinator (the partition that received
// the client's batch). The protocol is presumed abort:
//
//   - Prepare validates the transaction exactly as Commit would, writes
//     a 'P' record carrying the staged mutations to the WAL, and parks
//     the transaction: its write locks stay held and its keys are
//     registered in the per-stripe prepared tables, so no concurrent
//     transaction — under any conflict policy — can touch a prepared
//     key until the decision arrives.
//   - The coordinator's own durable commit decision ('D' record, with
//     the participant list) is the commit point: the client is acked
//     only after it. Decisions fan out to participants afterwards and
//     are re-pushed until every participant durably acked ('E' record).
//   - A participant that restarts with a prepared-but-undecided
//     transaction re-arms the guards from the 'P' record and asks the
//     coordinator partition for the verdict; a coordinator with no
//     recorded decision answers "aborted" (presumed abort).
//
// Records ride the existing WAL/LSN/epoch machinery, so they replicate
// to the partition's replicas byte-exactly: a promoted replica inherits
// the prepared table and any coordinator decisions wholesale.

// Additional WAL record tags (recCommit/recCheckpoint/recTrace live in
// commit.go).
const (
	recPrepare  = 'P' // prepared cross-partition transaction: gtxn, coordinator partition, guards, mutations
	recDecision = 'D' // 2PC verdict: gtxn, commit/abort, local cts, participant partitions (coordinator only)
	recAckEnd   = 'E' // all participants acked the decision; the repush obligation ends
)

// ErrNotPrepared reports a decide or status probe for a global
// transaction this engine holds no prepared state for.
var ErrNotPrepared = fmt.Errorf("core: transaction not prepared here")

// TxnState is an engine's local knowledge of a global transaction.
type TxnState string

const (
	TxnCommitted TxnState = "committed"
	TxnAborted   TxnState = "aborted"
	TxnPending   TxnState = "pending" // prepared locally, verdict not yet recorded
	TxnUnknown   TxnState = "unknown" // no state — presumed abort
)

// preparedTxn is a prepared-but-undecided transaction: the staged
// mutations awaiting the verdict plus the guards that keep every touched
// key untouchable until it arrives.
type preparedTxn struct {
	gtxn      uint64
	coordPart uint32
	muts      []mutation
	validate  []ids.ID // endpoint nodes guarded (but not written) for a remote partition's edge
	keys      []entKey // write keys + validate keys, the prepared-table footprint
	lockTxn   uint64   // lock.Manager owner holding the long locks until decide
	lsn       uint64   // LSN of the 'P' record (WAL truncation floor)
}

// decidedTxn is a coordinator-side committed decision whose participants
// have not all acked yet; it pins the WAL so a restarted coordinator can
// keep re-pushing the verdict.
type decidedTxn struct {
	gtxn         uint64
	commit       bool
	lsn          uint64              // LSN of the 'D' record
	participants map[uint32]struct{} // partitions still owed the decision
}

// PreparedInfo describes one in-doubt transaction for the resolver.
type PreparedInfo struct {
	Gtxn      uint64
	CoordPart uint32
}

// DecidedInfo describes one unacked coordinator decision for the
// decision-repush loop.
type DecidedInfo struct {
	Gtxn         uint64
	Commit       bool
	Participants []uint32
}

// OwnsID reports whether this engine's partition owns an entity ID
// (id % PartitionCount == PartitionID). With no partitioning configured
// every ID is local.
func (e *Engine) OwnsID(id ids.ID) bool {
	if e.opts.PartitionCount <= 1 {
		return true
	}
	return id%uint64(e.opts.PartitionCount) == uint64(e.opts.PartitionID)
}

// latchKeys acquires the per-stripe validation latches covering a key
// set, in ascending stripe order (same discipline as latchFCW). The
// caller must release in reverse order.
func (e *Engine) latchKeys(keys []entKey) []*stripe {
	idxs := make([]int, 0, len(keys))
	for _, k := range keys {
		idxs = append(idxs, int(e.stripeIndex(k)))
	}
	sort.Ints(idxs)
	latched := make([]*stripe, 0, len(idxs))
	prev := -1
	for _, idx := range idxs {
		if idx == prev {
			continue
		}
		prev = idx
		s := &e.stripes[idx]
		s.valMu.Lock()
		latched = append(latched, s)
	}
	return latched
}

func unlatchAll(latched []*stripe) {
	for i := len(latched) - 1; i >= 0; i-- {
		latched[i].valMu.Unlock()
	}
}

// prepFootprint computes the prepared-table footprint of a write set:
// every write key, plus the locally-owned endpoint nodes of created
// relationships, plus the validate set.
func (t *Tx) prepFootprint(muts []mutation, validate []ids.ID) []entKey {
	seen := make(map[entKey]struct{}, len(muts)+len(validate))
	keys := make([]entKey, 0, len(muts)+len(validate))
	add := func(k entKey) {
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	for _, m := range muts {
		add(m.key)
		if m.created && m.rel != nil && !m.deleted {
			for _, n := range []ids.ID{m.rel.Start, m.rel.End} {
				if t.e.OwnsID(n) {
					add(entKey{lock.KindNode, n})
				}
			}
		}
	}
	for _, n := range validate {
		add(entKey{lock.KindNode, n})
	}
	return keys
}

// Prepare runs phase one of two-phase commit for this transaction: it
// validates the write set exactly as Commit would, takes (or keeps) the
// write locks, registers every touched key in the prepared tables,
// logs a durable 'P' record, and parks the transaction until DecideTxn.
// validate lists endpoint nodes this partition must guard alive for a
// relationship stored on another partition.
//
// On success the transaction is consumed (Commit/Abort return ErrTxDone)
// and its guards persist until the decision; on failure everything is
// released and the transaction is aborted, exactly as a failed Commit.
func (t *Tx) Prepare(gtxn uint64, coordPart uint32, validate []ids.ID) (uint64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	t.done = true

	muts := t.mutations()
	if t.e.replica.Load() {
		t.abortStaged()
		t.cleanup()
		t.e.stats.aborted.Add(1)
		return 0, fmt.Errorf("%w: prepare rejected", ErrReadOnlyReplica)
	}

	e := t.e
	keys := t.prepFootprint(muts, validate)
	fcw := t.iso == SnapshotIsolation && e.opts.Conflict == FirstCommitterWins

	latched := e.latchKeys(keys)
	fail := func(err error) (uint64, error) {
		unlatchAll(latched)
		e.stats.conflicts.Add(1)
		t.abortStaged()
		t.cleanup()
		e.stats.aborted.Add(1)
		return 0, err
	}
	// No key may already belong to another prepared transaction.
	for _, k := range keys {
		s := e.stripeOf(k)
		if g, ok := s.prep[k]; ok {
			return fail(fmt.Errorf("%w: %s held by prepared transaction %d", ErrWriteConflict, fmtKey(k), g))
		}
	}
	if fcw {
		// First-committer-wins validation, identical to Commit's: every
		// non-created write must still derive from the chain head, and
		// created relationships' (local) endpoints must be alive.
		for _, w := range t.writes {
			if w.created {
				if w.rel != nil && !w.deleted {
					for _, n := range []ids.ID{w.rel.Start, w.rel.End} {
						if !e.OwnsID(n) {
							continue
						}
						if err := t.validateEndpointAlive(n); err != nil {
							return fail(err)
						}
					}
				}
				continue
			}
			o := e.getObject(w.key)
			if o == nil || o.chain.Head() != w.base {
				return fail(fmt.Errorf("%w: %s modified by concurrent transaction (first-committer-wins)",
					ErrWriteConflict, fmtKey(w.key)))
			}
		}
	}
	// Guarded endpoints for a remote partition's edge must be alive here.
	for _, n := range validate {
		o := e.getObject(entKey{lock.KindNode, n})
		if o == nil {
			return fail(fmt.Errorf("%w: endpoint node %d", ErrNotFound, n))
		}
		if head := o.chain.Head(); head == nil || head.Deleted {
			return fail(fmt.Errorf("%w: endpoint node %d deleted", ErrNotFound, n))
		}
	}
	// Take (or re-enter) the long write locks so lock-based transactions
	// (FUW staging, read-committed) block on prepared keys too. Under FUW
	// the write keys are already held by this transaction; TryAcquire is
	// re-entrant.
	for _, k := range keys {
		if err := e.locks.TryAcquire(t.id, lock.Key{Kind: k.kind, ID: k.id}, lock.Exclusive); err != nil {
			return fail(fmt.Errorf("%w: %s locked by concurrent transaction", ErrWriteConflict, fmtKey(k)))
		}
	}
	// Point of no return for validation: register the prepared guards.
	for _, k := range keys {
		s := e.stripeOf(k)
		if s.prep == nil {
			s.prep = make(map[entKey]uint64)
		}
		s.prep[k] = gtxn
	}
	unlatchAll(latched)

	// Durability: the 'P' record carries everything recovery needs to
	// re-arm the guards and later install the decision.
	var lsn uint64
	if e.store != nil {
		rec := encodePrepare(gtxn, coordPart, validate, muts)
		e.commitGate.RLock()
		e.walSeqMu.Lock()
		var err error
		lsn, err = e.wal.Append(rec)
		e.walSeqMu.Unlock()
		e.commitGate.RUnlock()
		if err == nil {
			err = e.syncRecord(lsn)
		}
		if err != nil {
			e.clearPrepared(&preparedTxn{keys: keys, lockTxn: t.id})
			t.abortStaged()
			if t.iso == SnapshotIsolation {
				e.active.Unregister(t.id)
			}
			e.stats.aborted.Add(1)
			return 0, fmt.Errorf("core: prepare wal: %w", err)
		}
	}

	e.prepMu.Lock()
	e.prepared[gtxn] = &preparedTxn{
		gtxn: gtxn, coordPart: coordPart, muts: muts,
		validate: validate, keys: keys, lockTxn: t.id, lsn: lsn,
	}
	e.prepMu.Unlock()
	// The snapshot registration is released (the prepared state no longer
	// reads), but the locks stay held under t.id until the decision.
	if t.iso == SnapshotIsolation {
		e.active.Unregister(t.id)
	}
	return lsn, nil
}

// syncRecord makes an appended record durable: through the group-commit
// batcher when one runs, else a direct sync (mirroring Commit).
func (e *Engine) syncRecord(lsn uint64) error {
	if e.batcher != nil {
		return e.batcher.WaitDurable(lsn)
	}
	if !e.opts.NoSyncCommits {
		return e.wal.Sync()
	}
	return nil
}

// clearPrepared removes a prepared transaction's guards: prepared-table
// entries (under the stripe latches) and long locks.
func (e *Engine) clearPrepared(p *preparedTxn) {
	latched := e.latchKeys(p.keys)
	for _, k := range p.keys {
		delete(e.stripeOf(k).prep, k)
	}
	unlatchAll(latched)
	e.locks.ReleaseAll(p.lockTxn)
}

// DecideTxn delivers the verdict for a transaction prepared on this
// engine: commit installs the prepared mutations at a fresh local commit
// timestamp, abort discards them; either way a durable 'D' record is
// logged first and every guard is released after. participants is
// non-empty only on the coordinator's own decide — it is persisted in
// the record and tracked until AckDecision drains it.
//
// Deciding an unknown gtxn returns ErrNotPrepared (the caller treats a
// retried decision as already applied).
func (e *Engine) DecideTxn(gtxn uint64, commit bool, participants []uint32) (mvcc.TS, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if e.replica.Load() {
		return 0, fmt.Errorf("%w: decisions reach a replica through the WAL stream", ErrReadOnlyReplica)
	}
	e.prepMu.Lock()
	p, ok := e.prepared[gtxn]
	if !ok {
		e.prepMu.Unlock()
		return 0, fmt.Errorf("%w: gtxn %d", ErrNotPrepared, gtxn)
	}
	delete(e.prepared, gtxn)
	e.prepMu.Unlock()

	var cts mvcc.TS
	var lsn uint64
	if e.store != nil {
		e.commitGate.RLock()
		e.walSeqMu.Lock()
		if commit {
			cts = e.oracle.BeginCommit()
		}
		var err error
		lsn, err = e.wal.Append(encodeDecision(gtxn, commit, cts, participants))
		e.walSeqMu.Unlock()
		if err != nil {
			e.commitGate.RUnlock()
			if commit {
				e.oracle.AbortCommit(cts)
			}
			// The decision is not durable; re-park the prepared state so a
			// retry (or recovery) can decide again.
			e.prepMu.Lock()
			e.prepared[gtxn] = p
			e.prepMu.Unlock()
			return 0, fmt.Errorf("core: decision wal append: %w", err)
		}
		if commit {
			keys := make([]entKey, 0, len(p.muts))
			for _, m := range p.muts {
				e.install(m, cts)
				keys = append(keys, m.key)
			}
			e.markDirty(keys)
		}
		e.commitGate.RUnlock()
		if commit {
			e.oracle.FinishCommit(cts)
		}
	} else if commit {
		cts = e.oracle.BeginCommit()
		for _, m := range p.muts {
			e.install(m, cts)
		}
		e.oracle.FinishCommit(cts)
	}
	if !commit {
		for _, m := range p.muts {
			if !m.created {
				continue
			}
			if m.key.kind == lock.KindNode {
				e.releaseNodeID(m.key.id)
			} else {
				e.releaseRelID(m.key.id)
			}
		}
		e.stats.aborted.Add(1)
	} else {
		e.stats.committed.Add(1)
	}
	e.clearPrepared(p)

	if commit && len(participants) > 0 {
		parts := make(map[uint32]struct{}, len(participants))
		for _, id := range participants {
			parts[id] = struct{}{}
		}
		e.prepMu.Lock()
		e.decided[gtxn] = &decidedTxn{gtxn: gtxn, commit: commit, lsn: lsn, participants: parts}
		e.prepMu.Unlock()
	}
	if e.store != nil {
		if err := e.syncRecord(lsn); err != nil {
			return 0, fmt.Errorf("core: decision %d installed but not durable: %w", gtxn, err)
		}
	}
	return cts, nil
}

// AckDecision records that a participant partition durably applied the
// decision for gtxn. When the last participant acks, an 'E' record ends
// the repush obligation and releases the decision's WAL pin.
func (e *Engine) AckDecision(gtxn uint64, participant uint32) {
	e.prepMu.Lock()
	d, ok := e.decided[gtxn]
	if ok {
		delete(d.participants, participant)
		if len(d.participants) == 0 {
			delete(e.decided, gtxn)
		}
	}
	e.prepMu.Unlock()
	if ok && len(d.participants) == 0 && e.store != nil && !e.replica.Load() {
		rec := make([]byte, 0, 9)
		rec = append(rec, recAckEnd)
		rec = binary.LittleEndian.AppendUint64(rec, gtxn)
		e.walSeqMu.Lock()
		_, _ = e.wal.Append(rec) // lost 'E' records only cost harmless re-pushes
		e.walSeqMu.Unlock()
	}
}

// TxnStatus answers an in-doubt participant's (or the local resolver's)
// query for a global transaction's verdict.
func (e *Engine) TxnStatus(gtxn uint64) TxnState {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	if d, ok := e.decided[gtxn]; ok {
		if d.commit {
			return TxnCommitted
		}
		return TxnAborted
	}
	if _, ok := e.prepared[gtxn]; ok {
		return TxnPending
	}
	return TxnUnknown
}

// InDoubt lists the transactions prepared here and still awaiting a
// verdict, for the resolver loop.
func (e *Engine) InDoubt() []PreparedInfo {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	out := make([]PreparedInfo, 0, len(e.prepared))
	for _, p := range e.prepared {
		out = append(out, PreparedInfo{Gtxn: p.gtxn, CoordPart: p.coordPart})
	}
	return out
}

// UnackedDecisions lists committed decisions still owed to participants,
// for the repush loop.
func (e *Engine) UnackedDecisions() []DecidedInfo {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	out := make([]DecidedInfo, 0, len(e.decided))
	for _, d := range e.decided {
		parts := make([]uint32, 0, len(d.participants))
		for id := range d.participants {
			parts = append(parts, id)
		}
		out = append(out, DecidedInfo{Gtxn: d.gtxn, Commit: d.commit, Participants: parts})
	}
	return out
}

// twopcFloor returns the lowest WAL position the 2PC state still needs:
// the 'P' record of any undecided transaction (recovery must re-arm its
// guards) and the 'D' record of any unacked decision (a restarted
// coordinator must keep re-pushing it).
func (e *Engine) twopcFloor() (uint64, bool) {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	var floor uint64
	found := false
	consider := func(lsn uint64) {
		if !found || lsn < floor {
			floor, found = lsn, true
		}
	}
	for _, p := range e.prepared {
		consider(p.lsn)
	}
	for _, d := range e.decided {
		consider(d.lsn)
	}
	return floor, found
}

// rearmPrepared re-registers a prepared transaction's guards after
// recovery or replica apply: prepared-table entries, long locks under a
// fresh lock owner, and allocator high-water cover for its created IDs.
func (e *Engine) rearmPrepared(gtxn uint64, coordPart uint32, validate []ids.ID, muts []mutation, lsn uint64) {
	t := &Tx{e: e, id: e.txnSeq.Add(1)}
	keys := t.prepFootprint(muts, validate)
	latched := e.latchKeys(keys)
	for _, k := range keys {
		s := e.stripeOf(k)
		if s.prep == nil {
			s.prep = make(map[entKey]uint64)
		}
		s.prep[k] = gtxn
		// Recovery and the replica applier run single-writer; the locks
		// cannot conflict.
		_ = e.locks.TryAcquire(t.id, lock.Key{Kind: k.kind, ID: k.id}, lock.Exclusive)
	}
	unlatchAll(latched)
	e.raiseHighWater(muts)
	e.prepMu.Lock()
	e.prepared[gtxn] = &preparedTxn{
		gtxn: gtxn, coordPart: coordPart, muts: muts,
		validate: validate, keys: keys, lockTxn: t.id, lsn: lsn,
	}
	e.prepMu.Unlock()
}

// applyDecision installs (or discards) a prepared transaction's effects
// when its verdict arrives through recovery or the replica stream.
// Missing prepared state is not an error: the 'P' record may have been
// truncated once its effects were checkpointed.
func (e *Engine) applyDecision(gtxn uint64, commit bool, cts mvcc.TS, participants []uint32, lsn uint64) []entKey {
	e.prepMu.Lock()
	p, ok := e.prepared[gtxn]
	if ok {
		delete(e.prepared, gtxn)
	}
	if commit && len(participants) > 0 {
		parts := make(map[uint32]struct{}, len(participants))
		for _, id := range participants {
			parts[id] = struct{}{}
		}
		e.decided[gtxn] = &decidedTxn{gtxn: gtxn, commit: commit, lsn: lsn, participants: parts}
	}
	e.prepMu.Unlock()
	if !ok {
		return nil
	}
	var keys []entKey
	if commit {
		keys = e.applyCommit(cts, p.muts)
	}
	e.clearPrepared(p)
	return keys
}

// ---- 2PC record codecs ----

// encodePrepare renders a 'P' record: gtxn, coordinator partition, the
// guarded-endpoint list, then the mutation list (commit-record codec).
func encodePrepare(gtxn uint64, coordPart uint32, validate []ids.ID, muts []mutation) []byte {
	buf := make([]byte, 0, 32+8*len(validate)+64*len(muts))
	buf = append(buf, recPrepare)
	buf = binary.LittleEndian.AppendUint64(buf, gtxn)
	buf = binary.LittleEndian.AppendUint32(buf, coordPart)
	buf = binary.AppendUvarint(buf, uint64(len(validate)))
	for _, id := range validate {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	return appendMutations(buf, muts)
}

// decodePrepare parses a 'P' record.
func decodePrepare(payload []byte) (gtxn uint64, coordPart uint32, validate []ids.ID, muts []mutation, err error) {
	if len(payload) < 13 || payload[0] != recPrepare {
		return 0, 0, nil, nil, fmt.Errorf("core: not a prepare record")
	}
	gtxn = binary.LittleEndian.Uint64(payload[1:])
	coordPart = binary.LittleEndian.Uint32(payload[9:])
	off := 13
	n, sz := binary.Uvarint(payload[off:])
	if sz <= 0 || n > uint64(len(payload)-off)/8 {
		return 0, 0, nil, nil, fmt.Errorf("core: corrupt prepare record (validate count)")
	}
	off += sz
	for i := uint64(0); i < n; i++ {
		validate = append(validate, binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	muts, _, err = decodeMutations(payload, off)
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("core: corrupt prepare record: %w", err)
	}
	return gtxn, coordPart, validate, muts, nil
}

// encodeDecision renders a 'D' record: gtxn, verdict, local commit
// timestamp (commit only), participant partitions (coordinator only).
func encodeDecision(gtxn uint64, commit bool, cts mvcc.TS, participants []uint32) []byte {
	buf := make([]byte, 0, 24+4*len(participants))
	buf = append(buf, recDecision)
	buf = binary.LittleEndian.AppendUint64(buf, gtxn)
	if commit {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, cts)
	buf = binary.AppendUvarint(buf, uint64(len(participants)))
	for _, p := range participants {
		buf = binary.LittleEndian.AppendUint32(buf, p)
	}
	return buf
}

// decodeDecision parses a 'D' record.
func decodeDecision(payload []byte) (gtxn uint64, commit bool, cts mvcc.TS, participants []uint32, err error) {
	if len(payload) < 18 || payload[0] != recDecision {
		return 0, false, 0, nil, fmt.Errorf("core: not a decision record")
	}
	gtxn = binary.LittleEndian.Uint64(payload[1:])
	commit = payload[9] == 1
	cts = binary.LittleEndian.Uint64(payload[10:])
	off := 18
	n, sz := binary.Uvarint(payload[off:])
	if sz <= 0 || n > uint64(len(payload)-off)/4 {
		return 0, false, 0, nil, fmt.Errorf("core: corrupt decision record")
	}
	off += sz
	for i := uint64(0); i < n; i++ {
		participants = append(participants, binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	return gtxn, commit, cts, participants, nil
}

// decodeAckEnd parses an 'E' record.
func decodeAckEnd(payload []byte) (uint64, error) {
	if len(payload) != 9 || payload[0] != recAckEnd {
		return 0, fmt.Errorf("core: not an ack-end record")
	}
	return binary.LittleEndian.Uint64(payload[1:]), nil
}
