package core

import (
	"errors"
	"testing"
	"time"

	"neograph/internal/value"
)

func TestTokenTable(t *testing.T) {
	tt := newTokenTable()
	a := tt.get(tokLabel, "Person")
	b := tt.get(tokLabel, "Company")
	if a == b {
		t.Fatal("distinct names share a token")
	}
	if tt.get(tokLabel, "Person") != a {
		t.Fatal("token not stable")
	}
	// Namespaces are independent: same name, different kind, own token
	// space starting at 0.
	if p := tt.get(tokPropKey, "Person"); p != 0 {
		t.Fatalf("propkey namespace token = %d, want 0", p)
	}
	if _, ok := tt.lookup(tokLabel, "Missing"); ok {
		t.Fatal("lookup invented a token")
	}
	if got, ok := tt.lookup(tokLabel, "Company"); !ok || got != b {
		t.Fatalf("lookup = %d/%v", got, ok)
	}
	if tt.count(tokLabel) != 2 || tt.count(tokPropKey) != 1 {
		t.Fatalf("counts = %d/%d", tt.count(tokLabel), tt.count(tokPropKey))
	}
}

func TestDoubleCloseAndCrash(t *testing.T) {
	e := diskEngine(t, t.TempDir())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
	if err := e.Crash(); !errors.Is(err, ErrClosed) {
		t.Fatalf("crash after close = %v", err)
	}
	if err := e.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close = %v", err)
	}
}

func TestBackgroundGCAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{
		Dir:             dir,
		GCEvery:         10 * time.Millisecond,
		CheckpointEvery: 10 * time.Millisecond,
		NoSyncCommits:   true,
		StoreCachePages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	for i := 0; i < 20; i++ {
		tx := e.Begin()
		if err := tx.SetNodeProp(id, "v", value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// Wait for the background loops to do visible work.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		s := e.Stats()
		if s.GCRuns > 0 && s.Checkpoints > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := e.Stats()
	if s.GCRuns == 0 {
		t.Error("background GC never ran")
	}
	if s.Checkpoints == 0 {
		t.Error("background checkpoint never ran")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen cleanly: the background work must have left consistent state.
	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Abort()
	n, err := tx.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 19 {
		t.Fatalf("v = %d, want 19", v)
	}
}

func TestInMemoryHasNoStore(t *testing.T) {
	e := memEngine(t)
	if e.Store() != nil {
		t.Fatal("memory engine exposes a store")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("memory checkpoint should be a no-op: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitTSExposed(t *testing.T) {
	e := memEngine(t)
	tx := e.Begin()
	if _, err := tx.CreateNode(nil, nil); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if tx.CommitTS() == 0 {
		t.Fatal("writing commit got no timestamp")
	}
	ro := e.Begin()
	mustCommit(t, ro)
	if ro.CommitTS() != 0 {
		t.Fatal("read-only commit got a timestamp")
	}
	if tx.Isolation() != SnapshotIsolation {
		t.Fatal("default isolation")
	}
	if tx.ID() == ro.ID() {
		t.Fatal("transaction ids collide")
	}
}
