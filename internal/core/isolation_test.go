package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neograph/internal/value"
)

// TestSINoUnrepeatableRead is the paper's first motivating anomaly (§1):
// under SI a transaction re-reading a data item sees the same value even
// after a concurrent commit; under RC it does not.
func TestSINoUnrepeatableRead(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(1)})

	reader := e.Begin()
	n1, err := reader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}

	writer := e.Begin()
	if err := writer.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, writer)

	n2, err := reader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := n1.Props["v"].AsInt()
	v2, _ := n2.Props["v"].AsInt()
	if v1 != v2 {
		t.Fatalf("unrepeatable read under SI: %d then %d", v1, v2)
	}
	reader.Abort()

	// A transaction started after the commit sees the new value.
	later := e.Begin()
	defer later.Abort()
	n3, _ := later.GetNode(id)
	if v3, _ := n3.Props["v"].AsInt(); v3 != 2 {
		t.Fatalf("new snapshot sees %d, want 2", v3)
	}
}

// TestRCUnrepeatableRead shows the baseline exhibits the anomaly.
func TestRCUnrepeatableRead(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(1)})

	reader := e.BeginWith(TxOptions{Isolation: ReadCommitted})
	n1, _ := reader.GetNode(id)

	writer := e.Begin()
	writer.SetNodeProp(id, "v", value.Int(2))
	mustCommit(t, writer)

	n2, _ := reader.GetNode(id)
	v1, _ := n1.Props["v"].AsInt()
	v2, _ := n2.Props["v"].AsInt()
	if v1 == v2 {
		t.Fatalf("read committed unexpectedly repeatable: %d, %d", v1, v2)
	}
	reader.Abort()
}

// TestSINoPhantoms is the paper's second motivating anomaly (§1): a
// predicate read (here, nodes by label) repeated in one SI transaction
// returns the same result set despite concurrent inserts.
func TestSINoPhantoms(t *testing.T) {
	e := memEngine(t)
	seedNode(t, e, []string{"Person"}, nil)
	seedNode(t, e, []string{"Person"}, nil)

	reader := e.Begin()
	first, err := reader.NodesByLabel("Person")
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent insert and delete.
	w := e.Begin()
	if _, err := w.CreateNode([]string{"Person"}, nil); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w)
	w2 := e.Begin()
	if err := w2.DeleteNode(first[0]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w2)

	second, err := reader.NodesByLabel("Person")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("phantom under SI: %v then %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("phantom under SI: %v then %v", first, second)
		}
	}
	reader.Abort()

	// RC sees the phantom.
	rc := e.BeginWith(TxOptions{Isolation: ReadCommitted})
	defer rc.Abort()
	rcSet, _ := rc.NodesByLabel("Person")
	if len(rcSet) != 2 { // 2 + 1 insert - 1 delete
		t.Fatalf("rc set = %v", rcSet)
	}
}

// TestFirstUpdaterWinsImmediateAbort: the second concurrent updater of an
// entity fails at its update statement, not at commit (§3/§4).
func TestFirstUpdaterWinsImmediateAbort(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	tx1 := e.Begin()
	tx2 := e.Begin()
	if err := tx1.SetNodeProp(id, "v", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	err := tx2.SetNodeProp(id, "v", value.Int(2))
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second updater got %v, want ErrWriteConflict", err)
	}
	tx2.Abort()
	mustCommit(t, tx1)

	tx3 := e.Begin()
	defer tx3.Abort()
	n, _ := tx3.GetNode(id)
	if v, _ := n.Props["v"].AsInt(); v != 1 {
		t.Fatalf("v = %d, want 1 (first updater's value)", v)
	}
	if e.Stats().WriteConflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

// TestFUWConflictWithCommittedWriter: a transaction whose snapshot
// predates a committed update must not overwrite it (lost update).
func TestFUWConflictWithCommittedWriter(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	tx1 := e.Begin() // snapshot before tx2's commit
	tx2 := e.Begin()
	if err := tx2.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	// tx2 released its lock, but its commit is newer than tx1's snapshot.
	err := tx1.SetNodeProp(id, "v", value.Int(1))
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	tx1.Abort()
}

// TestFirstCommitterWins: under FCW both updaters stage freely; the
// second to commit aborts.
func TestFirstCommitterWins(t *testing.T) {
	e := memEngine(t, func(o *Options) { o.Conflict = FirstCommitterWins })
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	tx1 := e.Begin()
	tx2 := e.Begin()
	if err := tx1.SetNodeProp(id, "v", value.Int(1)); err != nil {
		t.Fatalf("FCW must not conflict at update: %v", err)
	}
	if err := tx2.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatalf("FCW must not conflict at update: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer got %v, want ErrWriteConflict", err)
	}

	tx3 := e.Begin()
	defer tx3.Abort()
	n, _ := tx3.GetNode(id)
	if v, _ := n.Props["v"].AsInt(); v != 1 {
		t.Fatalf("v = %d, want 1", v)
	}
}

// TestWriteSkewAllowed: SI admits write skew (§1) — two transactions read
// the same pair and update different members. Both commit.
func TestWriteSkewAllowed(t *testing.T) {
	e := memEngine(t)
	x := seedNode(t, e, nil, value.Map{"on": value.Bool(true)})
	y := seedNode(t, e, nil, value.Map{"on": value.Bool(true)})

	tx1 := e.Begin()
	tx2 := e.Begin()
	// Both check the invariant "at least one on" in their snapshots...
	for _, tx := range []*Tx{tx1, tx2} {
		nx, _ := tx.GetNode(x)
		ny, _ := tx.GetNode(y)
		bx, _ := nx.Props["on"].AsBool()
		by, _ := ny.Props["on"].AsBool()
		if !bx || !by {
			t.Fatal("setup broken")
		}
	}
	// ...then each turns off a different node: disjoint write sets, no
	// write-write conflict, so SI lets both commit — violating the
	// invariant. This is the anomaly SI admits and serializability would
	// prevent; the test documents the expected (anomalous) behaviour.
	if err := tx1.SetNodeProp(x, "on", value.Bool(false)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetNodeProp(y, "on", value.Bool(false)); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("write skew should be allowed under SI: %v", err)
	}

	tx3 := e.Begin()
	defer tx3.Abort()
	nx, _ := tx3.GetNode(x)
	ny, _ := tx3.GetNode(y)
	bx, _ := nx.Props["on"].AsBool()
	by, _ := ny.Props["on"].AsBool()
	if bx || by {
		t.Fatal("expected both off (write skew outcome)")
	}
}

// TestRCBlockingWriters: under RC the second writer blocks rather than
// aborts, and proceeds once the first commits.
func TestRCBlockingWriters(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	tx1 := e.BeginWith(TxOptions{Isolation: ReadCommitted})
	if err := tx1.SetNodeProp(id, "v", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tx2 := e.BeginWith(TxOptions{Isolation: ReadCommitted})
		if err := tx2.SetNodeProp(id, "v", value.Int(2)); err != nil {
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	mustCommit(t, tx1)
	if err := <-done; err != nil {
		t.Fatalf("blocked RC writer: %v", err)
	}
	tx3 := e.Begin()
	defer tx3.Abort()
	n, _ := tx3.GetNode(id)
	if v, _ := n.Props["v"].AsInt(); v != 2 {
		t.Fatalf("v = %d, want 2 (second writer last)", v)
	}
}

// TestRCDeadlockDetected: two RC writers in opposite order deadlock; one
// is aborted with ErrDeadlock.
func TestRCDeadlockDetected(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	b := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	tx1 := e.BeginWith(TxOptions{Isolation: ReadCommitted})
	tx2 := e.BeginWith(TxOptions{Isolation: ReadCommitted})
	if err := tx1.SetNodeProp(a, "v", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetNodeProp(b, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		err1 = tx1.SetNodeProp(b, "v", value.Int(1))
		if err1 == nil {
			err1 = tx1.Commit()
		} else {
			tx1.Abort()
		}
	}()
	err2 = tx2.SetNodeProp(a, "v", value.Int(2))
	if err2 == nil {
		err2 = tx2.Commit()
	} else {
		tx2.Abort()
	}
	wg.Wait()
	dead1 := errors.Is(err1, ErrDeadlock)
	dead2 := errors.Is(err2, ErrDeadlock)
	if dead1 == dead2 {
		t.Fatalf("exactly one victim expected: err1=%v err2=%v", err1, err2)
	}
}

// TestSIReadersNeverBlock: an SI reader proceeds while a writer holds the
// write lock — the paper removed the short read locks (§4).
func TestSIReadersNeverBlock(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(1)})

	writer := e.Begin()
	if err := writer.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	// Reader runs to completion while the write lock is held: no channel
	// gymnastics needed — if reads took locks this would deadlock here.
	reader := e.Begin()
	n, err := reader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 1 {
		t.Fatalf("reader saw uncommitted or wrong value: %d", v)
	}
	reader.Abort()
	mustCommit(t, writer)
}

// TestRCReaderBlocksOnWriter: the short read lock of the RC baseline
// blocks behind a concurrent writer's long write lock — the very cost SI
// removes (§4). The reader proceeds only after the writer commits, and
// then observes the new value.
func TestRCReaderBlocksOnWriter(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(1)})

	writer := e.Begin()
	if err := writer.SetNodeProp(id, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	var sawV int64
	var blocked atomic.Bool
	blocked.Store(true)
	done := make(chan error, 1)
	go func() {
		rc := e.BeginWith(TxOptions{Isolation: ReadCommitted})
		defer rc.Abort()
		n, err := rc.GetNode(id) // must block on the write lock
		blocked.Store(false)
		if err != nil {
			done <- err
			return
		}
		sawV, _ = n.Props["v"].AsInt()
		done <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	if !blocked.Load() {
		t.Fatal("RC reader did not block behind a writer's long write lock")
	}
	mustCommit(t, writer)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sawV != 2 {
		t.Fatalf("unblocked RC reader saw %d, want the committed 2", sawV)
	}
}

// TestConflictOnDelete: deleting and updating the same node concurrently
// conflicts under FUW.
func TestConflictOnDelete(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, nil)
	tx1 := e.Begin()
	tx2 := e.Begin()
	if err := tx1.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetNodeProp(id, "v", value.Int(1)); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	tx2.Abort()
	mustCommit(t, tx1)
	// Updating a deleted node: not found.
	tx3 := e.Begin()
	defer tx3.Abort()
	if err := tx3.SetNodeProp(id, "v", value.Int(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestSnapshotSeesDeletedForOldReader: a reader whose snapshot predates a
// delete still sees the entity (tombstone visibility).
func TestSnapshotSeesDeletedForOldReader(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, []string{"L"}, value.Map{"v": value.Int(1)})

	old := e.Begin()
	del := e.Begin()
	if err := del.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, del)

	if _, err := old.GetNode(id); err != nil {
		t.Fatalf("old reader lost deleted node: %v", err)
	}
	if ids, _ := old.NodesByLabel("L"); len(ids) != 1 {
		t.Fatalf("old reader label scan = %v", ids)
	}
	old.Abort()

	fresh := e.Begin()
	defer fresh.Abort()
	if _, err := fresh.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatal("fresh reader sees deleted node")
	}
}

// TestConcurrentDisjointCommits exercises the commit pipeline under
// parallel load with disjoint write sets: all must succeed and every
// committed value must be readable afterwards.
func TestConcurrentDisjointCommits(t *testing.T) {
	e := memEngine(t)
	const n = 16
	nodeIDs := make([]uint64, n)
	for i := range nodeIDs {
		nodeIDs[i] = seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				// A snapshot can trail the worker's own latest commit while
				// other workers' commits are still installing; the resulting
				// self-conflict is correct SI behaviour, so retry.
				for {
					tx := e.Begin()
					err := tx.SetNodeProp(nodeIDs[i], "v", value.Int(int64(round)))
					if err == nil {
						err = tx.Commit()
						if err == nil {
							break
						}
					} else {
						tx.Abort()
					}
					if !errors.Is(err, ErrWriteConflict) {
						errs[i] = err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	tx := e.Begin()
	defer tx.Abort()
	for _, id := range nodeIDs {
		node, err := tx.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := node.Props["v"].AsInt(); v != 49 {
			t.Fatalf("node %d final v = %d, want 49", id, v)
		}
	}
	if got := e.Stats().Committed; got != n*50+n {
		t.Fatalf("committed = %d, want %d", got, n*50+n)
	}
}

// TestConcurrentContendedCounter: many SI transactions increment one
// counter; conflicts abort, successes serialise. The final value equals
// the number of successful commits — the lost-update anomaly is absent.
func TestConcurrentContendedCounter(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"n": value.Int(0)})
	var wg sync.WaitGroup
	var commits, conflicts sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var c, x int64
			for i := 0; i < 200; i++ {
				tx := e.Begin()
				node, err := tx.GetNode(id)
				if err != nil {
					tx.Abort()
					continue
				}
				cur, _ := node.Props["n"].AsInt()
				if err := tx.SetNodeProp(id, "n", value.Int(cur+1)); err != nil {
					x++
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					x++
					continue
				}
				c++
			}
			commits.Store(g, c)
			conflicts.Store(g, x)
		}(g)
	}
	wg.Wait()
	var totalCommits int64
	commits.Range(func(_, v any) bool { totalCommits += v.(int64); return true })

	tx := e.Begin()
	defer tx.Abort()
	node, _ := tx.GetNode(id)
	final, _ := node.Props["n"].AsInt()
	if final != totalCommits {
		t.Fatalf("counter = %d but %d commits succeeded (lost update!)", final, totalCommits)
	}
	if totalCommits == 0 {
		t.Fatal("no transaction ever succeeded")
	}
}
