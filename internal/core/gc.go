package core

import (
	"errors"
	"time"

	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/store"
)

// GCReport summarises one collector run (experiment E4's measurements).
type GCReport struct {
	Mode         GCMode
	Horizon      mvcc.TS
	Collected    int // versions reclaimed from chains
	Scanned      int // versions examined (== Collected+1 at most for threaded; whole cache for vacuum)
	IndexPruned  int // dead index entries dropped
	EntitiesDead int // chains fully collected (tombstoned entities removed)
	Duration     time.Duration
}

// RunGC runs one garbage collection cycle in the configured mode and
// returns its report. The horizon is the oldest active transaction's
// start timestamp (or the watermark when idle): versions below it can
// never be read again (§3).
func (e *Engine) RunGC() GCReport {
	start := time.Now()
	horizon := e.active.Horizon(e.oracle.Watermark())
	var rep GCReport
	rep.Mode = e.opts.GCMode
	rep.Horizon = horizon

	var deadChains []*mvcc.Chain
	onDead := func(c *mvcc.Chain) { deadChains = append(deadChains, c) }

	switch e.opts.GCMode {
	case GCThreaded:
		rep.Collected = e.gcList.Collect(horizon, onDead)
		// The threaded list touches exactly the collected versions plus
		// the one probe that stopped the walk.
		rep.Scanned = rep.Collected + 1
	case GCVacuum:
		// Vacuum-style: visit every chain in the cache.
		e.mu.RLock()
		chains := make([]*mvcc.Chain, 0, len(e.nodes)+len(e.rels))
		for _, o := range e.nodes {
			chains = append(chains, o.chain)
		}
		for _, o := range e.rels {
			chains = append(chains, o.chain)
		}
		e.mu.RUnlock()
		for _, c := range chains {
			before := c.Len()
			removed, empty := c.PruneOlderThan(horizon)
			rep.Scanned += before
			rep.Collected += removed
			if empty {
				onDead(c)
			}
		}
	}

	rep.IndexPruned += e.labelIdx.Prune(horizon)
	rep.IndexPruned += e.nodePropIdx.Prune(horizon)
	rep.IndexPruned += e.relPropIdx.Prune(horizon)

	rep.EntitiesDead = len(deadChains)
	e.reapDead(deadChains)

	rep.Duration = time.Since(start)
	e.stats.gcRuns.Add(1)
	e.stats.gcCollected.Add(uint64(rep.Collected))
	e.stats.gcScanned.Add(uint64(rep.Scanned))
	e.stats.dead.Add(uint64(rep.EntitiesDead))
	return rep
}

// reapDead removes fully collected entities from the cache maps, the
// adjacency structure, the dirty queue, and the persistent store. A dead
// relationship detaches from both endpoints; a dead node drops its (by
// now empty) adjacency set. Store removals share the maintenance mutex
// with the checkpointer so a stale checkpoint write cannot resurrect a
// removed record.
func (e *Engine) reapDead(chains []*mvcc.Chain) {
	if len(chains) == 0 {
		return
	}
	var objs []*object
	e.mu.Lock()
	for _, c := range chains {
		o := e.chainOwner[c]
		if o == nil {
			continue
		}
		delete(e.chainOwner, c)
		if o.key.kind == lock.KindNode {
			delete(e.nodes, o.key.id)
			delete(e.adj, o.key.id)
		} else {
			delete(e.rels, o.key.id)
			if set := e.adj[o.start]; set != nil {
				delete(set, o.key.id)
			}
			if set := e.adj[o.end]; set != nil {
				delete(set, o.key.id)
			}
		}
		objs = append(objs, o)
	}
	e.mu.Unlock()

	e.dirtyMu.Lock()
	for _, o := range objs {
		delete(e.dirty, o.key)
	}
	e.dirtyMu.Unlock()

	if e.store == nil {
		for _, o := range objs {
			if o.key.kind == lock.KindNode {
				e.releaseNodeID(o.key.id)
			} else {
				e.releaseRelID(o.key.id)
			}
		}
		return
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	// Relationships first: the store refuses to remove a node whose
	// relationship chain is non-empty.
	for _, o := range objs {
		if o.key.kind == lock.KindRel {
			err := e.store.RemoveRel(o.key.id)
			if errors.Is(err, store.ErrNotFound) {
				// Created and deleted before any checkpoint: the record was
				// never written, so only the ID needs recycling.
				e.store.ReleaseRelID(o.key.id)
			}
		}
	}
	for _, o := range objs {
		if o.key.kind == lock.KindNode {
			err := e.store.RemoveNode(o.key.id)
			if errors.Is(err, store.ErrNotFound) {
				e.store.ReleaseNodeID(o.key.id)
			}
		}
	}
}
