package core

import (
	"errors"
	"time"

	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/store"
)

// GCReport summarises one collector run (experiment E4's measurements).
type GCReport struct {
	Mode         GCMode
	Horizon      mvcc.TS
	Collected    int // versions reclaimed from chains
	Scanned      int // versions examined (== Collected+1 at most for threaded; whole cache for vacuum)
	IndexPruned  int // dead index entries dropped
	EntitiesDead int // chains fully collected (tombstoned entities removed)
	Duration     time.Duration
}

// RunGC runs one garbage collection cycle in the configured mode and
// returns its report. The horizon is the oldest active transaction's
// start timestamp (or the watermark when idle): versions below it can
// never be read again (§3).
func (e *Engine) RunGC() GCReport {
	start := time.Now()
	horizon := e.active.Horizon(e.oracle.Watermark())
	var rep GCReport
	rep.Mode = e.opts.GCMode
	rep.Horizon = horizon

	var deadChains []*mvcc.Chain
	onDead := func(c *mvcc.Chain) { deadChains = append(deadChains, c) }

	switch e.opts.GCMode {
	case GCThreaded:
		rep.Collected = e.gcList.Collect(horizon, onDead)
		// The threaded list touches exactly the collected versions plus
		// the one probe that stopped the walk.
		rep.Scanned = rep.Collected + 1
	case GCVacuum:
		// Vacuum-style: visit every chain in the cache.
		var chains []*mvcc.Chain
		for i := range e.stripes {
			s := &e.stripes[i]
			s.mu.RLock()
			for _, o := range s.nodes {
				chains = append(chains, o.chain)
			}
			for _, o := range s.rels {
				chains = append(chains, o.chain)
			}
			s.mu.RUnlock()
		}
		for _, c := range chains {
			before := c.Len()
			removed, empty := c.PruneOlderThan(horizon)
			rep.Scanned += before
			rep.Collected += removed
			if empty {
				onDead(c)
			}
		}
	}

	rep.IndexPruned += e.labelIdx.Prune(horizon)
	rep.IndexPruned += e.nodePropIdx.Prune(horizon)
	rep.IndexPruned += e.relPropIdx.Prune(horizon)

	rep.EntitiesDead = len(deadChains)
	e.reapDead(deadChains)

	rep.Duration = time.Since(start)
	e.stats.gcRuns.Add(1)
	e.stats.gcCollected.Add(uint64(rep.Collected))
	e.stats.gcScanned.Add(uint64(rep.Scanned))
	e.stats.dead.Add(uint64(rep.EntitiesDead))
	return rep
}

// reapDead removes fully collected entities from the cache maps, the
// adjacency structure, the dirty queue, and the persistent store. A dead
// relationship detaches from both endpoints; a dead node drops its (by
// now empty) adjacency set. Store removals share the maintenance mutex
// with the checkpointer so a stale checkpoint write cannot resurrect a
// removed record.
func (e *Engine) reapDead(chains []*mvcc.Chain) {
	if len(chains) == 0 {
		return
	}
	var objs []*object
	for _, c := range chains {
		v, ok := e.chainOwner.LoadAndDelete(c)
		if !ok {
			continue
		}
		o := v.(*object)
		if o.key.kind == lock.KindNode {
			s := e.stripeOf(o.key)
			s.mu.Lock()
			delete(s.nodes, o.key.id)
			delete(s.adj, o.key.id)
			s.mu.Unlock()
		} else {
			s := e.stripeOf(o.key)
			s.mu.Lock()
			delete(s.rels, o.key.id)
			s.mu.Unlock()
			// Adjacency entries live with the endpoint nodes, which may
			// hash to different stripes than the relationship itself.
			for _, n := range []uint64{o.start, o.end} {
				ns := e.nodeStripe(n)
				ns.mu.Lock()
				if set := ns.adj[n]; set != nil {
					delete(set, o.key.id)
				}
				ns.mu.Unlock()
			}
		}
		objs = append(objs, o)
	}

	e.dirtyMu.Lock()
	for _, o := range objs {
		delete(e.dirty, o.key)
	}
	e.dirtyMu.Unlock()

	if e.store == nil {
		for _, o := range objs {
			if o.key.kind == lock.KindNode {
				e.releaseNodeID(o.key.id)
			} else {
				e.releaseRelID(o.key.id)
			}
		}
		return
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	// Relationships first: the store refuses to remove a node whose
	// relationship chain is non-empty.
	for _, o := range objs {
		if o.key.kind == lock.KindRel {
			err := e.store.RemoveRel(o.key.id)
			if errors.Is(err, store.ErrNotFound) {
				// Created and deleted before any checkpoint: the record was
				// never written, so only the ID needs recycling.
				e.store.ReleaseRelID(o.key.id)
			}
		}
	}
	for _, o := range objs {
		if o.key.kind == lock.KindNode {
			err := e.store.RemoveNode(o.key.id)
			if errors.Is(err, store.ErrNotFound) {
				e.store.ReleaseNodeID(o.key.id)
			}
		}
	}
}
