package core

import "sync"

// Token namespaces for the in-memory token table backing the indexes.
type tokKind uint8

const (
	tokLabel tokKind = iota
	tokPropKey
	tokKinds
)

// tokenTable maps names to dense uint32 tokens, one namespace per kind.
// It mirrors the paper's observation that labels and properties are never
// deleted: entries only grow. The table is rebuilt during recovery (it is
// derived state), so it needs no persistence of its own.
type tokenTable struct {
	mu sync.RWMutex
	m  [tokKinds]map[string]uint32
	n  [tokKinds][]string
}

func newTokenTable() *tokenTable {
	t := &tokenTable{}
	for k := range t.m {
		t.m[k] = make(map[string]uint32)
	}
	return t
}

// get returns (assigning if new) the token for name.
func (t *tokenTable) get(kind tokKind, name string) uint32 {
	t.mu.RLock()
	id, ok := t.m[kind][name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.m[kind][name]; ok {
		return id
	}
	id = uint32(len(t.n[kind]))
	t.m[kind][name] = id
	t.n[kind] = append(t.n[kind], name)
	return id
}

// lookup returns the token for name without assigning.
func (t *tokenTable) lookup(kind tokKind, name string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.m[kind][name]
	return id, ok
}

// count returns the number of tokens in a namespace.
func (t *tokenTable) count(kind tokKind) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.n[kind])
}
