package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/value"
)

// These tests hammer the striped commit pipeline under the race detector:
// per-stripe first-committer-wins latches must neither lose conflicts
// (overlapping writers both committing) nor leak half-installed commits
// to snapshot readers (the watermark rule must survive the loss of the
// global latch). Run at several stripe counts, including the degenerate
// single-stripe mode whose semantics everything else must match.

func stripeStressEngine(t *testing.T, stripes int) *Engine {
	t.Helper()
	e, err := Open(Options{Conflict: FirstCommitterWins, CommitStripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestResolveStripes pins the option semantics: power-of-two rounding,
// the GOMAXPROCS default, and the cap.
func TestResolveStripes(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {256, 256}, {100000, 256},
	} {
		if got := resolveStripes(c.in); got != c.want {
			t.Errorf("resolveStripes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	def := resolveStripes(0)
	if def < 1 || def&(def-1) != 0 {
		t.Errorf("default stripes %d not a power of two", def)
	}
	if def < runtime.GOMAXPROCS(0) && def != maxCommitStripes {
		t.Errorf("default stripes %d below GOMAXPROCS %d", def, runtime.GOMAXPROCS(0))
	}
}

// TestStripeIndexSpread checks that dense sequential IDs — exactly what
// the allocators hand out — spread over the stripes instead of clustering,
// for both entity kinds.
func TestStripeIndexSpread(t *testing.T) {
	e := stripeStressEngine(t, 8)
	var nodeHits, relHits [8]int
	for id := uint64(0); id < 8000; id++ {
		nodeHits[e.stripeIndex(entKey{lock.KindNode, id})]++
		relHits[e.stripeIndex(entKey{lock.KindRel, id})]++
	}
	for i := 0; i < 8; i++ {
		// Perfectly uniform would be 1000 per stripe; demand within 2x.
		if nodeHits[i] < 500 || nodeHits[i] > 2000 || relHits[i] < 500 || relHits[i] > 2000 {
			t.Fatalf("skewed stripe distribution: nodes %v rels %v", nodeHits, relHits)
		}
	}
}

// TestStripedFCWNoLostConflicts drives overlapping FCW increments of
// shared counters next to disjoint private writers. Every attempt must
// either commit or abort with ErrWriteConflict; the final counter values
// must equal the number of successful increments (a lost conflict would
// admit a lost update and break the sum), and the disjoint writers must
// never abort at all.
func TestStripedFCWNoLostConflicts(t *testing.T) {
	for _, stripes := range []int{1, 8} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			e := stripeStressEngine(t, stripes)

			const counters = 4 // shared hot keys, spread over stripes
			const writers = 8
			const iters = 120

			ctrs := make([]ids.ID, counters)
			setup := e.Begin()
			for i := range ctrs {
				id, err := setup.CreateNode([]string{"Counter"}, value.Map{"n": value.Int(0)})
				if err != nil {
					t.Fatal(err)
				}
				ctrs[i] = id
			}
			priv := make([]ids.ID, writers)
			for i := range priv {
				id, err := setup.CreateNode([]string{"Private"}, value.Map{"n": value.Int(0)})
				if err != nil {
					t.Fatal(err)
				}
				priv[i] = id
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			var commits [counters]atomic.Int64
			var privConflicts, otherErrs atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						c := (w + i) % counters
						tx := e.Begin()
						// Overlapping write: read-modify-write one shared
						// counter (FCW: conflicts surface at commit).
						snap, err := tx.GetNode(ctrs[c])
						if err != nil {
							otherErrs.Add(1)
							tx.Abort()
							continue
						}
						n, _ := snap.Props["n"].AsInt()
						if err := tx.SetNodeProp(ctrs[c], "n", value.Int(n+1)); err != nil {
							otherErrs.Add(1)
							tx.Abort()
							continue
						}
						// Widen the read→commit window so transactions
						// actually overlap, even on a single-CPU runner.
						runtime.Gosched()
						// Disjoint write riding along: this writer's private
						// node, in the same transaction.
						if err := tx.SetNodeProp(priv[w], "n", value.Int(int64(i))); err != nil {
							otherErrs.Add(1)
							tx.Abort()
							continue
						}
						switch err := tx.Commit(); {
						case err == nil:
							commits[c].Add(1)
						case errors.Is(err, ErrWriteConflict):
							privConflicts.Add(1)
						default:
							otherErrs.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()

			if n := otherErrs.Load(); n != 0 {
				t.Fatalf("%d non-conflict errors", n)
			}
			check := e.Begin()
			defer check.Abort()
			for c, id := range ctrs {
				snap, err := check.GetNode(id)
				if err != nil {
					t.Fatal(err)
				}
				got, _ := snap.Props["n"].AsInt()
				if got != commits[c].Load() {
					t.Errorf("counter %d = %d, want %d successful commits (lost conflict => lost update)",
						c, got, commits[c].Load())
				}
			}
			t.Logf("stripes=%d: %d commits, %d conflicts",
				stripes, commits[0].Load()+commits[1].Load()+commits[2].Load()+commits[3].Load(), privConflicts.Load())
		})
	}
}

// TestStripedFCWDisjointNeverConflicts asserts the parallelism claim's
// correctness half: transactions with disjoint write footprints must all
// commit, whatever stripes they hash to.
func TestStripedFCWDisjointNeverConflicts(t *testing.T) {
	e := stripeStressEngine(t, 8)
	const writers = 8
	const nodesPer = 4
	const iters = 150

	own := make([][]ids.ID, writers)
	setup := e.Begin()
	for w := range own {
		for i := 0; i < nodesPer; i++ {
			id, err := setup.CreateNode(nil, value.Map{"v": value.Int(0)})
			if err != nil {
				t.Fatal(err)
			}
			own[w] = append(own[w], id)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx := e.Begin()
				ok := true
				for _, id := range own[w] {
					if err := tx.SetNodeProp(id, "v", value.Int(int64(i))); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					failures.Add(1)
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d disjoint transactions failed; disjoint FCW commits must all succeed", n)
	}
}

// TestCommitTimestampLSNOrder pins the log-order invariant the replica
// watermark protocol depends on: commit timestamps must be ascending in
// WAL (LSN) order, because a replica applies records in LSN order and
// fast-forwards its watermark to each observed timestamp. Concurrent
// disjoint committers — FCW per-stripe latches and FUW alike — race
// timestamp assignment against the append; walSeqMu makes them one step.
func TestCommitTimestampLSNOrder(t *testing.T) {
	for _, conflict := range []ConflictPolicy{FirstUpdaterWins, FirstCommitterWins} {
		t.Run(conflict.String(), func(t *testing.T) {
			e, err := Open(Options{
				Dir:           t.TempDir(),
				Conflict:      conflict,
				NoSyncCommits: true, // CPU-bound: maximise append interleaving
				CommitStripes: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			const writers = 8
			const iters = 100
			own := make([]ids.ID, writers)
			setup := e.Begin()
			for w := range own {
				if own[w], err = setup.CreateNode(nil, value.Map{"v": value.Int(0)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						tx := e.Begin()
						if err := tx.SetNodeProp(own[w], "v", value.Int(int64(i))); err != nil {
							t.Errorf("stage: %v", err)
							tx.Abort()
							return
						}
						runtime.Gosched() // widen the assign/append window
						if err := tx.Commit(); err != nil {
							t.Errorf("commit: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			var last mvcc.TS
			err = e.wal.ForEach(func(lsn uint64, payload []byte) error {
				if len(payload) == 0 || payload[0] != recCommit {
					return nil
				}
				cts, _, err := decodeCommit(payload)
				if err != nil {
					return err
				}
				if cts <= last {
					t.Errorf("commit ts %d at lsn %d after ts %d (log order inverted)", cts, lsn, last)
				}
				last = cts
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if last < writers*iters {
				t.Fatalf("only %d commits in the log", last)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStripedCommitAtomicity checks the watermark rule with per-stripe
// latches: a multi-entity commit spans several stripes, and a snapshot
// reader must see all of its writes or none — never a half-installed
// commit. Writers stamp every node of their group with one per-commit
// value; readers assert uniformity.
func TestStripedCommitAtomicity(t *testing.T) {
	for _, stripes := range []int{1, 8} {
		t.Run(fmt.Sprintf("stripes=%d", stripes), func(t *testing.T) {
			e := stripeStressEngine(t, stripes)

			const groups = 4
			const groupSize = 6 // > stripe count guarantees multi-stripe spans
			const iters = 100

			grp := make([][]ids.ID, groups)
			setup := e.Begin()
			for g := range grp {
				for i := 0; i < groupSize; i++ {
					id, err := setup.CreateNode(nil, value.Map{"v": value.Int(0)})
					if err != nil {
						t.Fatal(err)
					}
					grp[g] = append(grp[g], id)
				}
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			var writersWG, readersWG sync.WaitGroup
			stop := make(chan struct{})
			var torn atomic.Int64
			// One writer per group (disjoint: no aborts), many readers.
			for g := 0; g < groups; g++ {
				writersWG.Add(1)
				go func(g int) {
					defer writersWG.Done()
					for i := 1; i <= iters; i++ {
						tx := e.Begin()
						for _, id := range grp[g] {
							if err := tx.SetNodeProp(id, "v", value.Int(int64(i))); err != nil {
								t.Errorf("group %d stamp %d: %v", g, i, err)
								tx.Abort()
								return
							}
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("group %d commit %d: %v", g, i, err)
							return
						}
					}
				}(g)
			}
			for r := 0; r < 4; r++ {
				readersWG.Add(1)
				go func(r int) {
					defer readersWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						g := r % groups
						tx := e.Begin()
						var first int64
						uniform := true
						for i, id := range grp[g] {
							snap, err := tx.GetNode(id)
							if err != nil {
								t.Errorf("reader: %v", err)
								tx.Abort()
								return
							}
							v, _ := snap.Props["v"].AsInt()
							if i == 0 {
								first = v
							} else if v != first {
								uniform = false
							}
						}
						tx.Abort()
						if !uniform {
							torn.Add(1)
						}
					}
				}(r)
			}
			// Readers run for as long as the writers do.
			writersWG.Wait()
			close(stop)
			readersWG.Wait()
			if n := torn.Load(); n != 0 {
				t.Fatalf("%d torn snapshot reads (half-installed commit visible)", n)
			}
		})
	}
}
