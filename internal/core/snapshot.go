package core

import (
	"fmt"
	"strings"
)

// ReseedMarkerName is the file a re-seeding joiner creates in its data
// dir immediately before the destructive swap (removing old files,
// renaming the downloaded snapshot into place) and removes only after
// the new files are fsynced in. Open refuses a dir containing it.
const ReseedMarkerName = "reseed.incomplete"

// SnapshotFile describes one file of a consistent snapshot.
type SnapshotFile struct {
	// Rel is the file's slash-separated path relative to the data dir
	// (e.g. "epoch", "neostore.nodes.db", "wal/wal-…log").
	Rel string
	// Size is the number of bytes to ship. For the active WAL segment
	// this is capped at the durability horizon, so the shipped prefix
	// ends on a synced frame boundary even while commits keep appending.
	Size int64
}

// WithSnapshot captures a consistent on-disk snapshot and calls fn while
// it is guaranteed stable. It first runs a full checkpoint (so the store
// files carry every committed entity below the WAL cut), then keeps
// maintMu held for the duration of fn — freezing store-file writes, GC
// record removals, and WAL rotation/truncation. Commits are NOT blocked:
// they only append to the active WAL segment, and the listed size for
// that segment is capped at the post-checkpoint durability horizon.
//
// endLSN is the snapshot's WAL end — the position a re-seeded joiner
// resumes streaming from. Recovery on the shipped files replays the
// whole retained WAL idempotently, so the joiner opens exactly as if it
// had crashed and restarted at endLSN.
func (e *Engine) WithSnapshot(fn func(files []SnapshotFile, endLSN uint64) error) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.store == nil || e.wal == nil {
		return fmt.Errorf("core: snapshot requires a persistent engine")
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	if err := e.checkpointMaintLocked(); err != nil {
		return fmt.Errorf("core: snapshot checkpoint: %w", err)
	}
	// The checkpoint ended with a WAL sync, so durable covers every byte
	// written before this point; later appends land beyond endLSN and are
	// simply not shipped.
	endLSN := e.wal.DurableLSN()

	var files []SnapshotFile
	entries, err := e.fs.ReadDir(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("core: snapshot readdir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || (name != "epoch" && !strings.HasPrefix(name, "neostore.")) {
			continue
		}
		st, err := e.fs.Stat(e.opts.Dir + "/" + name)
		if err != nil {
			return fmt.Errorf("core: snapshot stat: %w", err)
		}
		files = append(files, SnapshotFile{Rel: name, Size: st.Size()})
	}
	walDir := e.opts.Dir + "/wal"
	segs, err := e.fs.ReadDir(walDir)
	if err != nil {
		return fmt.Errorf("core: snapshot readdir wal: %w", err)
	}
	for _, ent := range segs {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		base, perr := parseWALSegmentBase(name)
		if perr != nil {
			continue
		}
		st, err := e.fs.Stat(walDir + "/" + name)
		if err != nil {
			return fmt.Errorf("core: snapshot stat wal: %w", err)
		}
		size := st.Size()
		// Cap the segment holding the durability horizon: bytes past it
		// may be mid-append and unsynced. Segments entirely beyond the
		// horizon (none expected — rotation is frozen) ship empty.
		if base >= endLSN {
			size = 0
		} else if max := int64(endLSN - base); size > max {
			size = max
		}
		files = append(files, SnapshotFile{Rel: "wal/" + name, Size: size})
	}
	return fn(files, endLSN)
}

// parseWALSegmentBase extracts the starting LSN from a WAL segment file
// name ("wal-%020d.log").
func parseWALSegmentBase(name string) (uint64, error) {
	var base uint64
	if _, err := fmt.Sscanf(name, "wal-%020d.log", &base); err != nil {
		return 0, err
	}
	return base, nil
}
