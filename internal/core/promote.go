package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file implements the failover side of replication: the persistent
// replication epoch history and the replica -> primary promotion that
// extends it.
//
// The epoch is a generation counter over the WAL's history. Every node
// starts at epoch 1; a promotion appends (epoch+1, fork LSN) — the LSN
// at which the new timeline begins, the promoted replica's applied
// position. The *whole* history travels in the replication stream, not
// just the newest entry: a node that slept through several promotions
// must have its log end checked against the fork point of every epoch
// it missed, or a timeline dead since two failovers ago could slip past
// a check that only remembers the latest fork. Both sides refuse a
// silently diverging pairing — a demoted primary carrying unshipped
// records past any missed fork point is rejected by the new primary,
// and a stale primary refuses to ship to a replica that has already
// seen a newer epoch.

// epochFileName is the epoch-history file inside the engine directory:
// 16-byte records, epoch u64le then fork-start LSN u64le, oldest first.
const epochFileName = "epoch"

// ErrNotReplica reports a Promote call on an engine that is not (or is
// no longer) a replica.
var ErrNotReplica = errors.New("core: engine is not a replica")

// EpochEntry is one epoch of the node's timeline history: the epoch
// number and the LSN at which that epoch began (its fork point).
type EpochEntry struct {
	Epoch, Start uint64
}

// Epoch returns the node's current replication epoch and the LSN at
// which it began (0,0 in memory-only mode — replication requires a
// persistent store, so no history is kept).
func (e *Engine) Epoch() (epoch, startLSN uint64) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if len(e.epochHist) == 0 {
		return 0, 0
	}
	cur := e.epochHist[len(e.epochHist)-1]
	return cur.Epoch, cur.Start
}

// EpochHistory returns a copy of the node's full epoch history, oldest
// first; the last entry is the current epoch (nil in memory-only mode).
func (e *Engine) EpochHistory() []EpochEntry {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	out := make([]EpochEntry, len(e.epochHist))
	copy(out, e.epochHist)
	return out
}

// validateEpochHistory checks the structural invariants: non-empty,
// strictly increasing epochs, non-decreasing fork points.
func validateEpochHistory(hist []EpochEntry) error {
	if len(hist) == 0 {
		return errors.New("core: empty epoch history")
	}
	for i, en := range hist {
		if en.Epoch == 0 {
			return errors.New("core: epoch history holds epoch 0")
		}
		if i > 0 && (en.Epoch <= hist[i-1].Epoch || en.Start < hist[i-1].Start) {
			return fmt.Errorf("core: epoch history not monotonic at entry %d", i)
		}
	}
	return nil
}

// loadEpoch reads the persisted epoch history at Open; a missing file is
// the pristine state (epoch 1 starting at position 0).
func (e *Engine) loadEpoch() error {
	e.epochHist = []EpochEntry{{Epoch: 1, Start: 0}}
	buf, err := e.fs.ReadFile(filepath.Join(e.opts.Dir, epochFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: read epoch: %w", err)
	}
	if len(buf) == 0 || len(buf)%16 != 0 {
		return fmt.Errorf("core: epoch file is %d bytes, want a positive multiple of 16", len(buf))
	}
	hist := make([]EpochEntry, 0, len(buf)/16)
	for off := 0; off < len(buf); off += 16 {
		hist = append(hist, EpochEntry{
			Epoch: binary.LittleEndian.Uint64(buf[off:]),
			Start: binary.LittleEndian.Uint64(buf[off+8:]),
		})
	}
	if err := validateEpochHistory(hist); err != nil {
		return err
	}
	e.epochHist = hist
	return nil
}

// saveEpochLocked persists the history atomically: write-to-temp,
// fsync, rename, fsync the directory. Caller holds e.epochMu.
func (e *Engine) saveEpochLocked(hist []EpochEntry) error {
	buf := make([]byte, 0, 16*len(hist))
	for _, en := range hist {
		buf = binary.LittleEndian.AppendUint64(buf, en.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, en.Start)
	}
	path := filepath.Join(e.opts.Dir, epochFileName)
	tmp := path + ".tmp"
	f, err := e.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: write epoch: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("core: write epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close epoch: %w", err)
	}
	if err := e.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: rename epoch: %w", err)
	}
	// fsync the directory too: the rename is what publishes the epoch
	// bump, and all fencing depends on it surviving power loss — a node
	// that reverted to its old epoch after promoting would be refused by
	// its own replicas as a stale primary.
	d, err := e.fs.Open(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("core: open dir for epoch sync: %w", err)
	}
	syncErr := d.Sync()
	d.Close()
	if syncErr != nil {
		return fmt.Errorf("core: sync epoch dir: %w", syncErr)
	}
	e.epochHist = hist
	return nil
}

// AdoptEpochHistory records the primary's epoch history on a replica.
// The caller (the stream applier) has already verified its own log end
// against the fork point of every epoch it missed; here only forward
// motion is enforced: the incoming history must end at or past the
// current epoch. Adopting an identical-tip history is a no-op.
func (e *Engine) AdoptEpochHistory(hist []EpochEntry) error {
	if e.store == nil {
		return errors.New("core: epoch requires a persistent store")
	}
	if err := validateEpochHistory(hist); err != nil {
		return err
	}
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	cur := e.epochHist[len(e.epochHist)-1]
	tip := hist[len(hist)-1]
	switch {
	case tip.Epoch < cur.Epoch:
		return fmt.Errorf("core: adopt epoch %d behind current %d", tip.Epoch, cur.Epoch)
	case tip.Epoch == cur.Epoch && len(hist) == len(e.epochHist):
		return nil
	}
	return e.saveEpochLocked(hist)
}

// Promote flips a replica engine into a writable primary:
//
//  1. the applied WAL tail is fsynced, so the new timeline's base is
//     durable before any new commit can build on it (the stream applier
//     keeps log and object cache in lockstep, so there is no unapplied
//     tail to replay — a record is installed before the next can arrive);
//  2. the epoch history gains (epoch+1, fork-point LSN) — the promoted
//     node's log end — persisted before the role flips, fencing the
//     demoted primary out;
//  3. the replica flag drops, so commits, checkpoint markers and the ID
//     allocators behave as a primary from the next operation on.
//
// The caller must have stopped the stream applier first (repl.Applier
// Close); DB.Promote does both and then starts a shipper so surviving
// replicas can re-point at the promoted node.
func (e *Engine) Promote() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.store == nil {
		return errors.New("core: promote requires a persistent store")
	}
	if !e.replica.Load() {
		return fmt.Errorf("%w: promote", ErrNotReplica)
	}
	if err := e.wal.Sync(); err != nil {
		return fmt.Errorf("core: promote: seal applied tail: %w", err)
	}
	fork := e.wal.NextLSN()
	e.epochMu.Lock()
	cur := e.epochHist[len(e.epochHist)-1]
	hist := append(append([]EpochEntry{}, e.epochHist...), EpochEntry{Epoch: cur.Epoch + 1, Start: fork})
	err := e.saveEpochLocked(hist)
	e.epochMu.Unlock()
	if err != nil {
		return err
	}
	e.replica.Store(false)
	return nil
}
