package core

import (
	"fmt"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/store"
)

// recover rebuilds the object cache, adjacency, indexes and oracle from
// the persistent store and the WAL tail:
//
//  1. every persisted entity image (the newest committed version only,
//     per §4) becomes a single-version chain at its stored commit
//     timestamp; tombstone images re-enter the GC list;
//  2. WAL commit records newer than the persisted image are re-installed
//     (idempotently — older or equal timestamps are skipped), exactly as
//     if the original transactions had just committed;
//  3. the oracle resumes from the largest commit timestamp seen.
func (e *Engine) recover() error {
	var maxTS mvcc.TS

	seed := func(k entKey, v *mvcc.Version, relStart, relEnd uint64) {
		o := e.ensureObject(k)
		o.start, o.end = relStart, relEnd
		o.chain.Install(v)
		if v.CommitTS > maxTS {
			maxTS = v.CommitTS
		}
		if v.Deleted && e.opts.GCMode == GCThreaded {
			v.SupersededAt = v.CommitTS
			e.gcList.Add(v)
		}
	}

	err := e.store.ScanNodes(func(nd store.NodeData) error {
		st := &NodeState{Labels: normalizeLabels(nd.Labels), Props: nd.Props}
		v := &mvcc.Version{CommitTS: nd.CommitTS, Deleted: nd.Tombstone, Data: st}
		k := entKey{lock.KindNode, nd.ID}
		seed(k, v, 0, 0)
		if !nd.Tombstone {
			e.indexNodeDiff(nd.ID, nil, st, nd.CommitTS)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: recover nodes: %w", err)
	}
	err = e.store.ScanRels(func(rd store.RelData) error {
		st := &RelState{Type: rd.Type, Start: rd.StartNode, End: rd.EndNode, Props: rd.Props}
		v := &mvcc.Version{CommitTS: rd.CommitTS, Deleted: rd.Tombstone, Data: st}
		k := entKey{lock.KindRel, rd.ID}
		seed(k, v, rd.StartNode, rd.EndNode)
		if rd.EndNode == rd.StartNode {
			e.addAdjacency(rd.StartNode, rd.ID, adjOut|adjIn)
		} else {
			e.addAdjacency(rd.StartNode, rd.ID, adjOut)
			e.addAdjacency(rd.EndNode, rd.ID, adjIn)
		}
		if !rd.Tombstone {
			e.indexRelDiff(rd.ID, nil, st, rd.CommitTS)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: recover rels: %w", err)
	}

	// Replay the WAL tail through the same redo-apply path the
	// replication applier uses. Records whose effects are already
	// persisted (head commit TS >= record TS) are skipped per entity,
	// making replay idempotent. Two-phase-commit records are folded as
	// the stream dictates: a 'P' parks its mutations, the matching 'D'
	// installs or discards them, and whatever is still parked at the end
	// of the log is in doubt — its guards are re-armed and the resolver
	// will ask the coordinator.
	type pendingPrep struct {
		coordPart uint32
		validate  []ids.ID
		muts      []mutation
		lsn       uint64
	}
	inDoubt := make(map[uint64]*pendingPrep)
	unacked := make(map[uint64]*decidedTxn)
	var replayed []entKey
	err = e.wal.ForEach(func(lsn uint64, payload []byte) error {
		if len(payload) == 0 {
			return nil
		}
		switch payload[0] {
		case recCheckpoint:
			return nil
		case recTrace:
			// Trace-context records only matter to a live replica stream;
			// replay has nobody to hand the span to.
			return nil
		case recCommit:
			cts, muts, err := decodeCommit(payload)
			if err != nil {
				return err
			}
			if cts > maxTS {
				maxTS = cts
			}
			replayed = append(replayed, e.applyCommit(cts, muts)...)
			return nil
		case recPrepare:
			gtxn, coordPart, validate, muts, err := decodePrepare(payload)
			if err != nil {
				return err
			}
			inDoubt[gtxn] = &pendingPrep{coordPart: coordPart, validate: validate, muts: muts, lsn: lsn}
			return nil
		case recDecision:
			gtxn, commit, cts, parts, err := decodeDecision(payload)
			if err != nil {
				return err
			}
			if p, ok := inDoubt[gtxn]; ok {
				delete(inDoubt, gtxn)
				if commit {
					if cts > maxTS {
						maxTS = cts
					}
					replayed = append(replayed, e.applyCommit(cts, p.muts)...)
				}
			}
			// A commit decision with participants is a coordinator's own:
			// the repush obligation survives restart until 'E'.
			if commit && len(parts) > 0 {
				pm := make(map[uint32]struct{}, len(parts))
				for _, id := range parts {
					pm[id] = struct{}{}
				}
				unacked[gtxn] = &decidedTxn{gtxn: gtxn, commit: true, lsn: lsn, participants: pm}
			}
			return nil
		case recAckEnd:
			gtxn, err := decodeAckEnd(payload)
			if err != nil {
				return err
			}
			delete(unacked, gtxn)
			return nil
		default:
			return fmt.Errorf("core: unknown WAL record tag %q", payload[0])
		}
	})
	if err != nil {
		return fmt.Errorf("core: wal replay: %w", err)
	}
	e.markDirty(replayed)

	// Allocator high-water marks may trail the WAL tail after a crash
	// (store allocators are rebuilt from record files, which the replayed
	// commits never reached). Raise them past every recovered ID.
	var maxNode, maxRel uint64
	hasNode, hasRel := false, false
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		for id := range s.nodes {
			if !hasNode || id > maxNode {
				maxNode, hasNode = id, true
			}
		}
		for id := range s.rels {
			if !hasRel || id > maxRel {
				maxRel, hasRel = id, true
			}
		}
		s.mu.RUnlock()
	}
	if hasNode && e.store.NodeHighWater() <= maxNode {
		e.store.SetNodeHighWater(maxNode + 1)
	}
	if hasRel && e.store.RelHighWater() <= maxRel {
		e.store.SetRelHighWater(maxRel + 1)
	}

	e.oracle = mvcc.NewOracle(maxTS)

	// Re-arm the guards of every in-doubt transaction (rearmPrepared also
	// raises the allocator high waters over their created IDs, so an
	// undecided creation's ID can never be reallocated) and restore the
	// coordinator's unacked-decision obligations.
	for gtxn, p := range inDoubt {
		e.rearmPrepared(gtxn, p.coordPart, p.validate, p.muts, p.lsn)
	}
	e.prepMu.Lock()
	for gtxn, d := range unacked {
		e.decided[gtxn] = d
	}
	e.prepMu.Unlock()
	return nil
}
