package core

import (
	"reflect"
	"testing"

	"neograph/internal/value"
)

func TestNodesByLabelCommitted(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, []string{"X"}, nil)
	seedNode(t, e, []string{"Y"}, nil)
	c := seedNode(t, e, []string{"X", "Y"}, nil)

	tx := e.Begin()
	defer tx.Abort()
	got, err := tx.NodesByLabel("X")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{a, c}) {
		t.Fatalf("X = %v, want [%d %d]", got, a, c)
	}
	if got, _ := tx.NodesByLabel("Missing"); len(got) != 0 {
		t.Fatalf("missing label = %v", got)
	}
}

func TestNodesByLabelRYOW(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, []string{"X"}, nil)
	b := seedNode(t, e, []string{"X"}, nil)

	tx := e.Begin()
	// Stage: remove label from a, add to a fresh node, delete b.
	if err := tx.RemoveLabel(a, "X"); err != nil {
		t.Fatal(err)
	}
	fresh, _ := tx.CreateNode([]string{"X"}, nil)
	if err := tx.DeleteNode(b); err != nil {
		t.Fatal(err)
	}
	got, err := tx.NodesByLabel("X")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{fresh}) {
		t.Fatalf("RYOW merge = %v, want [%d]", got, fresh)
	}
	// Another transaction still sees the committed state.
	other := e.Begin()
	defer other.Abort()
	got, _ = other.NodesByLabel("X")
	if !reflect.DeepEqual(got, []uint64{a, b}) {
		t.Fatalf("committed view polluted: %v", got)
	}
	tx.Abort()
}

func TestNodesByProperty(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, value.Map{"city": value.String("madrid")})
	seedNode(t, e, nil, value.Map{"city": value.String("paris")})
	c := seedNode(t, e, nil, value.Map{"city": value.String("madrid")})

	tx := e.Begin()
	got, err := tx.NodesByProperty("city", value.String("madrid"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{a, c}) {
		t.Fatalf("madrid = %v", got)
	}
	// Update through the write set: index hit must be re-validated.
	if err := tx.SetNodeProp(a, "city", value.String("berlin")); err != nil {
		t.Fatal(err)
	}
	got, _ = tx.NodesByProperty("city", value.String("madrid"))
	if !reflect.DeepEqual(got, []uint64{c}) {
		t.Fatalf("after staged update = %v, want [%d]", got, c)
	}
	got, _ = tx.NodesByProperty("city", value.String("berlin"))
	if !reflect.DeepEqual(got, []uint64{a}) {
		t.Fatalf("staged value lookup = %v, want [%d]", got, a)
	}
	tx.Abort()
}

func TestPropertyIndexAfterCommitUpdate(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, value.Map{"v": value.Int(1)})
	tx := e.Begin()
	if err := tx.SetNodeProp(a, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	defer tx2.Abort()
	if got, _ := tx2.NodesByProperty("v", value.Int(1)); len(got) != 0 {
		t.Fatalf("stale index entry: %v", got)
	}
	if got, _ := tx2.NodesByProperty("v", value.Int(2)); !reflect.DeepEqual(got, []uint64{a}) {
		t.Fatalf("new index entry missing: %v", got)
	}
}

func TestRelsByProperty(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r1, _ := tx.CreateRel("R", a, b, value.Map{"w": value.Int(5)})
	_, _ = tx.CreateRel("R", a, b, value.Map{"w": value.Int(6)})
	mustCommit(t, tx)

	tx2 := e.Begin()
	got, err := tx2.RelsByProperty("w", value.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{r1}) {
		t.Fatalf("w=5 -> %v", got)
	}
	// Staged create merges in.
	r3, _ := tx2.CreateRel("R", a, b, value.Map{"w": value.Int(5)})
	got, _ = tx2.RelsByProperty("w", value.Int(5))
	if !reflect.DeepEqual(got, []uint64{r1, r3}) {
		t.Fatalf("merged = %v", got)
	}
	tx2.Abort()
}

func TestAllNodesAllRels(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, nil, nil)
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, _ := tx.CreateRel("R", a, b, nil)
	mustCommit(t, tx)

	tx2 := e.Begin()
	nodes, _ := tx2.AllNodes()
	rels, _ := tx2.AllRels()
	if !reflect.DeepEqual(nodes, []uint64{a, b}) || !reflect.DeepEqual(rels, []uint64{r}) {
		t.Fatalf("nodes=%v rels=%v", nodes, rels)
	}
	// Staged entities appear; deleted ones vanish.
	c, _ := tx2.CreateNode(nil, nil)
	if err := tx2.DeleteRel(r); err != nil {
		t.Fatal(err)
	}
	nodes, _ = tx2.AllNodes()
	rels, _ = tx2.AllRels()
	if !reflect.DeepEqual(nodes, []uint64{a, b, c}) || len(rels) != 0 {
		t.Fatalf("staged: nodes=%v rels=%v", nodes, rels)
	}
	tx2.Abort()
}

func TestNodeIterator(t *testing.T) {
	e := memEngine(t)
	want := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		want[seedNode(t, e, []string{"It"}, value.Map{"i": value.Int(int64(i))})] = true
	}
	tx := e.Begin()
	defer tx.Abort()
	it, err := tx.IterateNodesByLabel("It")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for it.Next() {
		n := it.Node()
		if !want[n.ID] {
			t.Fatalf("unexpected node %d", n.ID)
		}
		if _, ok := n.Props["i"]; !ok {
			t.Fatalf("iterator snapshot missing props: %v", n)
		}
		seen++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if seen != 5 {
		t.Fatalf("iterated %d, want 5", seen)
	}
	it2, _ := tx.IterateAllNodes()
	count := 0
	for it2.Next() {
		count++
	}
	if count != 5 {
		t.Fatalf("all-nodes iterator = %d", count)
	}
}

func TestIndexVisibilityForOldSnapshots(t *testing.T) {
	e := memEngine(t)
	old := e.Begin() // snapshot before anything labelled "New" exists
	seedNode(t, e, []string{"New"}, nil)

	if got, _ := old.NodesByLabel("New"); len(got) != 0 {
		t.Fatalf("old snapshot sees later label: %v", got)
	}
	old.Abort()
	fresh := e.Begin()
	defer fresh.Abort()
	if got, _ := fresh.NodesByLabel("New"); len(got) != 1 {
		t.Fatalf("fresh snapshot missing label: %v", got)
	}
}
