package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"neograph/internal/value"
)

// committedOp is the record of one successfully committed transaction's
// effect, replayable against a sequential model.
type committedOp struct {
	cts  uint64
	kind byte // 'c' create, 'u' update, 'd' delete
	node uint64
	val  int64
}

// TestHistoryEquivalentToCommitOrderReplay is the central soundness check
// of the MVCC engine: run a random concurrent workload of blind creates,
// updates and deletes under SI; afterwards, replaying the committed
// operations sequentially in commit-timestamp order against a plain map
// must produce exactly the database's final visible state. The commit
// timestamp really is a serialisation order for write sets (§3).
func TestHistoryEquivalentToCommitOrderReplay(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		e := memEngine(t)

		// Seed pool of nodes.
		var pool []uint64
		tx := e.Begin()
		for i := 0; i < 30; i++ {
			id, err := tx.CreateNode(nil, value.Map{"v": value.Int(0)})
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		mustCommit(t, tx)
		seedCts := tx.CommitTS()
		if seedCts == 0 {
			t.Fatal("seed commit got no timestamp")
		}

		var mu sync.Mutex
		var log []committedOp

		const workers, opsPer = 8, 120
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(trial*1000 + w)))
				for i := 0; i < opsPer; i++ {
					tx := e.Begin()
					var op committedOp
					var err error
					switch r.Intn(10) {
					case 0: // create
						op.kind = 'c'
						op.val = r.Int63n(1000)
						op.node, err = tx.CreateNode(nil, value.Map{"v": value.Int(op.val)})
					case 1: // delete
						op.kind = 'd'
						op.node = pool[r.Intn(len(pool))]
						err = tx.DeleteNode(op.node)
					default: // blind update
						op.kind = 'u'
						op.node = pool[r.Intn(len(pool))]
						op.val = r.Int63n(1000)
						err = tx.SetNodeProp(op.node, "v", value.Int(op.val))
					}
					if err != nil {
						tx.Abort()
						if errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrNotFound) {
							continue
						}
						t.Error(err)
						return
					}
					if err := tx.Commit(); err != nil {
						if errors.Is(err, ErrWriteConflict) {
							continue
						}
						t.Error(err)
						return
					}
					op.cts = tx.CommitTS()
					mu.Lock()
					log = append(log, op)
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()

		// Sequential model: replay in commit-timestamp order.
		type modelNode struct{ v int64 }
		model := make(map[uint64]*modelNode)
		for _, id := range pool {
			model[id] = &modelNode{0}
		}
		// Commit timestamps are unique; sort the log by them.
		sortOps(log)
		var prev uint64
		for _, op := range log {
			if op.cts == prev {
				t.Fatalf("duplicate commit timestamp %d", op.cts)
			}
			prev = op.cts
			switch op.kind {
			case 'c':
				model[op.node] = &modelNode{op.val}
			case 'u':
				if model[op.node] == nil {
					t.Fatalf("model: update of missing node %d at cts %d (engine allowed a write to a deleted node)", op.node, op.cts)
				}
				model[op.node].v = op.val
			case 'd':
				if model[op.node] == nil {
					t.Fatalf("model: delete of missing node %d at cts %d", op.node, op.cts)
				}
				delete(model, op.node)
			}
		}

		// Compare with the database's final visible state.
		final := e.Begin()
		all, err := final.AllNodes()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != len(model) {
			t.Fatalf("trial %d: %d visible nodes, model has %d", trial, len(all), len(model))
		}
		for _, id := range all {
			m, ok := model[id]
			if !ok {
				t.Fatalf("trial %d: node %d visible but not in model", trial, id)
			}
			n, err := final.GetNode(id)
			if err != nil {
				t.Fatal(err)
			}
			v, _ := n.Props["v"].AsInt()
			if v != m.v {
				t.Fatalf("trial %d: node %d v=%d, model says %d", trial, id, v, m.v)
			}
		}
		final.Abort()

		// GC to nothing outstanding, then re-verify (collection must not
		// change visible state).
		e.RunGC()
		check := e.Begin()
		all2, _ := check.AllNodes()
		if len(all2) != len(model) {
			t.Fatalf("trial %d: GC changed visible node count %d -> %d", trial, len(all), len(all2))
		}
		check.Abort()
	}
}

func sortOps(ops []committedOp) {
	// Insertion sort is fine at this size and avoids another import.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].cts < ops[j-1].cts; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

// TestSnapshotReadsStableThroughoutRandomHistory drives readers that
// repeatedly re-read a fixed witness set mid-churn: within one SI
// transaction every re-read must return the identical value.
func TestSnapshotReadsStableThroughoutRandomHistory(t *testing.T) {
	e := memEngine(t)
	var pool []uint64
	tx := e.Begin()
	for i := 0; i < 10; i++ {
		id, _ := tx.CreateNode(nil, value.Map{"v": value.Int(int64(i))})
		pool = append(pool, id)
	}
	mustCommit(t, tx)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := e.Begin()
				if err := tx.SetNodeProp(pool[r.Intn(len(pool))], "v", value.Int(r.Int63n(100))); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	// Readers (tracked separately so writers can be stopped once all
	// readers finish their fixed iteration budget).
	var readers sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		readers.Add(1)
		go func(rdr int) {
			defer readers.Done()
			for iter := 0; iter < 50; iter++ {
				tx := e.Begin()
				first := make(map[uint64]int64)
				for _, id := range pool {
					n, err := tx.GetNode(id)
					if err != nil {
						t.Error(err)
						tx.Abort()
						return
					}
					v, _ := n.Props["v"].AsInt()
					first[id] = v
				}
				for pass := 0; pass < 3; pass++ {
					for _, id := range pool {
						n, err := tx.GetNode(id)
						if err != nil {
							t.Error(err)
							tx.Abort()
							return
						}
						v, _ := n.Props["v"].AsInt()
						if v != first[id] {
							t.Errorf("reader %d: node %d changed within snapshot: %d -> %d", rdr, id, first[id], v)
							tx.Abort()
							return
						}
					}
				}
				tx.Abort()
			}
		}(rdr)
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
