package core

import (
	"errors"
	"fmt"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/trace"
	"neograph/internal/wal"
)

// This file is the redo-apply path shared by crash recovery and
// replication: both replay the primary's WAL commit records into the
// object cache, adjacency, indexes and GC bookkeeping through
// applyCommit. Recovery drives it from ForEach over the local log;
// a replica's applier drives it record-by-record from the network
// stream via ApplyReplicated.

// applyCommit redo-applies one decoded commit record at its original
// commit timestamp and returns the keys it installed. Application is
// idempotent per entity: a chain whose head is already at or past cts
// (installed by an earlier replay, or persisted by a checkpoint) is left
// alone.
func (e *Engine) applyCommit(cts mvcc.TS, muts []mutation) []entKey {
	var keys []entKey
	for _, m := range muts {
		if o := e.getObject(m.key); o != nil {
			if head := o.chain.Head(); head != nil && head.CommitTS >= cts {
				continue // already installed at or past this commit
			}
		}
		e.install(m, cts)
		keys = append(keys, m.key)
	}
	return keys
}

// ApplyReplicated appends one record of the primary's WAL stream to the
// local log and redo-applies its effects. The record must arrive exactly
// at the local log's next position — the replica's WAL is a byte-exact
// prefix of the primary's, which is what lets a restarted replica resume
// the stream from its own recovered log end.
//
// The caller (the replication applier) is the replica's only log writer:
// local write commits are rejected with ErrReadOnlyReplica and replica
// checkpoints skip their marker record. Applies take the commit gate
// shared with the checkpointer so every record below a checkpoint's WAL
// cut is reflected in the dirty set, exactly as primary commits do.
//
// The oracle watermark advances only after the install completes, so a
// snapshot read begun on the replica can never observe half of a
// replicated commit — replica reads are snapshot-isolated at the applied
// position.
func (e *Engine) ApplyReplicated(lsn uint64, payload []byte) error {
	if !e.replica.Load() {
		return errors.New("core: ApplyReplicated on a non-replica engine")
	}
	if e.closed.Load() {
		return ErrClosed
	}
	if e.wal == nil {
		return errors.New("core: replica mode requires a persistent store")
	}
	// Decode before touching the log: a corrupt record must not be
	// appended (the local WAL only ever holds verified prefix bytes).
	var cts mvcc.TS
	var muts []mutation
	var stash trace.Context
	isCommit := false
	// Two-phase-commit records mirror the primary's prepared/decided
	// state onto the replica, so a promoted replica inherits in-doubt
	// transactions and coordinator repush obligations wholesale.
	var prep *struct {
		gtxn      uint64
		coordPart uint32
		validate  []ids.ID
		muts      []mutation
	}
	var decision *struct {
		gtxn   uint64
		commit bool
		cts    mvcc.TS
		parts  []uint32
	}
	var ackEnd *uint64
	if len(payload) == 0 {
		return fmt.Errorf("core: empty replicated record at lsn %d", lsn)
	}
	switch payload[0] {
	case recCheckpoint:
		// The primary's checkpoint markers are no-ops on redo but still
		// occupy log bytes — append them to keep positions aligned.
	case recTrace:
		// Trace-context records likewise install nothing but occupy log
		// bytes; the context they carry spans the NEXT record's apply.
		var err error
		stash, err = decodeTrace(payload)
		if err != nil {
			return err
		}
	case recCommit:
		var err error
		cts, muts, err = decodeCommit(payload)
		if err != nil {
			return err
		}
		isCommit = true
	case recPrepare:
		gtxn, coordPart, validate, pmuts, err := decodePrepare(payload)
		if err != nil {
			return err
		}
		prep = &struct {
			gtxn      uint64
			coordPart uint32
			validate  []ids.ID
			muts      []mutation
		}{gtxn, coordPart, validate, pmuts}
	case recDecision:
		gtxn, commit, dcts, parts, err := decodeDecision(payload)
		if err != nil {
			return err
		}
		decision = &struct {
			gtxn   uint64
			commit bool
			cts    mvcc.TS
			parts  []uint32
		}{gtxn, commit, dcts, parts}
	case recAckEnd:
		gtxn, err := decodeAckEnd(payload)
		if err != nil {
			return err
		}
		ackEnd = &gtxn
	default:
		return fmt.Errorf("core: unknown WAL record tag %q at lsn %d", payload[0], lsn)
	}

	// The pending trace context belongs to exactly the record that
	// immediately follows its 'T' record: consume it here, replacing it
	// with this record's own stash (empty except for 'T' records), so an
	// orphaned context can never mislabel a later commit.
	e.replTraceMu.Lock()
	pending := e.replTrace
	e.replTrace = stash
	e.replTraceMu.Unlock()
	var asp *trace.Span
	if isCommit && pending.Valid() {
		asp = e.opts.Tracer.StartRemote(pending, "replica.apply")
	}

	e.commitGate.RLock()
	if next := e.wal.NextLSN(); next != lsn {
		e.commitGate.RUnlock()
		return fmt.Errorf("core: replication stream desync: record at %d, local log at %d", lsn, next)
	}
	if _, err := e.wal.Append(payload); err != nil {
		e.commitGate.RUnlock()
		return fmt.Errorf("core: replica wal append: %w", err)
	}
	if isCommit {
		keys := e.applyCommit(cts, muts)
		e.markDirty(keys)
		e.raiseHighWater(muts)
	}
	var decidedKeys []entKey
	if decision != nil {
		decidedKeys = e.applyDecision(decision.gtxn, decision.commit, decision.cts, decision.parts, lsn)
		e.markDirty(decidedKeys)
	}
	e.commitGate.RUnlock()
	if isCommit {
		e.oracle.ObserveCommit(cts)
	}
	if decision != nil && decision.commit && len(decidedKeys) > 0 {
		e.oracle.ObserveCommit(decision.cts)
	}
	if prep != nil {
		e.rearmPrepared(prep.gtxn, prep.coordPart, prep.validate, prep.muts, lsn)
	}
	if ackEnd != nil {
		e.prepMu.Lock()
		delete(e.decided, *ackEnd)
		e.prepMu.Unlock()
	}
	asp.Finish()
	return nil
}

// raiseHighWater keeps the store's ID allocators ahead of replicated
// entities, so a replica promoted to accept writes never reuses an ID the
// stream already assigned. Recovery does the same in bulk.
func (e *Engine) raiseHighWater(muts []mutation) {
	if e.store == nil {
		return
	}
	for _, m := range muts {
		if m.key.kind == lock.KindNode {
			if e.store.NodeHighWater() <= m.key.id {
				e.store.SetNodeHighWater(m.key.id + 1)
			}
		} else if e.store.RelHighWater() <= m.key.id {
			e.store.SetRelHighWater(m.key.id + 1)
		}
	}
}

// CommitRecordEnd computes the end position of a WAL record appended at
// lsn with the given payload length (the framing overhead is the wal
// package's).
func CommitRecordEnd(lsn uint64, payloadLen int) uint64 {
	return lsn + wal.FrameOverhead + uint64(payloadLen)
}
