package core

import (
	"errors"
	"testing"

	"neograph/internal/value"
)

func openPartitioned(t *testing.T, dir string, partID, partCount int, extra func(*Options)) *Engine {
	t.Helper()
	opts := Options{Dir: dir, PartitionID: partID, PartitionCount: partCount}
	if extra != nil {
		extra(&opts)
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

// Prepared mutations must be invisible until the commit decision, then
// visible exactly as a normal commit, surviving the WAL round trip.
func TestPrepareDecideCommit(t *testing.T) {
	dir := t.TempDir()
	e := openPartitioned(t, dir, 0, 2, nil)
	defer e.Close()

	tx := e.Begin()
	id, err := tx.CreateNode([]string{"User"}, value.Map{"name": value.String("ada")})
	if err != nil {
		t.Fatalf("CreateNode: %v", err)
	}
	if id%2 != 0 {
		t.Fatalf("partition 0 of 2 allocated node %d (wrong congruence class)", id)
	}
	if _, err := tx.Prepare(77, 1, nil); err != nil {
		t.Fatalf("Prepare: %v", err)
	}

	// Not yet visible.
	r := e.Begin()
	if _, err := r.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("prepared node visible before decision: err=%v", err)
	}
	r.Abort()

	if st := e.TxnStatus(77); st != TxnPending {
		t.Fatalf("TxnStatus = %v, want pending", st)
	}
	if _, err := e.DecideTxn(77, true, nil); err != nil {
		t.Fatalf("DecideTxn: %v", err)
	}
	r = e.Begin()
	n, err := r.GetNode(id)
	if err != nil {
		t.Fatalf("GetNode after decide: %v", err)
	}
	if !n.Props["name"].Equal(value.String("ada")) {
		t.Fatalf("node props = %v", n.Props)
	}
	r.Abort()
	// Idempotent / unknown retry.
	if _, err := e.DecideTxn(77, true, nil); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("second decide: %v, want ErrNotPrepared", err)
	}
}

// An abort decision discards the prepared mutations and recycles IDs.
func TestPrepareDecideAbort(t *testing.T) {
	e := openPartitioned(t, t.TempDir(), 1, 2, nil)
	defer e.Close()

	tx := e.Begin()
	id, err := tx.CreateNode(nil, nil)
	if err != nil {
		t.Fatalf("CreateNode: %v", err)
	}
	if _, err := tx.Prepare(5, 0, nil); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := e.DecideTxn(5, false, nil); err != nil {
		t.Fatalf("DecideTxn abort: %v", err)
	}
	r := e.Begin()
	if _, err := r.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted prepared node visible: err=%v", err)
	}
	r.Abort()
	if st := e.TxnStatus(5); st != TxnUnknown {
		t.Fatalf("TxnStatus after abort = %v, want unknown (presumed abort)", st)
	}
}

// A prepared key must block every concurrent writer until the decision:
// lock-based transactions through the retained long locks, FCW through
// the prepared table.
func TestPreparedKeyBlocksWriters(t *testing.T) {
	for _, policy := range []ConflictPolicy{FirstUpdaterWins, FirstCommitterWins} {
		e := openPartitioned(t, t.TempDir(), 0, 1, func(o *Options) { o.Conflict = policy })

		setup := e.Begin()
		id, _ := setup.CreateNode([]string{"X"}, nil)
		if err := setup.Commit(); err != nil {
			t.Fatalf("setup commit: %v", err)
		}

		tx := e.Begin()
		if err := tx.SetNodeProp(id, "k", value.Int(1)); err != nil {
			t.Fatalf("stage: %v", err)
		}
		if _, err := tx.Prepare(9, 0, nil); err != nil {
			t.Fatalf("Prepare: %v", err)
		}

		w := e.Begin()
		err := w.SetNodeProp(id, "k", value.Int(2))
		if err == nil {
			err = w.Commit()
		} else {
			w.Abort()
		}
		if !errors.Is(err, ErrWriteConflict) {
			t.Fatalf("policy %v: concurrent write on prepared key: err=%v, want ErrWriteConflict", policy, err)
		}

		if _, err := e.DecideTxn(9, true, nil); err != nil {
			t.Fatalf("DecideTxn: %v", err)
		}
		// Guards released: the same write now succeeds.
		w = e.Begin()
		if err := w.SetNodeProp(id, "k", value.Int(3)); err != nil {
			t.Fatalf("policy %v: write after decide: %v", policy, err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("policy %v: commit after decide: %v", policy, err)
		}
		e.Close()
	}
}

// A validate-only guard (remote partition's edge endpoint) must pin the
// node alive until the decision.
func TestValidateGuardBlocksDelete(t *testing.T) {
	e := openPartitioned(t, t.TempDir(), 0, 1, nil)
	defer e.Close()

	setup := e.Begin()
	id, _ := setup.CreateNode(nil, nil)
	if err := setup.Commit(); err != nil {
		t.Fatalf("setup: %v", err)
	}

	tx := e.Begin()
	if _, err := tx.Prepare(13, 1, []uint64{id}); err != nil {
		t.Fatalf("validate-only Prepare: %v", err)
	}
	w := e.Begin()
	err := w.DeleteNode(id)
	if err == nil {
		err = w.Commit()
	} else {
		w.Abort()
	}
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("delete of guarded endpoint: err=%v, want ErrWriteConflict", err)
	}
	if _, err := e.DecideTxn(13, true, nil); err != nil {
		t.Fatalf("DecideTxn: %v", err)
	}
	w = e.Begin()
	if err := w.DeleteNode(id); err != nil {
		t.Fatalf("delete after decide: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("commit delete after decide: %v", err)
	}
}

// A crash between prepare and decide must leave the transaction in
// doubt after recovery: invisible, guarded, and listed for the resolver;
// the decision then lands exactly once.
func TestPreparedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	e := openPartitioned(t, dir, 0, 2, nil)

	tx := e.Begin()
	id, err := tx.CreateNode([]string{"Crash"}, nil)
	if err != nil {
		t.Fatalf("CreateNode: %v", err)
	}
	if _, err := tx.Prepare(21, 1, nil); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	e.Crash()

	e = openPartitioned(t, dir, 0, 2, nil)
	defer e.Close()
	doubt := e.InDoubt()
	if len(doubt) != 1 || doubt[0].Gtxn != 21 || doubt[0].CoordPart != 1 {
		t.Fatalf("InDoubt after recovery = %+v", doubt)
	}
	r := e.Begin()
	if _, err := r.GetNode(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("in-doubt node visible after recovery: err=%v", err)
	}
	r.Abort()
	// The in-doubt creation's ID must not be reallocated.
	alloc := e.Begin()
	nid, _ := alloc.CreateNode(nil, nil)
	if nid == id {
		t.Fatalf("in-doubt node ID %d reallocated", id)
	}
	alloc.Abort()
	if _, err := e.DecideTxn(21, true, nil); err != nil {
		t.Fatalf("DecideTxn after recovery: %v", err)
	}
	r = e.Begin()
	if _, err := r.GetNode(id); err != nil {
		t.Fatalf("node missing after recovered decide: %v", err)
	}
	r.Abort()
}

// A decided-and-crashed transaction must be fully committed after
// recovery, and the coordinator's unacked participant list must survive.
func TestDecisionSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	e := openPartitioned(t, dir, 0, 2, nil)

	tx := e.Begin()
	id, _ := tx.CreateNode([]string{"Decided"}, nil)
	if _, err := tx.Prepare(33, 0, nil); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := e.DecideTxn(33, true, []uint32{1}); err != nil {
		t.Fatalf("DecideTxn: %v", err)
	}
	e.Crash()

	e = openPartitioned(t, dir, 0, 2, nil)
	defer e.Close()
	r := e.Begin()
	if _, err := r.GetNode(id); err != nil {
		t.Fatalf("decided node missing after crash: %v", err)
	}
	r.Abort()
	if len(e.InDoubt()) != 0 {
		t.Fatalf("orphaned prepares after recovery: %+v", e.InDoubt())
	}
	und := e.UnackedDecisions()
	if len(und) != 1 || und[0].Gtxn != 33 || !und[0].Commit {
		t.Fatalf("UnackedDecisions after recovery = %+v", und)
	}
	if st := e.TxnStatus(33); st != TxnCommitted {
		t.Fatalf("TxnStatus = %v, want committed", st)
	}
	e.AckDecision(33, 1)
	if len(e.UnackedDecisions()) != 0 {
		t.Fatalf("decision still unacked after AckDecision")
	}
}

// Checkpoints must not truncate the only copy of an in-doubt
// transaction's mutations.
func TestCheckpointRetainsPreparedWAL(t *testing.T) {
	dir := t.TempDir()
	e := openPartitioned(t, dir, 0, 2, nil)

	tx := e.Begin()
	id, _ := tx.CreateNode([]string{"Pinned"}, nil)
	if _, err := tx.Prepare(55, 1, nil); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// Unrelated committed traffic plus a checkpoint that would otherwise
	// truncate everything.
	for i := 0; i < 10; i++ {
		w := e.Begin()
		w.CreateNode([]string{"Filler"}, nil)
		if err := w.Commit(); err != nil {
			t.Fatalf("filler commit: %v", err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	e.Crash()

	e = openPartitioned(t, dir, 0, 2, nil)
	defer e.Close()
	if len(e.InDoubt()) != 1 {
		t.Fatalf("in-doubt transaction lost across checkpoint+crash: %+v", e.InDoubt())
	}
	if _, err := e.DecideTxn(55, true, nil); err != nil {
		t.Fatalf("DecideTxn: %v", err)
	}
	r := e.Begin()
	if _, err := r.GetNode(id); err != nil {
		t.Fatalf("node missing: %v", err)
	}
	r.Abort()
}
