package core

import (
	"fmt"
	"sort"

	"neograph/internal/ids"
	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/trace"
	"neograph/internal/value"
)

// TxOptions override engine defaults for one transaction.
type TxOptions struct {
	Isolation IsolationLevel
	// useDefault is set by Begin; BeginWith uses the explicit level.
	explicit bool
}

// writeEntry is one staged (uncommitted, private) entity write. It is
// exactly the paper's "versions of uncommitted data items should be kept
// private and not accessible to other transactions" (§3).
type writeEntry struct {
	key     entKey
	created bool // entity created by this transaction
	deleted bool // entity deleted by this transaction
	node    *NodeState
	rel     *RelState
	// base is the committed version the staged state derives from (nil
	// for created entities). FCW validates against it at commit; index
	// maintenance diffs against it.
	base *mvcc.Version
}

// Tx is a transaction. Tx methods are NOT safe for concurrent use by
// multiple goroutines (as in Neo4j, a transaction is bound to one unit of
// work); different transactions proceed fully concurrently.
type Tx struct {
	e        *Engine
	id       uint64
	startTS  mvcc.TS
	commitTS mvcc.TS // set by a successful Commit
	// commitEnd is the end position of the commit's WAL record — the
	// read-your-writes token a client hands to a replica (wait until the
	// applied position reaches it) or to WaitDurable.
	commitEnd uint64
	iso       IsolationLevel
	writes    map[entKey]*writeEntry
	order     []entKey // staging order, for deterministic install
	done      bool
	// span, when non-nil, is the tracing span Commit hangs its pipeline
	// child spans off (validate-per-stripe, WAL append, group fsync,
	// quorum wait); its context also rides the WAL to replicas as a 'T'
	// record. Nil — the unsampled case — costs a nil check per stage.
	span *trace.Span
	// adjBuf is the reusable candidate buffer for forEachVisibleRel: a
	// traversal expands thousands of frontier nodes on one Tx, and one
	// buffer serves them all. adjBusy guards reentrancy (a callback that
	// reads adjacency mid-iteration just allocates a fresh buffer).
	adjBuf  []ids.ID
	adjBusy bool
}

// Begin starts a transaction at the engine's default isolation level.
func (e *Engine) Begin() *Tx { return e.BeginWith(TxOptions{Isolation: e.opts.DefaultIsolation}) }

// BeginWith starts a transaction with explicit options.
func (e *Engine) BeginWith(opts TxOptions) *Tx {
	tx := &Tx{
		e:      e,
		id:     e.txnSeq.Add(1),
		iso:    opts.Isolation,
		writes: make(map[entKey]*writeEntry),
	}
	e.stats.begun.Add(1)
	if tx.iso == SnapshotIsolation {
		tx.startTS = e.oracle.StartTS()
		// Register so the GC horizon cannot pass this snapshot (§3).
		e.active.Register(tx.id, tx.startTS)
	}
	return tx
}

// ID returns the transaction identifier (diagnostics).
func (t *Tx) ID() uint64 { return t.id }

// StartTS returns the snapshot timestamp (0 for read-committed).
func (t *Tx) StartTS() mvcc.TS { return t.startTS }

// CommitTS returns the commit timestamp assigned by a successful Commit,
// or 0 (read-only commits are not assigned a timestamp). The commit
// timestamp is the transaction's position in the serialisation order
// (§3).
func (t *Tx) CommitTS() mvcc.TS { return t.commitTS }

// CommitLSN returns the end position of the transaction's WAL commit
// record (0 for read-only transactions, in-memory engines, or before
// Commit). It is the read-your-writes token: a replica whose applied
// position has reached it serves this transaction's writes; WaitDurable
// at it guarantees the commit survives a crash.
func (t *Tx) CommitLSN() uint64 { return t.commitEnd }

// Isolation returns the transaction's isolation level.
func (t *Tx) Isolation() IsolationLevel { return t.iso }

// SetTraceSpan attaches the tracing span the commit pipeline's child
// spans become children of (the server's per-op span, or any embedded
// caller's). A nil span — the unsampled case — is free.
func (t *Tx) SetTraceSpan(s *trace.Span) { t.span = s }

func (t *Tx) check() error {
	if t.done {
		return ErrTxDone
	}
	return nil
}

// ---- snapshot reads ----

// visibleNode returns the node state visible to this transaction,
// merging the private write set over the committed snapshot
// (read-your-own-writes, §3/§4). ok is false if the node does not exist
// in this transaction's view. The error is non-nil only under read
// committed, whose short read locks can block and deadlock.
func (t *Tx) visibleNode(id ids.ID) (*NodeState, bool, error) {
	k := entKey{lock.KindNode, id}
	if w, ok := t.writes[k]; ok {
		if w.deleted {
			return nil, false, nil
		}
		return w.node, true, nil
	}
	o := t.e.getObject(k)
	if o == nil {
		return nil, false, nil
	}
	v, err := t.readVersion(k, o.chain)
	if err != nil {
		return nil, false, err
	}
	if v == nil || v.Deleted {
		return nil, false, nil
	}
	return v.Data.(*NodeState), true, nil
}

// visibleRel is visibleNode for relationships.
func (t *Tx) visibleRel(id ids.ID) (*RelState, bool, error) {
	k := entKey{lock.KindRel, id}
	if w, ok := t.writes[k]; ok {
		if w.deleted {
			return nil, false, nil
		}
		return w.rel, true, nil
	}
	o := t.e.getObject(k)
	if o == nil {
		return nil, false, nil
	}
	v, err := t.readVersion(k, o.chain)
	if err != nil {
		return nil, false, err
	}
	if v == nil || v.Deleted {
		return nil, false, nil
	}
	return v.Data.(*RelState), true, nil
}

// readVersion applies the isolation level's read rule to one chain.
//
// Snapshot isolation reads the version visible at the start timestamp —
// lock-free, which is exactly the short read lock the paper removes (§4).
// Read committed takes that short read lock: acquire shared (blocking
// behind any concurrent writer's long write lock, with deadlock
// detection), read the newest committed version, release at once.
func (t *Tx) readVersion(k entKey, c *mvcc.Chain) (*mvcc.Version, error) {
	if t.iso == ReadCommitted {
		lk := lock.Key{Kind: k.kind, ID: k.id}
		if err := t.e.locks.Acquire(t.id, lk, lock.Shared); err != nil {
			t.e.stats.deadlocks.Add(1)
			return nil, err
		}
		head := c.Head()
		// Short lock: released immediately after the read — which is
		// precisely why a later re-read can observe a different version
		// (the unrepeatable read of §1). A writer's own exclusive lock is
		// not disturbed: Release drops only this transaction's hold, and
		// writers never downgrade (grantLocked keeps the strongest mode),
		// so releasing after a read inside a writing RC transaction is
		// guarded below.
		if !t.e.locks.HoldsExclusive(t.id, lk) {
			t.e.locks.Release(t.id, lk)
		}
		return head, nil
	}
	return c.Visible(t.startTS), nil
}

// ---- write staging ----

// stageNodeWrite acquires the write lock on node id (per the conflict
// policy), validates it against the snapshot, and returns the staged
// entry whose state the caller may mutate.
func (t *Tx) stageNodeWrite(id ids.ID) (*writeEntry, error) {
	k := entKey{lock.KindNode, id}
	if w, ok := t.writes[k]; ok {
		if w.deleted {
			return nil, fmt.Errorf("%w: %s deleted in this transaction", ErrNotFound, fmtKey(k))
		}
		return w, nil
	}
	o := t.e.getObject(k)
	if o == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fmtKey(k))
	}
	base, err := t.lockAndValidate(k, o)
	if err != nil {
		return nil, err
	}
	st := base.Data.(*NodeState)
	w := &writeEntry{
		key:  k,
		base: base,
		node: &NodeState{Labels: append([]string(nil), st.Labels...), Props: st.Props.Clone()},
	}
	t.writes[k] = w
	t.order = append(t.order, k)
	return w, nil
}

// stageRelWrite is stageNodeWrite for relationships.
func (t *Tx) stageRelWrite(id ids.ID) (*writeEntry, error) {
	k := entKey{lock.KindRel, id}
	if w, ok := t.writes[k]; ok {
		if w.deleted {
			return nil, fmt.Errorf("%w: %s deleted in this transaction", ErrNotFound, fmtKey(k))
		}
		return w, nil
	}
	o := t.e.getObject(k)
	if o == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fmtKey(k))
	}
	base, err := t.lockAndValidate(k, o)
	if err != nil {
		return nil, err
	}
	st := base.Data.(*RelState)
	w := &writeEntry{
		key:  k,
		base: base,
		rel:  &RelState{Type: st.Type, Start: st.Start, End: st.End, Props: st.Props.Clone()},
	}
	t.writes[k] = w
	t.order = append(t.order, k)
	return w, nil
}

// lockAndValidate implements the write rule (§3). It returns the base
// version the staged write derives from.
//
//   - FUW (SI): take the long write lock without waiting; a holder means a
//     concurrent updater → ErrWriteConflict now. Then check that no
//     committed version is newer than the snapshot (a concurrent updater
//     that already committed) — also a conflict.
//   - FCW (SI): no lock; remember the visible version, validate at commit.
//   - ReadCommitted: block on the long write lock (deadlock detection may
//     abort); the base is the newest committed version.
func (t *Tx) lockAndValidate(k entKey, o *object) (*mvcc.Version, error) {
	lk := lock.Key{Kind: k.kind, ID: k.id}
	switch {
	case t.iso == ReadCommitted:
		if err := t.e.locks.Acquire(t.id, lk, lock.Exclusive); err != nil {
			t.e.stats.deadlocks.Add(1)
			return nil, err
		}
		head := o.chain.Head()
		if head == nil || head.Deleted {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, fmtKey(k))
		}
		return head, nil

	case t.e.opts.Conflict == FirstUpdaterWins:
		if err := t.e.locks.TryAcquire(t.id, lk, lock.Exclusive); err != nil {
			t.e.stats.conflicts.Add(1)
			return nil, fmt.Errorf("%w: %s held by concurrent updater", ErrWriteConflict, fmtKey(k))
		}
		head := o.chain.Head()
		if head != nil && head.CommitTS > t.startTS {
			// A concurrent transaction updated and already committed.
			t.e.stats.conflicts.Add(1)
			return nil, fmt.Errorf("%w: %s updated at ts %d after snapshot %d",
				ErrWriteConflict, fmtKey(k), head.CommitTS, t.startTS)
		}
		if head == nil || head.Deleted {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, fmtKey(k))
		}
		return head, nil

	default: // FirstCommitterWins
		v := o.chain.Visible(t.startTS)
		if v == nil || v.Deleted {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, fmtKey(k))
		}
		return v, nil
	}
}

// ---- node operations ----

// NodeSnapshot is an immutable view of a node in this transaction's
// snapshot.
type NodeSnapshot struct {
	ID     ids.ID
	Labels []string
	Props  value.Map
}

// RelSnapshot is an immutable view of a relationship.
type RelSnapshot struct {
	ID         ids.ID
	Type       string
	Start, End ids.ID
	Props      value.Map
}

// CreateNode creates a node with the given labels and properties,
// returning its ID. The node is private to the transaction until commit.
func (t *Tx) CreateNode(labels []string, props value.Map) (ids.ID, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	id := t.e.allocNodeID()
	k := entKey{lock.KindNode, id}
	ls := normalizeLabels(labels)
	t.writes[k] = &writeEntry{
		key:     k,
		created: true,
		node:    &NodeState{Labels: ls, Props: props.Clone()},
	}
	t.order = append(t.order, k)
	return id, nil
}

// GetNode returns the node visible in this transaction's snapshot.
func (t *Tx) GetNode(id ids.ID) (NodeSnapshot, error) {
	if err := t.check(); err != nil {
		return NodeSnapshot{}, err
	}
	st, ok, err := t.visibleNode(id)
	if err != nil {
		return NodeSnapshot{}, err
	}
	if !ok {
		return NodeSnapshot{}, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return NodeSnapshot{
		ID:     id,
		Labels: append([]string(nil), st.Labels...),
		Props:  st.Props.Clone(),
	}, nil
}

// NodeExists reports whether the node is visible in the snapshot.
func (t *Tx) NodeExists(id ids.ID) (bool, error) {
	if err := t.check(); err != nil {
		return false, err
	}
	_, ok, err := t.visibleNode(id)
	return ok, err
}

// SetNodeProp sets one property on a node.
func (t *Tx) SetNodeProp(id ids.ID, key string, v value.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	w.node.Props[key] = v
	return nil
}

// SetNodeProps replaces several properties at once (removal via Null).
func (t *Tx) SetNodeProps(id ids.ID, props value.Map) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	for k, v := range props {
		if v.IsNull() {
			delete(w.node.Props, k)
		} else {
			w.node.Props[k] = v
		}
	}
	return nil
}

// RemoveNodeProp removes a property from a node (no-op if absent).
func (t *Tx) RemoveNodeProp(id ids.ID, key string) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	delete(w.node.Props, key)
	return nil
}

// AddLabel adds a label to a node (no-op if present).
func (t *Tx) AddLabel(id ids.ID, label string) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	w.node.Labels = insertLabel(w.node.Labels, label)
	return nil
}

// RemoveLabel removes a label from a node (no-op if absent).
func (t *Tx) RemoveLabel(id ids.ID, label string) error {
	if err := t.check(); err != nil {
		return err
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	w.node.Labels = deleteLabel(w.node.Labels, label)
	return nil
}

// HasLabel reports whether the node carries the label in this snapshot.
func (t *Tx) HasLabel(id ids.ID, label string) (bool, error) {
	if err := t.check(); err != nil {
		return false, err
	}
	st, ok, err := t.visibleNode(id)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return hasLabel(st.Labels, label), nil
}

// DeleteNode deletes a node. It fails with ErrHasRels if any relationship
// is visible on the node (use DetachDeleteNode to cascade).
func (t *Tx) DeleteNode(id ids.ID) error {
	if err := t.check(); err != nil {
		return err
	}
	rels, err := t.Relationships(id, Both)
	if err != nil {
		return err
	}
	if len(rels) > 0 {
		return fmt.Errorf("%w: node %d has %d relationships", ErrHasRels, id, len(rels))
	}
	return t.deleteNodeStaged(id)
}

// DetachDeleteNode deletes a node and every relationship visible on it.
func (t *Tx) DetachDeleteNode(id ids.ID) error {
	if err := t.check(); err != nil {
		return err
	}
	rels, err := t.Relationships(id, Both)
	if err != nil {
		return err
	}
	for _, r := range rels {
		if err := t.DeleteRel(r.ID); err != nil {
			return err
		}
	}
	return t.deleteNodeStaged(id)
}

func (t *Tx) deleteNodeStaged(id ids.ID) error {
	k := entKey{lock.KindNode, id}
	if w, ok := t.writes[k]; ok && w.created {
		// Created and deleted in the same transaction: cancel out.
		w.deleted = true
		w.node = nil
		return nil
	}
	w, err := t.stageNodeWrite(id)
	if err != nil {
		return err
	}
	w.deleted = true
	return nil
}

// ---- label helpers ----

// normalizeLabels sorts and dedupes a label list.
func normalizeLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	cp := append([]string(nil), labels...)
	sort.Strings(cp)
	out := cp[:0]
	for i, l := range cp {
		if i == 0 || cp[i-1] != l {
			out = append(out, l)
		}
	}
	return out
}

func hasLabel(labels []string, l string) bool {
	i := sort.SearchStrings(labels, l)
	return i < len(labels) && labels[i] == l
}

func insertLabel(labels []string, l string) []string {
	i := sort.SearchStrings(labels, l)
	if i < len(labels) && labels[i] == l {
		return labels
	}
	labels = append(labels, "")
	copy(labels[i+1:], labels[i:])
	labels[i] = l
	return labels
}

func deleteLabel(labels []string, l string) []string {
	i := sort.SearchStrings(labels, l)
	if i >= len(labels) || labels[i] != l {
		return labels
	}
	return append(labels[:i], labels[i+1:]...)
}
