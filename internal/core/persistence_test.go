package core

import (
	"errors"
	"reflect"
	"testing"

	"neograph/internal/value"
)

// diskEngine opens a persistent engine in a temp dir (or the given dir).
func diskEngine(t *testing.T, dir string, opts ...func(*Options)) *Engine {
	t.Helper()
	o := Options{Dir: dir, StoreCachePages: 64}
	for _, f := range opts {
		f(&o)
	}
	e, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, []string{"Person"}, value.Map{"name": value.String("ada")})
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, err := tx.CreateRel("KNOWS", a, b, value.Map{"since": value.Int(2009)})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Abort()
	n, err := tx2.GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.Labels, []string{"Person"}) {
		t.Fatalf("labels = %v", n.Labels)
	}
	if v, _ := n.Props["name"].AsString(); v != "ada" {
		t.Fatalf("props = %v", n.Props)
	}
	rels, err := tx2.Relationships(a, Outgoing)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].ID != r || rels[0].End != b {
		t.Fatalf("rels = %+v", rels)
	}
	// Indexes were rebuilt.
	ids, _ := tx2.NodesByLabel("Person")
	if !reflect.DeepEqual(ids, []uint64{a}) {
		t.Fatalf("label index after reopen = %v", ids)
	}
	// New writes continue from fresh IDs and timestamps.
	c, err := tx2.CreateNode(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == b {
		t.Fatalf("reused live id %d", c)
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, []string{"L"}, value.Map{"v": value.Int(1)})
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, err := tx.CreateRel("R", a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	// No checkpoint: the store files never saw these entities. Crash.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Abort()
	n, err := tx2.GetNode(a)
	if err != nil {
		t.Fatalf("node lost after crash: %v", err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 1 {
		t.Fatalf("recovered v = %d", v)
	}
	rels, _ := tx2.Relationships(a, Both)
	if len(rels) != 1 || rels[0].ID != r {
		t.Fatalf("recovered rels = %+v", rels)
	}
	if ids, _ := tx2.NodesByLabel("L"); !reflect.DeepEqual(ids, []uint64{a}) {
		t.Fatalf("recovered index = %v", ids)
	}
	// New node IDs must not collide with WAL-recovered ones.
	nid, _ := tx2.CreateNode(nil, nil)
	if nid == a || nid == b {
		t.Fatalf("recovered allocator reused id %d", nid)
	}
}

func TestCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, nil, value.Map{"v": value.Int(1)})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More commits after the checkpoint, in the WAL only.
	tx := e.Begin()
	if err := tx.SetNodeProp(a, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Abort()
	n, err := tx2.GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 2 {
		t.Fatalf("v = %d, want 2 (checkpoint image + WAL tail)", v)
	}
}

func TestCheckpointPersistsOnlyLatestVersion(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	for i := 1; i <= 5; i++ {
		tx := e.Begin()
		if err := tx.SetNodeProp(a, "v", value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// 5 updates + 1 create of a, but one dirty entity: exactly one image
	// written (paper §4: only the most recent committed version persists).
	if s.CheckpointPuts != 1 {
		t.Fatalf("checkpoint puts = %d, want 1", s.CheckpointPuts)
	}
	st, err := e.Store().GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Props["v"].AsInt(); v != 5 {
		t.Fatalf("persisted v = %d, want 5", v)
	}
	e.Close()
}

func TestDeletedEntityPersistsAsTombstoneThenDisappears(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, nil, nil)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	hold := e.Begin() // old reader keeps the tombstone alive
	tx := e.Begin()
	if err := tx.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tombstone image persisted while the old reader lives (§4).
	nd, err := e.Store().GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	if !nd.Tombstone {
		t.Fatal("expected persisted tombstone")
	}
	hold.Abort()

	e.RunGC() // tombstone collectable now: store record removed
	if _, err := e.Store().GetNode(a); err == nil {
		t.Fatal("store record survived tombstone collection")
	}
	e.Close()
}

func TestWALTruncatedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir, func(o *Options) { o.NoSyncCommits = true })
	// Enough commits to roll several WAL segments would need MBs; instead
	// verify the size does not grow without bound across checkpoints.
	for i := 0; i < 50; i++ {
		seedNode(t, e, nil, value.Map{"pad": value.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")})
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Checkpoints != 1 || s.CheckpointPuts != 50 {
		t.Fatalf("stats = %+v", s)
	}
	e.Close()

	// Reopen: nothing to replay (all checkpointed), everything readable.
	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Abort()
	all, err := tx.AllNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 50 {
		t.Fatalf("nodes after reopen = %d, want 50", len(all))
	}
}

func TestRecoveryIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, nil, value.Map{"v": value.Int(1)})
	// Checkpoint persists v=1; the WAL still contains the commit record
	// (segment not truncated unless rolled). Replay must skip it.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := tx.SetNodeProp(a, "v", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	e2 := diskEngine(t, dir)
	tx2 := e2.Begin()
	n, _ := tx2.GetNode(a)
	if v, _ := n.Props["v"].AsInt(); v != 2 {
		t.Fatalf("v = %d, want 2", v)
	}
	// The already-checkpointed commit (v=1) was skipped during replay, so
	// the chain holds exactly the persisted base plus the replayed tail —
	// not three versions — and GC collapses it to the head.
	versions, entities := e2.VersionCount()
	if entities != 1 || versions != 2 {
		t.Fatalf("versions=%d entities=%d, want 2/1", versions, entities)
	}
	e2.RunGC()
	if versions, _ = e2.VersionCount(); versions != 1 {
		t.Fatalf("versions after GC = %d, want 1", versions)
	}
	tx2.Abort()
	e2.Close()
}

func TestRecoveredTombstoneGCs(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	a := seedNode(t, e, nil, nil)
	tx := e.Begin()
	if err := tx.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.Checkpoint(); err != nil { // persists the tombstone image
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	e2 := diskEngine(t, dir)
	defer e2.Close()
	// The recovered tombstone is on the GC list and collectable.
	rep := e2.RunGC()
	if rep.EntitiesDead != 1 {
		t.Fatalf("entities dead = %d, want 1", rep.EntitiesDead)
	}
	if _, err := e2.Store().GetNode(a); err == nil {
		t.Fatal("tombstone record survived")
	}
	tx2 := e2.Begin()
	defer tx2.Abort()
	if _, err := tx2.GetNode(a); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted node visible after recovery")
	}
}

func TestLargePropertyPersistence(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	big := make([]byte, 10000)
	for i := range big {
		big[i] = byte(i)
	}
	a := seedNode(t, e, nil, value.Map{"blob": value.Bytes(big)})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := diskEngine(t, dir)
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Abort()
	n, err := tx.GetNode(a)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := n.Props["blob"].AsBytes()
	if !reflect.DeepEqual(got, big) {
		t.Fatalf("blob corrupted: %d bytes", len(got))
	}
}
