package core

import (
	"errors"
	"testing"

	"neograph/internal/value"
)

// updateN commits n single-property updates on node id.
func updateN(t *testing.T, e *Engine, id uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx := e.Begin()
		if err := tx.SetNodeProp(id, "v", value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
}

func TestThreadedGCReclaimsSuperseded(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	updateN(t, e, id, 10)

	versions, _ := e.VersionCount()
	if versions != 11 {
		t.Fatalf("versions before GC = %d, want 11", versions)
	}
	if e.GCBacklog() != 10 {
		t.Fatalf("backlog = %d, want 10", e.GCBacklog())
	}
	rep := e.RunGC()
	if rep.Collected != 10 {
		t.Fatalf("collected = %d, want 10", rep.Collected)
	}
	if rep.Scanned > rep.Collected+1 {
		t.Fatalf("threaded GC scanned %d > collected+1", rep.Scanned)
	}
	versions, _ = e.VersionCount()
	if versions != 1 {
		t.Fatalf("versions after GC = %d, want 1 (head)", versions)
	}
	// Head still readable.
	tx := e.Begin()
	defer tx.Abort()
	n, err := tx.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 9 {
		t.Fatalf("head v = %d, want 9", v)
	}
}

func TestGCRespectsActiveReaderHorizon(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	oldReader := e.Begin() // pins the horizon at its snapshot
	before, err := oldReader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	updateN(t, e, id, 5)

	rep := e.RunGC()
	// The version oldReader reads (and everything at/above its snapshot)
	// must survive; only versions superseded at or below the horizon go.
	after, err := oldReader.GetNode(id)
	if err != nil {
		t.Fatalf("GC collected a version visible to an active reader: %v", err)
	}
	v0, _ := before.Props["v"].AsInt()
	v1, _ := after.Props["v"].AsInt()
	if v0 != v1 {
		t.Fatalf("reader's view changed across GC: %d -> %d", v0, v1)
	}
	_ = rep
	oldReader.Abort()

	// With the reader gone, a second run reclaims the rest.
	rep = e.RunGC()
	versions, _ := e.VersionCount()
	if versions != 1 {
		t.Fatalf("versions after reader exit = %d (collected %d)", versions, rep.Collected)
	}
}

func TestGCTombstoneRemovesEntity(t *testing.T) {
	e := memEngine(t)
	a := seedNode(t, e, []string{"L"}, value.Map{"k": value.Int(1)})
	b := seedNode(t, e, nil, nil)
	tx := e.Begin()
	r, err := tx.CreateRel("R", a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	if err := tx2.DetachDeleteNode(a); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)

	rep := e.RunGC()
	if rep.EntitiesDead != 2 { // node a + rel r
		t.Fatalf("entities dead = %d, want 2", rep.EntitiesDead)
	}
	_, entities := e.VersionCount()
	if entities != 1 { // only node b remains
		t.Fatalf("entities = %d, want 1", entities)
	}
	// Cache maps and adjacency are clean.
	tx3 := e.Begin()
	defer tx3.Abort()
	if _, err := tx3.GetNode(a); !errors.Is(err, ErrNotFound) {
		t.Fatal("dead node resurrected")
	}
	if _, err := tx3.GetRel(r); !errors.Is(err, ErrNotFound) {
		t.Fatal("dead rel resurrected")
	}
	if rels, _ := tx3.Relationships(b, Both); len(rels) != 0 {
		t.Fatalf("adjacency leak: %v", rels)
	}
	// Index entries for the dead node are prunable.
	if ids, _ := tx3.NodesByLabel("L"); len(ids) != 0 {
		t.Fatalf("label index leak: %v", ids)
	}
}

func TestVacuumGCEquivalentResult(t *testing.T) {
	e := memEngine(t, func(o *Options) { o.GCMode = GCVacuum })
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})
	updateN(t, e, id, 10)
	del := seedNode(t, e, nil, nil)
	tx := e.Begin()
	if err := tx.DeleteNode(del); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	rep := e.RunGC()
	if rep.Mode != GCVacuum {
		t.Fatal("wrong mode")
	}
	if rep.Collected != 12 { // 10 superseded + deleted node's create version + its tombstone
		t.Fatalf("vacuum collected = %d, want 12", rep.Collected)
	}
	// Vacuum's cost signature: scanned spans the whole cache, not just
	// the garbage (this is E4's claim).
	if rep.Scanned < rep.Collected {
		t.Fatalf("scanned = %d < collected", rep.Scanned)
	}
	versions, entities := e.VersionCount()
	if versions != 1 || entities != 1 {
		t.Fatalf("after vacuum: %d versions, %d entities", versions, entities)
	}
}

func TestGCIdempotentWhenClean(t *testing.T) {
	e := memEngine(t)
	seedNode(t, e, nil, nil)
	e.RunGC()
	rep := e.RunGC()
	if rep.Collected != 0 || rep.EntitiesDead != 0 {
		t.Fatalf("second GC reclaimed %+v", rep)
	}
}

func TestGCIndexPrune(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, []string{"L"}, value.Map{"p": value.Int(1)})
	tx := e.Begin()
	if err := tx.RemoveLabel(id, "L"); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetNodeProp(id, "p", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	rep := e.RunGC()
	if rep.IndexPruned < 2 { // dead label entry + dead property entry
		t.Fatalf("index pruned = %d, want >= 2", rep.IndexPruned)
	}
}

func TestGCBacklogDrainsIncrementally(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.Int(0)})

	reader := e.Begin() // pin
	updateN(t, e, id, 5)
	firstRep := e.RunGC()
	backlogWithReader := e.GCBacklog()
	reader.Abort()
	updateN(t, e, id, 3)
	secondRep := e.RunGC()

	if firstRep.Collected+secondRep.Collected != 8 {
		t.Fatalf("total collected = %d, want 8 (got %d then %d; backlog with reader %d)",
			firstRep.Collected+secondRep.Collected, firstRep.Collected, secondRep.Collected, backlogWithReader)
	}
	if e.GCBacklog() != 0 {
		t.Fatalf("backlog = %d after final GC", e.GCBacklog())
	}
}

func TestVersionBytesShrinkWithGC(t *testing.T) {
	e := memEngine(t)
	id := seedNode(t, e, nil, value.Map{"v": value.String("payload-payload-payload")})
	updateN(t, e, id, 20)
	before := e.VersionBytes()
	e.RunGC()
	after := e.VersionBytes()
	if after >= before {
		t.Fatalf("version bytes %d -> %d, want shrink", before, after)
	}
}
