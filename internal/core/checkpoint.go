package core

import (
	"sort"

	"neograph/internal/lock"
	"neograph/internal/mvcc"
	"neograph/internal/store"
)

// Checkpoint writes the newest committed version of every dirty entity
// into the persistent store — and only that version, which is the
// paper's answer to vacuum-style GC cost (§4: "only writing to the
// persistent data store the most recent committed version of each data
// item"). After the store is flushed, a checkpoint record is logged and
// WAL segments made redundant by the write-back are removed.
func (e *Engine) Checkpoint() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	return e.checkpointMaintLocked()
}

// checkpointMaintLocked is the checkpoint body; the caller holds maintMu
// (WithSnapshot keeps it held after checkpointing to freeze store files
// and WAL truncation while a snapshot streams out).
func (e *Engine) checkpointMaintLocked() error {
	if e.store == nil {
		return nil
	}

	// Cut point: block commits for an instant so that every WAL record
	// below walCut corresponds to an entity already in the dirty set.
	e.commitGate.Lock()
	walCut := e.wal.NextLSN()
	// Rotate at the cut: every pre-checkpoint record now lives in sealed
	// segments that TruncateBefore can drop once the persist completes;
	// commits during the persist land in the fresh segment.
	if err := e.wal.Rotate(); err != nil {
		e.commitGate.Unlock()
		return err
	}
	e.dirtyMu.Lock()
	keys := make([]entKey, 0, len(e.dirty))
	for k := range e.dirty {
		keys = append(keys, k)
	}
	e.dirty = make(map[entKey]struct{})
	e.dirtyMu.Unlock()
	e.commitGate.Unlock()

	// Nodes before relationships: the store links a new relationship
	// record into its endpoints' chains, so those node records must be
	// in use first.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind == lock.KindNode
		}
		return keys[i].id < keys[j].id
	})

	var puts, bytes uint64
	for _, k := range keys {
		o := e.getObject(k)
		if o == nil {
			continue // entity fully collected since it was queued
		}
		head := o.chain.Head()
		if head == nil {
			continue
		}
		switch k.kind {
		case lock.KindNode:
			st, _ := head.Data.(*NodeState)
			if st == nil {
				st = &NodeState{}
			}
			nd := store.NodeData{
				ID:        k.id,
				Labels:    st.Labels,
				Props:     st.Props,
				CommitTS:  head.CommitTS,
				Tombstone: head.Deleted,
			}
			if err := e.store.PutNode(nd); err != nil {
				return err
			}
			bytes += uint64(estimateNodeBytes(st))
		case lock.KindRel:
			st, _ := head.Data.(*RelState)
			if st == nil {
				st = &RelState{Start: o.start, End: o.end, Type: "?"}
			}
			rd := store.RelData{
				ID:        k.id,
				Type:      st.Type,
				StartNode: st.Start,
				EndNode:   st.End,
				Props:     st.Props,
				CommitTS:  head.CommitTS,
				Tombstone: head.Deleted,
			}
			if err := e.store.PutRel(rd); err != nil {
				return err
			}
			bytes += uint64(estimateRelBytes(st))
		}
		puts++
	}
	if err := e.store.Flush(); err != nil {
		return err
	}
	// A replica's WAL must stay a byte-exact prefix of the primary's, so
	// it never appends its own checkpoint marker — the stream contains
	// the primary's markers already.
	if !e.replica.Load() {
		if _, err := e.wal.Append(encodeCheckpoint(e.oracle.Watermark())); err != nil {
			return err
		}
	}
	if err := e.wal.Sync(); err != nil {
		return err
	}
	// The replication shipper can hold truncation below the cut so
	// connected replicas still catching up keep their backlog readable.
	cut := walCut
	if retain, ok := e.walRetainPos(); ok && retain < cut {
		cut = retain
	}
	// Two-phase commit pins the log too: an undecided 'P' record is the
	// only copy of an in-doubt transaction's mutations, and an unacked
	// 'D' record is what a restarted coordinator re-pushes from.
	if floor, ok := e.twopcFloor(); ok && floor < cut {
		cut = floor
	}
	if err := e.wal.TruncateBefore(cut); err != nil {
		return err
	}
	e.stats.checkpoints.Add(1)
	e.stats.checkpointPuts.Add(puts)
	e.stats.checkpointBytes.Add(bytes)
	return nil
}

// DirtyCount reports entities awaiting checkpoint (test support).
func (e *Engine) DirtyCount() int {
	e.dirtyMu.Lock()
	defer e.dirtyMu.Unlock()
	return len(e.dirty)
}

func estimateNodeBytes(st *NodeState) int {
	n := 32
	for _, l := range st.Labels {
		n += len(l) + 4
	}
	n += st.Props.Size()
	return n
}

func estimateRelBytes(st *RelState) int {
	return 64 + len(st.Type) + st.Props.Size()
}

// estimateStateBytes supports E5's memory accounting: the in-memory size
// of one version payload.
func estimateStateBytes(data any) int {
	switch st := data.(type) {
	case *NodeState:
		if st == nil {
			return 16
		}
		return estimateNodeBytes(st)
	case *RelState:
		if st == nil {
			return 16
		}
		return estimateRelBytes(st)
	default:
		return 16
	}
}

// VersionBytes estimates the total memory held by version payloads in the
// cache (E5's accounting of obsolete-version buildup).
func (e *Engine) VersionBytes() int {
	var objs []*object
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		for _, o := range s.nodes {
			objs = append(objs, o)
		}
		for _, o := range s.rels {
			objs = append(objs, o)
		}
		s.mu.RUnlock()
	}
	total := 0
	for _, o := range objs {
		o.chain.Each(func(v *mvcc.Version) {
			total += estimateStateBytes(v.Data) + 64 // 64 ≈ Version struct + links
		})
	}
	return total
}
