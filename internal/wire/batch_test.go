package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestValidateBatch(t *testing.T) {
	ok := func(sub ...Request) error {
		return ValidateBatch(&Request{Op: OpBatch, Batch: sub})
	}
	if err := ok(Request{Op: OpPing}, Request{Op: OpCreateNode}); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := ok(); err == nil {
		t.Error("empty batch accepted")
	}
	if err := ValidateBatch(&Request{Op: OpPing}); err == nil {
		t.Error("non-batch request validated as batch")
	}
	for _, bad := range []string{OpBatch, OpBegin, OpCommit, OpAbort, OpPromote, OpCheckpoint, OpGC, OpStats, OpReplStatus, "bogus"} {
		if err := ok(Request{Op: bad}); err == nil {
			t.Errorf("op %q accepted inside a batch", bad)
		}
	}
	if err := ok(Request{Op: OpPing, WaitLSN: 7}); err == nil {
		t.Error("per-sub-op wait_lsn accepted")
	}
	if err := ok(Request{Op: OpPing, DeadlineMS: 7}); err == nil {
		t.Error("per-sub-op deadline_ms accepted")
	}
	over := make([]Request, MaxBatchOps+1)
	for i := range over {
		over[i] = Request{Op: OpPing}
	}
	if err := ok(over...); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized batch: %v", err)
	}
	exact := make([]Request, MaxBatchOps)
	for i := range exact {
		exact[i] = Request{Op: OpPing}
	}
	if err := ok(exact...); err != nil {
		t.Errorf("batch at the limit rejected: %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	req := Request{Op: OpBatch, Batch: []Request{
		{Op: OpCreateNode, Labels: []string{"A", "B"}},
		{Op: OpCreateRel, Type: "KNOWS", Start: 1, End: 2},
		{Op: OpNeighbors, ID: 3, Dir: "out", Types: []string{"KNOWS"}},
	}}
	data, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Batch) != 3 || back.Batch[1].Type != "KNOWS" || back.Batch[2].Dir != "out" {
		t.Fatalf("batch round trip = %+v", back)
	}
	if err := ValidateBatch(&back); err != nil {
		t.Fatal(err)
	}

	idx := 1
	resp := Response{OK: true, LSN: 99, Results: []Response{{OK: true, ID: 7}, {OK: true}}, FailedOp: &idx}
	data, err = json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	var rback Response
	if err := json.Unmarshal(data, &rback); err != nil {
		t.Fatal(err)
	}
	if len(rback.Results) != 2 || rback.Results[0].ID != 7 || rback.FailedOp == nil || *rback.FailedOp != 1 {
		t.Fatalf("response round trip = %+v", rback)
	}
}

// FuzzDecodeBatch hammers batch request decoding + validation with
// arbitrary bytes: decode must never panic, and anything that validates
// must survive a re-encode/re-validate round trip.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(`{"op":"batch","batch":[{"op":"ping"}]}`))
	f.Add([]byte(`{"op":"batch","batch":[{"op":"create_node","labels":["A"],"props":{"k":{"i":"1"}}}]}`))
	f.Add([]byte(`{"op":"batch","batch":[{"op":"batch","batch":[{"op":"ping"}]}]}`))
	f.Add([]byte(`{"op":"batch","batch":[]}`))
	f.Add([]byte(`{"op":"batch","batch":[{"op":"set_node_prop","id":1,"key":"k","value":{"f":"1.5"},"wait_lsn":3}]}`))
	f.Add([]byte(`{"op":"batch"`))
	f.Add([]byte(`{"op":"ping"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		if err := ValidateBatch(&req); err != nil {
			return
		}
		// A validated batch must re-encode and still validate: the server
		// trusts ValidateBatch before executing.
		out, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("validated batch failed to re-encode: %v", err)
		}
		var back Request
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if err := ValidateBatch(&back); err != nil {
			t.Fatalf("re-encoded batch failed validation: %v", err)
		}
		if len(back.Batch) != len(req.Batch) {
			t.Fatalf("batch length changed across round trip: %d -> %d", len(req.Batch), len(back.Batch))
		}
	})
}
