package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustPlan(t *testing.T, raw string) *QueryPlan {
	t.Helper()
	p, err := DecodeQueryPlan([]byte(raw))
	if err != nil {
		t.Fatalf("plan %s rejected: %v", raw, err)
	}
	return p
}

func TestQueryPlanValid(t *testing.T) {
	for _, raw := range []string{
		`{"seed":{"ids":[1]}}`,
		`{"seed":{"ids":[1,2,3]},"stages":[{"op":"khop","dir":"out","depth":3}]}`,
		`{"seed":{"label":"Person"},"stages":[{"op":"expand","dir":"both"},{"op":"limit","n":10}]}`,
		`{"seed":{"key":"age","value":{"i":"36"}},"stages":[{"op":"count"}]}`,
		`{"seed":{"all":true},"stages":[{"op":"filter_label","label":"A"},{"op":"filter_lt","key":"age","value":{"i":"40"}},{"op":"count"}]}`,
		`{"seed":{"ids":[1]},"stages":[{"op":"shortest_path","end":9,"dir":"out"}]}`,
		`{"seed":{"all":true},"stages":[{"op":"pagerank","damping":0.85,"iterations":20,"n":10}]}`,
	} {
		mustPlan(t, raw)
	}
}

func TestQueryPlanRejected(t *testing.T) {
	for _, tc := range []struct{ name, raw, want string }{
		{"no-seed", `{"seed":{}}`, "exactly one"},
		{"two-seeds", `{"seed":{"ids":[1],"all":true}}`, "exactly one"},
		{"prop-seed-no-value", `{"seed":{"key":"age"}}`, "needs a value"},
		{"bad-stage", `{"seed":{"ids":[1]},"stages":[{"op":"frobnicate"}]}`, "unknown op"},
		{"bad-dir", `{"seed":{"ids":[1]},"stages":[{"op":"expand","dir":"sideways"}]}`, "bad direction"},
		{"khop-no-depth", `{"seed":{"ids":[1]},"stages":[{"op":"khop"}]}`, "depth"},
		{"khop-deep", `{"seed":{"ids":[1]},"stages":[{"op":"khop","depth":1000}]}`, "depth"},
		{"limit-zero", `{"seed":{"ids":[1]},"stages":[{"op":"limit"}]}`, "positive"},
		{"count-not-last", `{"seed":{"ids":[1]},"stages":[{"op":"count"},{"op":"limit","n":1}]}`, "last stage"},
		{"path-not-alone", `{"seed":{"ids":[1]},"stages":[{"op":"shortest_path","end":2},{"op":"count"}]}`, "only stage"},
		{"path-multi-seed", `{"seed":{"ids":[1,2]},"stages":[{"op":"shortest_path","end":3}]}`, "one seed"},
		{"pagerank-not-alone", `{"seed":{"all":true},"stages":[{"op":"limit","n":1},{"op":"pagerank"}]}`, "only stage"},
		{"pagerank-damping", `{"seed":{"all":true},"stages":[{"op":"pagerank","damping":1.5}]}`, "damping"},
		{"filter-no-key", `{"seed":{"all":true},"stages":[{"op":"filter_eq","value":{"i":"1"}}]}`, "key and value"},
		{"filter-label-empty", `{"seed":{"all":true},"stages":[{"op":"filter_label"}]}`, "needs a label"},
		{"not-json", `{"seed":`, "bad plan"},
	} {
		if _, err := DecodeQueryPlan([]byte(tc.raw)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestQueryPlanOversized(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"seed":{"ids":[`)
	for i := 0; i <= MaxQuerySeedIDs; i++ { // one past the limit
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("1")
	}
	sb.WriteString(`]}}`)
	if _, err := DecodeQueryPlan([]byte(sb.String())); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized seed: err = %v", err)
	}

	sb.Reset()
	sb.WriteString(`{"seed":{"ids":[1]},"stages":[`)
	for i := 0; i <= MaxQueryStages; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"op":"limit","n":1}`)
	}
	sb.WriteString(`]}`)
	if _, err := DecodeQueryPlan([]byte(sb.String())); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized stages: err = %v", err)
	}
}

// FuzzDecodeQueryPlan feeds arbitrary bytes — malformed JSON, oversized
// collections, deeply nested ("cyclic"-looking) values — through the
// decode+validate entry point. Invariants: no panic, and any accepted
// plan survives an encode/decode round trip and is still valid.
func FuzzDecodeQueryPlan(f *testing.F) {
	f.Add([]byte(`{"seed":{"ids":[1,2]},"stages":[{"op":"khop","dir":"out","depth":3}]}`))
	f.Add([]byte(`{"seed":{"label":"Person"},"stages":[{"op":"expand"},{"op":"count"}]}`))
	f.Add([]byte(`{"seed":{"key":"k","value":{"l":[{"l":[{"i":"1"}]}]}},"stages":[{"op":"limit","n":5}]}`))
	f.Add([]byte(`{"seed":{"all":true},"stages":[{"op":"pagerank","damping":0.85}]}`))
	f.Add([]byte(`{"seed":{"ids":[0]},"stages":[{"op":"shortest_path","end":18446744073709551615}]}`))
	f.Add([]byte(`{"seed":`))
	f.Add([]byte(`{"seed":{"ids":[-1]}}`))
	f.Add([]byte(strings.Repeat(`{"seed":`, 1000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeQueryPlan(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan does not re-encode: %v", err)
		}
		if _, err := DecodeQueryPlan(enc); err != nil {
			t.Fatalf("round-tripped plan rejected: %v\nplan: %s", err, enc)
		}
	})
}

func TestValidateBatchRefs(t *testing.T) {
	ref := func(i int) *int { return &i }
	ok := &Request{Op: OpBatch, Batch: []Request{
		{Op: OpCreateNode},
		{Op: OpCreateNode},
		{Op: OpCreateRel, Type: "R", StartRef: ref(0), EndRef: ref(1)},
		{Op: OpSetNodeProp, IDRef: ref(0), Key: "k", Value: json.RawMessage(`{"i":"1"}`)},
	}}
	if err := ValidateBatch(ok); err != nil {
		t.Fatalf("backward refs rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		req  *Request
	}{
		{"self", &Request{Op: OpBatch, Batch: []Request{
			{Op: OpCreateNode}, {Op: OpCreateRel, StartRef: ref(1), End: 1},
		}}},
		{"forward", &Request{Op: OpBatch, Batch: []Request{
			{Op: OpCreateRel, StartRef: ref(1), End: 1}, {Op: OpCreateNode},
		}}},
		{"negative", &Request{Op: OpBatch, Batch: []Request{
			{Op: OpCreateNode}, {Op: OpSetNodeProp, IDRef: ref(-1), Key: "k", Value: json.RawMessage(`{"i":"1"}`)},
		}}},
	} {
		err := ValidateBatch(tc.req)
		if err == nil {
			t.Errorf("%s ref accepted", tc.name)
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s ref error = %v, want out-of-range", tc.name, err)
		}
	}
}
