package wire

import (
	"encoding/json"
	"fmt"
)

// OpQuery submits a QueryPlan for whole-query, engine-side execution —
// the paper's §1 argument taken to the wire: a multi-hop traversal is
// ONE request, evaluated against ONE MVCC snapshot, instead of a round
// trip per hop. The response is a STREAM of frames: zero or more chunk
// frames (OK with More set, each carrying up to a chunk of rows) followed
// by exactly one final frame (More unset — possibly with trailing rows —
// or an error frame). Every frame echoes the request's Seq and TraceID,
// so pipelined clients can pair each chunk with its request.
const OpQuery = "query"

// Structural bounds on a query plan. They are validated before any
// execution so a hostile plan is a cheap error frame, not a runaway
// traversal.
const (
	// MaxQuerySeedIDs bounds an explicit seed set (mirrors MaxBatchOps:
	// larger seed sets should arrive as several queries).
	MaxQuerySeedIDs = 4096
	// MaxQueryStages bounds the operator pipeline's length.
	MaxQueryStages = 16
	// MaxQueryDepth bounds k-hop expansion depth.
	MaxQueryDepth = 64
	// MaxPageRankIters bounds PageRank power iterations.
	MaxPageRankIters = 200
)

// QueryChunkRows is the server's streaming chunk size: at most this many
// rows buffer server-side before a frame is flushed, which is what keeps
// a million-row result at chunk-sized memory on both ends.
const QueryChunkRows = 512

// Stage operators. A plan is seed → stages, evaluated left to right as a
// streaming pipeline; StageShortestPath and StagePageRank are whole-plan
// algorithms and must be a plan's only stage, StageCount and StageLimit
// are terminal-ish reducers (count must come last).
const (
	// StageExpand replaces the row set with its one-hop neighborhood
	// (deduplicated; Dir/Types filter the followed relationships).
	StageExpand = "expand"
	// StageKHop streams the breadth-first k-hop neighborhood of the seed
	// rows — every node within Depth hops, each once, with its depth.
	StageKHop = "khop"
	// StageShortestPath emits the nodes of a minimum-hop path from the
	// single seed node to End, in order, each row carrying the
	// relationship that led to it.
	StageShortestPath = "shortest_path"
	// StagePageRank ranks the whole visible graph and emits the top N
	// rows (0 = all) with their scores.
	StagePageRank = "pagerank"
	// StageFilterLabel keeps rows whose node carries Label.
	StageFilterLabel = "filter_label"
	// StageFilterEq keeps rows whose node property Key equals Value.
	StageFilterEq = "filter_eq"
	// StageFilterLt keeps rows whose node property Key is strictly less
	// than Value (the value model's total order).
	StageFilterLt = "filter_lt"
	// StageLimit stops the stream after N rows.
	StageLimit = "limit"
	// StageCount consumes the stream and emits one row whose Count is
	// the number of rows that reached it.
	StageCount = "count"
)

// QueryPlan is the wire form of a server-side query: a seed set and a
// pipeline of stages. The server executes the whole plan inside one
// transaction (the session's open one, or a read transaction owned by
// the query), so every stage sees the same snapshot.
type QueryPlan struct {
	Seed   QuerySeed    `json:"seed"`
	Stages []QueryStage `json:"stages,omitempty"`
}

// QuerySeed selects the starting row set. Exactly one selector must be
// set: explicit IDs, a label, a property equality (Key+Value), or All.
type QuerySeed struct {
	IDs   []uint64        `json:"ids,omitempty"`
	Label string          `json:"label,omitempty"`
	Key   string          `json:"key,omitempty"`
	Value json.RawMessage `json:"value,omitempty"` // tagged value
	All   bool            `json:"all,omitempty"`
}

// QueryStage is one pipeline operator; Op selects which fields apply.
type QueryStage struct {
	Op         string          `json:"op"`
	Dir        string          `json:"dir,omitempty"`        // expand/khop/shortest_path
	Types      []string        `json:"types,omitempty"`      // expand/khop/shortest_path
	Depth      int             `json:"depth,omitempty"`      // khop
	Key        string          `json:"key,omitempty"`        // filter_eq/filter_lt
	Value      json.RawMessage `json:"value,omitempty"`      // filter_eq/filter_lt (tagged)
	Label      string          `json:"label,omitempty"`      // filter_label
	N          int             `json:"n,omitempty"`          // limit / pagerank top-N
	End        uint64          `json:"end,omitempty"`        // shortest_path target
	Damping    float64         `json:"damping,omitempty"`    // pagerank
	Iterations int             `json:"iterations,omitempty"` // pagerank
}

// QueryRow is one streamed result row. Which fields are meaningful
// depends on the plan's last stage: traversals fill Depth, shortest-path
// rows carry the relationship that reached the node, PageRank fills
// Score, count fills only Count.
type QueryRow struct {
	ID    uint64  `json:"id,omitempty"`
	Depth int     `json:"depth,omitempty"`
	Rel   uint64  `json:"rel,omitempty"`
	Score float64 `json:"score,omitempty"`
	Count uint64  `json:"count,omitempty"`
}

// validDir reports whether d is a wire direction ("" means both).
func validDir(d string) bool {
	switch d {
	case "", "out", "in", "both":
		return true
	}
	return false
}

// ValidateQueryPlan checks a plan's structural rules before execution:
// exactly one seed selector, bounded sizes/depths, per-stage field
// requirements, and placement rules (whole-plan algorithms stand alone,
// count comes last). Execution-time concerns — missing nodes, type
// mismatches in filters — are deliberately not validated here.
func ValidateQueryPlan(p *QueryPlan) error {
	if p == nil {
		return fmt.Errorf("wire: query without a plan")
	}
	selectors := 0
	if len(p.Seed.IDs) > 0 {
		selectors++
		if len(p.Seed.IDs) > MaxQuerySeedIDs {
			return fmt.Errorf("wire: seed of %d ids exceeds limit %d", len(p.Seed.IDs), MaxQuerySeedIDs)
		}
	}
	if p.Seed.Label != "" {
		selectors++
	}
	if p.Seed.Key != "" {
		selectors++
		if len(p.Seed.Value) == 0 {
			return fmt.Errorf("wire: property seed needs a value")
		}
	}
	if p.Seed.All {
		selectors++
	}
	if selectors != 1 {
		return fmt.Errorf("wire: seed must set exactly one of ids/label/key/all, got %d", selectors)
	}
	if len(p.Stages) > MaxQueryStages {
		return fmt.Errorf("wire: plan of %d stages exceeds limit %d", len(p.Stages), MaxQueryStages)
	}
	for i := range p.Stages {
		st := &p.Stages[i]
		last := i == len(p.Stages)-1
		switch st.Op {
		case StageExpand:
			if !validDir(st.Dir) {
				return fmt.Errorf("wire: stage %d: bad direction %q", i, st.Dir)
			}
		case StageKHop:
			if !validDir(st.Dir) {
				return fmt.Errorf("wire: stage %d: bad direction %q", i, st.Dir)
			}
			if st.Depth < 1 || st.Depth > MaxQueryDepth {
				return fmt.Errorf("wire: stage %d: khop depth %d outside [1,%d]", i, st.Depth, MaxQueryDepth)
			}
		case StageShortestPath:
			if len(p.Stages) != 1 {
				return fmt.Errorf("wire: stage %d: shortest_path must be the plan's only stage", i)
			}
			if len(p.Seed.IDs) != 1 {
				return fmt.Errorf("wire: shortest_path needs exactly one seed id")
			}
			if !validDir(st.Dir) {
				return fmt.Errorf("wire: stage %d: bad direction %q", i, st.Dir)
			}
		case StagePageRank:
			if len(p.Stages) != 1 {
				return fmt.Errorf("wire: stage %d: pagerank must be the plan's only stage", i)
			}
			if st.Damping != 0 && (st.Damping <= 0 || st.Damping >= 1) {
				return fmt.Errorf("wire: stage %d: damping %v outside (0,1)", i, st.Damping)
			}
			if st.Iterations < 0 || st.Iterations > MaxPageRankIters {
				return fmt.Errorf("wire: stage %d: iterations %d outside [0,%d]", i, st.Iterations, MaxPageRankIters)
			}
			if st.N < 0 {
				return fmt.Errorf("wire: stage %d: negative top-n", i)
			}
		case StageFilterLabel:
			if st.Label == "" {
				return fmt.Errorf("wire: stage %d: filter_label needs a label", i)
			}
		case StageFilterEq, StageFilterLt:
			if st.Key == "" || len(st.Value) == 0 {
				return fmt.Errorf("wire: stage %d: %s needs key and value", i, st.Op)
			}
		case StageLimit:
			if st.N < 1 {
				return fmt.Errorf("wire: stage %d: limit %d must be positive", i, st.N)
			}
		case StageCount:
			if !last {
				return fmt.Errorf("wire: stage %d: count must be the last stage", i)
			}
		default:
			return fmt.Errorf("wire: stage %d: unknown op %q", i, st.Op)
		}
	}
	return nil
}

// DecodeQueryPlan parses and validates a raw plan — the single entry
// point fuzzing drives, so decode and structural validation cannot
// drift apart.
func DecodeQueryPlan(raw []byte) (*QueryPlan, error) {
	var p QueryPlan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("wire: bad plan: %w", err)
	}
	if err := ValidateQueryPlan(&p); err != nil {
		return nil, err
	}
	return &p, nil
}
