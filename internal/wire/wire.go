// Package wire defines the client/server protocol: newline-delimited JSON
// request/response pairs over TCP. Graph databases execute whole queries
// engine-side to avoid chatty client round trips (paper §1); accordingly
// the protocol exposes traversal operations (relationships, neighbors,
// label/property lookups), not just point reads.
//
// Property values are tagged on the wire so the typed value model
// round-trips exactly (JSON numbers alone cannot distinguish int from
// float):
//
//	{"i": "123"}   int64 (string to survive JSON float precision)
//	{"f": "1.5"}   float64 (string so ±Inf and NaN survive)
//	{"s": "x"}     string (valid UTF-8)
//	{"sx": "00ff"} string with non-UTF-8 bytes (hex)
//	{"b": true}    bool
//	{"x": "0aff"}  bytes (hex)
//	{"l": [...]}   list
package wire

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"

	"neograph/internal/value"
)

// Op names.
const (
	OpPing         = "ping"
	OpBegin        = "begin"
	OpCommit       = "commit"
	OpAbort        = "abort"
	OpCreateNode   = "create_node"
	OpGetNode      = "get_node"
	OpSetNodeProp  = "set_node_prop"
	OpAddLabel     = "add_label"
	OpRemoveLabel  = "remove_label"
	OpDeleteNode   = "delete_node"
	OpDetachDelete = "detach_delete_node"
	OpCreateRel    = "create_rel"
	OpGetRel       = "get_rel"
	OpSetRelProp   = "set_rel_prop"
	OpDeleteRel    = "delete_rel"
	OpRels         = "relationships"
	OpNeighbors    = "neighbors"
	OpNodesByLabel = "nodes_by_label"
	OpNodesByProp  = "nodes_by_prop"
	OpAllNodes     = "all_nodes"
	OpStats        = "stats"
	OpGC           = "gc"
	OpCheckpoint   = "checkpoint"
	OpReplStatus   = "repl_status"
	// OpPromote turns a replica server into a writable primary (failover).
	// Request.Addr optionally names the replication address the promoted
	// node starts shipping on — typically the dead primary's.
	OpPromote = "promote"
)

// Request is one client command.
type Request struct {
	Op        string          `json:"op"`
	Isolation string          `json:"iso,omitempty"` // "si" | "rc" for begin
	ID        uint64          `json:"id,omitempty"`
	Labels    []string        `json:"labels,omitempty"`
	Label     string          `json:"label,omitempty"`
	Key       string          `json:"key,omitempty"`
	Value     json.RawMessage `json:"value,omitempty"` // tagged value
	Props     json.RawMessage `json:"props,omitempty"` // tagged value map
	Type      string          `json:"type,omitempty"`
	Types     []string        `json:"types,omitempty"`
	Start     uint64          `json:"start,omitempty"`
	End       uint64          `json:"end,omitempty"`
	Dir       string          `json:"dir,omitempty"` // "out" | "in" | "both"
	// Addr is the replication address a promoted node should ship on
	// (promote op only).
	Addr string `json:"addr,omitempty"`
	// WaitLSN gates a read on the log position: a replica waits until it
	// has applied the primary's log to this position (read-your-writes —
	// pass the LSN a write response returned); a primary waits until the
	// position is durable (opt-in gate against acting on unsynced
	// commits). Zero means no gating.
	WaitLSN uint64 `json:"wait_lsn,omitempty"`
}

// NodeJSON is a node snapshot on the wire.
type NodeJSON struct {
	ID     uint64          `json:"id"`
	Labels []string        `json:"labels,omitempty"`
	Props  json.RawMessage `json:"props,omitempty"`
}

// RelJSON is a relationship snapshot on the wire.
type RelJSON struct {
	ID    uint64          `json:"id"`
	Type  string          `json:"type"`
	Start uint64          `json:"start"`
	End   uint64          `json:"end"`
	Props json.RawMessage `json:"props,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	ID    uint64          `json:"id,omitempty"`
	Node  *NodeJSON       `json:"node,omitempty"`
	Rel   *RelJSON        `json:"rel,omitempty"`
	Rels  []RelJSON       `json:"rels,omitempty"`
	IDs   []uint64        `json:"ids,omitempty"`
	Info  json.RawMessage `json:"info,omitempty"` // stats / gc / repl reports
	// LSN is the commit record's end position, returned by commit and by
	// auto-committed writes — the token for read-your-writes gating
	// (Request.WaitLSN) on replicas and for durable-read gating.
	LSN uint64 `json:"lsn,omitempty"`
}

// EncodeValue renders a value in the tagged JSON form.
func EncodeValue(v value.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case value.KindNull:
		return json.RawMessage("null"), nil
	case value.KindBool:
		b, _ := v.AsBool()
		return json.Marshal(map[string]bool{"b": b})
	case value.KindInt:
		i, _ := v.AsInt()
		return json.Marshal(map[string]string{"i": strconv.FormatInt(i, 10)})
	case value.KindFloat:
		f, _ := v.AsFloat()
		return json.Marshal(map[string]string{"f": strconv.FormatFloat(f, 'g', -1, 64)})
	case value.KindString:
		s, _ := v.AsString()
		if !utf8.ValidString(s) {
			return json.Marshal(map[string]string{"sx": hex.EncodeToString([]byte(s))})
		}
		return json.Marshal(map[string]string{"s": s})
	case value.KindBytes:
		b, _ := v.AsBytes()
		return json.Marshal(map[string]string{"x": hex.EncodeToString(b)})
	case value.KindList:
		l, _ := v.AsList()
		elems := make([]json.RawMessage, len(l))
		for i, e := range l {
			var err error
			if elems[i], err = EncodeValue(e); err != nil {
				return nil, err
			}
		}
		return json.Marshal(map[string][]json.RawMessage{"l": elems})
	default:
		return nil, fmt.Errorf("wire: unsupported kind %v", v.Kind())
	}
}

// DecodeValue parses the tagged JSON form.
func DecodeValue(raw json.RawMessage) (value.Value, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return value.Null, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return value.Null, fmt.Errorf("wire: bad value: %w", err)
	}
	if len(m) != 1 {
		return value.Null, fmt.Errorf("wire: value must have exactly one tag, got %d", len(m))
	}
	for tag, payload := range m {
		switch tag {
		case "b":
			var b bool
			if err := json.Unmarshal(payload, &b); err != nil {
				return value.Null, err
			}
			return value.Bool(b), nil
		case "i":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad int %q: %w", s, err)
			}
			return value.Int(i), nil
		case "f":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad float %q: %w", s, err)
			}
			return value.Float(f), nil
		case "s":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			return value.String(s), nil
		case "sx":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			b, err := hex.DecodeString(s)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad hex string: %w", err)
			}
			return value.String(string(b)), nil
		case "x":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			b, err := hex.DecodeString(s)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad hex: %w", err)
			}
			return value.Bytes(b), nil
		case "l":
			var elems []json.RawMessage
			if err := json.Unmarshal(payload, &elems); err != nil {
				return value.Null, err
			}
			vs := make([]value.Value, len(elems))
			for i, e := range elems {
				var err error
				if vs[i], err = DecodeValue(e); err != nil {
					return value.Null, err
				}
			}
			return value.List(vs...), nil
		default:
			return value.Null, fmt.Errorf("wire: unknown value tag %q", tag)
		}
	}
	return value.Null, nil
}

// EncodeProps renders a property map.
func EncodeProps(m value.Map) (json.RawMessage, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		enc, err := EncodeValue(v)
		if err != nil {
			return nil, err
		}
		out[k] = enc
	}
	return json.Marshal(out)
}

// DecodeProps parses a property map.
func DecodeProps(raw json.RawMessage) (value.Map, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("wire: bad props: %w", err)
	}
	out := make(value.Map, len(m))
	for k, e := range m {
		v, err := DecodeValue(e)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
