// Package wire defines the client/server protocol: newline-delimited JSON
// request/response pairs over TCP. Graph databases execute whole queries
// engine-side to avoid chatty client round trips (paper §1); accordingly
// the protocol exposes traversal operations (relationships, neighbors,
// label/property lookups), not just point reads.
//
// Property values are tagged on the wire so the typed value model
// round-trips exactly (JSON numbers alone cannot distinguish int from
// float):
//
//	{"i": "123"}   int64 (string to survive JSON float precision)
//	{"f": "1.5"}   float64 (string so ±Inf and NaN survive)
//	{"s": "x"}     string (valid UTF-8)
//	{"sx": "00ff"} string with non-UTF-8 bytes (hex)
//	{"b": true}    bool
//	{"x": "0aff"}  bytes (hex)
//	{"l": [...]}   list
package wire

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"

	"neograph/internal/value"
)

// ProtocolVersion is the wire protocol generation this package speaks.
// Version 2 added the batch op and per-request deadlines; both ride in
// optional JSON fields, so v1 clients keep working against a v2 server
// unchanged (a v2 client can discover the server's generation from the
// ping response's proto field). Request correlation (seq) and trace
// propagation (trace) are likewise optional fields within v2.
const ProtocolVersion = 2

// MaxBatchOps bounds one batch request. A batch runs as a single
// server-side transaction; an unbounded one would let a client pin a
// transaction (and its memory) arbitrarily long.
const MaxBatchOps = 4096

// Op names.
const (
	OpPing         = "ping"
	OpBegin        = "begin"
	OpCommit       = "commit"
	OpAbort        = "abort"
	OpCreateNode   = "create_node"
	OpGetNode      = "get_node"
	OpSetNodeProp  = "set_node_prop"
	OpAddLabel     = "add_label"
	OpRemoveLabel  = "remove_label"
	OpDeleteNode   = "delete_node"
	OpDetachDelete = "detach_delete_node"
	OpCreateRel    = "create_rel"
	OpGetRel       = "get_rel"
	OpSetRelProp   = "set_rel_prop"
	OpDeleteRel    = "delete_rel"
	OpRels         = "relationships"
	OpNeighbors    = "neighbors"
	OpNodesByLabel = "nodes_by_label"
	OpNodesByProp  = "nodes_by_prop"
	OpAllNodes     = "all_nodes"
	OpStats        = "stats"
	OpGC           = "gc"
	OpCheckpoint   = "checkpoint"
	OpReplStatus   = "repl_status"
	// OpClusterStatus reports the node's cluster-controller view (role,
	// epoch, log positions, known members) as a ClusterInfo in
	// Response.Info. Servers without a controller fail the op; callers
	// fall back to repl_status.
	OpClusterStatus = "cluster_status"
	// OpPromote turns a replica server into a writable primary (failover).
	// Request.Addr optionally names the replication address the promoted
	// node starts shipping on — typically the dead primary's.
	OpPromote = "promote"
	// OpBatch submits Request.Batch — many data ops — in ONE round trip.
	// The server executes the whole batch inside a single transaction
	// (the session's open one, or its own auto-committed one) and replies
	// with one Response carrying per-op Results. Atomic: the first failed
	// op aborts the entire batch (Response.FailedOp names it).
	OpBatch = "batch"
	// OpPrepare is phase one of a cross-partition commit: execute
	// Request.Batch in a fresh transaction and park it prepared under
	// global transaction ID Request.TxnID, holding its write guards until
	// the decision. Request.CoordPart names the coordinating partition
	// (where an in-doubt participant asks after a crash) and
	// Request.ValidateNodes lists locally-owned nodes that must stay alive
	// for the global transaction (remote edge endpoints). The response
	// carries per-op Results (created IDs) and the prepare record's LSN.
	OpPrepare = "prepare"
	// OpDecide is phase two: commit or abort (Request.Commit) the prepared
	// transaction Request.TxnID. On the coordinating partition itself,
	// Request.Participants lists the other partitions involved — its
	// durable decision record is the global commit point and the repush
	// obligation survives restart until every participant acknowledges.
	// A participant's OK response IS its acknowledgement.
	OpDecide = "decide"
	// OpTxnStatus asks a (coordinating) partition what became of global
	// transaction Request.TxnID: Response.State is "committed",
	// "aborted", "pending", or "unknown" (presumed abort). In-doubt
	// participants use it to resolve prepares orphaned by a crash.
	OpTxnStatus = "txn_status"
)

// Request is one client command.
type Request struct {
	Op        string          `json:"op"`
	Isolation string          `json:"iso,omitempty"` // "si" | "rc" for begin
	ID        uint64          `json:"id,omitempty"`
	Labels    []string        `json:"labels,omitempty"`
	Label     string          `json:"label,omitempty"`
	Key       string          `json:"key,omitempty"`
	Value     json.RawMessage `json:"value,omitempty"` // tagged value
	Props     json.RawMessage `json:"props,omitempty"` // tagged value map
	Type      string          `json:"type,omitempty"`
	Types     []string        `json:"types,omitempty"`
	Start     uint64          `json:"start,omitempty"`
	End       uint64          `json:"end,omitempty"`
	Dir       string          `json:"dir,omitempty"` // "out" | "in" | "both"
	// IDRef / StartRef / EndRef are batch-local back references ("$n"):
	// inside a batch, the value is the INDEX of an earlier sub-op whose
	// created entity ID substitutes for ID / Start / End — so one round
	// trip can create a node and an edge to it without the client ever
	// seeing the node's ID. Only valid on batch sub-ops, only pointing
	// backwards, and only at sub-ops that created an entity.
	IDRef    *int `json:"id_ref,omitempty"`
	StartRef *int `json:"start_ref,omitempty"`
	EndRef   *int `json:"end_ref,omitempty"`
	// Plan is the query op's execution plan.
	Plan *QueryPlan `json:"plan,omitempty"`
	// Addr is the replication address a promoted node should ship on
	// (promote op only).
	Addr string `json:"addr,omitempty"`
	// WaitLSN gates a read on the log position: a replica waits until it
	// has applied the primary's log to this position (read-your-writes —
	// pass the LSN a write response returned); a primary waits until the
	// position is durable (opt-in gate against acting on unsynced
	// commits). Zero means no gating.
	WaitLSN uint64 `json:"wait_lsn,omitempty"`
	// DeadlineMS is the client's remaining time budget for this request
	// in milliseconds (relative, so clock skew is irrelevant). The server
	// bounds its own waits (WaitLSN gating, response writes) by it and
	// fails the request once the budget is spent. Zero means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Batch holds the sub-operations of an OpBatch request.
	Batch []Request `json:"batch,omitempty"`
	// Seq is an opaque client-chosen correlation number. The server
	// echoes it verbatim in the response frame — error and overload
	// frames included — so pipelined requests stay correlatable even
	// when a reply carries none of the request's entity fields. Zero
	// means the client did not ask for correlation.
	Seq uint64 `json:"seq,omitempty"`
	// Trace carries the request's distributed-tracing context; the
	// server opens its per-op span as a child of Trace.SpanID and echoes
	// Trace.TraceID in the response. Absent on unsampled requests.
	Trace *TraceContext `json:"trace,omitempty"`
	// TxnID is the global transaction ID of a prepare/decide/txn_status
	// request (coordinator partition in the high bits, per-coordinator
	// sequence below — unique cluster-wide without coordination).
	TxnID uint64 `json:"txn_id,omitempty"`
	// CoordPart names the coordinating partition of a prepare request.
	CoordPart uint32 `json:"coord_part,omitempty"`
	// Commit is the decide request's verdict (pointer: absent ≠ abort).
	Commit *bool `json:"commit,omitempty"`
	// ValidateNodes lists locally-owned node IDs a prepare must pin alive
	// until the decision (edge endpoints referenced from other partitions).
	ValidateNodes []uint64 `json:"validate_nodes,omitempty"`
	// Participants lists the non-coordinating partitions of a decide
	// request issued on the coordinating partition itself.
	Participants []uint32 `json:"participants,omitempty"`
}

// TraceContext is a trace's wire identity: which trace this request
// belongs to and which client span is the parent of the server's work.
type TraceContext struct {
	TraceID string `json:"tid"`
	SpanID  string `json:"sid,omitempty"`
}

// batchableOps are the operations allowed inside a batch: the data plane
// (CRUD, traversals, lookups) plus ping. Session control (begin, commit,
// abort), admin (promote, checkpoint, gc) and nested batches are not —
// a batch already IS one transaction.
var batchableOps = map[string]bool{
	OpPing: true, OpCreateNode: true, OpGetNode: true, OpSetNodeProp: true,
	OpAddLabel: true, OpRemoveLabel: true, OpDeleteNode: true,
	OpDetachDelete: true, OpCreateRel: true, OpGetRel: true,
	OpSetRelProp: true, OpDeleteRel: true, OpRels: true, OpNeighbors: true,
	OpNodesByLabel: true, OpNodesByProp: true, OpAllNodes: true,
}

// Batchable reports whether op may appear inside a batch.
func Batchable(op string) bool { return batchableOps[op] }

// ValidateBatch checks the structural rules of an OpBatch request:
// non-empty, at most MaxBatchOps sub-ops, every sub-op batchable (no
// nesting, no session control), no per-sub-op WaitLSN/DeadlineMS
// (gating applies to the batch as a whole, on the outer request), and
// every batch-local back reference pointing strictly backwards.
func ValidateBatch(req *Request) error {
	if req.Op != OpBatch {
		return fmt.Errorf("wire: not a batch request (op %q)", req.Op)
	}
	if len(req.Batch) == 0 {
		return fmt.Errorf("wire: empty batch")
	}
	if len(req.Batch) > MaxBatchOps {
		return fmt.Errorf("wire: batch of %d ops exceeds limit %d", len(req.Batch), MaxBatchOps)
	}
	for i := range req.Batch {
		sub := &req.Batch[i]
		if !Batchable(sub.Op) {
			return fmt.Errorf("wire: op %q not allowed in a batch (sub-op %d)", sub.Op, i)
		}
		if sub.WaitLSN != 0 || sub.DeadlineMS != 0 {
			return fmt.Errorf("wire: wait_lsn/deadline_ms must be set on the batch, not sub-op %d", i)
		}
		for _, r := range []struct {
			name string
			ref  *int
		}{{"id_ref", sub.IDRef}, {"start_ref", sub.StartRef}, {"end_ref", sub.EndRef}} {
			if r.ref == nil {
				continue
			}
			if *r.ref < 0 || *r.ref >= i {
				return fmt.Errorf("wire: sub-op %d: %s %d out of range (must name an earlier op, 0..%d)", i, r.name, *r.ref, i-1)
			}
		}
	}
	return nil
}

// ClusterMember names one node of the cluster as the controller knows
// it: its client-facing address (what pools dial) and, when known, its
// replication address and node ID.
type ClusterMember struct {
	Addr     string `json:"addr"`
	ReplAddr string `json:"repl_addr,omitempty"`
	NodeID   uint64 `json:"node_id,omitempty"`
	// PartitionID is the hash partition this member serves. Members are
	// identified by (NodeID, PartitionID): the same node ID never serves
	// two partitions, but distinct partitions have overlapping node-ID
	// spaces, so dedup must use the pair.
	PartitionID uint32 `json:"partition_id,omitempty"`
}

// PartitionGroup is one partition's replication group in a PartitionMap:
// the partition ID and the client-facing addresses of its members (the
// pool probes them to find the group's current primary).
type PartitionGroup struct {
	ID    uint32   `json:"id"`
	Addrs []string `json:"addrs"`
}

// PartitionMap is the versioned partition topology served inside
// cluster_status: node IDs hash to partition id%Count, and Groups names
// each partition's replication group. Clients adopt the map with the
// highest Version they have seen.
type PartitionMap struct {
	Version uint64           `json:"version"`
	Count   int              `json:"count"`
	Groups  []PartitionGroup `json:"groups"`
}

// ClusterInfo is the cluster_status payload: one node's self-view plus
// the membership it announces. client.Pool merges Members into its host
// set so the fleet topology propagates without config pushes, and the
// cluster controllers use the role/epoch/LSN fields as election votes.
type ClusterInfo struct {
	NodeID uint64 `json:"node_id"`
	// Addr is this node's client-facing address; ReplAddr its WAL
	// shipping address (primaries) or the address it would ship on if
	// promoted (replicas).
	Addr     string `json:"addr,omitempty"`
	ReplAddr string `json:"repl_addr,omitempty"`
	// Role is "primary", "replica", or "standalone".
	Role       string `json:"role"`
	Epoch      uint64 `json:"epoch"`
	DurableLSN uint64 `json:"durable_lsn"`
	AppliedLSN uint64 `json:"applied_lsn"`
	// Connected reports a replica's live stream to its primary;
	// PrimaryReplAddr is the replication address it follows.
	Connected       bool   `json:"connected,omitempty"`
	PrimaryReplAddr string `json:"primary_repl_addr,omitempty"`
	// Reseeding is set while the node is rebuilding itself from a
	// snapshot (it votes in no election meanwhile).
	Reseeding bool `json:"reseeding,omitempty"`
	// Members is the full membership this node was configured with
	// (itself included).
	Members []ClusterMember `json:"members,omitempty"`
	// PartitionID is the hash partition this node serves (0 when
	// unpartitioned — the pair with Partitions disambiguates).
	PartitionID uint32 `json:"partition_id,omitempty"`
	// Partitions is the partition topology this node was configured
	// with; absent on unpartitioned deployments.
	Partitions *PartitionMap `json:"partitions,omitempty"`
}

// NodeJSON is a node snapshot on the wire.
type NodeJSON struct {
	ID     uint64          `json:"id"`
	Labels []string        `json:"labels,omitempty"`
	Props  json.RawMessage `json:"props,omitempty"`
}

// RelJSON is a relationship snapshot on the wire.
type RelJSON struct {
	ID    uint64          `json:"id"`
	Type  string          `json:"type"`
	Start uint64          `json:"start"`
	End   uint64          `json:"end"`
	Props json.RawMessage `json:"props,omitempty"`
}

// Error codes carried in Response.Code — machine-readable classification
// so clients route on structure, not on error prose.
const (
	// CodeUnavailable: this server cannot serve the request right now
	// (draining, or a gated wait timed out) — another replica might.
	CodeUnavailable = "unavailable"
	// CodeDeadline: the request's own deadline_ms budget expired.
	CodeDeadline = "deadline"
	// CodeOverloaded: the server's admission budget (in-flight requests
	// or queued bytes) is exhausted — back off and retry; the session
	// stays open and the request had no effect.
	CodeOverloaded = "overloaded"
)

// Response is the server's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code classifies well-known failure families (see Code* constants);
	// empty for ordinary engine errors.
	Code string          `json:"code,omitempty"`
	ID   uint64          `json:"id,omitempty"`
	Node *NodeJSON       `json:"node,omitempty"`
	Rel  *RelJSON        `json:"rel,omitempty"`
	Rels []RelJSON       `json:"rels,omitempty"`
	IDs  []uint64        `json:"ids,omitempty"`
	Info json.RawMessage `json:"info,omitempty"` // stats / gc / repl reports
	// LSN is the commit record's end position, returned by commit and by
	// auto-committed writes — the token for read-your-writes gating
	// (Request.WaitLSN) on replicas and for durable-read gating.
	LSN uint64 `json:"lsn,omitempty"`
	// Proto is the server's wire protocol generation, reported on ping so
	// clients can detect feature support (batch needs >= 2).
	Proto int `json:"proto,omitempty"`
	// Results holds the per-op responses of a successful batch, in
	// submission order.
	Results []Response `json:"results,omitempty"`
	// FailedOp names the sub-op whose failure aborted a batch (the
	// top-level Error is that op's error).
	FailedOp *int `json:"failed_op,omitempty"`
	// Seq echoes the request's correlation number — on every frame,
	// error and overload frames included, and on every chunk of a
	// streaming response.
	Seq uint64 `json:"seq,omitempty"`
	// More marks an intermediate frame of a streaming response (query
	// op): further frames for the same request follow on this session.
	// The stream's final frame has More unset — it may still carry
	// trailing rows — or is an error frame.
	More bool `json:"more,omitempty"`
	// Rows carries one chunk of a streaming query result (at most
	// QueryChunkRows per frame).
	Rows []QueryRow `json:"rows,omitempty"`
	// TraceID echoes the request's trace ID so a client can tie the
	// reply (and the server's /debug/traces entry) back to its span.
	TraceID string `json:"trace_id,omitempty"`
	// State answers a txn_status request: "committed", "aborted",
	// "pending", or "unknown" (presumed abort).
	State string `json:"state,omitempty"`
}

// EncodeValue renders a value in the tagged JSON form.
func EncodeValue(v value.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case value.KindNull:
		return json.RawMessage("null"), nil
	case value.KindBool:
		b, _ := v.AsBool()
		return json.Marshal(map[string]bool{"b": b})
	case value.KindInt:
		i, _ := v.AsInt()
		return json.Marshal(map[string]string{"i": strconv.FormatInt(i, 10)})
	case value.KindFloat:
		f, _ := v.AsFloat()
		return json.Marshal(map[string]string{"f": strconv.FormatFloat(f, 'g', -1, 64)})
	case value.KindString:
		s, _ := v.AsString()
		if !utf8.ValidString(s) {
			return json.Marshal(map[string]string{"sx": hex.EncodeToString([]byte(s))})
		}
		return json.Marshal(map[string]string{"s": s})
	case value.KindBytes:
		b, _ := v.AsBytes()
		return json.Marshal(map[string]string{"x": hex.EncodeToString(b)})
	case value.KindList:
		l, _ := v.AsList()
		elems := make([]json.RawMessage, len(l))
		for i, e := range l {
			var err error
			if elems[i], err = EncodeValue(e); err != nil {
				return nil, err
			}
		}
		return json.Marshal(map[string][]json.RawMessage{"l": elems})
	default:
		return nil, fmt.Errorf("wire: unsupported kind %v", v.Kind())
	}
}

// DecodeValue parses the tagged JSON form.
func DecodeValue(raw json.RawMessage) (value.Value, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return value.Null, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return value.Null, fmt.Errorf("wire: bad value: %w", err)
	}
	if len(m) != 1 {
		return value.Null, fmt.Errorf("wire: value must have exactly one tag, got %d", len(m))
	}
	for tag, payload := range m {
		switch tag {
		case "b":
			var b bool
			if err := json.Unmarshal(payload, &b); err != nil {
				return value.Null, err
			}
			return value.Bool(b), nil
		case "i":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad int %q: %w", s, err)
			}
			return value.Int(i), nil
		case "f":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad float %q: %w", s, err)
			}
			return value.Float(f), nil
		case "s":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			return value.String(s), nil
		case "sx":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			b, err := hex.DecodeString(s)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad hex string: %w", err)
			}
			return value.String(string(b)), nil
		case "x":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Null, err
			}
			b, err := hex.DecodeString(s)
			if err != nil {
				return value.Null, fmt.Errorf("wire: bad hex: %w", err)
			}
			return value.Bytes(b), nil
		case "l":
			var elems []json.RawMessage
			if err := json.Unmarshal(payload, &elems); err != nil {
				return value.Null, err
			}
			vs := make([]value.Value, len(elems))
			for i, e := range elems {
				var err error
				if vs[i], err = DecodeValue(e); err != nil {
					return value.Null, err
				}
			}
			return value.List(vs...), nil
		default:
			return value.Null, fmt.Errorf("wire: unknown value tag %q", tag)
		}
	}
	return value.Null, nil
}

// EncodeProps renders a property map.
func EncodeProps(m value.Map) (json.RawMessage, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		enc, err := EncodeValue(v)
		if err != nil {
			return nil, err
		}
		out[k] = enc
	}
	return json.Marshal(out)
}

// DecodeProps parses a property map.
func DecodeProps(raw json.RawMessage) (value.Map, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("wire: bad props: %w", err)
	}
	out := make(value.Map, len(m))
	for k, e := range m {
		v, err := DecodeValue(e)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
