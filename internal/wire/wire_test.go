package wire

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"neograph/internal/value"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []value.Value{
		value.Null,
		value.Bool(true), value.Bool(false),
		value.Int(0), value.Int(math.MaxInt64), value.Int(math.MinInt64),
		value.Float(1.5), value.Float(math.Inf(-1)),
		value.String(""), value.String("héllo"),
		value.Bytes(nil), value.Bytes([]byte{0, 255}),
		value.List(value.Int(1), value.List(value.String("x"))),
	}
	for _, v := range cases {
		raw, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got, err := DecodeValue(raw)
		if err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if got.Compare(v) != 0 {
			t.Errorf("round trip %v -> %s -> %v", v, raw, got)
		}
	}
}

func TestIntPrecisionPreserved(t *testing.T) {
	// 2^53+1 is not representable as float64; the tagged string form must
	// survive.
	v := value.Int(1<<53 + 1)
	raw, _ := EncodeValue(v)
	got, err := DecodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := got.AsInt(); i != 1<<53+1 {
		t.Fatalf("precision lost: %d", i)
	}
}

func TestPropsRoundTrip(t *testing.T) {
	m := value.Map{"a": value.Int(1), "b": value.String("x"), "c": value.Float(2.5)}
	raw, err := EncodeProps(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProps(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip: %v", got)
	}
	// Empty map encodes as nil and decodes as nil.
	raw, _ = EncodeProps(nil)
	if raw != nil {
		t.Fatalf("nil props encoded as %s", raw)
	}
	got, err = DecodeProps(nil)
	if err != nil || got != nil {
		t.Fatalf("nil decode: %v, %v", got, err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := []string{
		`{"i": "notanumber"}`,
		`{"x": "zz"}`,
		`{"q": 1}`,
		`{"i": "1", "f": 2}`,
		`[1,2]`,
		`{"b": "yes"}`,
	}
	for _, c := range cases {
		if _, err := DecodeValue(json.RawMessage(c)); err == nil {
			t.Errorf("DecodeValue(%s) succeeded", c)
		}
	}
	if _, err := DecodeProps(json.RawMessage(`42`)); err == nil {
		t.Error("DecodeProps(42) succeeded")
	}
}

func TestRequestJSONShape(t *testing.T) {
	req := Request{Op: OpCreateNode, Labels: []string{"A"}}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != OpCreateNode || len(back.Labels) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestQuickValueWire(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomWireValue(r, 2)
		raw, err := EncodeValue(v)
		if err != nil {
			return false
		}
		got, err := DecodeValue(raw)
		return err == nil && got.Compare(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomWireValue(r *rand.Rand, depth int) value.Value {
	k := r.Intn(7)
	if depth <= 0 && k == 6 {
		k = 2
	}
	switch k {
	case 0:
		return value.Null
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63() - r.Int63())
	case 3:
		return value.Float(r.NormFloat64())
	case 4:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return value.String(string(b))
	case 5:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return value.Bytes(b)
	default:
		n := r.Intn(3)
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = randomWireValue(r, depth-1)
		}
		return value.List(elems...)
	}
}

func TestLSNFieldsRoundTrip(t *testing.T) {
	req := Request{Op: OpGetNode, ID: 7, WaitLSN: 12345}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var backReq Request
	if err := json.Unmarshal(raw, &backReq); err != nil {
		t.Fatal(err)
	}
	if backReq.WaitLSN != 12345 {
		t.Fatalf("WaitLSN = %d", backReq.WaitLSN)
	}
	resp := Response{OK: true, LSN: 67890}
	raw, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var backResp Response
	if err := json.Unmarshal(raw, &backResp); err != nil {
		t.Fatal(err)
	}
	if backResp.LSN != 67890 {
		t.Fatalf("LSN = %d", backResp.LSN)
	}
	// Zero LSN is omitted: clients treat absence as "no token".
	raw, _ = json.Marshal(Response{OK: true})
	if strings.Contains(string(raw), "lsn") {
		t.Fatalf("zero LSN serialised: %s", raw)
	}
}

func TestDecodeValueMoreErrors(t *testing.T) {
	cases := []string{
		`{"f": "not-a-float"}`,
		`{"sx": "zz"}`,       // bad hex in sx
		`{"l": 42}`,          // list tag, non-array payload
		`{"l": [{"i":"x"}]}`, // bad element inside a list
		`{"b": 1}`,           // bool tag, numeric payload
		`"bare string"`,      // not an object
		`{}`,                 // no tag at all
		`{"i": 5}`,           // int tag must carry a string
	}
	for _, c := range cases {
		if _, err := DecodeValue(json.RawMessage(c)); err == nil {
			t.Errorf("DecodeValue(%s) succeeded", c)
		}
	}
	// Props with one bad value fail as a whole.
	if _, err := DecodeProps(json.RawMessage(`{"k": {"x": "zz"}}`)); err == nil {
		t.Error("DecodeProps with bad hex succeeded")
	}
}
