// Package server exposes a neograph database over TCP using the wire
// protocol. Each connection is a session with at most one open
// transaction; operations outside an explicit begin/commit run in their
// own auto-committed transaction. Traversals execute fully server-side —
// the engine-side query execution the paper's introduction argues graph
// databases exist for.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"neograph"
	"neograph/internal/wire"
)

// maxRequestBytes bounds one request frame. A session streaming a larger
// request is cut off mid-decode and closed — an oversized payload must
// not buffer unboundedly or wedge the server.
const maxRequestBytes = 8 << 20

// waitLSNTimeout bounds Request.WaitLSN gating: a replica that cannot
// catch up to the requested position in this window fails the read
// instead of holding the session forever.
const waitLSNTimeout = 10 * time.Second

// Server serves one DB over a listener.
type Server struct {
	db *neograph.DB
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New creates a server for db listening on addr (e.g. "127.0.0.1:7475").
func New(db *neograph.DB, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// session is one connection's state.
type session struct {
	db *neograph.DB
	tx *neograph.Tx // open explicit transaction, nil otherwise
	// lastLSN is the commit position of the most recent auto-committed
	// write, attached to that write's response as the RYW token.
	lastLSN uint64
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{db: s.db}
	defer func() {
		if sess.tx != nil {
			sess.tx.Abort()
		}
	}()
	lr := &io.LimitedReader{R: conn, N: maxRequestBytes}
	dec := json.NewDecoder(lr)
	enc := json.NewEncoder(conn)
	for {
		// Reset the budget per request; a single frame larger than the
		// limit starves the decoder mid-value and closes the session.
		lr.N = maxRequestBytes
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect, garbage, or oversized frame
		}
		resp := sess.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// inTx runs fn in the session's open transaction or an auto-committed one.
func (sess *session) inTx(write bool, fn func(tx *neograph.Tx) error) error {
	if sess.tx != nil {
		return fn(sess.tx)
	}
	tx := sess.db.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	if write {
		if err := tx.Commit(); err != nil {
			return err
		}
		sess.lastLSN = tx.CommitLSN()
		return nil
	}
	return tx.Abort()
}

// writeOps are the operations a read-only replica redirects to its
// primary — rejected up front so clients get the redirect before any
// staging happens, whether auto-committed or inside an open transaction.
var writeOps = map[string]bool{
	wire.OpCreateNode: true, wire.OpSetNodeProp: true,
	wire.OpAddLabel: true, wire.OpRemoveLabel: true,
	wire.OpDeleteNode: true, wire.OpDetachDelete: true,
	wire.OpCreateRel: true, wire.OpSetRelProp: true, wire.OpDeleteRel: true,
}

// dispatch guards replica/read-gating concerns, then executes the op and
// stamps write responses with their commit position (the RYW token).
func (sess *session) dispatch(req *wire.Request) *wire.Response {
	if writeOps[req.Op] && sess.db.IsReplica() {
		return fail(fmt.Errorf("%w: writes must go to the primary at %s",
			neograph.ErrReadOnlyReplica, sess.db.PrimaryAddr()))
	}
	if req.WaitLSN > 0 {
		// Read-your-writes on replicas (wait for the position to apply);
		// durable-read gating on primaries (wait for it to fsync).
		if err := sess.db.WaitApplied(req.WaitLSN, waitLSNTimeout); err != nil {
			return fail(err)
		}
	}
	sess.lastLSN = 0
	resp := sess.dispatchOp(req)
	if resp.OK && resp.LSN == 0 {
		resp.LSN = sess.lastLSN
	}
	return resp
}

func fail(err error) *wire.Response { return &wire.Response{Error: err.Error()} }

func parseDir(d string) (neograph.Direction, error) {
	switch d {
	case "out":
		return neograph.Outgoing, nil
	case "in":
		return neograph.Incoming, nil
	case "", "both":
		return neograph.Both, nil
	default:
		return 0, fmt.Errorf("server: bad direction %q", d)
	}
}

func (sess *session) dispatchOp(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true}

	case wire.OpBegin:
		if sess.tx != nil {
			return fail(errors.New("server: transaction already open"))
		}
		switch req.Isolation {
		case "", "si":
			sess.tx = sess.db.BeginIsolation(neograph.SnapshotIsolation)
		case "rc":
			sess.tx = sess.db.BeginIsolation(neograph.ReadCommitted)
		default:
			return fail(fmt.Errorf("server: bad isolation %q", req.Isolation))
		}
		return &wire.Response{OK: true}

	case wire.OpCommit:
		if sess.tx == nil {
			return fail(errors.New("server: no open transaction"))
		}
		tx := sess.tx
		sess.tx = nil
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, LSN: tx.CommitLSN()}

	case wire.OpAbort:
		if sess.tx == nil {
			return fail(errors.New("server: no open transaction"))
		}
		sess.tx.Abort()
		sess.tx = nil
		return &wire.Response{OK: true}

	case wire.OpCreateNode:
		props, err := wire.DecodeProps(req.Props)
		if err != nil {
			return fail(err)
		}
		var id neograph.NodeID
		err = sess.inTx(true, func(tx *neograph.Tx) error {
			var err error
			id, err = tx.CreateNode(req.Labels, props)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, ID: id}

	case wire.OpGetNode:
		var node *wire.NodeJSON
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			n, err := tx.GetNode(req.ID)
			if err != nil {
				return err
			}
			props, err := wire.EncodeProps(n.Props)
			if err != nil {
				return err
			}
			node = &wire.NodeJSON{ID: n.ID, Labels: n.Labels, Props: props}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Node: node}

	case wire.OpSetNodeProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.SetNodeProp(req.ID, req.Key, v)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpAddLabel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.AddLabel(req.ID, req.Label)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpRemoveLabel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.RemoveLabel(req.ID, req.Label)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDeleteNode:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DeleteNode(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDetachDelete:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DetachDeleteNode(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpCreateRel:
		props, err := wire.DecodeProps(req.Props)
		if err != nil {
			return fail(err)
		}
		var id neograph.RelID
		err = sess.inTx(true, func(tx *neograph.Tx) error {
			var err error
			id, err = tx.CreateRel(req.Type, req.Start, req.End, props)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, ID: id}

	case wire.OpGetRel:
		var rel *wire.RelJSON
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			r, err := tx.GetRel(req.ID)
			if err != nil {
				return err
			}
			props, err := wire.EncodeProps(r.Props)
			if err != nil {
				return err
			}
			rel = &wire.RelJSON{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Rel: rel}

	case wire.OpSetRelProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.SetRelProp(req.ID, req.Key, v)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDeleteRel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DeleteRel(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpRels:
		dir, err := parseDir(req.Dir)
		if err != nil {
			return fail(err)
		}
		var rels []wire.RelJSON
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			rs, err := tx.Relationships(req.ID, dir, req.Types...)
			if err != nil {
				return err
			}
			for _, r := range rs {
				props, err := wire.EncodeProps(r.Props)
				if err != nil {
					return err
				}
				rels = append(rels, wire.RelJSON{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props})
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Rels: rels}

	case wire.OpNeighbors:
		dir, err := parseDir(req.Dir)
		if err != nil {
			return fail(err)
		}
		var ids []uint64
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.Neighbors(req.ID, dir, req.Types...)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpNodesByLabel:
		var ids []uint64
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.NodesByLabel(req.Label)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpNodesByProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		var ids []uint64
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.NodesByProperty(req.Key, v)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpAllNodes:
		var ids []uint64
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.AllNodes()
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpStats:
		info, err := json.Marshal(sess.db.Stats())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpGC:
		info, err := json.Marshal(sess.db.RunGC())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpCheckpoint:
		if err := sess.db.Checkpoint(); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpReplStatus:
		info, err := json.Marshal(sess.db.ReplStatus())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpPromote:
		// Failover: only meaningful on a replica; afterwards this server
		// accepts writes directly (the replica redirect above no longer
		// triggers) and, with Addr set, ships its WAL to re-pointed
		// siblings.
		if err := sess.db.Promote(req.Addr); err != nil {
			return fail(err)
		}
		info, err := json.Marshal(sess.db.ReplStatus())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	default:
		return fail(fmt.Errorf("server: unknown op %q", req.Op))
	}
}
