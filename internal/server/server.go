// Package server exposes a neograph database over TCP using the wire
// protocol. Each connection is a session with at most one open
// transaction; operations outside an explicit begin/commit run in their
// own auto-committed transaction. Traversals execute fully server-side —
// the engine-side query execution the paper's introduction argues graph
// databases exist for.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/internal/metrics"
	"neograph/internal/partition"
	"neograph/internal/repl"
	"neograph/internal/slog"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// maxRequestBytes bounds one request frame. A session streaming a larger
// request is cut off mid-decode and closed — an oversized payload must
// not buffer unboundedly or wedge the server.
const maxRequestBytes = 8 << 20

// waitLSNTimeout bounds Request.WaitLSN gating: a replica that cannot
// catch up to the requested position in this window fails the read
// instead of holding the session forever.
const waitLSNTimeout = 10 * time.Second

// responseWriteTimeout bounds writing one response frame: a client that
// stops reading cannot pin a handler (and its transaction) forever.
const responseWriteTimeout = 30 * time.Second

// DefaultDrainGrace is how long Close waits for in-flight requests to
// finish before hard-closing their connections.
const DefaultDrainGrace = 5 * time.Second

// Config tunes a server beyond its listen address.
type Config struct {
	// DrainGrace is the bounded window Close gives in-flight handlers to
	// write their response before their connections are hard-closed.
	// Zero means DefaultDrainGrace.
	DrainGrace time.Duration
	// MaxInflight caps concurrently executing requests across all
	// sessions; the excess is rejected immediately with the structured
	// "overloaded" code rather than queued. Zero means unlimited.
	MaxInflight int
	// MaxQueuedBytes caps the sum of admitted request-frame bytes held
	// in flight — the server's request-memory budget. A single frame
	// larger than the budget is always rejected. Zero means unlimited.
	MaxQueuedBytes int64
	// Metrics, when non-nil, receives the server's operational series
	// (sessions, per-op latency, admission) — pass the registry mounted
	// at /metrics.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records a server-side span tree for every
	// request that arrives carrying a trace context (the client made the
	// sampling decision at the head). Mount trace.Handler on the same
	// listener as /metrics to read the ring back.
	Tracer *trace.Tracer
	// Logger receives the server's structured log records; nil is silent.
	Logger *slog.Logger
	// SlowOp, when positive and Tracer is set, logs the full span tree of
	// any traced request slower than this threshold.
	SlowOp time.Duration
}

// Server serves one DB over a listener.
type Server struct {
	db *neograph.DB
	ln net.Listener

	// DrainGrace is the bounded window Close gives in-flight handlers to
	// write their response before their connections are hard-closed.
	// Set before Close; zero means DefaultDrainGrace.
	DrainGrace time.Duration

	// Admission control (Config.MaxInflight / MaxQueuedBytes). The
	// gauges are maintained even when the limits are off — they are the
	// load series on /metrics; add-then-check-then-revert keeps the
	// check race-free without a lock on the request hot path.
	maxInflight    int64
	maxQueuedBytes int64
	inflight       atomic.Int64
	queuedBytes    atomic.Int64
	inflightPeak   atomic.Int64
	queuedPeak     atomic.Int64
	admitted       atomic.Uint64
	rejected       atomic.Uint64

	sm     *serverMetrics // nil when Config.Metrics is nil
	tracer *trace.Tracer  // nil disables server-side spans
	log    *slog.Logger   // nil is silent

	// draining is read on every request's hot path; atomic so sessions
	// never contend on the server-wide mutex just to poll shutdown.
	draining atomic.Bool

	// clusterInfo, when set, supplies the node's cluster self-view for
	// the cluster_status op. It is a plain func hook so the server does
	// not import the cluster package (which imports client, which dials
	// servers); cmd/neograph-server wires the two together.
	clusterMu   sync.Mutex
	clusterInfo func() any
	// coord / partSelf / partCount are the partition wiring (see
	// SetPartition); nil coord means unpartitioned.
	coord     *partition.Coordinator
	partSelf  uint32
	partCount int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// shedAt is when blocked WaitLSN gates give up during a drain —
	// slightly before the hard-close so their error response still
	// reaches the client as a complete frame.
	shedAt time.Time
	wg     sync.WaitGroup
}

// SetClusterInfo installs (or clears, with nil) the provider behind the
// cluster_status op — typically a cluster.Controller's NodeStatus. The
// returned value is JSON-marshalled into Response.Info.
func (s *Server) SetClusterInfo(fn func() any) {
	s.clusterMu.Lock()
	s.clusterInfo = fn
	s.clusterMu.Unlock()
}

func (s *Server) clusterInfoFn() func() any {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.clusterInfo
}

// New creates a server for db listening on addr (e.g. "127.0.0.1:7475")
// with default Config.
func New(db *neograph.DB, addr string) (*Server, error) {
	return NewWithConfig(db, addr, Config{})
}

// NewWithConfig creates a server for db listening on addr.
func NewWithConfig(db *neograph.DB, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{
		db:             db,
		ln:             ln,
		conns:          make(map[net.Conn]struct{}),
		DrainGrace:     cfg.DrainGrace,
		maxInflight:    int64(cfg.MaxInflight),
		maxQueuedBytes: cfg.MaxQueuedBytes,
		tracer:         cfg.Tracer,
		log:            cfg.Logger,
	}
	if cfg.Metrics != nil {
		s.sm = newServerMetrics(cfg.Metrics, s)
	}
	if cfg.Tracer != nil && cfg.SlowOp > 0 {
		slowLog := cfg.Logger
		cfg.Tracer.SetSlowOp(cfg.SlowOp, func(tr trace.TraceRecord, root trace.SpanRecord) {
			tree, _ := json.Marshal(tr.Spans)
			slowLog.WithTrace(tr.TraceID).Warn("slow op",
				"op", root.Name,
				"dur", time.Duration(root.DurUS)*time.Microsecond,
				"spans", string(tree))
		})
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// AdmissionStats snapshots the admission-control counters.
type AdmissionStats struct {
	// Inflight / QueuedBytes are the current load; the peaks are
	// high-water marks over the server's lifetime (admitted requests
	// only — rejected ones never contribute).
	Inflight, InflightPeak       int64
	QueuedBytes, QueuedBytesPeak int64
	Admitted, Rejected           uint64
}

// Admission snapshots the admission-control state.
func (s *Server) Admission() AdmissionStats {
	return AdmissionStats{
		Inflight:        s.inflight.Load(),
		InflightPeak:    s.inflightPeak.Load(),
		QueuedBytes:     s.queuedBytes.Load(),
		QueuedBytesPeak: s.queuedPeak.Load(),
		Admitted:        s.admitted.Load(),
		Rejected:        s.rejected.Load(),
	}
}

// admit charges one request frame against the admission budget. On
// rejection the charge is fully reverted and errOverloaded returned; the
// session stays open. Add-then-check makes the decision race-free and a
// frame larger than MaxQueuedBytes deterministically rejected.
func (s *Server) admit(frameBytes int64) error {
	infl := s.inflight.Add(1)
	qb := s.queuedBytes.Add(frameBytes)
	if (s.maxInflight > 0 && infl > s.maxInflight) ||
		(s.maxQueuedBytes > 0 && qb > s.maxQueuedBytes) {
		s.inflight.Add(-1)
		s.queuedBytes.Add(-frameBytes)
		s.rejected.Add(1)
		return errOverloaded
	}
	s.admitted.Add(1)
	peakMax(&s.inflightPeak, infl)
	peakMax(&s.queuedPeak, qb)
	return nil
}

// release returns a request's admission charge after its response is
// written.
func (s *Server) release(frameBytes int64) {
	s.inflight.Add(-1)
	s.queuedBytes.Add(-frameBytes)
}

// peakMax raises a high-water mark monotonically.
func peakMax(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if v <= cur || p.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and drains: idle sessions are woken and closed
// immediately (their pending read is poisoned), in-flight handlers get
// DrainGrace to finish writing their current response — a response must
// never be torn mid-frame by shutdown — and only laggards beyond the
// grace period are hard-closed.
func (s *Server) Close() error {
	grace := s.DrainGrace
	if grace <= 0 {
		grace = DefaultDrainGrace
	}
	margin := grace / 4
	if margin > 250*time.Millisecond {
		margin = 250 * time.Millisecond
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.shedAt = time.Now().Add(grace - margin)
	s.mu.Unlock()
	s.draining.Store(true)
	err := s.ln.Close()

	// Wake idle sessions: expiring the read deadline fails the blocking
	// Decode without touching writes, so a handler mid-response still
	// flushes its frame and then exits on the next read.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// isDraining reports whether Close has begun.
func (s *Server) isDraining() bool { return s.draining.Load() }

// shedDeadline returns when blocked gates must give up, and whether a
// drain is in progress at all.
func (s *Server) shedDeadline() (time.Time, bool) {
	if !s.draining.Load() {
		return time.Time{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedAt, true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// session is one connection's state.
type session struct {
	db  *neograph.DB
	srv *Server      // nil only in isolated unit use
	tx  *neograph.Tx // open explicit transaction, nil otherwise
	// lastLSN is the commit position of the most recent auto-committed
	// write, attached to that write's response as the RYW token.
	lastLSN uint64
	// deadline is the current request's time budget (from the wire
	// deadline_ms field); zero means none. It bounds server-side waits.
	deadline time.Time
	// span is the current request's server-side span (nil untraced); the
	// commit sites hand it to the transaction so the engine's pipeline
	// stages appear under it.
	span *trace.Span
	// crossPrepare marks a two-phase-commit prepare execution:
	// relationship creation tolerates endpoints owned by other
	// partitions (the coordinator guards them there).
	crossPrepare bool
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{db: s.db, srv: s}
	defer func() {
		if sess.tx != nil {
			sess.tx.Abort()
		}
	}()
	if s.sm != nil {
		s.sm.sessions.Add(1)
		defer s.sm.sessions.Add(-1)
	}
	lr := &io.LimitedReader{R: conn, N: maxRequestBytes}
	dec := json.NewDecoder(lr)
	enc := json.NewEncoder(conn)
	// lastOff tracks the decoder's stream position so each frame's exact
	// byte size (the admission charge) is the offset delta across Decode.
	var lastOff int64
	for {
		// Reset the budget per request; a single frame larger than the
		// limit starves the decoder mid-value and closes the session.
		lr.N = maxRequestBytes
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect, garbage, oversized frame, or drain wake-up
		}
		off := dec.InputOffset()
		frameBytes := off - lastOff
		lastOff = off

		// Admission: reject over-budget requests before any dispatch work,
		// with a complete structured error frame — the session survives and
		// the client backs off on the code.
		admitted := s.admit(frameBytes)
		// An admitted query streams its response as chunked frames and
		// owns its span/deadline/frame writing; a rejected one falls
		// through to the unary path — a single error frame (More unset)
		// is a complete, valid stream.
		if admitted == nil && req.Op == wire.OpQuery {
			werr := sess.streamQuery(conn, enc, &req)
			s.release(frameBytes)
			if werr != nil || s.isDraining() {
				return
			}
			continue
		}
		var resp *wire.Response
		if admitted != nil {
			resp = fail(admitted)
		} else {
			sess.deadline = time.Time{}
			if req.DeadlineMS > 0 {
				sess.deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
			}
			// A request arriving with a trace context was sampled at the
			// head (the client); open this process's view of the trace.
			// An untraced request may still be head-sampled here, rooting
			// the trace at the server (the -trace-sample knob).
			if req.Trace != nil {
				sess.span = s.tracer.StartRemote(
					trace.Context{TraceID: req.Trace.TraceID, SpanID: req.Trace.SpanID},
					"server."+req.Op)
			} else {
				sess.span = s.tracer.StartRoot("server." + req.Op)
			}
			t0 := time.Now()
			resp = sess.dispatch(&req)
			if !resp.OK {
				sess.span.Set("error", resp.Error)
			}
			tid := sess.span.TraceID()
			sess.span.Finish()
			sess.span = nil
			if s.sm != nil {
				s.sm.observe(&req, time.Since(t0), tid)
			}
		}
		// Correlation: every response frame — success, error, even an
		// admission rejection — echoes the request's seq and trace ID so
		// pipelined clients can pair frames and logs can be joined.
		resp.Seq = req.Seq
		if req.Trace != nil {
			resp.TraceID = req.Trace.TraceID
		}
		// Bound the response write so a stalled reader cannot pin the
		// handler; the request's own deadline tightens it, but with a
		// floor — a budget that expired while the request executed must
		// still get its error frame flushed, not a hangup.
		wd := time.Now().Add(responseWriteTimeout)
		if admitted == nil && !sess.deadline.IsZero() {
			floor := time.Now().Add(time.Second)
			switch {
			case sess.deadline.Before(floor):
				wd = floor
			case sess.deadline.Before(wd):
				wd = sess.deadline
			}
		}
		conn.SetWriteDeadline(wd)
		err := enc.Encode(resp)
		if admitted == nil {
			s.release(frameBytes)
		}
		if err != nil {
			return
		}
		conn.SetWriteDeadline(time.Time{})
		// A drain may have begun while this request executed; the decoder
		// could still serve pipelined requests from its buffer, so check
		// explicitly — the response above was the session's last.
		if s.isDraining() {
			return
		}
	}
}

// inTx runs fn in the session's open transaction or an auto-committed one.
func (sess *session) inTx(write bool, fn func(tx *neograph.Tx) error) error {
	if sess.tx != nil {
		return fn(sess.tx)
	}
	tx := sess.db.Begin()
	tx.SetTraceSpan(sess.span)
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	if write {
		if err := tx.Commit(); err != nil {
			return err
		}
		sess.lastLSN = tx.CommitLSN()
		return nil
	}
	return tx.Abort()
}

// writeOps are the operations a read-only replica redirects to its
// primary — rejected up front so clients get the redirect before any
// staging happens, whether auto-committed or inside an open transaction.
var writeOps = map[string]bool{
	wire.OpCreateNode: true, wire.OpSetNodeProp: true,
	wire.OpAddLabel: true, wire.OpRemoveLabel: true,
	wire.OpDeleteNode: true, wire.OpDetachDelete: true,
	wire.OpCreateRel: true, wire.OpSetRelProp: true, wire.OpDeleteRel: true,
}

// errDeadline fails a request whose wire deadline budget is spent. The
// message deliberately contains "deadline exceeded" so clients map it
// back to context.DeadlineExceeded.
var errDeadline = errors.New("server: deadline exceeded")

// checkDeadline fails once the request's deadline_ms budget is spent.
func (sess *session) checkDeadline() error {
	if !sess.deadline.IsZero() && !time.Now().Before(sess.deadline) {
		return errDeadline
	}
	return nil
}

// drainPoll is how often a blocked WaitLSN gate re-checks for server
// drain, bounding how long a gated request can delay Close.
const drainPoll = 200 * time.Millisecond

// waitGate blocks until the server reaches the requested log position —
// read-your-writes on replicas (wait for apply), durable-read gating on
// primaries (wait for fsync). The wait is bounded by waitLSNTimeout,
// tightened by the request's wire deadline, and sliced so a draining
// server sheds blocked waiters promptly instead of holding Close.
func (sess *session) waitGate(pos uint64) error {
	timeout := waitLSNTimeout
	byDeadline := false
	if !sess.deadline.IsZero() {
		rem := time.Until(sess.deadline)
		if rem <= 0 {
			return errDeadline
		}
		if rem < timeout {
			timeout = rem
			byDeadline = true
		}
	}
	end := time.Now().Add(timeout)
	for {
		chunk := time.Until(end)
		if chunk <= 0 {
			if byDeadline {
				// The request's own budget (deadline_ms) cut the wait
				// short — report that, so clients map it to their
				// context.DeadlineExceeded.
				return errDeadline
			}
			return fmt.Errorf("%w: position %d", repl.ErrWaitTimeout, pos)
		}
		if chunk > drainPoll {
			chunk = drainPoll
		}
		if sess.srv != nil {
			if shedAt, draining := sess.srv.shedDeadline(); draining {
				if !time.Now().Before(shedAt) {
					return errShuttingDown
				}
				// Clamp the wait so the next check lands right after the
				// shed point — a free-running drainPoll cadence could
				// otherwise straddle it and meet the hard-close instead.
				if d := time.Until(shedAt) + 5*time.Millisecond; d < chunk {
					chunk = d
				}
			}
		}
		err := sess.db.WaitApplied(pos, chunk)
		if err == nil || !errors.Is(err, repl.ErrWaitTimeout) {
			return err
		}
	}
}

// dispatch guards replica/read-gating/deadline concerns, then executes
// the op and stamps write responses with their commit position (the RYW
// token).
func (sess *session) dispatch(req *wire.Request) *wire.Response {
	if writeOps[req.Op] && sess.db.IsReplica() {
		return fail(fmt.Errorf("%w: writes must go to the primary at %s",
			neograph.ErrReadOnlyReplica, sess.db.PrimaryAddr()))
	}
	switch req.Op {
	case wire.OpPrepare, wire.OpDecide, wire.OpTxnStatus:
		return sess.dispatchPartitionOp(req)
	}
	if sess.srv != nil {
		if resp, handled := sess.routePartitioned(req); handled {
			return resp
		}
	}
	if req.IDRef != nil || req.StartRef != nil || req.EndRef != nil {
		return fail(errors.New("server: id references are only valid inside a batch"))
	}
	if err := sess.checkDeadline(); err != nil {
		return fail(err)
	}
	if req.WaitLSN > 0 {
		if err := sess.waitGate(req.WaitLSN); err != nil {
			return fail(err)
		}
	}
	sess.lastLSN = 0
	var resp *wire.Response
	if req.Op == wire.OpBatch {
		resp = sess.dispatchBatch(req)
	} else {
		resp = sess.dispatchOp(req)
	}
	if resp.OK && resp.LSN == 0 {
		resp.LSN = sess.lastLSN
	}
	return resp
}

// dispatchBatch executes every sub-op of a batch inside ONE transaction —
// the session's open one if there is one, else a transaction owned by the
// batch and committed at the end. Atomic: the first failing sub-op aborts
// the whole transaction (including an enclosing explicit one — its staged
// writes cannot be separated from the batch's) and the response names the
// failed op.
func (sess *session) dispatchBatch(req *wire.Request) *wire.Response {
	if err := wire.ValidateBatch(req); err != nil {
		return fail(err)
	}
	if sess.db.IsReplica() {
		for i := range req.Batch {
			if writeOps[req.Batch[i].Op] {
				return fail(fmt.Errorf("%w: batch op %d is a write; writes must go to the primary at %s",
					neograph.ErrReadOnlyReplica, i, sess.db.PrimaryAddr()))
			}
		}
	}
	// A batch spanning partitions commits through the coordinator (two
	// phases across the involved primaries) instead of a local
	// transaction. Explicit transactions stay single-partition: their
	// earlier staged writes cannot join a cross-partition prepare.
	if sess.srv != nil {
		if coord, self, count := sess.srv.partitionView(); coord != nil &&
			partition.CrossPartition(req.Batch, self, count) {
			if sess.tx != nil {
				return fail(errors.New("server: cross-partition batch is not allowed inside an explicit transaction"))
			}
			return coord.CommitBatch(req.Batch, sess.deadline)
		}
	}
	owned := sess.tx == nil
	if owned {
		sess.tx = sess.db.Begin()
	}
	results, failIdx, msg := sess.runBatchOps(req.Batch)
	if failIdx >= 0 {
		if sess.tx != nil {
			sess.tx.Abort()
			sess.tx = nil
		}
		idx := failIdx
		return &wire.Response{
			Error:    fmt.Sprintf("server: batch aborted at op %d: %s", failIdx, msg),
			FailedOp: &idx,
		}
	}
	resp := &wire.Response{OK: true, Results: results}
	if owned {
		tx := sess.tx
		sess.tx = nil
		tx.SetTraceSpan(sess.span)
		if err := tx.Commit(); err != nil {
			return fail(err) // commit-time conflict: no single op to blame
		}
		resp.LSN = tx.CommitLSN()
	}
	return resp
}

// runBatchOps executes batch sub-ops against the session's open
// transaction, resolving $n back references as creations land. It
// returns the per-op results, or the index and message of the first
// failure (failIdx -1 on success). Shared by the batch op and the
// two-phase-commit prepare path.
func (sess *session) runBatchOps(batch []wire.Request) (results []wire.Response, failIdx int, msg string) {
	results = make([]wire.Response, 0, len(batch))
	ids := make([]neograph.NodeID, len(batch))
	hasID := make([]bool, len(batch))
	for i := range batch {
		if err := sess.checkDeadline(); err != nil {
			return nil, i, err.Error()
		}
		op, msg := resolveBatchRefs(&batch[i], i, ids, hasID)
		if op == nil {
			return nil, i, msg
		}
		sub := sess.dispatchOp(op)
		if !sub.OK {
			return nil, i, sub.Error
		}
		if op.Op == wire.OpCreateNode || op.Op == wire.OpCreateRel {
			ids[i], hasID[i] = sub.ID, true
		}
		results = append(results, *sub)
	}
	return results, -1, ""
}

func fail(err error) *wire.Response {
	resp := &wire.Response{Error: err.Error()}
	switch {
	case errors.Is(err, errDeadline):
		resp.Code = wire.CodeDeadline
	case errors.Is(err, errShuttingDown), errors.Is(err, repl.ErrWaitTimeout):
		resp.Code = wire.CodeUnavailable
	case errors.Is(err, errOverloaded):
		resp.Code = wire.CodeOverloaded
	}
	return resp
}

// errShuttingDown sheds gated waiters when the server drains.
var errShuttingDown = errors.New("server: shutting down")

// errOverloaded rejects requests past the admission budget.
var errOverloaded = errors.New("server: overloaded: admission budget exhausted")

func parseDir(d string) (neograph.Direction, error) {
	switch d {
	case "out":
		return neograph.Outgoing, nil
	case "in":
		return neograph.Incoming, nil
	case "", "both":
		return neograph.Both, nil
	default:
		return 0, fmt.Errorf("server: bad direction %q", d)
	}
}

func (sess *session) dispatchOp(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{OK: true, Proto: wire.ProtocolVersion}

	case wire.OpBegin:
		if sess.tx != nil {
			return fail(errors.New("server: transaction already open"))
		}
		switch req.Isolation {
		case "", "si":
			sess.tx = sess.db.BeginIsolation(neograph.SnapshotIsolation)
		case "rc":
			sess.tx = sess.db.BeginIsolation(neograph.ReadCommitted)
		default:
			return fail(fmt.Errorf("server: bad isolation %q", req.Isolation))
		}
		return &wire.Response{OK: true}

	case wire.OpCommit:
		if sess.tx == nil {
			return fail(errors.New("server: no open transaction"))
		}
		tx := sess.tx
		sess.tx = nil
		tx.SetTraceSpan(sess.span)
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, LSN: tx.CommitLSN()}

	case wire.OpAbort:
		if sess.tx == nil {
			return fail(errors.New("server: no open transaction"))
		}
		sess.tx.Abort()
		sess.tx = nil
		return &wire.Response{OK: true}

	case wire.OpCreateNode:
		props, err := wire.DecodeProps(req.Props)
		if err != nil {
			return fail(err)
		}
		var id neograph.NodeID
		err = sess.inTx(true, func(tx *neograph.Tx) error {
			var err error
			id, err = tx.CreateNode(req.Labels, props)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, ID: id}

	case wire.OpGetNode:
		var node *wire.NodeJSON
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			n, err := tx.GetNode(req.ID)
			if err != nil {
				return err
			}
			props, err := wire.EncodeProps(n.Props)
			if err != nil {
				return err
			}
			node = &wire.NodeJSON{ID: n.ID, Labels: n.Labels, Props: props}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Node: node}

	case wire.OpSetNodeProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.SetNodeProp(req.ID, req.Key, v)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpAddLabel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.AddLabel(req.ID, req.Label)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpRemoveLabel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.RemoveLabel(req.ID, req.Label)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDeleteNode:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DeleteNode(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDetachDelete:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DetachDeleteNode(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpCreateRel:
		props, err := wire.DecodeProps(req.Props)
		if err != nil {
			return fail(err)
		}
		var id neograph.RelID
		err = sess.inTx(true, func(tx *neograph.Tx) error {
			var err error
			if sess.crossPrepare {
				id, err = tx.CreateRelCrossPartition(req.Type, req.Start, req.End, props)
			} else {
				id, err = tx.CreateRel(req.Type, req.Start, req.End, props)
			}
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, ID: id}

	case wire.OpGetRel:
		var rel *wire.RelJSON
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			r, err := tx.GetRel(req.ID)
			if err != nil {
				return err
			}
			props, err := wire.EncodeProps(r.Props)
			if err != nil {
				return err
			}
			rel = &wire.RelJSON{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Rel: rel}

	case wire.OpSetRelProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.SetRelProp(req.ID, req.Key, v)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpDeleteRel:
		if err := sess.inTx(true, func(tx *neograph.Tx) error {
			return tx.DeleteRel(req.ID)
		}); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpRels:
		dir, err := parseDir(req.Dir)
		if err != nil {
			return fail(err)
		}
		var rels []wire.RelJSON
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			rs, err := tx.Relationships(req.ID, dir, req.Types...)
			if err != nil {
				return err
			}
			for _, r := range rs {
				props, err := wire.EncodeProps(r.Props)
				if err != nil {
					return err
				}
				rels = append(rels, wire.RelJSON{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props})
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Rels: rels}

	case wire.OpNeighbors:
		dir, err := parseDir(req.Dir)
		if err != nil {
			return fail(err)
		}
		var ids []uint64
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.Neighbors(req.ID, dir, req.Types...)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpNodesByLabel:
		var ids []uint64
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.NodesByLabel(req.Label)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpNodesByProp:
		v, err := wire.DecodeValue(req.Value)
		if err != nil {
			return fail(err)
		}
		var ids []uint64
		err = sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.NodesByProperty(req.Key, v)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpAllNodes:
		var ids []uint64
		err := sess.inTx(false, func(tx *neograph.Tx) error {
			var err error
			ids, err = tx.AllNodes()
			return err
		})
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, IDs: ids}

	case wire.OpStats:
		info, err := json.Marshal(sess.db.Stats())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpGC:
		info, err := json.Marshal(sess.db.RunGC())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpCheckpoint:
		if err := sess.db.Checkpoint(); err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true}

	case wire.OpReplStatus:
		info, err := json.Marshal(sess.db.ReplStatus())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpClusterStatus:
		var fn func() any
		if sess.srv != nil {
			fn = sess.srv.clusterInfoFn()
		}
		if fn == nil {
			return fail(errors.New("server: no cluster controller on this node"))
		}
		info, err := json.Marshal(fn())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	case wire.OpPromote:
		// Failover: only meaningful on a replica; afterwards this server
		// accepts writes directly (the replica redirect above no longer
		// triggers) and, with Addr set, ships its WAL to re-pointed
		// siblings.
		if err := sess.db.Promote(req.Addr); err != nil {
			return fail(err)
		}
		info, err := json.Marshal(sess.db.ReplStatus())
		if err != nil {
			return fail(err)
		}
		return &wire.Response{OK: true, Info: info}

	default:
		return fail(fmt.Errorf("server: unknown op %q", req.Op))
	}
}
