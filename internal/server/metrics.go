package server

import (
	"strconv"
	"time"

	"neograph"
	"neograph/internal/metrics"
	"neograph/internal/wire"
)

// Op classes for the per-op latency histograms: one series per family
// keeps label cardinality bounded while still separating the latency
// populations that differ by orders of magnitude.
const (
	classRead  = "read"
	classWrite = "write"
	classBatch = "batch"
	classTx    = "tx"
	classAdmin = "admin"
)

// opClass maps a wire op to its latency family.
func opClass(op string) string {
	switch op {
	case wire.OpBatch:
		return classBatch
	case wire.OpBegin, wire.OpCommit, wire.OpAbort:
		return classTx
	case wire.OpPing, wire.OpStats, wire.OpGC, wire.OpCheckpoint,
		wire.OpReplStatus, wire.OpPromote:
		return classAdmin
	default:
		if writeOps[op] {
			return classWrite
		}
		return classRead
	}
}

// serverMetrics holds the per-server hot-path instruments. Everything a
// request touches is an atomic op on a pre-registered series — no lock,
// no allocation, no map write.
type serverMetrics struct {
	sessions *metrics.Gauge
	latency  map[string]*metrics.Histogram
	batchOps *metrics.Histogram
}

// newServerMetrics registers the server's operational series on reg,
// sampling admission state straight from s.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		sessions: reg.Gauge("neograph_server_sessions", "open client sessions"),
		latency:  make(map[string]*metrics.Histogram, 5),
	}
	for _, class := range []string{classRead, classWrite, classBatch, classTx, classAdmin} {
		m.latency[class] = reg.Histogram("neograph_server_request_seconds",
			"request dispatch latency by op class", metrics.LatencyBuckets(),
			metrics.L("class", class))
	}
	m.batchOps = reg.Histogram("neograph_server_batch_ops",
		"sub-operations per batch request", metrics.ExpBuckets(1, 4, 8))
	reg.GaugeFunc("neograph_server_requests_inflight",
		"requests admitted and not yet responded",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("neograph_server_queued_bytes",
		"admitted request-frame bytes held in flight",
		func() float64 { return float64(s.queuedBytes.Load()) })
	reg.CounterFunc("neograph_server_requests_admitted_total",
		"requests past admission control",
		func() float64 { return float64(s.admitted.Load()) })
	reg.CounterFunc("neograph_server_requests_rejected_total",
		"requests rejected with the overloaded code",
		func() float64 { return float64(s.rejected.Load()) })
	return m
}

// observe records one dispatched request; a traced request leaves its
// trace ID as the latency histogram's exemplar.
func (m *serverMetrics) observe(req *wire.Request, d time.Duration, traceID string) {
	if h := m.latency[opClass(req.Op)]; h != nil {
		if traceID != "" {
			h.ObserveExemplar(d.Seconds(), traceID)
		} else {
			h.ObserveDuration(d)
		}
	}
	if req.Op == wire.OpBatch {
		m.batchOps.Observe(float64(len(req.Batch)))
	}
}

// RegisterDBMetrics wires a database's engine, WAL, page-cache and
// replication series into reg. Everything is sampled at scrape time from
// the components' own atomic counters — registering metrics adds zero
// work to commit or read paths. Call once per DB per registry.
func RegisterDBMetrics(reg *metrics.Registry, db *neograph.DB) {
	e := db.Engine()

	// Engine: transaction outcomes and MVCC state.
	reg.CounterFunc("neograph_txn_begun_total", "transactions begun",
		func() float64 { return float64(db.Stats().Begun) })
	reg.CounterFunc("neograph_txn_committed_total", "transactions committed",
		func() float64 { return float64(db.Stats().Committed) })
	reg.CounterFunc("neograph_txn_aborted_total", "transactions aborted",
		func() float64 { return float64(db.Stats().Aborted) })
	reg.CounterFunc("neograph_txn_conflicts_total", "first-committer-wins validation failures",
		func() float64 { return float64(db.Stats().WriteConflicts) })
	reg.CounterFunc("neograph_txn_deadlocks_total", "lock-wait deadlocks broken",
		func() float64 { return float64(db.Stats().Deadlocks) })
	reg.GaugeFunc("neograph_txn_active", "currently active transactions",
		func() float64 { return float64(e.ActiveTransactions()) })
	reg.GaugeFunc("neograph_oracle_watermark", "newest stable snapshot timestamp",
		func() float64 { return float64(e.Watermark()) })
	reg.CounterFunc("neograph_gc_runs_total", "version GC passes",
		func() float64 { return float64(db.Stats().GCRuns) })
	reg.CounterFunc("neograph_gc_collected_total", "versions reclaimed by GC",
		func() float64 { return float64(db.Stats().GCCollected) })
	reg.CounterFunc("neograph_checkpoints_total", "checkpoints written",
		func() float64 { return float64(db.Stats().Checkpoints) })

	// Per-stripe FCW conflicts: the contention-skew view. One series per
	// stripe, sampled from the stripe's own atomic.
	for i := range e.StripeConflicts() {
		i := i
		reg.CounterFunc("neograph_stripe_conflicts_total",
			"FCW validation failures by commit stripe",
			func() float64 { return float64(e.StripeConflicts()[i]) },
			metrics.L("stripe", strconv.Itoa(i)))
	}

	// WAL: durability horizon and the group-commit batcher.
	reg.GaugeFunc("neograph_wal_durable_lsn", "WAL durability horizon",
		func() float64 { return float64(db.DurableLSN()) })
	reg.GaugeFunc("neograph_wal_applied_lsn", "one past the last WAL record held locally",
		func() float64 { return float64(db.AppliedLSN()) })
	reg.CounterFunc("neograph_wal_flushes_total", "group-commit fsyncs issued",
		func() float64 { return float64(db.Stats().WALFlushes) })
	reg.CounterFunc("neograph_wal_synced_commits_total", "commits made durable",
		func() float64 { return float64(db.Stats().WALSyncedCommits) })
	if b := e.CommitBatcher(); b != nil {
		reg.GaugeFunc("neograph_wal_batcher_depth", "committers parked in group commit",
			func() float64 { return float64(b.Depth()) })
		reg.AttachHistogram("neograph_wal_fsync_seconds", "group-commit fsync latency",
			b.SyncLatency())
	}

	// Page cache: per-file aggregates plus the per-shard hit/miss split.
	if st := e.Store(); st != nil {
		for _, file := range []string{"nodes", "rels", "props", "dyn"} {
			file := file
			reg.CounterFunc("neograph_pagecache_hits_total", "page-cache hits by store file",
				func() float64 { return float64(st.CacheStats()[file].Hits) },
				metrics.L("file", file))
			reg.CounterFunc("neograph_pagecache_misses_total", "page-cache misses by store file",
				func() float64 { return float64(st.CacheStats()[file].Misses) },
				metrics.L("file", file))
			reg.CounterFunc("neograph_pagecache_evictions_total", "page evictions by store file",
				func() float64 { return float64(st.CacheStats()[file].Evictions) },
				metrics.L("file", file))
			reg.CounterFunc("neograph_pagecache_flushes_total", "dirty page write-backs by store file",
				func() float64 { return float64(st.CacheStats()[file].Flushes) },
				metrics.L("file", file))
			for shard := range st.CacheShardStats()[file] {
				shard := shard
				lbls := []metrics.Label{metrics.L("file", file), metrics.L("shard", strconv.Itoa(shard))}
				reg.CounterFunc("neograph_pagecache_shard_hits_total",
					"page-cache hits by LRU segment",
					func() float64 { return float64(st.CacheShardStats()[file][shard].Hits) }, lbls...)
				reg.CounterFunc("neograph_pagecache_shard_misses_total",
					"page-cache misses by LRU segment",
					func() float64 { return float64(st.CacheShardStats()[file][shard].Misses) }, lbls...)
			}
		}
	}

	// Replication: role, lag, and sync-quorum health. Sampled through
	// ReplStatus so promotion/demotion is reflected live.
	reg.GaugeFunc("neograph_repl_connected", "1 when a replica's stream is connected",
		func() float64 {
			if db.ReplStatus().Connected {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("neograph_repl_lag_bytes", "byte gap to the primary durability horizon",
		func() float64 {
			st := db.ReplStatus()
			if st.PrimaryDurable <= st.AppliedLSN {
				return 0
			}
			return float64(st.PrimaryDurable - st.AppliedLSN)
		})
	reg.GaugeFunc("neograph_repl_lag_seconds",
		"how long this replica has continuously been behind the primary",
		func() float64 { return db.ReplStatus().LagSeconds })
	reg.CounterFunc("neograph_repl_degraded_commits_total",
		"commits acknowledged without the sync quorum",
		func() float64 { return float64(db.ReplStatus().DegradedCommits) })
	reg.GaugeFunc("neograph_repl_replicas", "replicas connected to this primary",
		func() float64 { return float64(len(db.ReplStatus().Replicas)) })
	reg.GaugeFunc("neograph_repl_epoch", "replication generation (bumped by promotion)",
		func() float64 {
			epoch, _ := db.Epoch()
			return float64(epoch)
		})
}
