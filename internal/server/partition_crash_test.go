// 2PC crash matrix: a cross-partition commit is interrupted by process
// crashes at every point of the protocol — participant prepared,
// coordinator prepared, decision logged, decision pushed, decision
// acked — with the coordinator, the participant, or the whole fleet
// dying. After restart the real recovery machinery (WAL replay +
// Coordinator.ResolveInDoubt / RepushDecisions over live TCP) must
// converge to: every acknowledged commit durable on ALL partitions,
// every unacknowledged transaction atomically absent, and no prepared
// transaction left orphaned.
package server_test

import (
	"encoding/json"
	"testing"
	"time"

	"neograph"
	"neograph/internal/partition"
	"neograph/internal/server"
	"neograph/internal/wire"
)

// crashFleet is a 2-partition fleet whose nodes can crash (WAL kept,
// caches dropped) and reopen on fresh ports, with the surviving
// coordinators adopting the re-versioned topology.
type crashFleet struct {
	t       *testing.T
	dirs    []string
	dbs     []*neograph.DB
	srvs    []*server.Server
	coords  []*partition.Coordinator
	topos   []*partition.Topology
	version uint64
}

func startCrashFleet(t *testing.T) *crashFleet {
	t.Helper()
	f := &crashFleet{t: t, version: 1}
	const count = 2
	f.dirs = make([]string, count)
	f.dbs = make([]*neograph.DB, count)
	f.srvs = make([]*server.Server, count)
	f.coords = make([]*partition.Coordinator, count)
	f.topos = make([]*partition.Topology, count)
	for part := 0; part < count; part++ {
		f.dirs[part] = t.TempDir()
		f.openNode(part)
	}
	f.rewire()
	t.Cleanup(func() {
		for part := range f.dbs {
			if f.coords[part] != nil {
				f.coords[part].Close()
			}
			if f.srvs[part] != nil {
				f.srvs[part].Close()
			}
			if f.dbs[part] != nil {
				f.dbs[part].Close()
			}
		}
	})
	return f
}

// openNode opens partition part's database and server (fresh port).
func (f *crashFleet) openNode(part int) {
	f.t.Helper()
	db, err := neograph.Open(neograph.Options{
		Dir:            f.dirs[part],
		PartitionID:    part,
		PartitionCount: len(f.dirs),
	})
	if err != nil {
		f.t.Fatalf("open partition %d: %v", part, err)
	}
	srv, err := server.New(db, "127.0.0.1:0")
	if err != nil {
		f.t.Fatalf("serve partition %d: %v", part, err)
	}
	f.dbs[part], f.srvs[part] = db, srv
}

// rewire rebuilds the topology from the current server addresses and
// gives every live node a coordinator on it. Surviving coordinators
// adopt the newer map (that is how a real fleet learns a restarted
// peer's address); reopened nodes get a fresh coordinator. The resolver
// loops are NOT started — the matrix drives recovery passes explicitly
// so every interleaving is deterministic.
func (f *crashFleet) rewire() {
	f.t.Helper()
	f.version++
	pm := wire.PartitionMap{Version: f.version, Count: len(f.dbs)}
	for part, srv := range f.srvs {
		if srv == nil {
			continue // still down; rewire again after its reopen
		}
		pm.Groups = append(pm.Groups, wire.PartitionGroup{
			ID: uint32(part), Addrs: []string{srv.Addr()},
		})
	}
	for part := range f.dbs {
		if f.srvs[part] == nil {
			continue
		}
		if f.coords[part] != nil {
			f.topos[part].Adopt(&pm)
			continue
		}
		f.topos[part] = partition.NewTopology(pm)
		f.coords[part] = partition.NewCoordinator(uint32(part), f.topos[part],
			f.srvs[part].Local(), f.dbs[part].AppliedLSN(), nil)
		f.srvs[part].SetPartition(f.coords[part], uint32(part), len(f.dbs))
	}
}

// crash kills partition part the hard way: server torn down, database
// crashed without flushing.
func (f *crashFleet) crash(part int) {
	f.t.Helper()
	f.coords[part].Close()
	f.coords[part] = nil
	f.srvs[part].Close()
	f.srvs[part] = nil
	if err := f.dbs[part].Crash(); err != nil {
		f.t.Fatalf("crash partition %d: %v", part, err)
	}
	f.dbs[part] = nil
}

// reopen restarts a crashed partition and rewires the fleet.
func (f *crashFleet) reopen(part int) {
	f.t.Helper()
	f.openNode(part)
	f.rewire()
}

// recoverAll drives resolver and repusher passes on every node until no
// partition holds an in-doubt prepare or an unacknowledged decision.
func (f *crashFleet) recoverAll() {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, c := range f.coords {
			c.ResolveInDoubt()
			c.RepushDecisions()
		}
		clean := true
		for _, db := range f.dbs {
			if len(db.InDoubt()) > 0 || len(db.UnackedDecisions()) > 0 {
				clean = false
			}
		}
		if clean {
			return
		}
		if time.Now().After(deadline) {
			for part, db := range f.dbs {
				f.t.Logf("partition %d: in-doubt %v, unacked %v", part, db.InDoubt(), db.UnackedDecisions())
			}
			f.t.Fatal("recovery did not converge: orphaned prepares or unacked decisions remain")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// newAnchor commits one node on partition part and returns its ID.
func (f *crashFleet) newAnchor(part int) neograph.NodeID {
	f.t.Helper()
	tx := f.dbs[part].Begin()
	id, err := tx.CreateNode([]string{"Anchor"}, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		f.t.Fatal(err)
	}
	if id%uint64(len(f.dbs)) != uint64(part) {
		f.t.Fatalf("anchor %d allocated off-partition (partition %d)", id, part)
	}
	return id
}

// hasProp reports whether the node carries the marker property.
func (f *crashFleet) hasProp(part int, id neograph.NodeID) bool {
	f.t.Helper()
	tx := f.dbs[part].Begin()
	defer tx.Abort()
	n, err := tx.GetNode(id)
	if err != nil {
		f.t.Fatalf("partition %d node %d: %v", part, id, err)
	}
	_, ok := n.Props["x"]
	return ok
}

func markerOp(id neograph.NodeID) wire.Request {
	enc, _ := wire.EncodeValue(neograph.Int(1))
	return wire.Request{Op: wire.OpSetNodeProp, ID: id, Key: "x", Value: json.RawMessage(enc)}
}

// twopcStep is one point in the cross-partition commit protocol. The
// transaction counts as ACKNOWLEDGED to the client from stepDecided on:
// the coordinator's durable decision record is the commit point.
type twopcStep int

const (
	stepParticipantPrepared twopcStep = iota // participant holds 'P'
	stepAllPrepared                          // coordinator holds 'P' too
	stepDecided                              // coordinator logged 'D' commit — ACKED
	stepPushed                               // participant applied the decision
	stepAcked                                // coordinator logged 'E'
)

// runUpTo drives the scripted 2PC for marker writes on both anchors up
// to and including step, exactly as Coordinator.CommitBatch orders it.
func (f *crashFleet) runUpTo(step twopcStep, gtxn uint64, a0, a1 neograph.NodeID) {
	f.t.Helper()
	must := func(resp *wire.Response) {
		f.t.Helper()
		if !resp.OK {
			f.t.Fatalf("2PC step failed: %s", resp.Error)
		}
	}
	must(f.srvs[1].Local().PrepareBatch(gtxn, 0, []wire.Request{markerOp(a1)}, nil))
	if step < stepAllPrepared {
		return
	}
	must(f.srvs[0].Local().PrepareBatch(gtxn, 0, []wire.Request{markerOp(a0)}, nil))
	if step < stepDecided {
		return
	}
	if _, err := f.dbs[0].DecideTxn(gtxn, true, []uint32{0, 1}); err != nil {
		f.t.Fatal(err)
	}
	if step < stepPushed {
		return
	}
	if _, err := f.dbs[1].DecideTxn(gtxn, true, nil); err != nil {
		f.t.Fatal(err)
	}
	if step < stepAcked {
		return
	}
	f.dbs[0].AckDecision(gtxn, 0)
	f.dbs[0].AckDecision(gtxn, 1)
}

// assertOutcome checks the matrix invariants: an acked transaction is
// committed on every partition, an unacked one on none, and nobody
// holds an in-doubt prepare.
func (f *crashFleet) assertOutcome(acked bool, a0, a1 neograph.NodeID) {
	f.t.Helper()
	for part, id := range []neograph.NodeID{a0, a1} {
		if got := f.hasProp(part, id); got != acked {
			f.t.Errorf("partition %d: marker present=%v, want %v (acked=%v)", part, got, acked, acked)
		}
	}
	if f.hasProp(0, a0) != f.hasProp(1, a1) {
		f.t.Error("atomicity violated: partitions disagree on the transaction outcome")
	}
	for part, db := range f.dbs {
		if d := db.InDoubt(); len(d) != 0 {
			f.t.Errorf("partition %d: orphaned prepares %v", part, d)
		}
	}
}

// TestTwoPCCrashMatrix crashes the whole fleet at every protocol step.
func TestTwoPCCrashMatrix(t *testing.T) {
	steps := []struct {
		name  string
		step  twopcStep
		acked bool
	}{
		{"participant-prepared", stepParticipantPrepared, false},
		{"all-prepared", stepAllPrepared, false},
		{"decided", stepDecided, true},
		{"pushed", stepPushed, true},
		{"acked", stepAcked, true},
	}
	for i, s := range steps {
		s := s
		gtxn := uint64(1000 + i)
		t.Run(s.name, func(t *testing.T) {
			f := startCrashFleet(t)
			a0, a1 := f.newAnchor(0), f.newAnchor(1)
			f.runUpTo(s.step, gtxn, a0, a1)
			f.crash(0)
			f.crash(1)
			f.reopen(0)
			f.reopen(1)
			f.recoverAll()
			f.assertOutcome(s.acked, a0, a1)
		})
	}
}

// TestTwoPCCrashMatrixCoordinatorOnly crashes only the coordinator; the
// participant resolves through txn_status against the restarted one.
func TestTwoPCCrashMatrixCoordinatorOnly(t *testing.T) {
	steps := []struct {
		name  string
		step  twopcStep
		acked bool
	}{
		{"all-prepared", stepAllPrepared, false}, // no decision → presumed abort
		{"decided", stepDecided, true},           // durable 'D' → participant learns commit
	}
	for i, s := range steps {
		s := s
		gtxn := uint64(2000 + i)
		t.Run(s.name, func(t *testing.T) {
			f := startCrashFleet(t)
			a0, a1 := f.newAnchor(0), f.newAnchor(1)
			f.runUpTo(s.step, gtxn, a0, a1)
			f.crash(0)
			f.reopen(0)
			f.recoverAll()
			f.assertOutcome(s.acked, a0, a1)
		})
	}
}

// TestTwoPCCrashMatrixParticipantOnly crashes only the participant; the
// live coordinator repushes its durable decision to the restarted one.
func TestTwoPCCrashMatrixParticipantOnly(t *testing.T) {
	steps := []struct {
		name  string
		step  twopcStep
		acked bool
	}{
		{"participant-prepared", stepParticipantPrepared, false},
		{"decided", stepDecided, true},
		{"pushed", stepPushed, true},
	}
	for i, s := range steps {
		s := s
		gtxn := uint64(3000 + i)
		t.Run(s.name, func(t *testing.T) {
			f := startCrashFleet(t)
			a0, a1 := f.newAnchor(0), f.newAnchor(1)
			f.runUpTo(s.step, gtxn, a0, a1)
			f.crash(1)
			f.reopen(1)
			f.recoverAll()
			f.assertOutcome(s.acked, a0, a1)
		})
	}
}

// TestTwoPCCrashAbortDecision: an explicit abort decision also survives
// a fleet crash — the participant must not commit a transaction the
// coordinator durably aborted.
func TestTwoPCCrashAbortDecision(t *testing.T) {
	f := startCrashFleet(t)
	a0, a1 := f.newAnchor(0), f.newAnchor(1)
	const gtxn = 4000
	f.runUpTo(stepAllPrepared, gtxn, a0, a1)
	if _, err := f.dbs[0].DecideTxn(gtxn, false, nil); err != nil {
		t.Fatal(err)
	}
	f.crash(0)
	f.crash(1)
	f.reopen(0)
	f.reopen(1)
	f.recoverAll()
	f.assertOutcome(false, a0, a1)
}

// TestTwoPCRecoveredPreparedBlocksWriters: an in-doubt prepare that
// survived a crash still holds its locks until resolved — a conflicting
// writer is refused, not silently interleaved.
func TestTwoPCRecoveredPreparedBlocksWriters(t *testing.T) {
	f := startCrashFleet(t)
	a0, a1 := f.newAnchor(0), f.newAnchor(1)
	const gtxn = 5000
	f.runUpTo(stepAllPrepared, gtxn, a0, a1)
	f.crash(1)
	f.reopen(1)

	tx := f.dbs[1].Begin()
	err := tx.SetNodeProp(a1, "x", neograph.Int(9))
	if err == nil {
		err = tx.Commit()
	} else {
		tx.Abort()
	}
	if err == nil {
		t.Fatal("write to a recovered in-doubt key should conflict")
	}

	f.recoverAll()
	f.assertOutcome(false, a0, a1)
	// The key is writable again once the prepare resolved.
	tx = f.dbs[1].Begin()
	if err := tx.SetNodeProp(a1, "y", neograph.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
