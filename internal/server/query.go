package server

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"neograph"
	"neograph/internal/query"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// streamQuery executes a query plan and streams its result as chunked
// response frames. The whole plan runs inside ONE transaction — the
// session's open one, or a read transaction owned by the query — so
// every stage sees a single MVCC snapshot (the paper's §1 argument: a
// path that exists when the traversal starts cannot vanish under it).
//
// Streaming contract (wire.OpQuery): at most wire.QueryChunkRows rows
// buffer server-side before a chunk frame (OK, More set) flushes, so a
// million-row result costs chunk-sized memory on both ends; the final
// frame has More unset and may carry trailing rows. Pipeline errors,
// spent deadlines, and server drain all end the stream with a clean,
// complete error frame — never a torn chunk. Every frame echoes the
// request's Seq and TraceID.
//
// The returned error is non-nil only for frame-write failures, after
// which the session is unusable (a frame may be half-written).
func (sess *session) streamQuery(conn net.Conn, enc *json.Encoder, req *wire.Request) error {
	s := sess.srv
	sess.deadline = time.Time{}
	if req.DeadlineMS > 0 {
		sess.deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if req.Trace != nil {
		sess.span = s.tracer.StartRemote(
			trace.Context{TraceID: req.Trace.TraceID, SpanID: req.Trace.SpanID},
			"server.query")
	} else {
		sess.span = s.tracer.StartRoot("server.query")
	}
	t0 := time.Now()
	tid := sess.span.TraceID()
	defer func() {
		sess.span.Finish()
		sess.span = nil
		if s.sm != nil {
			s.sm.observe(req, time.Since(t0), tid)
		}
	}()

	// writeFrame flushes one complete frame under the same write bound as
	// unary responses: responseWriteTimeout, tightened by the request's
	// deadline with a floor so a spent budget still gets its error frame.
	writeFrame := func(resp *wire.Response) error {
		resp.Seq = req.Seq
		if req.Trace != nil {
			resp.TraceID = req.Trace.TraceID
		}
		wd := time.Now().Add(responseWriteTimeout)
		if !sess.deadline.IsZero() {
			floor := time.Now().Add(time.Second)
			switch {
			case sess.deadline.Before(floor):
				wd = floor
			case sess.deadline.Before(wd):
				wd = sess.deadline
			}
		}
		conn.SetWriteDeadline(wd)
		if err := enc.Encode(resp); err != nil {
			return err
		}
		conn.SetWriteDeadline(time.Time{})
		return nil
	}
	// failStream ends the stream with a final error frame; the client has
	// a frame boundary and a structured code, not a torn chunk.
	failStream := func(err error) error {
		resp := fail(err)
		sess.span.Set("error", resp.Error)
		return writeFrame(resp)
	}

	if err := sess.checkDeadline(); err != nil {
		return failStream(err)
	}
	if req.WaitLSN > 0 {
		if err := sess.waitGate(req.WaitLSN); err != nil {
			return failStream(err)
		}
	}

	tx := sess.tx
	if tx == nil {
		tx = sess.db.Begin()
		tx.SetTraceSpan(sess.span)
		defer tx.Abort()
	}
	p, err := query.Compile(tx, req.Plan)
	if err != nil {
		return failStream(err)
	}

	buf := make([]wire.QueryRow, 0, wire.QueryChunkRows)
	var rows, chunks int
	for {
		row, ok, err := p.Next()
		if err != nil {
			return failStream(err)
		}
		if !ok {
			break
		}
		buf = append(buf, row.WireRow())
		rows++
		if len(buf) < wire.QueryChunkRows {
			continue
		}
		// Chunk boundary: the stream's cancellation points. A spent
		// deadline or a drain past its shed point ends the stream with a
		// clean error frame mid-result rather than running to completion.
		if err := sess.checkDeadline(); err != nil {
			return failStream(err)
		}
		if shedAt, draining := s.shedDeadline(); draining && !time.Now().Before(shedAt) {
			return failStream(errShuttingDown)
		}
		if err := writeFrame(&wire.Response{OK: true, More: true, Rows: buf}); err != nil {
			return err
		}
		chunks++
		buf = buf[:0]
	}
	sess.span.Set("rows", fmt.Sprint(rows))
	sess.span.Set("chunks", fmt.Sprint(chunks+1))
	return writeFrame(&wire.Response{OK: true, Rows: buf})
}

// resolveBatchRefs substitutes a sub-op's $n back references with the
// IDs created by earlier sub-ops of the same batch. ValidateBatch has
// already bounded the indexes; what remains is the execution-time rule
// that the referenced op actually created an entity. Returns the request
// to dispatch (a resolved shallow copy when refs are present) or the
// message for a structured batch abort.
func resolveBatchRefs(sub *wire.Request, i int, ids []neograph.NodeID, hasID []bool) (*wire.Request, string) {
	if sub.IDRef == nil && sub.StartRef == nil && sub.EndRef == nil {
		return sub, ""
	}
	r := *sub
	for _, ref := range []struct {
		name string
		src  *int
		dst  *uint64
	}{
		{"id_ref", sub.IDRef, &r.ID},
		{"start_ref", sub.StartRef, &r.Start},
		{"end_ref", sub.EndRef, &r.End},
	} {
		if ref.src == nil {
			continue
		}
		j := *ref.src
		if j < 0 || j >= i || !hasID[j] {
			return nil, fmt.Sprintf("server: %s $%d: op %d did not create an entity", ref.name, j, j)
		}
		*ref.dst = ids[j]
	}
	return &r, ""
}
