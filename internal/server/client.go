package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"

	"neograph"
	"neograph/internal/wire"
)

// Client is a typed connection to a neograph server. A Client is one
// session (one potential open transaction); it is not safe for concurrent
// use — open one client per worker, as with any session-oriented
// database driver.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	// lastLSN is the commit position of the newest write acknowledged on
	// this client — the token for read-your-writes against a replica.
	lastLSN uint64
	// readAfter, when set, is attached to every request as WaitLSN.
	readAfter uint64
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return &Client{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection (aborting any open transaction server-side).
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and reads the response, converting protocol errors.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	if req.WaitLSN == 0 {
		req.WaitLSN = c.readAfter
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	if !resp.OK {
		return nil, remoteError(resp.Error)
	}
	if resp.LSN != 0 {
		c.lastLSN = resp.LSN
	}
	return &resp, nil
}

// LastCommitLSN returns the commit position of the newest write this
// client has had acknowledged (explicit commit or auto-committed write).
// Hand it to another client's ReadAfter to read your writes from a
// replica.
func (c *Client) LastCommitLSN() uint64 { return c.lastLSN }

// ReadAfter gates every subsequent request on the server having reached
// pos: a replica waits until it has applied the primary's log that far
// (read-your-writes), a primary until the position is durable. Zero
// clears the gate.
func (c *Client) ReadAfter(pos uint64) { c.readAfter = pos }

// remoteError maps well-known engine errors back to their sentinel values
// so errors.Is works across the wire.
func remoteError(msg string) error {
	for _, sentinel := range []error{
		neograph.ErrNotFound, neograph.ErrWriteConflict, neograph.ErrDeadlock,
		neograph.ErrTxDone, neograph.ErrHasRels, neograph.ErrReadOnlyReplica,
	} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return errors.New(msg)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPing})
	return err
}

// Begin opens an explicit transaction ("si" or "rc"; empty = si).
func (c *Client) Begin(isolation string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpBegin, Isolation: isolation})
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpCommit})
	return err
}

// Abort aborts the open transaction.
func (c *Client) Abort() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpAbort})
	return err
}

// CreateNode creates a node and returns its ID.
func (c *Client) CreateNode(labels []string, props neograph.Props) (neograph.NodeID, error) {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCreateNode, Labels: labels, Props: enc})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// GetNode fetches a node snapshot.
func (c *Client) GetNode(id neograph.NodeID) (neograph.Node, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGetNode, ID: id})
	if err != nil {
		return neograph.Node{}, err
	}
	props, err := wire.DecodeProps(resp.Node.Props)
	if err != nil {
		return neograph.Node{}, err
	}
	return neograph.Node{ID: resp.Node.ID, Labels: resp.Node.Labels, Props: props}, nil
}

// SetNodeProp sets one node property.
func (c *Client) SetNodeProp(id neograph.NodeID, key string, v neograph.Value) error {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Request{Op: wire.OpSetNodeProp, ID: id, Key: key, Value: enc})
	return err
}

// AddLabel adds a label to a node.
func (c *Client) AddLabel(id neograph.NodeID, label string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpAddLabel, ID: id, Label: label})
	return err
}

// RemoveLabel removes a label from a node.
func (c *Client) RemoveLabel(id neograph.NodeID, label string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpRemoveLabel, ID: id, Label: label})
	return err
}

// DeleteNode deletes a relationship-free node.
func (c *Client) DeleteNode(id neograph.NodeID) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpDeleteNode, ID: id})
	return err
}

// DetachDeleteNode deletes a node and its relationships.
func (c *Client) DetachDeleteNode(id neograph.NodeID) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpDetachDelete, ID: id})
	return err
}

// CreateRel creates a relationship and returns its ID.
func (c *Client) CreateRel(relType string, start, end neograph.NodeID, props neograph.Props) (neograph.RelID, error) {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCreateRel, Type: relType, Start: start, End: end, Props: enc})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// GetRel fetches a relationship snapshot.
func (c *Client) GetRel(id neograph.RelID) (neograph.Relationship, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGetRel, ID: id})
	if err != nil {
		return neograph.Relationship{}, err
	}
	props, err := wire.DecodeProps(resp.Rel.Props)
	if err != nil {
		return neograph.Relationship{}, err
	}
	return neograph.Relationship{
		ID: resp.Rel.ID, Type: resp.Rel.Type,
		Start: resp.Rel.Start, End: resp.Rel.End, Props: props,
	}, nil
}

// SetRelProp sets one relationship property.
func (c *Client) SetRelProp(id neograph.RelID, key string, v neograph.Value) error {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Request{Op: wire.OpSetRelProp, ID: id, Key: key, Value: enc})
	return err
}

// DeleteRel deletes a relationship.
func (c *Client) DeleteRel(id neograph.RelID) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpDeleteRel, ID: id})
	return err
}

// Relationships lists a node's relationships ("out", "in", "both").
func (c *Client) Relationships(id neograph.NodeID, dir string, types ...string) ([]neograph.Relationship, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpRels, ID: id, Dir: dir, Types: types})
	if err != nil {
		return nil, err
	}
	out := make([]neograph.Relationship, 0, len(resp.Rels))
	for _, r := range resp.Rels {
		props, err := wire.DecodeProps(r.Props)
		if err != nil {
			return nil, err
		}
		out = append(out, neograph.Relationship{ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props})
	}
	return out, nil
}

// Neighbors lists adjacent node IDs.
func (c *Client) Neighbors(id neograph.NodeID, dir string, types ...string) ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpNeighbors, ID: id, Dir: dir, Types: types})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// NodesByLabel lists node IDs carrying a label.
func (c *Client) NodesByLabel(label string) ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpNodesByLabel, Label: label})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// NodesByProperty lists node IDs whose property key equals v.
func (c *Client) NodesByProperty(key string, v neograph.Value) ([]neograph.NodeID, error) {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpNodesByProp, Key: key, Value: enc})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// AllNodes lists every visible node ID.
func (c *Client) AllNodes() ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpAllNodes})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Stats returns the server's engine counters as raw JSON.
func (c *Client) Stats() (json.RawMessage, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// GC triggers a garbage collection cycle, returning the report as JSON.
func (c *Client) GC() (json.RawMessage, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpGC})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// Checkpoint triggers a checkpoint.
func (c *Client) Checkpoint() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpCheckpoint})
	return err
}

// ReplStatus returns the server's replication status as raw JSON (role,
// applied/durable positions, connected replicas).
func (c *Client) ReplStatus() (json.RawMessage, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpReplStatus})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// Promote asks a replica server to promote itself to a writable primary
// (failover), optionally starting a WAL shipper on addr so surviving
// replicas can re-point. Returns the post-promotion replication status.
func (c *Client) Promote(addr string) (json.RawMessage, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpPromote, Addr: addr})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}
