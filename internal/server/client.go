package server

import (
	"context"
	"encoding/json"
	"net"

	"neograph"
	"neograph/client"
)

// Client is a thin shim over the public neograph/client package, kept so
// pre-existing callers (and tests) of the context-free API continue to
// work unchanged.
//
// Deprecated: use neograph/client — every call takes a context.Context,
// batches submit many ops in one round trip (client.Batch), and
// client.Pool routes reads over the replica fleet. This shim runs every
// call under context.Background().
type Client struct {
	c *client.Client
}

// Dial connects to a server.
//
// Deprecated: use client.Dial, which takes a context.
func Dial(addr string) (*Client, error) {
	c, err := client.Dial(context.Background(), addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close closes the connection (aborting any open transaction server-side).
func (c *Client) Close() error { return c.c.Close() }

// RemoteAddr returns the server's address.
func (c *Client) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// LastCommitLSN returns the commit position of the newest write this
// client has had acknowledged (explicit commit or auto-committed write).
func (c *Client) LastCommitLSN() uint64 { return c.c.LastCommitLSN() }

// ReadAfter gates every subsequent request on the server having reached
// pos. Zero clears the gate.
func (c *Client) ReadAfter(pos uint64) { c.c.ReadAfter(pos) }

// Ping checks liveness.
func (c *Client) Ping() error { return c.c.Ping(context.Background()) }

// Begin opens an explicit transaction ("si" or "rc"; empty = si).
func (c *Client) Begin(isolation string) error {
	return c.c.Begin(context.Background(), isolation)
}

// Commit commits the open transaction.
func (c *Client) Commit() error { return c.c.Commit(context.Background()) }

// Abort aborts the open transaction.
func (c *Client) Abort() error { return c.c.Abort(context.Background()) }

// CreateNode creates a node and returns its ID.
func (c *Client) CreateNode(labels []string, props neograph.Props) (neograph.NodeID, error) {
	return c.c.CreateNode(context.Background(), labels, props)
}

// GetNode fetches a node snapshot.
func (c *Client) GetNode(id neograph.NodeID) (neograph.Node, error) {
	return c.c.GetNode(context.Background(), id)
}

// SetNodeProp sets one node property.
func (c *Client) SetNodeProp(id neograph.NodeID, key string, v neograph.Value) error {
	return c.c.SetNodeProp(context.Background(), id, key, v)
}

// AddLabel adds a label to a node.
func (c *Client) AddLabel(id neograph.NodeID, label string) error {
	return c.c.AddLabel(context.Background(), id, label)
}

// RemoveLabel removes a label from a node.
func (c *Client) RemoveLabel(id neograph.NodeID, label string) error {
	return c.c.RemoveLabel(context.Background(), id, label)
}

// DeleteNode deletes a relationship-free node.
func (c *Client) DeleteNode(id neograph.NodeID) error {
	return c.c.DeleteNode(context.Background(), id)
}

// DetachDeleteNode deletes a node and its relationships.
func (c *Client) DetachDeleteNode(id neograph.NodeID) error {
	return c.c.DetachDeleteNode(context.Background(), id)
}

// CreateRel creates a relationship and returns its ID.
func (c *Client) CreateRel(relType string, start, end neograph.NodeID, props neograph.Props) (neograph.RelID, error) {
	return c.c.CreateRel(context.Background(), relType, start, end, props)
}

// GetRel fetches a relationship snapshot.
func (c *Client) GetRel(id neograph.RelID) (neograph.Relationship, error) {
	return c.c.GetRel(context.Background(), id)
}

// SetRelProp sets one relationship property.
func (c *Client) SetRelProp(id neograph.RelID, key string, v neograph.Value) error {
	return c.c.SetRelProp(context.Background(), id, key, v)
}

// DeleteRel deletes a relationship.
func (c *Client) DeleteRel(id neograph.RelID) error {
	return c.c.DeleteRel(context.Background(), id)
}

// Relationships lists a node's relationships ("out", "in", "both").
func (c *Client) Relationships(id neograph.NodeID, dir string, types ...string) ([]neograph.Relationship, error) {
	return c.c.Relationships(context.Background(), id, dir, types...)
}

// Neighbors lists adjacent node IDs.
func (c *Client) Neighbors(id neograph.NodeID, dir string, types ...string) ([]neograph.NodeID, error) {
	return c.c.Neighbors(context.Background(), id, dir, types...)
}

// NodesByLabel lists node IDs carrying a label.
func (c *Client) NodesByLabel(label string) ([]neograph.NodeID, error) {
	return c.c.NodesByLabel(context.Background(), label)
}

// NodesByProperty lists node IDs whose property key equals v.
func (c *Client) NodesByProperty(key string, v neograph.Value) ([]neograph.NodeID, error) {
	return c.c.NodesByProperty(context.Background(), key, v)
}

// AllNodes lists every visible node ID.
func (c *Client) AllNodes() ([]neograph.NodeID, error) {
	return c.c.AllNodes(context.Background())
}

// Stats returns the server's engine counters as raw JSON.
func (c *Client) Stats() (json.RawMessage, error) {
	return c.c.Stats(context.Background())
}

// GC triggers a garbage collection cycle, returning the report as JSON.
func (c *Client) GC() (json.RawMessage, error) {
	return c.c.GC(context.Background())
}

// Checkpoint triggers a checkpoint.
func (c *Client) Checkpoint() error { return c.c.Checkpoint(context.Background()) }

// ReplStatus returns the server's replication status as raw JSON (role,
// applied/durable positions, connected replicas).
func (c *Client) ReplStatus() (json.RawMessage, error) {
	st, err := c.c.ReplStatus(context.Background())
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// Promote asks a replica server to promote itself to a writable primary
// (failover). Returns the post-promotion replication status.
func (c *Client) Promote(addr string) (json.RawMessage, error) {
	st, err := c.c.Promote(context.Background(), addr)
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}
