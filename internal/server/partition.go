package server

import (
	"errors"
	"fmt"

	"neograph"
	"neograph/internal/partition"
	"neograph/internal/wire"
)

// Partition integration: a partitioned server owns one hash partition
// of the ID space and refuses (with a routing hint) operations on
// entities it does not own; batches that span partitions are handed to
// the coordinator, which drives two-phase commit across the involved
// partitions' primaries.

// SetPartition wires the partition coordinator into the server's
// dispatch: cross-partition batches route through coord, misrouted
// single-entity ops fail with the owner partition named, and the
// prepare/decide/txn_status ops come alive. self/count mirror the
// database's PartitionID/PartitionCount.
func (s *Server) SetPartition(coord *partition.Coordinator, self uint32, count int) {
	s.clusterMu.Lock()
	s.coord = coord
	s.partSelf = self
	s.partCount = count
	s.clusterMu.Unlock()
}

// partitionView snapshots the partition wiring for one request.
func (s *Server) partitionView() (*partition.Coordinator, uint32, int) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.coord, s.partSelf, s.partCount
}

// Local returns the coordinator's handle on this server's partition —
// pass it to partition.NewCoordinator.
func (s *Server) Local() partition.Local { return localPartition{s} }

// localPartition adapts the server (op execution) and its database
// (two-phase-commit state) to partition.Local.
type localPartition struct{ s *Server }

func (lp localPartition) PrepareBatch(gtxn uint64, coordPart uint32, batch []wire.Request, validate []uint64) *wire.Response {
	return lp.s.prepareBatch(gtxn, coordPart, batch, validate)
}

func (lp localPartition) DecideTxn(gtxn uint64, commit bool, participants []uint32) (uint64, error) {
	return lp.s.db.DecideTxn(gtxn, commit, participants)
}

func (lp localPartition) TxnStatus(gtxn uint64) string {
	return string(lp.s.db.TxnStatus(gtxn))
}

func (lp localPartition) AckDecision(gtxn uint64, participant uint32) {
	lp.s.db.AckDecision(gtxn, participant)
}

func (lp localPartition) InDoubt() []partition.InDoubtTxn {
	var out []partition.InDoubtTxn
	for _, p := range lp.s.db.InDoubt() {
		out = append(out, partition.InDoubtTxn{Gtxn: p.Gtxn, CoordPart: p.CoordPart})
	}
	return out
}

func (lp localPartition) UnackedDecisions() []partition.UnackedTxn {
	var out []partition.UnackedTxn
	for _, d := range lp.s.db.UnackedDecisions() {
		out = append(out, partition.UnackedTxn{Gtxn: d.Gtxn, Participants: d.Participants})
	}
	return out
}

// prepareBatch is phase one on a participant: run the sub-ops in a
// fresh transaction (relationship creation tolerating remote endpoints)
// and park it prepared under gtxn. An empty batch is a valid anchor —
// the coordinator prepares validate-only and decision-anchor entries
// with no ops.
func (s *Server) prepareBatch(gtxn uint64, coordPart uint32, batch []wire.Request, validate []uint64) *wire.Response {
	if s.db.IsReplica() {
		return fail(fmt.Errorf("%w: prepare must go to the primary", neograph.ErrReadOnlyReplica))
	}
	if len(batch) > wire.MaxBatchOps {
		return fail(fmt.Errorf("server: prepare batch of %d ops exceeds limit %d", len(batch), wire.MaxBatchOps))
	}
	for i := range batch {
		if !wire.Batchable(batch[i].Op) {
			return fail(fmt.Errorf("server: op %q not allowed in a prepare (sub-op %d)", batch[i].Op, i))
		}
	}
	sess := &session{db: s.db, srv: s, crossPrepare: true}
	sess.tx = s.db.Begin()
	results, failIdx, msg := sess.runBatchOps(batch)
	if failIdx >= 0 {
		if sess.tx != nil {
			sess.tx.Abort()
		}
		idx := failIdx
		return &wire.Response{
			Error:    fmt.Sprintf("server: prepare aborted at op %d: %s", failIdx, msg),
			FailedOp: &idx,
		}
	}
	lsn, err := sess.tx.Prepare(gtxn, coordPart, validate)
	if err != nil {
		return fail(err) // Prepare aborts the transaction itself
	}
	return &wire.Response{OK: true, Results: results, LSN: lsn}
}

// misrouted builds the structured routing error for an op anchored to
// an entity this partition does not own. Clients parse the owner out of
// Response.Error only as a hint — the partition map is the real router.
func misrouted(self uint32, count int, kind string, id uint64) error {
	return fmt.Errorf("server: wrong partition: %s %d belongs to partition %d of %d (this is partition %d)",
		kind, id, uint32(id%uint64(count)), count, self)
}

// routePartitioned enforces single-op routing on a partitioned server
// and diverts cross-partition relationship creation through the
// coordinator. It returns (response, true) when it fully handled the
// request.
func (sess *session) routePartitioned(req *wire.Request) (*wire.Response, bool) {
	coord, self, count := sess.srv.partitionView()
	if coord == nil || count <= 1 {
		return nil, false
	}
	owns := func(id uint64) bool { return uint32(id%uint64(count)) == self }
	switch req.Op {
	case wire.OpCreateRel:
		if owns(req.Start) && owns(req.End) {
			return nil, false
		}
		if !owns(req.Start) {
			// The edge lives on the start node's partition; this server
			// cannot even allocate its ID. The client router should have
			// sent it there.
			return fail(misrouted(self, count, "node", req.Start)), true
		}
		// Local source, remote destination: a one-op cross-partition
		// transaction (the destination partition pins the endpoint).
		if sess.tx != nil {
			return fail(errors.New("server: cross-partition create_rel is not allowed inside an explicit transaction")), true
		}
		return coord.CommitBatch([]wire.Request{*req}, sess.deadline), true
	case wire.OpGetNode, wire.OpSetNodeProp, wire.OpAddLabel, wire.OpRemoveLabel,
		wire.OpDeleteNode, wire.OpDetachDelete:
		if !owns(req.ID) {
			return fail(misrouted(self, count, "node", req.ID)), true
		}
	case wire.OpGetRel, wire.OpSetRelProp, wire.OpDeleteRel:
		if !owns(req.ID) {
			return fail(misrouted(self, count, "rel", req.ID)), true
		}
	case wire.OpRels, wire.OpNeighbors:
		if !owns(req.ID) {
			return fail(misrouted(self, count, "node", req.ID)), true
		}
	}
	return nil, false
}

// dispatchPartitionOp handles the 2PC control ops (top level only).
func (sess *session) dispatchPartitionOp(req *wire.Request) *wire.Response {
	if sess.srv == nil {
		return fail(errors.New("server: not a partitioned deployment"))
	}
	coord, _, count := sess.srv.partitionView()
	if coord == nil || count <= 1 {
		return fail(errors.New("server: not a partitioned deployment"))
	}
	switch req.Op {
	case wire.OpPrepare:
		return sess.srv.prepareBatch(req.TxnID, req.CoordPart, req.Batch, req.ValidateNodes)

	case wire.OpDecide:
		if req.Commit == nil {
			return fail(errors.New("server: decide without a verdict"))
		}
		lsn, err := sess.db.DecideTxn(req.TxnID, *req.Commit, req.Participants)
		if err != nil {
			if errors.Is(err, neograph.ErrNotPrepared) {
				// Already decided (a repush raced the first push, or a
				// recovery already resolved it): acknowledging again is
				// harmless and lets the coordinator retire the decision.
				return &wire.Response{OK: true, State: string(sess.db.TxnStatus(req.TxnID))}
			}
			return fail(err)
		}
		return &wire.Response{OK: true, LSN: lsn}

	case wire.OpTxnStatus:
		// Only the primary's answer is authoritative: a lagging replica
		// could answer "unknown" for a transaction whose decision is on
		// the wire, and "unknown" means presumed abort to the asker.
		if sess.db.IsReplica() {
			return fail(fmt.Errorf("%w: txn_status must go to the primary", neograph.ErrReadOnlyReplica))
		}
		return &wire.Response{OK: true, State: string(sess.db.TxnStatus(req.TxnID))}

	default:
		return fail(fmt.Errorf("server: unknown partition op %q", req.Op))
	}
}
